// gammajoin_cli: run one configurable parallel-join experiment from the
// command line and print the full execution report.
//
//   $ gammajoin_cli --algorithm=hybrid --ratio=0.5 --filters
//   $ gammajoin_cli --algorithm=sort-merge --outer=50000 --skew
//   $ gammajoin_cli --algorithm=grace --remote --diskless=8 --phases
//
// Flags (all optional):
//   --algorithm=NAME   hybrid | grace | simple | sort-merge   [hybrid]
//   --ratio=R          aggregate memory / |inner|             [1.0]
//   --outer=N          outer relation cardinality             [100000]
//   --inner=N          inner relation cardinality             [outer/10]
//   --disks=N          processors with disks                  [8]
//   --diskless=N       diskless processors                    [0]
//   --remote           join on the diskless processors
//   --filters          2 KB bit-vector filters
//   --forming-filters  also filter the bucket-forming phases
//   --non-hpja         join on unique2 (not the declustering attribute)
//   --skew             normally distributed inner join attribute
//   --buckets=N        override the optimizer's bucket count
//   --seed=N           workload seed                          [42]
//   --threads=N        executor threads                       [1]
//   --phases           print the per-phase time breakdown
//   --attribution      print the cost-attribution table (where every
//                      simulated second went, by cost-model primitive)
//   --trace=FILE       write a simulated-time Chrome trace_event JSON
//                      (open in Perfetto; see docs/tracing.md)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "sim/trace.h"
#include "wisconsin/wisconsin.h"

using namespace gammadb;

namespace {

struct Options {
  join::Algorithm algorithm = join::Algorithm::kHybridHash;
  double ratio = 1.0;
  uint32_t outer = 100000;
  uint32_t inner = 0;  // 0 = outer/10
  int disks = 8;
  int diskless = 0;
  bool remote = false;
  bool filters = false;
  bool forming_filters = false;
  bool non_hpja = false;
  bool skew = false;
  int buckets = 0;  // 0 = optimizer
  uint64_t seed = 42;
  int threads = 1;
  bool phases = false;
  bool attribution = false;
  std::string trace_path;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algorithm=hybrid|grace|simple|sort-merge] "
               "[--ratio=R]\n  [--outer=N] [--inner=N] [--disks=N] "
               "[--diskless=N] [--remote] [--filters]\n  "
               "[--forming-filters] [--non-hpja] [--skew] [--buckets=N] "
               "[--seed=N]\n  [--threads=N] [--phases] [--attribution] "
               "[--trace=FILE]\n",
               argv0);
  return 2;
}

/// Checked parsing for numeric flag values: rejects non-numeric text
/// and out-of-range values instead of silently reading them as 0.
bool ParseIntValue(const char* flag, const char* text, int64_t min_value,
                   int64_t* out) {
  if (!ParseInt64(text, out)) {
    std::fprintf(stderr, "%s: '%s' is not an integer\n", flag, text);
    return false;
  }
  if (*out < min_value) {
    std::fprintf(stderr, "%s: %lld is below the minimum %lld\n", flag,
                 static_cast<long long>(*out),
                 static_cast<long long>(min_value));
    return false;
  }
  return true;
}

bool ParseDoubleValue(const char* flag, const char* text, double* out) {
  if (!ParseDouble(text, out) || *out <= 0) {
    std::fprintf(stderr, "%s: '%s' is not a positive number\n", flag, text);
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--algorithm", &v) && v != nullptr) {
      const std::string name = v;
      if (name == "hybrid") {
        options->algorithm = join::Algorithm::kHybridHash;
      } else if (name == "grace") {
        options->algorithm = join::Algorithm::kGraceHash;
      } else if (name == "simple") {
        options->algorithm = join::Algorithm::kSimpleHash;
      } else if (name == "sort-merge") {
        options->algorithm = join::Algorithm::kSortMerge;
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return false;
      }
    } else if (ParseFlag(argv[i], "--ratio", &v) && v != nullptr) {
      if (!ParseDoubleValue("--ratio", v, &options->ratio)) return false;
    } else if (ParseFlag(argv[i], "--outer", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--outer", v, 1, &n)) return false;
      options->outer = static_cast<uint32_t>(n);
    } else if (ParseFlag(argv[i], "--inner", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--inner", v, 1, &n)) return false;
      options->inner = static_cast<uint32_t>(n);
    } else if (ParseFlag(argv[i], "--disks", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--disks", v, 1, &n)) return false;
      options->disks = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--diskless", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--diskless", v, 0, &n)) return false;
      options->diskless = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--buckets", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--buckets", v, 1, &n)) return false;
      options->buckets = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--seed", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--seed", v, 0, &n)) return false;
      options->seed = static_cast<uint64_t>(n);
    } else if (ParseFlag(argv[i], "--threads", &v) && v != nullptr) {
      int64_t n = 0;
      if (!ParseIntValue("--threads", v, 1, &n)) return false;
      options->threads = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--trace", &v) && v != nullptr) {
      options->trace_path = v;
    } else if (ParseFlag(argv[i], "--attribution", &v)) {
      options->attribution = true;
    } else if (ParseFlag(argv[i], "--remote", &v)) {
      options->remote = true;
    } else if (ParseFlag(argv[i], "--filters", &v)) {
      options->filters = true;
    } else if (ParseFlag(argv[i], "--forming-filters", &v)) {
      options->forming_filters = true;
    } else if (ParseFlag(argv[i], "--non-hpja", &v)) {
      options->non_hpja = true;
    } else if (ParseFlag(argv[i], "--skew", &v)) {
      options->skew = true;
    } else if (ParseFlag(argv[i], "--phases", &v)) {
      options->phases = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  if (options->inner == 0) options->inner = options->outer / 10;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);
  if (options.remote && options.diskless == 0) options.diskless = 8;

  sim::MachineConfig config;
  config.num_disk_nodes = options.disks;
  config.num_diskless_nodes = options.diskless;
  config.num_threads = options.threads;
  sim::Machine machine(config);
  sim::Tracer tracer;
  if (!options.trace_path.empty()) {
    machine.set_tracer(&tracer, "gammajoin_cli");
  }
  db::Catalog catalog;

  wisconsin::DatasetOptions dataset;
  dataset.outer_cardinality = options.outer;
  dataset.inner_cardinality = options.inner;
  dataset.seed = options.seed;
  dataset.with_normal_attr = options.skew;
  if (options.skew) {
    dataset.strategy = db::PartitionStrategy::kRangeUniform;
    dataset.partition_field = wisconsin::fields::kNormal;
  }
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.inner_field = options.skew
                         ? wisconsin::fields::kNormal
                         : (options.non_hpja ? wisconsin::fields::kUnique2
                                             : wisconsin::fields::kUnique1);
  spec.outer_field = options.non_hpja && !options.skew
                         ? wisconsin::fields::kUnique2
                         : wisconsin::fields::kUnique1;
  spec.algorithm = options.algorithm;
  spec.memory_ratio = options.ratio;
  spec.use_bit_filters = options.filters;
  spec.use_forming_bit_filters = options.forming_filters;
  if (options.buckets > 0) spec.num_buckets = options.buckets;
  if (options.remote) spec.join_nodes = machine.DisklessNodeIds();

  auto output = join::ExecuteJoin(machine, catalog, spec);
  if (!output.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }

  const auto& c = output->metrics.counters;
  std::printf("algorithm:         %s\n", join::AlgorithmName(spec.algorithm));
  std::printf("configuration:     %d disk + %d diskless nodes, join %s\n",
              options.disks, options.diskless,
              options.remote ? "remote" : "local");
  std::printf("workload:          %s x %s tuples%s%s\n",
              WithThousandsSeparators(options.outer).c_str(),
              WithThousandsSeparators(options.inner).c_str(),
              options.non_hpja ? ", non-HPJA" : ", HPJA",
              options.skew ? ", skewed inner" : "");
  std::printf("memory ratio:      %.3f\n", options.ratio);
  std::printf("response time:     %.2f simulated seconds\n",
              output->response_seconds());
  std::printf("result tuples:     %s\n",
              WithThousandsSeparators(
                  static_cast<int64_t>(output->stats.result_tuples))
                  .c_str());
  std::printf("buckets:           %d\n", output->stats.num_buckets);
  std::printf("overflow events:   %lld (depth %d)\n",
              (long long)output->stats.overflow_events,
              output->stats.overflow_levels);
  std::printf("pages read/write:  %s / %s\n",
              WithThousandsSeparators(c.pages_read).c_str(),
              WithThousandsSeparators(c.pages_written).c_str());
  std::printf("short-circuited:   %.1f%% of %s routed tuples\n",
              100 * c.ShortCircuitFraction(),
              WithThousandsSeparators(c.tuples_sent_local +
                                      c.tuples_sent_remote)
                  .c_str());
  if (options.filters) {
    std::printf("filter drops:      %s\n",
                WithThousandsSeparators(output->stats.filter_drops).c_str());
  }
  if (output->stats.avg_chain_length > 0) {
    std::printf("hash chains:       %.2f avg, %d max\n",
                output->stats.avg_chain_length,
                output->stats.max_chain_length);
  }
  if (options.phases) {
    std::printf("\nphases:\n");
    for (const auto& phase : output->metrics.phases) {
      std::printf("  %-28s %8.2f s\n", phase.label.c_str(),
                  phase.elapsed_seconds);
    }
  }
  if (options.attribution) {
    // Where the simulated seconds went, summed over all nodes and
    // phases, by cost-model primitive (docs/tracing.md).
    double by_category[sim::kNumCostCategories] = {};
    double total = 0;
    for (const auto& phase : output->metrics.phases) {
      for (const auto& usage : phase.usage) {
        for (size_t cat = 0; cat < sim::kNumCostCategories; ++cat) {
          by_category[cat] += usage.by_category[cat];
          total += usage.by_category[cat];
        }
      }
    }
    std::printf("\ncost attribution (all nodes, %.2f charged seconds):\n",
                total);
    for (size_t cat = 0; cat < sim::kNumCostCategories; ++cat) {
      if (by_category[cat] == 0) continue;
      std::printf("  %-16s %10.2f s  %5.1f%%\n",
                  sim::CostCategoryName(static_cast<sim::CostCategory>(cat)),
                  by_category[cat], 100 * by_category[cat] / total);
    }
  }
  if (!options.trace_path.empty()) {
    Status status = tracer.WriteFile(options.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace JSON to %s\n",
                 options.trace_path.c_str());
  }
  return 0;
}
