// gamma_lint: project-invariant static analysis for the gammadb tree.
//
// The simulator's core contracts are invisible to the compiler: simulated
// time must be a pure function of the query plan (no host clock, host
// entropy or iteration-order dependence inside the deterministic
// directories), every simulated-seconds charge must name a
// sim::CostCategory, and a Status from the fault-injection path must
// never be dropped silently. gamma_lint enforces those rules at lint
// time over a real token stream (comment- and string-literal-aware, not
// a grep), with a plain-text allowlist for the handful of justified
// exceptions. docs/static_analysis.md describes every rule and the
// allowlist format.
//
// The analysis lives in this library (pure string -> findings functions,
// no filesystem access) so tests can drive it against fixture sources
// under arbitrary pseudo-paths; tools/gamma_lint.cc adds the directory
// walk and CLI.
#ifndef GAMMA_TOOLS_GAMMA_LINT_LIB_H_
#define GAMMA_TOOLS_GAMMA_LINT_LIB_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace gammadb::lint {

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // numeric literals (int/float/hex, with suffixes)
  kString,      // "..." / R"(...)" / '...' literals (quotes included)
  kPunct,       // operators and punctuation, maximal munch
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;  // 1-based
  int col = 1;   // 1-based, in bytes
  size_t offset = 0;  // byte offset of the first character in the source
};

/// Tokenizes C++ source. Comments and whitespace are skipped (so rules
/// never fire on commented-out code); string/char literals come back as
/// single kString tokens (so rules never fire on literal contents).
std::vector<Token> Tokenize(std::string_view source);

// ---------------------------------------------------------------------------
// Findings and rules

struct Finding {
  std::string rule;     // e.g. "determinism/wall-clock"
  std::string file;     // repo-relative path, forward slashes
  int line = 0;
  int col = 0;
  std::string token;    // the offending token (allowlist match key)
  std::string message;  // human-readable diagnostic
};

/// Names every rule so reports and the allowlist spell them identically.
inline constexpr const char* kRuleWallClock = "determinism/wall-clock";
inline constexpr const char* kRuleUnordered = "determinism/unordered-container";
inline constexpr const char* kRuleCharge = "cost/uncategorized-charge";
inline constexpr const char* kRuleSeconds = "cost/raw-seconds-mutation";
inline constexpr const char* kRuleStatus = "error/discarded-status";
inline constexpr const char* kRuleFatal = "error/fatal-in-library";
inline constexpr const char* kRuleGuard = "hygiene/include-guard";
inline constexpr const char* kRuleUsing = "hygiene/using-namespace-header";
inline constexpr const char* kRuleAllow = "allowlist/unused-entry";

// ---------------------------------------------------------------------------
// Status-function registry

/// Function names known to return Status / Result<T>, collected by
/// scanning declarations across the tree. `weak` holds names with at
/// least one Status-returning declaration (used for the `(void)` rule,
/// where the cast itself signals intent); `strict` holds names whose
/// every collected declaration returns Status/Result (used for the
/// bare-call rule, so an unrelated void overload elsewhere cannot cause
/// a false positive — the compiler's [[nodiscard]] remains the
/// authoritative check for those).
struct StatusRegistry {
  std::set<std::string> strict;
  std::set<std::string> weak;
};

/// Accumulates declaration scans; Build() resolves strict/weak sets.
class RegistryBuilder {
 public:
  /// Scans one file's source for function declarations/definitions and
  /// records, per function name, how many return Status/Result vs. not.
  void Scan(std::string_view source);

  StatusRegistry Build() const;

 private:
  // name -> {status_returning_decls, other_decls}
  std::map<std::string, std::pair<int, int>> counts_;
};

// ---------------------------------------------------------------------------
// Allowlist

struct AllowEntry {
  std::string rule;
  std::string file;
  std::string token;   // optional: empty matches any token
  std::string reason;  // required, non-empty
  int line = 0;        // line of the [[allow]] header, for diagnostics
  mutable bool used = false;
};

/// Parses the TOML-style allowlist (see docs/static_analysis.md):
///   [[allow]]
///   rule = "determinism/wall-clock"
///   file = "bench/common/harness.cc"
///   token = "std::chrono"        # optional
///   reason = "host real_seconds metric is explicitly host-side"
/// Rejects entries missing rule/file/reason and unknown keys.
Result<std::vector<AllowEntry>> ParseAllowlist(std::string_view text);

// ---------------------------------------------------------------------------
// Analysis entry points

/// Runs every applicable rule over one file. `relpath` controls rule
/// scope (deterministic dirs, library vs. test code, header hygiene);
/// it must be repo-relative with forward slashes.
std::vector<Finding> LintFile(const std::string& relpath,
                              std::string_view source,
                              const StatusRegistry& registry);

/// Applies the mechanical fixes (include-guard rewrite, `(void)` status
/// discard -> .IgnoreError()) and returns the fixed source. Running the
/// result through ApplyFixes again returns it unchanged (idempotent).
std::string ApplyFixes(const std::string& relpath, std::string source,
                       const StatusRegistry& registry);

/// Splits findings into kept (returned) and allowlisted; appends one
/// kRuleAllow finding per entry that matched nothing, so stale entries
/// fail the lint run too. `allowlist_path` names the file in those
/// diagnostics.
std::vector<Finding> FilterAllowed(std::vector<Finding> findings,
                                   const std::vector<AllowEntry>& allowlist,
                                   const std::string& allowlist_path);

/// The include-guard name the project convention expects for `relpath`
/// (leading "src/" stripped, GAMMA_ prefix, _H_-style suffix). Exposed
/// for tests.
std::string ExpectedGuard(const std::string& relpath);

/// Machine-readable report in the repo's schema style (schema_version,
/// tool, files_scanned, by_rule counts, findings array).
JsonValue ReportJson(const std::vector<Finding>& findings,
                     size_t files_scanned);

}  // namespace gammadb::lint

#endif  // GAMMA_TOOLS_GAMMA_LINT_LIB_H_
