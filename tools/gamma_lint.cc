// gamma_lint CLI: walks the tree, runs every rule, prints file:line:col
// diagnostics, optionally writes a JSON report and applies mechanical
// fixes. Exit code 0 = clean, 1 = findings, 2 = usage/environment error.
//
//   gamma_lint [--root <repo>] [--allowlist <file>] [--json <out.json>]
//              [--fix] [paths...]
//
// Default paths: src tools bench tests (relative to --root). The lint
// fixture corpus (tests/tools/lint_fixtures) is always skipped: those
// files carry deliberate violations for gamma_lint's own tests.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "tools/gamma_lint_lib.h"

namespace {

namespace fs = std::filesystem;
using gammadb::lint::AllowEntry;
using gammadb::lint::Finding;

constexpr const char* kFixtureDir = "tests/tools/lint_fixtures";

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string RelPath(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

int Usage() {
  std::fprintf(stderr,
               "usage: gamma_lint [--root <repo>] [--allowlist <file>] "
               "[--json <out.json>] [--fix] [paths...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_flag;
  std::string json_path;
  bool fix = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gamma_lint: %s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return Usage();
      root = v;
    } else if (arg == "--allowlist") {
      const char* v = value("--allowlist");
      if (v == nullptr) return Usage();
      allowlist_flag = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return Usage();
      json_path = v;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "gamma_lint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests"};

  const fs::path root_path(root);
  if (!fs::is_directory(root_path)) {
    std::fprintf(stderr, "gamma_lint: --root %s is not a directory\n",
                 root.c_str());
    return 2;
  }

  // Collect files in deterministic (sorted) order.
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path base = root_path / p;
    if (fs::is_regular_file(base)) {
      if (IsSourceFile(base)) files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "gamma_lint: no such path: %s\n",
                   base.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      const std::string rel = RelPath(root_path, entry.path());
      if (rel.rfind(kFixtureDir, 0) == 0) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: build the Status-function registry from every scanned file.
  gammadb::lint::RegistryBuilder builder;
  std::vector<std::pair<std::string, std::string>> sources;  // relpath, text
  sources.reserve(files.size());
  for (const fs::path& f : files) {
    std::string text;
    if (!ReadFile(f, &text)) {
      std::fprintf(stderr, "gamma_lint: cannot read %s\n",
                   f.string().c_str());
      return 2;
    }
    builder.Scan(text);
    sources.emplace_back(RelPath(root_path, f), std::move(text));
  }
  const gammadb::lint::StatusRegistry registry = builder.Build();

  // Optional pass: apply mechanical fixes in place, then lint the result.
  if (fix) {
    for (size_t i = 0; i < sources.size(); ++i) {
      std::string fixed =
          gammadb::lint::ApplyFixes(sources[i].first, sources[i].second,
                                    registry);
      if (fixed != sources[i].second) {
        if (!WriteFile(files[i], fixed)) {
          std::fprintf(stderr, "gamma_lint: cannot write %s\n",
                       files[i].string().c_str());
          return 2;
        }
        std::fprintf(stderr, "gamma_lint: fixed %s\n",
                     sources[i].first.c_str());
        sources[i].second = std::move(fixed);
      }
    }
  }

  // Pass 2: lint.
  std::vector<Finding> findings;
  for (const auto& [rel, text] : sources) {
    std::vector<Finding> file_findings =
        gammadb::lint::LintFile(rel, text, registry);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  // Allowlist.
  std::string allowlist_path =
      allowlist_flag.empty() ? (root_path / ".gamma_lint.allow").string()
                             : allowlist_flag;
  std::vector<AllowEntry> allowlist;
  {
    std::string text;
    if (ReadFile(allowlist_path, &text)) {
      auto parsed = gammadb::lint::ParseAllowlist(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "gamma_lint: %s: %s\n", allowlist_path.c_str(),
                     parsed.status().message().c_str());
        return 2;
      }
      allowlist = std::move(parsed).value();
    } else if (!allowlist_flag.empty()) {
      std::fprintf(stderr, "gamma_lint: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
  }
  findings = gammadb::lint::FilterAllowed(
      findings, allowlist,
      fs::path(allowlist_path).filename().string());

  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%d:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.col, f.rule.c_str(), f.message.c_str());
  }
  if (!json_path.empty()) {
    const gammadb::JsonValue report =
        gammadb::lint::ReportJson(findings, sources.size());
    const gammadb::Status st = gammadb::WriteJsonFile(json_path, report);
    if (!st.ok()) {
      std::fprintf(stderr, "gamma_lint: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "gamma_lint: %zu files, %zu finding(s)\n",
               sources.size(), findings.size());
  return findings.empty() ? 0 : 1;
}
