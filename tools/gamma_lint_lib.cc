#include "tools/gamma_lint_lib.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/strings.h"

namespace gammadb::lint {

namespace {

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsHeader(std::string_view path) { return HasSuffix(path, ".h"); }

bool InAnyDir(std::string_view path, std::initializer_list<const char*> dirs) {
  for (const char* d : dirs) {
    if (HasPrefix(path, std::string(d) + "/")) return true;
  }
  return false;
}

// The five directories whose behavior feeds the simulated clock, plus
// the bench drivers and tools that produce/check the gated baselines.
// Host-time escapes here are exactly how baseline drift sneaks in.
bool InWallClockScope(std::string_view path) {
  return InAnyDir(path, {"src/sim", "src/gamma", "src/join", "src/storage",
                         "src/wisconsin", "bench", "tools"});
}

// Iteration order of unordered containers is implementation-defined, so
// any simulated-behavior code iterating one is a portability time bomb
// even if today's libstdc++ happens to be stable. Scoped to the
// deterministic src dirs (bench/tools/tests may use them for host-side
// bookkeeping where order never reaches an output).
bool InUnorderedScope(std::string_view path) {
  return InAnyDir(path, {"src/sim", "src/gamma", "src/join", "src/storage",
                         "src/wisconsin"});
}

// Simulated-seconds accounting may only be mutated by the Charge* API
// inside src/sim; everywhere else the fields are read-only outputs.
bool InSecondsScope(std::string_view path) {
  if (HasPrefix(path, "src/") && !HasPrefix(path, "src/sim/")) return true;
  return InAnyDir(path, {"tools", "bench"});
}

// Library code reports failures through Status; process-killing escapes
// are reserved for the GAMMA_CHECK invariant helpers (common/logging).
bool InFatalScope(std::string_view path) {
  if (!HasPrefix(path, "src/")) return false;
  return path != "src/common/logging.h" && path != "src/common/logging.cc";
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// ---------------------------------------------------------------------------
// Tokenizer

std::vector<Token> Tokenize(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  int col = 1;

  const auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  const auto push = [&](TokenKind kind, size_t start, int tl, int tc) {
    out.push_back(Token{kind, std::string(src.substr(start, i - start)), tl,
                        tc, start});
  };

  // Consumes a quoted literal starting at src[i] (a ' or "), leaving i
  // one past the closing quote. Handles backslash escapes.
  const auto consume_quoted = [&](char quote) {
    advance(1);  // opening quote
    while (i < n) {
      if (src[i] == '\\' && i + 1 < n) {
        advance(2);
      } else if (src[i] == quote) {
        advance(1);
        break;
      } else {
        advance(1);
      }
    }
  };

  // Consumes a raw string literal starting at the '"' of R"...(.
  const auto consume_raw_string = [&] {
    advance(1);  // opening quote
    size_t delim_start = i;
    while (i < n && src[i] != '(') advance(1);
    const std::string delim(src.substr(delim_start, i - delim_start));
    const std::string close = ")" + delim + "\"";
    const size_t end = src.find(close, i);
    if (end == std::string_view::npos) {
      advance(n - i);  // unterminated: swallow the rest
    } else {
      advance(end + close.size() - i);
    }
  };

  static constexpr std::array<const char*, 4> kOps3 = {"<<=", ">>=", "->*",
                                                       "..."};
  static constexpr std::array<const char*, 20> kOps2 = {
      "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
      "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

  while (i < n) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    if (c == '\\' && i + 1 < n && (src[i + 1] == '\n' || src[i + 1] == '\r')) {
      advance(2);  // line continuation
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      continue;
    }
    const size_t start = i;
    const int tl = line;
    const int tc = col;
    if (c == '"') {
      consume_quoted('"');
      push(TokenKind::kString, start, tl, tc);
      continue;
    }
    if (c == '\'') {
      consume_quoted('\'');
      push(TokenKind::kString, start, tl, tc);
      continue;
    }
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(src[i])) advance(1);
      const std::string_view text = src.substr(start, i - start);
      // String/char literal prefixes: R"(..)", u8"..", L'x', etc.
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const bool raw = HasSuffix(text, "R") && src[i] == '"';
        const bool prefix = text == "u8" || text == "u" || text == "U" ||
                            text == "L" || raw;
        if (prefix) {
          if (raw) {
            consume_raw_string();
          } else {
            consume_quoted(src[i]);
          }
          push(TokenKind::kString, start, tl, tc);
          continue;
        }
      }
      push(TokenKind::kIdentifier, start, tl, tc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      advance(1);
      while (i < n) {
        if ((src[i] == 'e' || src[i] == 'E' || src[i] == 'p' ||
             src[i] == 'P') &&
            i + 1 < n && (src[i + 1] == '+' || src[i + 1] == '-')) {
          advance(2);
        } else if (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'') {
          advance(1);
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, start, tl, tc);
      continue;
    }
    // Punctuation, maximal munch.
    size_t len = 1;
    for (const char* op : kOps3) {
      if (src.substr(i, 3) == op) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const char* op : kOps2) {
        if (src.substr(i, 2) == op) {
          len = 2;
          break;
        }
      }
    }
    advance(len);
    push(TokenKind::kPunct, start, tl, tc);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers

namespace {

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Index one past the matching close paren for the open paren at `open`
/// (tokens[open] must be "("), or tokens.size() if unbalanced.
size_t SkipBalancedParens(const std::vector<Token>& t, size_t open) {
  int depth = 0;
  for (size_t j = open; j < t.size(); ++j) {
    if (IsPunct(t[j], "(")) ++depth;
    if (IsPunct(t[j], ")")) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return t.size();
}

/// Counts depth-1 commas between tokens[open] == "(" and its match.
/// Angle brackets of template arguments are not tracked; a comma inside
/// `foo<a, b>(..)` args would overcount, which for our >= checks only
/// errs toward silence, never a false positive.
int TopLevelCommas(const std::vector<Token>& t, size_t open) {
  int depth = 0;
  int commas = 0;
  for (size_t j = open; j < t.size(); ++j) {
    if (IsPunct(t[j], "(") || IsPunct(t[j], "[") || IsPunct(t[j], "{")) {
      ++depth;
    } else if (IsPunct(t[j], ")") || IsPunct(t[j], "]") ||
               IsPunct(t[j], "}")) {
      --depth;
      if (depth == 0) return commas;
    } else if (depth == 1 && IsPunct(t[j], ",")) {
      ++commas;
    }
  }
  return commas;
}

struct CallChain {
  std::string final_name;  // name of the last call in the chain
  int name_line = 0;
  int name_col = 0;
  size_t end = 0;  // index of the terminator token (';' or ')')
};

/// Parses a postfix call chain starting at tokens[i] (must be an
/// identifier): `name(args)`, `a.b(x).c(y)`, `ns::f(x)`, ... The chain
/// must end with a call whose ')' is immediately followed by
/// `terminator`. Returns true and fills `out` only for that exact shape
/// — anything fancier (templates, casts, operators) is conservatively
/// not a chain.
bool ParseCallChain(const std::vector<Token>& t, size_t i,
                    std::string_view terminator, CallChain* out) {
  if (i >= t.size() || t[i].kind != TokenKind::kIdentifier) return false;
  std::string name = t[i].text;
  int nl = t[i].line;
  int nc = t[i].col;
  size_t j = i + 1;
  bool last_was_call = false;
  while (j < t.size()) {
    if (IsPunct(t[j], "(")) {
      j = SkipBalancedParens(t, j);
      last_was_call = true;
      continue;
    }
    if ((IsPunct(t[j], ".") || IsPunct(t[j], "->") || IsPunct(t[j], "::")) &&
        j + 1 < t.size() && t[j + 1].kind == TokenKind::kIdentifier) {
      name = t[j + 1].text;
      nl = t[j + 1].line;
      nc = t[j + 1].col;
      j += 2;
      last_was_call = false;
      continue;
    }
    break;
  }
  if (!last_was_call || j >= t.size() || !IsPunct(t[j], terminator)) {
    return false;
  }
  out->final_name = std::move(name);
  out->name_line = nl;
  out->name_col = nc;
  out->end = j;
  return true;
}

void Add(std::vector<Finding>* out, const char* rule,
         const std::string& file, const Token& at, std::string token,
         std::string message) {
  out->push_back(Finding{rule, file, at.line, at.col, std::move(token),
                         std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: determinism/wall-clock

void CheckWallClock(const std::string& file, const std::vector<Token>& t,
                    std::vector<Finding>* out) {
  static const std::set<std::string> kStdQualified = {
      "chrono",    "random_device", "mt19937", "mt19937_64",
      "getenv",    "rand",          "srand",   "time",
      "clock",     "system_clock",  "steady_clock"};
  static const std::set<std::string> kBareTypes = {"random_device", "mt19937",
                                                   "mt19937_64"};
  static const std::set<std::string> kBareCalls = {
      "time",  "clock",   "gettimeofday", "clock_gettime",
      "rand",  "srand",   "drand48",      "getenv",
      "secure_getenv"};
  static const std::set<std::string> kBannedIncludes = {"chrono", "random",
                                                        "ctime"};
  for (size_t i = 0; i < t.size(); ++i) {
    // #include <chrono> / <random> / <ctime>
    if (IsPunct(t[i], "#") && i + 3 < t.size() && IsIdent(t[i + 1], "include") &&
        IsPunct(t[i + 2], "<") && t[i + 3].kind == TokenKind::kIdentifier &&
        kBannedIncludes.count(t[i + 3].text) != 0) {
      Add(out, kRuleWallClock, file, t[i + 3], "<" + t[i + 3].text + ">",
          "#include <" + t[i + 3].text +
              "> in deterministic scope: simulated time must be a pure "
              "function of the query plan (docs/static_analysis.md)");
      continue;
    }
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const bool std_qualified = i >= 2 && IsIdent(t[i - 2], "std") &&
                               IsPunct(t[i - 1], "::");
    if (std_qualified && kStdQualified.count(t[i].text) != 0) {
      Add(out, kRuleWallClock, file, t[i], "std::" + t[i].text,
          "std::" + t[i].text +
              " in deterministic scope: host clock/entropy must not reach "
              "simulated behavior");
      continue;
    }
    const bool member_access =
        i >= 1 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->") ||
                   IsPunct(t[i - 1], "::"));
    if (member_access) continue;  // foo.time(), ns::clock(): not the libc call
    if (kBareTypes.count(t[i].text) != 0) {
      Add(out, kRuleWallClock, file, t[i], t[i].text,
          t[i].text + " in deterministic scope: seed an explicit gammadb::Rng "
                      "(common/random.h) instead");
      continue;
    }
    if (i + 1 < t.size() && IsPunct(t[i + 1], "(") &&
        kBareCalls.count(t[i].text) != 0) {
      // Skip declarations/definitions of a same-named function: those
      // have a type identifier immediately before the name. Statement
      // keywords are not type names — `return rand();` is still a call.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "co_await", "throw",
          "case",   "else",      "do",       "goto"};
      if (i >= 1 && t[i - 1].kind == TokenKind::kIdentifier &&
          kStmtKeywords.count(t[i - 1].text) == 0) {
        continue;
      }
      Add(out, kRuleWallClock, file, t[i], t[i].text + "(",
          "call of " + t[i].text +
              "() in deterministic scope: host clock/entropy must not reach "
              "simulated behavior");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism/unordered-container

void CheckUnordered(const std::string& file, const std::vector<Token>& t,
                    std::vector<Finding>* out) {
  static const std::set<std::string> kBanned = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const Token& tok : t) {
    if (tok.kind == TokenKind::kIdentifier && kBanned.count(tok.text) != 0) {
      Add(out, kRuleUnordered, file, tok, tok.text,
          "std::" + tok.text +
              " in deterministic scope: iteration order is "
              "implementation-defined; use std::map/std::set or sort before "
              "any order-sensitive effect");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: cost/uncategorized-charge

void CheckCharges(const std::string& file, const std::vector<Token>& t,
                  std::vector<Finding>* out) {
  // name -> minimum top-level commas a well-formed call carries once the
  // CostCategory argument is present.
  static const std::map<std::string, int> kMinCommas = {
      {"ChargeCpu", 1}, {"ChargeDisk", 1}, {"ChargeCpuSplit", 3}};
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const auto it = kMinCommas.find(t[i].text);
    if (it == kMinCommas.end()) continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    if (TopLevelCommas(t, i + 1) < it->second) {
      Add(out, kRuleCharge, file, t[i], t[i].text,
          t[i].text +
              " call without a sim::CostCategory: every simulated-seconds "
              "charge must name the cost-model primitive it pays for");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: cost/raw-seconds-mutation

void CheckSecondsMutation(const std::string& file, const std::vector<Token>& t,
                          std::vector<Finding>* out) {
  // The accounting fields of NodeUsage / PhaseRecord / RingAttribution /
  // RunMetrics (sim/metrics.h). Cost-model *parameters* (e.g.
  // cpu_read_tuple_seconds) are deliberately not listed: configuring the
  // model is legitimate everywhere; mutating the account is not.
  static const std::set<std::string> kAccountingFields = {
      "cpu_seconds",       "disk_seconds",      "ring_seconds",
      "sched_seconds",     "elapsed_seconds",   "response_seconds",
      "recovery_seconds",  "payload_seconds",   "retransmit_seconds",
      "duplicate_seconds"};
  static const std::set<std::string> kMutatingOps = {"=", "+=", "-=", "*=",
                                                     "/="};
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier ||
        kAccountingFields.count(t[i].text) == 0) {
      continue;
    }
    if (!IsPunct(t[i - 1], ".") && !IsPunct(t[i - 1], "->")) continue;
    const Token& next = t[i + 1];
    const bool mutated =
        (next.kind == TokenKind::kPunct && kMutatingOps.count(next.text) != 0) ||
        IsPunct(next, "++") || IsPunct(next, "--");
    if (mutated) {
      Add(out, kRuleSeconds, file, t[i], t[i].text,
          "raw mutation of accounting field " + t[i].text +
              " outside src/sim: simulated time may only accrue through the "
              "Charge* API");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: error/fatal-in-library

void CheckFatal(const std::string& file, const std::vector<Token>& t,
                std::vector<Finding>* out) {
  static const std::set<std::string> kFatalCalls = {"abort", "exit", "_Exit",
                                                    "quick_exit", "terminate"};
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    if (t[i].text == "GAMMA_LOG" && i + 2 < t.size() &&
        IsPunct(t[i + 1], "(") && IsIdent(t[i + 2], "Fatal")) {
      Add(out, kRuleFatal, file, t[i], "GAMMA_LOG(Fatal)",
          "direct GAMMA_LOG(Fatal) in library code: broken invariants go "
          "through GAMMA_CHECK*, data-dependent failures through Status");
      continue;
    }
    if (kFatalCalls.count(t[i].text) == 0) continue;
    if (i + 1 >= t.size() || !IsPunct(t[i + 1], "(")) continue;
    const bool member_access =
        i >= 1 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->"));
    if (member_access) continue;
    const bool std_qualified = i >= 2 && IsIdent(t[i - 2], "std") &&
                               IsPunct(t[i - 1], "::");
    if (i >= 1 && IsPunct(t[i - 1], "::") && !std_qualified) continue;
    if (i >= 1 && t[i - 1].kind == TokenKind::kIdentifier) continue;  // decl
    Add(out, kRuleFatal, file, t[i], t[i].text + "(",
        "call of " + t[i].text +
            "() in library code: report failures via Status, assert "
            "invariants via GAMMA_CHECK*");
  }
}

// ---------------------------------------------------------------------------
// Rule: error/discarded-status

void CheckDiscardedStatus(const std::string& file,
                          const std::vector<Token>& t,
                          const StatusRegistry& registry,
                          std::vector<Finding>* out) {
  // (void)chain(...);  and  static_cast<void>(chain(...));
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (IsPunct(t[i], "(") && IsIdent(t[i + 1], "void") &&
        IsPunct(t[i + 2], ")")) {
      CallChain chain;
      if (ParseCallChain(t, i + 3, ";", &chain) &&
          registry.weak.count(chain.final_name) != 0) {
        Add(out, kRuleStatus, file, t[i], "(void)" + chain.final_name,
            "(void)-cast discards the Status of " + chain.final_name +
                "(): propagate it, or document the discard with "
                ".IgnoreError()");
      }
      continue;
    }
    if (IsIdent(t[i], "static_cast") && i + 4 < t.size() &&
        IsPunct(t[i + 1], "<") && IsIdent(t[i + 2], "void") &&
        IsPunct(t[i + 3], ">") && IsPunct(t[i + 4], "(")) {
      CallChain chain;
      if (ParseCallChain(t, i + 5, ")", &chain) &&
          registry.weak.count(chain.final_name) != 0) {
        Add(out, kRuleStatus, file, t[i],
            "static_cast<void>(" + chain.final_name + ")",
            "static_cast<void> discards the Status of " + chain.final_name +
                "(): propagate it, or document the discard with "
                ".IgnoreError()");
      }
    }
  }
  // Bare expression-statement drops: `chain(...);` at statement scope
  // where the final callee's every known declaration returns Status.
  for (size_t i = 0; i < t.size(); ++i) {
    const bool at_statement_start =
        i == 0 || IsPunct(t[i - 1], ";") || IsPunct(t[i - 1], "{") ||
        IsPunct(t[i - 1], "}") || IsPunct(t[i - 1], ")") ||
        IsIdent(t[i - 1], "else") || IsIdent(t[i - 1], "do");
    if (!at_statement_start) continue;
    CallChain chain;
    if (!ParseCallChain(t, i, ";", &chain)) continue;
    if (registry.strict.count(chain.final_name) == 0) continue;
    out->push_back(Finding{kRuleStatus, file, chain.name_line, chain.name_col,
                           chain.final_name,
                           "Status returned by " + chain.final_name +
                               "() is dropped: check it, propagate it "
                               "(GAMMA_RETURN_IF_ERROR), or document the "
                               "discard with .IgnoreError()"});
  }
}

// ---------------------------------------------------------------------------
// Hygiene rules

void CheckUsingNamespace(const std::string& file, const std::vector<Token>& t,
                         std::vector<Finding>* out) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (IsIdent(t[i], "using") && IsIdent(t[i + 1], "namespace")) {
      Add(out, kRuleUsing, file, t[i], "using namespace",
          "using-directive in a header leaks the namespace into every "
          "includer");
    }
  }
}

struct GuardInfo {
  int ifndef_line = 0;       // 0: no #ifndef guard found
  std::string ifndef_name;
  int define_line = 0;
  std::string define_name;
  int pragma_once_line = 0;  // 0: no #pragma once
};

/// First-pass scan of preprocessor structure for the guard rule. Only
/// looks at the first #ifndef/#define pair and any #pragma once.
GuardInfo ScanGuard(std::string_view source) {
  GuardInfo info;
  int line = 1;
  size_t pos = 0;
  bool in_block_comment = false;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    std::string_view raw = source.substr(pos, eol - pos);
    // Strip block comments state (coarse: a guard line never shares a
    // line with a block comment in this codebase).
    if (in_block_comment) {
      if (raw.find("*/") != std::string_view::npos) in_block_comment = false;
    } else {
      std::string_view trimmed = raw;
      while (!trimmed.empty() && (trimmed.front() == ' ' ||
                                  trimmed.front() == '\t')) {
        trimmed.remove_prefix(1);
      }
      if (HasPrefix(trimmed, "/*") &&
          trimmed.find("*/") == std::string_view::npos) {
        in_block_comment = true;
      } else if (HasPrefix(trimmed, "#")) {
        std::string_view directive = trimmed.substr(1);
        while (!directive.empty() && (directive.front() == ' ' ||
                                      directive.front() == '\t')) {
          directive.remove_prefix(1);
        }
        const auto word_after = [&](std::string_view kw) -> std::string {
          std::string_view rest = directive.substr(kw.size());
          while (!rest.empty() &&
                 (rest.front() == ' ' || rest.front() == '\t')) {
            rest.remove_prefix(1);
          }
          size_t len = 0;
          while (len < rest.size() && IsIdentChar(rest[len])) ++len;
          return std::string(rest.substr(0, len));
        };
        if (HasPrefix(directive, "pragma") &&
            directive.find("once") != std::string_view::npos &&
            info.pragma_once_line == 0) {
          info.pragma_once_line = line;
        } else if (HasPrefix(directive, "ifndef") && info.ifndef_line == 0) {
          info.ifndef_line = line;
          info.ifndef_name = word_after("ifndef");
        } else if (HasPrefix(directive, "define") && info.ifndef_line != 0 &&
                   info.define_line == 0) {
          info.define_line = line;
          info.define_name = word_after("define");
        }
      }
    }
    if (eol == source.size()) break;
    pos = eol + 1;
    ++line;
  }
  return info;
}

void CheckIncludeGuard(const std::string& file, std::string_view source,
                       std::vector<Finding>* out) {
  const std::string expected = ExpectedGuard(file);
  const GuardInfo info = ScanGuard(source);
  if (info.pragma_once_line != 0) {
    out->push_back(Finding{kRuleGuard, file, info.pragma_once_line, 1,
                           "#pragma once",
                           "project headers use #ifndef " + expected +
                               " guards, not #pragma once"});
    return;
  }
  if (info.ifndef_line == 0) {
    out->push_back(Finding{kRuleGuard, file, 1, 1, "",
                           "missing include guard: expected #ifndef " +
                               expected});
    return;
  }
  if (info.ifndef_name != expected) {
    out->push_back(Finding{kRuleGuard, file, info.ifndef_line, 1,
                           info.ifndef_name,
                           "include guard " + info.ifndef_name +
                               " does not match the path-derived name " +
                               expected});
    return;
  }
  if (info.define_name != expected) {
    out->push_back(Finding{kRuleGuard, file,
                           info.define_line == 0 ? info.ifndef_line
                                                 : info.define_line,
                           1, info.define_name,
                           "include guard #define does not match #ifndef " +
                               expected});
  }
}

}  // namespace

std::string ExpectedGuard(const std::string& relpath) {
  std::string_view path = relpath;
  if (HasPrefix(path, "src/")) path.remove_prefix(4);
  std::string guard = "GAMMA_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

// ---------------------------------------------------------------------------
// Status-function registry

void RegistryBuilder::Scan(std::string_view source) {
  const std::vector<Token> t = Tokenize(source);
  static const std::set<std::string> kNotATypePrefix = {
      "return", "co_return", "throw",  "new",    "delete", "case",
      "goto",   "else",      "sizeof", "typedef"};
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    // `Status Name(` / `Status Qualified::Name(`
    if (t[i].text == "Status") {
      size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
        std::string name = t[j].text;
        ++j;
        while (j + 1 < t.size() && IsPunct(t[j], "::") &&
               t[j + 1].kind == TokenKind::kIdentifier) {
          name = t[j + 1].text;
          j += 2;
        }
        if (j < t.size() && IsPunct(t[j], "(")) {
          ++counts_[name].first;
        }
      }
      continue;
    }
    // `Result<...> Name(`
    if (t[i].text == "Result" && IsPunct(t[i + 1], "<")) {
      int depth = 0;
      size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        if (IsPunct(t[j], ">")) {
          --depth;
          if (depth == 0) {
            ++j;
            break;
          }
        }
        if (IsPunct(t[j], ">>")) {  // nested template close
          depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
      if (j + 1 < t.size() && t[j].kind == TokenKind::kIdentifier &&
          IsPunct(t[j + 1], "(")) {
        ++counts_[t[j].text].first;
      }
      continue;
    }
    // Other two-identifier declarations: `void Name(`, `int Name(`, ...
    // Over-approximate on the "other" side only: misclassifying a
    // non-declaration here can only shrink the strict set (fewer lint
    // findings), never add a false positive.
    if (t[i + 1].kind == TokenKind::kIdentifier && i + 2 < t.size() &&
        IsPunct(t[i + 2], "(") && kNotATypePrefix.count(t[i].text) == 0 &&
        t[i].text != "Status" && t[i].text != "Result") {
      ++counts_[t[i + 1].text].second;
    }
  }
}

StatusRegistry RegistryBuilder::Build() const {
  StatusRegistry registry;
  for (const auto& [name, c] : counts_) {
    if (c.first == 0) continue;
    registry.weak.insert(name);
    if (c.second == 0) registry.strict.insert(name);
  }
  return registry;
}

// ---------------------------------------------------------------------------
// Allowlist

Result<std::vector<AllowEntry>> ParseAllowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  int line = 0;
  size_t pos = 0;
  bool in_entry = false;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view raw = text.substr(pos, eol - pos);
    ++line;
    std::string_view s = raw;
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
      s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r')) {
      s.remove_suffix(1);
    }
    if (s.empty() || s.front() == '#') {
      // blank / comment
    } else if (s == "[[allow]]") {
      entries.push_back(AllowEntry{});
      entries.back().line = line;
      in_entry = true;
    } else {
      const size_t eq = s.find('=');
      if (!in_entry || eq == std::string_view::npos) {
        return Status::InvalidArgument(StrFormat(
            "allowlist line %d: expected [[allow]] or key = \"value\"", line));
      }
      std::string_view key = s.substr(0, eq);
      std::string_view value = s.substr(eq + 1);
      while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) {
        key.remove_suffix(1);
      }
      while (!value.empty() &&
             (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      // Strip a trailing comment outside the quoted value.
      if (value.size() < 2 || value.front() != '"') {
        return Status::InvalidArgument(StrFormat(
            "allowlist line %d: value must be double-quoted", line));
      }
      const size_t close = value.find('"', 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument(StrFormat(
            "allowlist line %d: unterminated string", line));
      }
      const std::string v(value.substr(1, close - 1));
      AllowEntry& entry = entries.back();
      if (key == "rule") {
        entry.rule = v;
      } else if (key == "file") {
        entry.file = v;
      } else if (key == "token") {
        entry.token = v;
      } else if (key == "reason") {
        entry.reason = v;
      } else {
        return Status::InvalidArgument(StrFormat(
            "allowlist line %d: unknown key '%s'", line,
            std::string(key).c_str()));
      }
    }
    if (eol == text.size()) break;
    pos = eol + 1;
  }
  for (const AllowEntry& e : entries) {
    if (e.rule.empty() || e.file.empty()) {
      return Status::InvalidArgument(StrFormat(
          "allowlist entry at line %d: rule and file are required", e.line));
    }
    if (e.reason.empty()) {
      return Status::InvalidArgument(StrFormat(
          "allowlist entry at line %d: a non-empty reason is required "
          "(suppressions must be justified)",
          e.line));
    }
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Entry points

std::vector<Finding> LintFile(const std::string& relpath,
                              std::string_view source,
                              const StatusRegistry& registry) {
  std::vector<Finding> findings;
  const std::vector<Token> tokens = Tokenize(source);
  if (InWallClockScope(relpath)) CheckWallClock(relpath, tokens, &findings);
  if (InUnorderedScope(relpath)) CheckUnordered(relpath, tokens, &findings);
  CheckCharges(relpath, tokens, &findings);
  if (InSecondsScope(relpath)) {
    CheckSecondsMutation(relpath, tokens, &findings);
  }
  if (InFatalScope(relpath)) CheckFatal(relpath, tokens, &findings);
  CheckDiscardedStatus(relpath, tokens, registry, &findings);
  if (IsHeader(relpath)) {
    CheckUsingNamespace(relpath, tokens, &findings);
    CheckIncludeGuard(relpath, source, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return findings;
}

std::string ApplyFixes(const std::string& relpath, std::string source,
                       const StatusRegistry& registry) {
  // Fix 1: (void)chain(...);  ->  chain(...).IgnoreError();
  // Edits are applied back-to-front so earlier offsets stay valid.
  {
    const std::vector<Token> t = Tokenize(source);
    struct Edit {
      size_t cast_begin, cast_end;  // byte span of "(void)"
      size_t semi;                  // byte offset of the ';'
    };
    std::vector<Edit> edits;
    for (size_t i = 0; i + 3 < t.size(); ++i) {
      if (!IsPunct(t[i], "(") || !IsIdent(t[i + 1], "void") ||
          !IsPunct(t[i + 2], ")")) {
        continue;
      }
      CallChain chain;
      if (!ParseCallChain(t, i + 3, ";", &chain)) continue;
      if (registry.weak.count(chain.final_name) == 0) continue;
      edits.push_back(Edit{t[i].offset,
                           t[i + 2].offset + t[i + 2].text.size(),
                           t[chain.end].offset});
    }
    for (auto it = edits.rbegin(); it != edits.rend(); ++it) {
      source.insert(it->semi, ".IgnoreError()");
      // Also swallow whitespace between the cast and the expression.
      size_t end = it->cast_end;
      while (end < source.size() && (source[end] == ' ' ||
                                     source[end] == '\t')) {
        ++end;
      }
      source.erase(it->cast_begin, end - it->cast_begin);
    }
  }
  // Fix 2: include-guard rename / insertion for headers.
  if (IsHeader(relpath)) {
    const std::string expected = ExpectedGuard(relpath);
    const GuardInfo info = ScanGuard(source);
    const auto replace_on_line = [&](int target_line,
                                     const std::string& from,
                                     const std::string& to) {
      size_t pos = 0;
      int line = 1;
      while (line < target_line && pos < source.size()) {
        pos = source.find('\n', pos);
        if (pos == std::string::npos) return;
        ++pos;
        ++line;
      }
      size_t eol = source.find('\n', pos);
      if (eol == std::string::npos) eol = source.size();
      const size_t at = source.find(from, pos);
      if (at != std::string::npos && at < eol) {
        source.replace(at, from.size(), to);
      }
    };
    const auto fix_trailing_endif = [&](const std::string& old_name) {
      // Rewrite the comment of the last #endif if it names the old guard.
      const size_t endif_pos = source.rfind("#endif");
      if (endif_pos == std::string::npos) return;
      size_t eol = source.find('\n', endif_pos);
      if (eol == std::string::npos) eol = source.size();
      const size_t name_at = source.find(old_name, endif_pos);
      if (name_at != std::string::npos && name_at < eol) {
        source.replace(name_at, old_name.size(), expected);
      }
    };
    if (info.pragma_once_line != 0) {
      replace_on_line(info.pragma_once_line, "#pragma once",
                      "#ifndef " + expected + "\n#define " + expected);
      if (source.empty() || source.back() != '\n') source += '\n';
      source += "#endif  // " + expected + "\n";
    } else if (info.ifndef_line == 0) {
      // No guard at all: wrap the whole file, after any leading comment.
      size_t insert_at = 0;
      size_t pos = 0;
      while (pos < source.size()) {
        size_t eol = source.find('\n', pos);
        if (eol == std::string::npos) eol = source.size();
        std::string_view l(source.data() + pos, eol - pos);
        std::string_view trimmed = l;
        while (!trimmed.empty() && (trimmed.front() == ' ' ||
                                    trimmed.front() == '\t')) {
          trimmed.remove_prefix(1);
        }
        if (!trimmed.empty() && !HasPrefix(trimmed, "//")) break;
        insert_at = eol == source.size() ? eol : eol + 1;
        pos = insert_at;
        if (trimmed.empty()) break;  // first blank after the header comment
      }
      source.insert(insert_at,
                    "#ifndef " + expected + "\n#define " + expected + "\n");
      if (source.empty() || source.back() != '\n') source += '\n';
      source += "#endif  // " + expected + "\n";
    } else if (info.ifndef_name != expected) {
      const std::string old_name = info.ifndef_name;
      replace_on_line(info.ifndef_line, old_name, expected);
      if (info.define_line != 0 && info.define_name == old_name) {
        replace_on_line(info.define_line, old_name, expected);
      }
      fix_trailing_endif(old_name);
    } else if (info.define_line != 0 && info.define_name != expected) {
      replace_on_line(info.define_line, info.define_name, expected);
      fix_trailing_endif(info.define_name);
    }
  }
  return source;
}

std::vector<Finding> FilterAllowed(std::vector<Finding> findings,
                                   const std::vector<AllowEntry>& allowlist,
                                   const std::string& allowlist_path) {
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool allowed = false;
    for (const AllowEntry& e : allowlist) {
      if (e.rule == f.rule && e.file == f.file &&
          (e.token.empty() || e.token == f.token)) {
        e.used = true;
        allowed = true;
        break;
      }
    }
    if (!allowed) kept.push_back(std::move(f));
  }
  for (const AllowEntry& e : allowlist) {
    if (!e.used) {
      kept.push_back(Finding{
          kRuleAllow, allowlist_path, e.line, 1, e.rule + ":" + e.file,
          "allowlist entry matched no finding (rule " + e.rule + ", file " +
              e.file + "): remove the stale suppression"});
    }
  }
  return kept;
}

JsonValue ReportJson(const std::vector<Finding>& findings,
                     size_t files_scanned) {
  JsonValue report = JsonValue::MakeObject();
  report.Set("schema_version", static_cast<int64_t>(1));
  report.Set("tool", "gamma_lint");
  report.Set("files_scanned", files_scanned);
  report.Set("finding_count", findings.size());
  std::map<std::string, int64_t> by_rule;
  for (const Finding& f : findings) ++by_rule[f.rule];
  JsonValue rules = JsonValue::MakeObject();
  for (const auto& [rule, count] : by_rule) rules.Set(rule, count);
  report.Set("by_rule", std::move(rules));
  JsonValue list = JsonValue::MakeArray();
  for (const Finding& f : findings) {
    JsonValue item = JsonValue::MakeObject();
    item.Set("rule", f.rule);
    item.Set("file", f.file);
    item.Set("line", static_cast<int64_t>(f.line));
    item.Set("col", static_cast<int64_t>(f.col));
    item.Set("token", f.token);
    item.Set("message", f.message);
    list.Append(std::move(item));
  }
  report.Set("findings", std::move(list));
  return report;
}

}  // namespace gammadb::lint
