#include "bench_diff_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace gammadb::tools {

namespace {

bool IsTimeMetric(const std::string& key) {
  return key.size() >= 7 && key.compare(key.size() - 7, 7, "seconds") == 0;
}

// Host-dependent metrics: wall-clock time and thread counts vary with
// the machine running the benchmark, never with the simulated workload
// (docs/benchmarking.md), so they are reported but never gated — and a
// baseline recorded on a different host may lack them entirely.
bool IsHostMetric(const std::string& key) {
  return key == "real_seconds" || key == "wall_seconds" ||
         key == "threads" || key == "num_threads";
}

// The last dotted path component with array indices stripped, so every
// element of e.g. "series_seconds[1][3]" counts as a time metric.
std::string LeafKey(const std::string& path) {
  std::string leaf = path.substr(path.rfind('.') + 1);
  if (const size_t bracket = leaf.find('['); bracket != std::string::npos) {
    leaf.resize(bracket);
  }
  return leaf;
}

std::string DescribeValue(const JsonValue& v) {
  return v.Dump();
}

class Differ {
 public:
  Differ(const DiffOptions& options, DiffReport& report)
      : options_(options), report_(report) {}

  void Walk(const std::string& path, const JsonValue& base,
            const JsonValue& cand) {
    if (base.is_object()) {
      if (!cand.is_object()) {
        Add(DiffKind::kRegression, path,
            "type mismatch: baseline is an object, candidate is not");
        return;
      }
      for (const auto& [key, value] : base.AsObject()) {
        const std::string child =
            path.empty() ? key : path + "." + key;
        if (const JsonValue* other = cand.Find(key)) {
          Walk(child, value, *other);
        } else if (IsHostMetric(key)) {
          Add(DiffKind::kInfo, child,
              "host metric missing from candidate (not gated)");
        } else {
          Add(DiffKind::kMissing, child, "metric missing from candidate");
        }
      }
      for (const auto& [key, value] : cand.AsObject()) {
        if (base.Find(key) != nullptr) continue;
        const std::string child = path.empty() ? key : path + "." + key;
        if (IsHostMetric(key)) {
          Add(DiffKind::kInfo, child,
              "host metric only in candidate (not gated)");
        } else {
          Add(DiffKind::kExtra, child,
              "metric only in candidate (baseline is stale)");
        }
      }
      return;
    }
    if (base.is_array()) {
      if (!cand.is_array()) {
        Add(DiffKind::kRegression, path,
            "type mismatch: baseline is an array, candidate is not");
        return;
      }
      const auto& base_items = base.AsArray();
      const auto& cand_items = cand.AsArray();
      if (base_items.size() != cand_items.size()) {
        Add(DiffKind::kRegression, path,
            StrFormat("array length %zu -> %zu", base_items.size(),
                      cand_items.size()));
      }
      const size_t n = std::min(base_items.size(), cand_items.size());
      for (size_t i = 0; i < n; ++i) {
        Walk(StrFormat("%s[%zu]", path.c_str(), i), base_items[i],
             cand_items[i]);
      }
      return;
    }
    if (base.is_number()) {
      if (!cand.is_number()) {
        Add(DiffKind::kRegression, path,
            "type mismatch: baseline is a number, candidate is not");
        return;
      }
      CompareNumbers(path, base.AsDouble(), cand.AsDouble());
      return;
    }
    // Scalars: null / bool / string — configuration identity. Any
    // difference means the two documents are not comparable runs.
    ++report_.compared_metrics;
    if (!(base == cand)) {
      Add(DiffKind::kRegression, path,
          StrFormat("value mismatch: %s -> %s", DescribeValue(base).c_str(),
                    DescribeValue(cand).c_str()));
    }
  }

 private:
  void CompareNumbers(const std::string& path, double base, double cand) {
    ++report_.compared_metrics;
    if (base == cand) return;
    const std::string leaf = LeafKey(path);
    const double denom = std::max(std::abs(base), 1e-12);
    const double rel = (cand - base) / denom;
    const std::string delta =
        StrFormat("%.6g -> %.6g (%+.2f%%)", base, cand, 100.0 * rel);
    if (IsHostMetric(leaf)) {
      Add(DiffKind::kInfo, path, delta + " (host metric, not gated)");
      return;
    }
    if (IsTimeMetric(leaf)) {
      if (rel > options_.seconds_tolerance) {
        Add(DiffKind::kRegression, path,
            StrFormat("%s exceeds +%.1f%% tolerance", delta.c_str(),
                      100.0 * options_.seconds_tolerance));
      } else if (rel < -options_.seconds_tolerance) {
        Add(DiffKind::kImprovement, path, delta);
      } else {
        Add(DiffKind::kInfo, path, delta + " within tolerance");
      }
      return;
    }
    Add(options_.strict_counters ? DiffKind::kRegression : DiffKind::kInfo,
        path, delta);
  }

  void Add(DiffKind kind, const std::string& path, std::string message) {
    report_.entries.push_back(DiffEntry{kind, path, std::move(message)});
  }

  const DiffOptions& options_;
  DiffReport& report_;
};

const char* KindLabel(DiffKind kind) {
  switch (kind) {
    case DiffKind::kRegression:
      return "REGRESSION";
    case DiffKind::kImprovement:
      return "improvement";
    case DiffKind::kInfo:
      return "info";
    case DiffKind::kMissing:
      return "MISSING";
    case DiffKind::kExtra:
      return "EXTRA";
  }
  return "?";
}

// Collects every wall-clock leaf ("real_seconds" / "wall_seconds")
// into path -> value, in document order.
void CollectWallclockLeaves(const std::string& path, const JsonValue& value,
                            std::vector<std::pair<std::string, double>>* out) {
  if (value.is_object()) {
    for (const auto& [key, child] : value.AsObject()) {
      CollectWallclockLeaves(path.empty() ? key : path + "." + key, child,
                             out);
    }
    return;
  }
  if (value.is_array()) {
    const auto& items = value.AsArray();
    for (size_t i = 0; i < items.size(); ++i) {
      CollectWallclockLeaves(StrFormat("%s[%zu]", path.c_str(), i), items[i],
                             out);
    }
    return;
  }
  const std::string leaf = LeafKey(path);
  if (value.is_number() &&
      (leaf == "real_seconds" || leaf == "wall_seconds")) {
    out->emplace_back(path, value.AsDouble());
  }
}

const double* FindLeaf(const std::vector<std::pair<std::string, double>>& v,
                       const std::string& path) {
  for (const auto& [p, value] : v) {
    if (p == path) return &value;
  }
  return nullptr;
}

}  // namespace

int DiffReport::CountOf(DiffKind kind) const {
  int count = 0;
  for (const auto& entry : entries) {
    if (entry.kind == kind) ++count;
  }
  return count;
}

std::string JsonPointerOf(const std::string& path) {
  std::string out;
  std::string token;
  const auto flush = [&] {
    if (token.empty()) return;
    out += '/';
    for (const char c : token) {
      if (c == '~') {
        out += "~0";
      } else if (c == '/') {
        out += "~1";
      } else {
        out += c;
      }
    }
    token.clear();
  };
  for (const char c : path) {
    if (c == '.' || c == '[' || c == ']') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  return out;
}

DiffReport DiffBenchJson(const JsonValue& baseline, const JsonValue& candidate,
                         const DiffOptions& options) {
  DiffReport report;
  // Schema gate first: a version mismatch means every metric diff below
  // it is noise, so report the one offending path and stop.
  const JsonValue* base_ver =
      baseline.is_object() ? baseline.Find("schema_version") : nullptr;
  const JsonValue* cand_ver =
      candidate.is_object() ? candidate.Find("schema_version") : nullptr;
  if ((base_ver != nullptr || cand_ver != nullptr) &&
      (base_ver == nullptr || cand_ver == nullptr ||
       !(*base_ver == *cand_ver))) {
    ++report.compared_metrics;
    report.entries.push_back(DiffEntry{
        DiffKind::kRegression, "schema_version",
        StrFormat("schema version mismatch at %s: baseline %s, candidate %s "
                  "— the documents are not comparable; refresh the baseline "
                  "deliberately (docs/benchmarking.md)",
                  JsonPointerOf("schema_version").c_str(),
                  base_ver != nullptr ? base_ver->Dump().c_str() : "(absent)",
                  cand_ver != nullptr ? cand_ver->Dump().c_str()
                                      : "(absent)")});
    return report;
  }
  Differ(options, report).Walk("", baseline, candidate);
  return report;
}

std::string FormatReport(const DiffReport& report) {
  std::string out;
  for (const auto& entry : report.entries) {
    if (entry.kind == DiffKind::kInfo) continue;  // keep the console quiet
    out += StrFormat("%-12s %s: %s\n", KindLabel(entry.kind),
                     entry.path.c_str(), entry.message.c_str());
  }
  out += StrFormat(
      "%d metrics compared: %d regressions, %d missing, %d extra, "
      "%d improvements\n",
      report.compared_metrics, report.regressions(), report.missing(),
      report.extras(), report.CountOf(DiffKind::kImprovement));
  return out;
}

std::string WallclockSummary(const JsonValue& before, const JsonValue& after) {
  std::vector<std::pair<std::string, double>> before_leaves;
  std::vector<std::pair<std::string, double>> after_leaves;
  CollectWallclockLeaves("", before, &before_leaves);
  CollectWallclockLeaves("", after, &after_leaves);
  size_t width = std::strlen("metric");
  for (const auto& [path, value] : before_leaves) {
    width = std::max(width, path.size());
  }
  for (const auto& [path, value] : after_leaves) {
    width = std::max(width, path.size());
  }
  std::string out = StrFormat("%-*s %12s %12s %9s\n", static_cast<int>(width),
                              "metric", "before", "after", "speedup");
  // Before-document order first, then after-only leaves in their order.
  for (const auto& [path, base] : before_leaves) {
    if (const double* cand = FindLeaf(after_leaves, path)) {
      out += StrFormat("%-*s %12.4f %12.4f %8.2fx\n",
                       static_cast<int>(width), path.c_str(), base, *cand,
                       *cand > 0 ? base / *cand : 0.0);
    } else {
      out += StrFormat("%-*s %12.4f %12s %9s\n", static_cast<int>(width),
                       path.c_str(), base, "-", "-");
    }
  }
  for (const auto& [path, cand] : after_leaves) {
    if (FindLeaf(before_leaves, path) != nullptr) continue;
    out += StrFormat("%-*s %12s %12.4f %9s\n", static_cast<int>(width),
                     path.c_str(), "-", cand, "-");
  }
  if (before_leaves.empty() && after_leaves.empty()) {
    out += "(no wall-clock metrics in either document)\n";
  }
  return out;
}

}  // namespace gammadb::tools
