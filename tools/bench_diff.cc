// bench_diff: CI regression gate over benchmark JSON documents.
//
//   bench_diff [--tolerance <rel>] [--lenient-counters]
//              <baseline.json> <candidate.json>
//   bench_diff --wallclock-summary <before.json> <after.json>
//
// Compares every metric of the baseline against the candidate (schema:
// docs/benchmarking.md). Exit status: 0 when the candidate passes, 1 on
// regression, missing metric, or candidate-only metric (a stale
// baseline must be refreshed deliberately), 2 on usage/parse errors. Identical
// documents always pass; time metrics (keys ending in "seconds") pass
// within the relative tolerance; all other numeric metrics are
// deterministic simulator counters and must match exactly unless
// --lenient-counters is given.
//
// --wallclock-summary instead prints a side-by-side table of every host
// wall-clock leaf ("real_seconds" / "wall_seconds") in the two
// documents with the before/after speedup. Informational only: always
// exits 0 unless the files fail to parse (docs/performance.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_diff_lib.h"
#include "common/json.h"
#include "common/strings.h"

namespace {

[[noreturn]] void Usage(const char* argv0, const char* error) {
  std::fprintf(stderr,
               "%s\nusage: %s [--tolerance <rel>] [--lenient-counters] "
               "[--wallclock-summary] <baseline.json> <candidate.json>\n",
               error, argv0);
  std::exit(2);
}

/// A mistyped tolerance must not silently gate at 0 (atof would turn
/// "--tolerance=1e-2x" into exact-match mode). 0 itself stays legal:
/// it is the byte-identity assertion.
double ParseTolerance(const char* argv0, const char* text) {
  double value = 0;
  if (!gammadb::ParseDouble(text, &value) || value < 0) {
    Usage(argv0, "--tolerance must be a non-negative number");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::tools::DiffOptions options;
  bool wallclock_summary = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--tolerance") == 0) {
      if (i + 1 >= argc) Usage(argv[0], "--tolerance requires a value");
      options.seconds_tolerance = ParseTolerance(argv[0], argv[++i]);
    } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      options.seconds_tolerance = ParseTolerance(argv[0], arg + 12);
    } else if (std::strcmp(arg, "--lenient-counters") == 0) {
      options.strict_counters = false;
    } else if (std::strcmp(arg, "--wallclock-summary") == 0) {
      wallclock_summary = true;
    } else if (arg[0] == '-') {
      Usage(argv[0], "unknown flag");
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    Usage(argv[0], "expected exactly two JSON files");
  }

  // Distinguish the two failure classes a CI log needs to tell apart:
  // a missing baseline means "generate and commit one", an unreadable
  // or unparseable file means the artifact itself is corrupt.
  const auto read_side =
      [](const char* which,
         const std::string& path) -> gammadb::Result<gammadb::JsonValue> {
    gammadb::Result<gammadb::JsonValue> doc = gammadb::ReadJsonFile(path);
    if (doc.ok()) return doc;
    if (doc.status().code() == gammadb::StatusCode::kNotFound) {
      std::fprintf(stderr,
                   "%s file missing: %s\n"
                   "  (run the bench with --json to generate it, then "
                   "commit the refreshed baseline)\n",
                   which, path.c_str());
    } else {
      std::fprintf(stderr, "%s file unreadable or unparseable: %s\n  %s\n",
                   which, path.c_str(), doc.status().ToString().c_str());
    }
    return doc;
  };
  auto baseline = read_side("baseline", files[0]);
  if (!baseline.ok()) return 2;
  auto candidate = read_side("candidate", files[1]);
  if (!candidate.ok()) return 2;

  if (wallclock_summary) {
    std::fputs(
        gammadb::tools::WallclockSummary(*baseline, *candidate).c_str(),
        stdout);
    return 0;
  }

  const gammadb::tools::DiffReport report =
      gammadb::tools::DiffBenchJson(*baseline, *candidate, options);
  std::fputs(gammadb::tools::FormatReport(report).c_str(), stdout);
  if (!report.Passed()) {
    std::printf("FAIL: %s regressed against %s\n", files[1].c_str(),
                files[0].c_str());
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
