// Differential join fuzzer (docs/testing.md): runs seeded random join
// plans through all four parallel algorithms and compares every result
// digest against the single-process nested-loop oracle. On a mismatch
// the failing config is greedily shrunk to a locally-minimal repro and
// printed as a ready-to-paste --repro line.
//
// Exit codes: 0 = every config matched the oracle; 1 = a mismatch was
// found (shrunk repro printed, and written to --repro-out if given);
// 2 = usage or infrastructure error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/strings.h"
#include "testing/fuzz.h"

namespace {

using gammadb::ParseInt64;
using gammadb::Result;
using gammadb::testing::FuzzConfig;
using gammadb::testing::FuzzRunResult;
using gammadb::testing::RandomConfig;
using gammadb::testing::RandomDeepOverflowConfig;
using gammadb::testing::RunFuzzConfig;
using gammadb::testing::ShrinkFailure;
using gammadb::testing::ShrinkResult;

int Usage() {
  std::fprintf(
      stderr,
      "usage: join_fuzz [--seed=N] [--count=N] [--repro=\"key=value ...\"]\n"
      "                 [--deep-overflow] [--legacy-floor]\n"
      "                 [--inject-mismatch] [--no-shrink] [--repro-out=FILE]\n"
      "  --seed=N           base seed for the random batch (default 1)\n"
      "  --count=N          configs in the batch (default 100)\n"
      "  --repro=LINE       run one config from a repro line instead\n"
      "  --deep-overflow    bias the generator into starved-memory plans\n"
      "                     that force deep recursion and the nested-loop\n"
      "                     fallback (docs/overflow.md)\n"
      "  --legacy-floor     floor memory at the biggest duplicate group\n"
      "                     (the pre-fallback generator behaviour)\n"
      "  --inject-mismatch  arm the synthetic-mismatch test hook\n"
      "  --no-shrink        report the raw failing config without shrinking\n"
      "  --repro-out=FILE   also write the final repro line to FILE\n"
      "  --verbose          print every config before running it\n");
  return 2;
}

void PrintMismatch(const FuzzConfig& config, const FuzzRunResult& run) {
  std::printf("MISMATCH: %s\n", config.ToReproString().c_str());
  std::printf("  oracle: %s\n", run.oracle.ToString().c_str());
  std::printf("  engine: %s\n", run.engine.ToString().c_str());
  std::printf("  stored: %s\n", run.stored.ToString().c_str());
}

/// Shrinks (unless disabled), prints the final repro line, writes the
/// artifact, and returns exit code 1.
int ReportFailure(const FuzzConfig& failing, bool shrink,
                  const std::string& repro_out) {
  FuzzConfig minimal = failing;
  if (shrink) {
    const ShrinkResult shrunk = ShrinkFailure(failing);
    if (shrunk.reproduced) {
      minimal = shrunk.config;
      std::printf("shrunk in %d runs\n", shrunk.runs);
    } else {
      std::printf("failure did not reproduce under shrinking; "
                  "reporting the original config\n");
    }
  }
  const std::string line = minimal.ToReproString();
  std::printf("repro:\n  join_fuzz --repro \"%s\"\n", line.c_str());
  if (!repro_out.empty()) {
    std::ofstream out(repro_out);
    out << line << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int64_t count = 100;
  std::string repro_line;
  std::string repro_out;
  bool inject = false;
  bool shrink = true;
  bool verbose = false;
  bool deep_overflow = false;
  bool legacy_floor = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    int64_t n = 0;
    if (const char* v = value_of("--seed=")) {
      if (!ParseInt64(v, &n) || n < 0) return Usage();
      seed = static_cast<uint64_t>(n);
    } else if (const char* v = value_of("--count=")) {
      if (!ParseInt64(v, &n) || n < 1) return Usage();
      count = n;
    } else if (const char* v = value_of("--repro=")) {
      repro_line = v;
    } else if (const char* v = value_of("--repro-out=")) {
      repro_out = v;
    } else if (arg == "--inject-mismatch") {
      inject = true;
    } else if (arg == "--deep-overflow") {
      deep_overflow = true;
    } else if (arg == "--legacy-floor") {
      legacy_floor = true;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!repro_line.empty()) {
    Result<FuzzConfig> parsed = FuzzConfig::FromReproString(repro_line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --repro line: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    FuzzConfig config = *parsed;
    if (inject) config.inject_mismatch = true;
    const Result<FuzzRunResult> run = RunFuzzConfig(config);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
      return 2;
    }
    if (run->ok()) {
      std::printf("OK: %s\n", config.ToReproString().c_str());
      std::printf("  digest: %s\n", run->oracle.ToString().c_str());
      return 0;
    }
    PrintMismatch(config, *run);
    return ReportFailure(config, shrink, repro_out);
  }

  std::printf("join_fuzz: seed=%llu count=%lld%s%s\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(count),
              deep_overflow ? " deep-overflow" : "",
              legacy_floor ? " legacy-floor" : "");
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t config_seed = seed + static_cast<uint64_t>(i);
    FuzzConfig config = deep_overflow
                            ? RandomDeepOverflowConfig(config_seed)
                            : RandomConfig(config_seed);
    if (legacy_floor) config.legacy_floor = true;
    if (inject) config.inject_mismatch = true;
    if (verbose) {
      std::printf("config %lld: %s\n", static_cast<long long>(i),
                  config.ToReproString().c_str());
      std::fflush(stdout);
    }
    const Result<FuzzRunResult> run = RunFuzzConfig(config);
    if (!run.ok()) {
      std::fprintf(stderr, "config %lld failed to run: %s\n  %s\n",
                   static_cast<long long>(i), run.status().ToString().c_str(),
                   config.ToReproString().c_str());
      return 2;
    }
    if (!run->ok()) {
      std::printf("config %lld (seed %llu):\n", static_cast<long long>(i),
                  static_cast<unsigned long long>(seed + i));
      PrintMismatch(config, *run);
      return ReportFailure(config, shrink, repro_out);
    }
    if ((i + 1) % 50 == 0) {
      std::printf("  %lld/%lld ok\n", static_cast<long long>(i + 1),
                  static_cast<long long>(count));
    }
  }
  std::printf("all %lld configs matched the oracle\n",
              static_cast<long long>(count));
  return 0;
}
