// Comparison engine behind tools/bench_diff: walks a baseline and a
// candidate benchmark JSON document (the schema emitted by
// bench/common/harness via --json, see docs/benchmarking.md) and
// classifies every leaf-level difference. Split from the binary so the
// pass/regress/missing-metric logic is unit-testable.
#ifndef GAMMA_TOOLS_BENCH_DIFF_LIB_H_
#define GAMMA_TOOLS_BENCH_DIFF_LIB_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace gammadb::tools {

struct DiffOptions {
  /// Relative tolerance for time metrics (keys ending in "seconds"): a
  /// candidate value above baseline * (1 + tolerance) is a regression.
  double seconds_tolerance = 0.05;
  /// When true, any difference in a non-time numeric metric (operation
  /// counters, bucket counts, ...) is a regression; when false such
  /// differences are reported informationally only. Counters are
  /// deterministic in the simulator, so CI runs with strict mode on.
  bool strict_counters = true;
};

enum class DiffKind {
  kRegression,   // time metric above tolerance, or strict counter drift
  kImprovement,  // time metric below baseline by more than tolerance
  kInfo,         // non-gated difference
  kMissing,      // metric present in baseline, absent in candidate
  kExtra,        // metric present in candidate, absent in baseline
};

struct DiffEntry {
  DiffKind kind;
  std::string path;     // e.g. "runs[3].metrics.response_seconds"
  std::string message;  // human-readable delta description
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  int compared_metrics = 0;

  int CountOf(DiffKind kind) const;
  int regressions() const { return CountOf(DiffKind::kRegression); }
  int missing() const { return CountOf(DiffKind::kMissing); }
  int extras() const { return CountOf(DiffKind::kExtra); }
  /// The CI gate: regressions, missing metrics, or candidate-only
  /// metrics fail the build (an extra key means the baseline is stale —
  /// refresh it deliberately rather than letting new metrics go
  /// ungated; see docs/skew.md).
  bool Passed() const {
    return regressions() == 0 && missing() == 0 && extras() == 0;
  }
};

/// RFC 6901 JSON-pointer form of a dotted diff path:
/// "runs[3].metrics.response_seconds" -> "/runs/3/metrics/response_seconds"
/// ("~" and "/" inside keys are escaped as "~0" / "~1"). Error messages
/// use this form so the offending location can be pasted into any
/// JSON-pointer-aware tool.
std::string JsonPointerOf(const std::string& path);

/// Compares every metric of `baseline` against `candidate`. Metrics
/// present only in the baseline are kMissing; metrics present only in
/// the candidate are kExtra — both fail the gate, so schema growth
/// always comes with a baseline refresh.
/// Host metrics ("real_seconds", "wall_seconds", "threads",
/// "num_threads") describe the machine running the benchmark, not the
/// simulated workload: they are always kInfo, never gated or missing.
///
/// Documents with different "schema_version" values (or with the key on
/// only one side) are not comparable runs: the report then holds a
/// single kRegression entry naming the offending JSON pointer
/// ("/schema_version") and both values, and the metric walk is skipped
/// so the mismatch is not buried under hundreds of follow-on diffs.
DiffReport DiffBenchJson(const JsonValue& baseline, const JsonValue& candidate,
                         const DiffOptions& options);

/// Formats the report for the console: one line per entry plus a
/// summary line.
std::string FormatReport(const DiffReport& report);

/// Side-by-side host wall-clock comparison: every "real_seconds" /
/// "wall_seconds" leaf found in either document, with the before/after
/// ratio (>1 means the candidate is faster). Purely informational —
/// wall clock is host-dependent and never gated (the perf-smoke CI job
/// prints this table as its artifact summary).
std::string WallclockSummary(const JsonValue& before, const JsonValue& after);

}  // namespace gammadb::tools

#endif  // GAMMA_TOOLS_BENCH_DIFF_LIB_H_
