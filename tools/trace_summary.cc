// trace_summary: report on (and validate) a simulated-time trace
// produced by --trace / GAMMA_BENCH_TRACE (sim/trace.h, docs/tracing.md).
//
//   trace_summary <trace.json>           print per-track and per-category
//                                        time totals
//   trace_summary --check <trace.json>   additionally validate the trace:
//     * simulated timestamps are monotonically non-decreasing across the
//       event stream (the writer sorts by simulated time);
//     * every node span's attribution entries sum to its charged
//       cpu + disk seconds within 1e-9 (relative), and its duration is
//       max(cpu, disk);
//     * every ring span's payload/retransmit/duplicate components sum to
//       its duration within 1e-9.
//
// Exit status: 0 = OK, 1 = validation failure, 2 = usage / unreadable file.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/json.h"

using gammadb::JsonValue;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--check] <trace.json>\n", argv0);
  return 2;
}

double NumberField(const JsonValue& object, const char* key) {
  const JsonValue* v = object.Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : 0.0;
}

bool WithinTolerance(double actual, double expected) {
  return std::abs(actual - expected) <= 1e-9 * std::max(1.0, expected);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  auto doc = gammadb::ReadJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 2;
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array\n", path.c_str());
    return 2;
  }

  // Thread names from metadata, keyed by (pid, tid).
  std::map<std::pair<int64_t, int64_t>, std::string> track_names;
  for (const JsonValue& e : events->AsArray()) {
    const JsonValue* ph = e.Find("ph");
    const JsonValue* name = e.Find("name");
    if (ph == nullptr || ph->AsString() != "M" || name == nullptr) continue;
    if (name->AsString() != "thread_name") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr || args->Find("name") == nullptr) continue;
    track_names[{static_cast<int64_t>(NumberField(e, "pid")),
                 static_cast<int64_t>(NumberField(e, "tid"))}] =
        args->Find("name")->AsString();
  }

  std::map<std::string, double> track_seconds;
  std::map<std::string, double> category_seconds;
  size_t spans = 0;
  int failures = 0;
  double last_ts = -1;
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", message.c_str());
    ++failures;
  };

  for (const JsonValue& e : events->AsArray()) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->AsString() != "X") continue;
    ++spans;
    const double ts = NumberField(e, "ts");
    const double dur_seconds = NumberField(e, "dur") / 1e6;
    if (check && ts < last_ts) {
      fail("timestamps not monotonic: ts " + std::to_string(ts) +
           " after " + std::to_string(last_ts));
    }
    last_ts = ts;

    const auto key = std::make_pair(
        static_cast<int64_t>(NumberField(e, "pid")),
        static_cast<int64_t>(NumberField(e, "tid")));
    const auto name_it = track_names.find(key);
    const std::string track =
        name_it != track_names.end() ? name_it->second : "?";
    track_seconds[track] += dur_seconds;

    const JsonValue* args = e.Find("args");
    if (args == nullptr) continue;
    if (const JsonValue* attribution = args->Find("attribution")) {
      double attributed = 0;
      for (const auto& [category, seconds] : attribution->AsObject()) {
        category_seconds[category] += seconds.AsDouble();
        attributed += seconds.AsDouble();
      }
      const double cpu = NumberField(*args, "cpu_seconds");
      const double disk = NumberField(*args, "disk_seconds");
      if (check && !WithinTolerance(attributed, cpu + disk)) {
        fail("attribution sums to " + std::to_string(attributed) +
             " but node charged " + std::to_string(cpu + disk) +
             " seconds at ts " + std::to_string(ts));
      }
      if (check && !WithinTolerance(dur_seconds, std::max(cpu, disk))) {
        fail("span duration " + std::to_string(dur_seconds) +
             " != max(cpu, disk) at ts " + std::to_string(ts));
      }
    } else if (args->Find("payload_seconds") != nullptr) {
      const double components = NumberField(*args, "payload_seconds") +
                                NumberField(*args, "retransmit_seconds") +
                                NumberField(*args, "duplicate_seconds");
      if (check && !WithinTolerance(components, dur_seconds)) {
        fail("ring components sum to " + std::to_string(components) +
             " but span lasts " + std::to_string(dur_seconds) +
             " seconds at ts " + std::to_string(ts));
      }
    }
  }

  std::printf("%s: %zu spans\n", path.c_str(), spans);
  std::printf("\ntrack totals:\n");
  for (const auto& [track, seconds] : track_seconds) {
    std::printf("  %-20s %12.4f s\n", track.c_str(), seconds);
  }
  if (!category_seconds.empty()) {
    std::printf("\ncost attribution totals:\n");
    for (const auto& [category, seconds] : category_seconds) {
      std::printf("  %-20s %12.4f s\n", category.c_str(), seconds);
    }
  }
  if (check) {
    if (failures > 0) {
      std::fprintf(stderr, "\n%d check(s) failed\n", failures);
      return 1;
    }
    std::printf("\nall checks passed\n");
  }
  return 0;
}
