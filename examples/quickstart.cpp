// Quickstart: build a simulated shared-nothing Gamma machine, load the
// Wisconsin joinABprime relations, run a parallel Hybrid hash-join and
// inspect the execution report.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

using namespace gammadb;

int main() {
  // 1. A machine with 8 disk nodes (the paper's "local" configuration).
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  sim::Machine machine(config);
  db::Catalog catalog;

  // 2. Load joinABprime: a 100,000-tuple relation A (~20 MB) and a
  //    10,000-tuple relation Bprime sampled from it (~2 MB), both
  //    hash-declustered on unique1.
  wisconsin::DatasetOptions dataset;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded A: %zu tuples, Bprime: %zu tuples\n",
              loaded->outer->total_tuples(), loaded->inner->total_tuples());

  // 3. Join them with the parallel Hybrid hash-join at half the inner
  //    relation's size in aggregate joining memory, with bit filters.
  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.inner_field = wisconsin::fields::kUnique1;
  spec.outer_field = wisconsin::fields::kUnique1;
  spec.algorithm = join::Algorithm::kHybridHash;
  spec.memory_ratio = 0.5;
  spec.use_bit_filters = true;

  auto output = join::ExecuteJoin(machine, catalog, spec);
  if (!output.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }

  // 4. The report: simulated response time, operation counts, and the
  //    stored result relation.
  std::printf("\nalgorithm:        %s\n", join::AlgorithmName(spec.algorithm));
  std::printf("result relation:  %s (%zu tuples)\n",
              output->result_relation.c_str(), output->stats.result_tuples);
  std::printf("response time:    %.2f simulated seconds\n",
              output->response_seconds());
  std::printf("buckets:          %d\n", output->stats.num_buckets);
  const auto& c = output->metrics.counters;
  std::printf("pages read:       %lld\n", (long long)c.pages_read);
  std::printf("pages written:    %lld\n", (long long)c.pages_written);
  std::printf("short-circuited:  %.1f%% of routed tuples\n",
              100.0 * c.ShortCircuitFraction());
  std::printf("filter drops:     %lld probing tuples\n",
              (long long)c.filter_drops);
  std::printf("\nphases:\n");
  for (const auto& phase : output->metrics.phases) {
    std::printf("  %-22s %8.2f s\n", phase.label.c_str(),
                phase.elapsed_seconds);
  }
  return 0;
}
