// Query plans: compose scans, selections, the parallel joins and
// parallel aggregation into one executable operator tree, and let the
// Section 5 optimizer rule pick the join algorithm from real column
// statistics.
//
//   $ ./build/examples/query_plans
#include <cstdio>

#include "gamma/catalog.h"
#include "gamma/plan.h"
#include "gamma/planner.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

using namespace gammadb;
namespace wf = wisconsin::fields;

int main() {
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  sim::Machine machine(config);
  db::Catalog catalog;

  wisconsin::DatasetOptions dataset;
  dataset.outer_cardinality = 30000;
  dataset.inner_cardinality = 3000;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // "How many joined rows fall into each percentile bucket, counting
  // only outer tuples with an even fiftyPercent?" — a select + join +
  // group-by-count in one plan. The selection is pushed into the join's
  // scan operators; the join algorithm is chosen by the optimizer.
  db::Plan plan = db::Plan::Aggregate(
      db::Plan::Join(
          db::Plan::Scan("Bprime"),
          db::Plan::Scan("A", {db::Predicate{wf::kFiftyPercent,
                                             db::Predicate::Op::kEq, 0}}),
          wf::kUnique1, wf::kUnique1, db::Plan::JoinOptions{}),
      /*group_by=*/wf::kTen, db::AggFunction::kCount, /*value=*/0);

  auto result = db::ExecutePlan(machine, catalog, plan, "per_decile");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("executed %zu operators, %.2f simulated seconds total:\n",
              result->steps.size(), result->total_seconds);
  for (const auto& step : result->steps) {
    std::printf("  %-44s %8.2f s\n", step.description.c_str(), step.seconds);
  }

  auto rel = catalog.Get("per_decile");
  if (!rel.ok()) return 1;
  std::printf("\n%s (%zu groups):\n", result->result_relation.c_str(),
              result->result_tuples);
  for (const auto& t : (*rel)->PeekAllTuples()) {
    std::printf("  ten = %d -> %d rows\n",
                t.GetInt32((*rel)->schema(), 0),
                t.GetInt32((*rel)->schema(), 1));
  }

  // The optimizer's statistics for the join column, for the curious.
  auto stats = db::AnalyzeColumn(*loaded->inner, wf::kUnique1);
  if (stats.ok()) {
    std::printf("\ninner join column: %zu rows, %zu distinct, max "
                "duplicates %zu -> %s\n",
                stats->cardinality, stats->distinct, stats->max_duplicates,
                stats->HighlySkewed() ? "highly skewed" : "uniform enough");
  }
  return 0;
}
