// Skew study: what happens to each algorithm when the inner relation's
// join-attribute values follow N(50000, 750) instead of a uniform
// distribution (the paper's Section 4.4 NU case) — including the
// counter-intuitive result that skew HELPS sort-merge.
//
//   $ ./build/examples/skew_study
#include <cstdio>

#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

using namespace gammadb;

namespace {

db::StoredRelation* MustCreate(sim::Machine& machine, db::Catalog& catalog,
                               const std::string& name,
                               const std::vector<storage::Tuple>& tuples,
                               int partition_field) {
  auto rel = catalog.Create(machine, name, wisconsin::WisconsinSchema());
  if (!rel.ok()) return nullptr;
  db::LoadOptions load;
  load.strategy = db::PartitionStrategy::kRangeUniform;
  load.partition_field = partition_field;
  if (!db::LoadRelation(*rel, tuples, load).ok()) return nullptr;
  return *rel;
}

}  // namespace

int main() {
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  sim::Machine machine(config);
  db::Catalog catalog;

  // 20k-tuple outer relation with a normal attribute; 2k inner sample.
  wisconsin::GenOptions gen;
  gen.cardinality = 20000;
  gen.seed = 11;
  gen.with_normal_attr = true;
  gen.normal_mean = 10000;  // centered in the 0..19999 unique1 domain
  gen.normal_stddev = 300;
  gen.normal_max = 19999;
  const auto outer_tuples = wisconsin::Generate(gen);
  const auto inner_tuples =
      wisconsin::SampleWithoutReplacement(outer_tuples, 2000, 12);

  if (MustCreate(machine, catalog, "A_u", outer_tuples,
                 wisconsin::fields::kUnique1) == nullptr ||
      MustCreate(machine, catalog, "B_u", inner_tuples,
                 wisconsin::fields::kUnique1) == nullptr ||
      MustCreate(machine, catalog, "B_n", inner_tuples,
                 wisconsin::fields::kNormal) == nullptr) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  std::printf("%-12s%18s%18s%12s%12s\n", "algorithm", "uniform inner (s)",
              "skewed inner (s)", "overflows", "max chain");
  const join::Algorithm algorithms[] = {
      join::Algorithm::kHybridHash, join::Algorithm::kGraceHash,
      join::Algorithm::kSimpleHash, join::Algorithm::kSortMerge};
  for (join::Algorithm algorithm : algorithms) {
    double seconds[2];
    join::JoinStats skewed_stats;
    for (int skewed = 0; skewed < 2; ++skewed) {
      join::JoinSpec spec;
      spec.inner_relation = skewed ? "B_n" : "B_u";
      spec.outer_relation = "A_u";
      spec.inner_field = skewed ? wisconsin::fields::kNormal
                                : wisconsin::fields::kUnique1;
      spec.outer_field = wisconsin::fields::kUnique1;
      spec.algorithm = algorithm;
      spec.memory_ratio = 0.25;  // tight memory: overflow territory
      spec.result_name = "skew_result";
      auto output = join::ExecuteJoin(machine, catalog, spec);
      if (!output.ok()) {
        std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
        return 1;
      }
      seconds[skewed] = output->response_seconds();
      if (skewed) skewed_stats = output->stats;
      if (!catalog.Drop("skew_result").ok()) return 1;
    }
    std::printf("%-12s%17.2f%18.2f%12lld%12d\n",
                join::AlgorithmName(algorithm), seconds[0], seconds[1],
                (long long)skewed_stats.overflow_events,
                skewed_stats.max_chain_length);
  }
  std::printf(
      "\nSkew penalizes the hash joins (uneven partitioning + duplicate\n"
      "chains force overflow resolution) but can HELP sort-merge: the\n"
      "skewed inner exhausts early, so the merge never reads the tail\n"
      "of the outer relation (paper Section 4.4).\n");
  return 0;
}
