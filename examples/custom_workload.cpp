// Custom workload: the library on a user-defined schema instead of the
// Wisconsin benchmark — a one-to-many customers/orders join with a
// selection predicate, executed on diskless join processors (the UN
// case the paper calls "very common ... re-establishing one-to-many
// relationships"), plus a WiSS B+-tree index lookup on a fragment.
//
//   $ ./build/examples/custom_workload
#include <cstdio>

#include "common/random.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "gamma/predicate.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "storage/btree.h"

using namespace gammadb;

int main() {
  // A remote-style machine: 4 disk nodes + 4 diskless join processors.
  sim::MachineConfig config;
  config.num_disk_nodes = 4;
  config.num_diskless_nodes = 4;
  sim::Machine machine(config);
  db::Catalog catalog;

  // Schemas: customers(cust_id, region, name), orders(order_id,
  // cust_id, amount, note).
  storage::Schema customers_schema({storage::Field::Int32("cust_id"),
                                    storage::Field::Int32("region"),
                                    storage::Field::Char("name", 24)});
  storage::Schema orders_schema({storage::Field::Int32("order_id"),
                                 storage::Field::Int32("cust_id"),
                                 storage::Field::Int32("amount"),
                                 storage::Field::Char("note", 20)});

  Rng rng(2026);
  std::vector<storage::Tuple> customers;
  for (int32_t id = 0; id < 5000; ++id) {
    storage::Tuple t(customers_schema.tuple_bytes());
    t.SetInt32(customers_schema, 0, id);
    t.SetInt32(customers_schema, 1, static_cast<int32_t>(rng.Uniform(10)));
    t.SetChars(customers_schema, 2, "customer-" + std::to_string(id));
    customers.push_back(std::move(t));
  }
  std::vector<storage::Tuple> orders;
  for (int32_t id = 0; id < 50000; ++id) {
    storage::Tuple t(orders_schema.tuple_bytes());
    t.SetInt32(orders_schema, 0, id);
    // Skewed one-to-many: popular customers get more orders.
    const int32_t cust = static_cast<int32_t>(
        rng.Uniform(rng.Uniform(2) == 0 ? 5000 : 500));
    t.SetInt32(orders_schema, 1, cust);
    t.SetInt32(orders_schema, 2, static_cast<int32_t>(rng.Uniform(1000)));
    t.SetChars(orders_schema, 3, "order");
    orders.push_back(std::move(t));
  }

  auto customers_rel = catalog.Create(machine, "customers", customers_schema);
  auto orders_rel = catalog.Create(machine, "orders", orders_schema);
  if (!customers_rel.ok() || !orders_rel.ok()) return 1;
  db::LoadOptions load;
  load.strategy = db::PartitionStrategy::kHashed;
  load.partition_field = 0;  // customers by cust_id, orders by order_id
  if (!db::LoadRelation(*customers_rel, customers, load).ok()) return 1;
  if (!db::LoadRelation(*orders_rel, orders, load).ok()) return 1;

  // Join: customers (inner, one side) with orders over $500 (outer,
  // many side) on cust_id, executed on the diskless processors.
  join::JoinSpec spec;
  spec.inner_relation = "customers";
  spec.outer_relation = "orders";
  spec.inner_field = 0;  // customers.cust_id
  spec.outer_field = 1;  // orders.cust_id
  spec.algorithm = join::Algorithm::kHybridHash;
  spec.memory_ratio = 0.5;
  spec.use_bit_filters = true;
  spec.join_nodes = machine.DisklessNodeIds();
  spec.outer_predicate = {
      db::Predicate{2, db::Predicate::Op::kGe, 500}};  // amount >= 500

  auto output = join::ExecuteJoin(machine, catalog, spec);
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }
  std::printf("customers x orders(amount>=500) on cust_id\n");
  std::printf("  result tuples:   %zu\n", output->stats.result_tuples);
  std::printf("  response:        %.2f simulated seconds\n",
              output->response_seconds());
  std::printf("  buckets:         %d (after the Appendix A bucket "
              "analyzer)\n", output->stats.num_buckets);
  std::printf("  filter drops:    %lld\n",
              (long long)output->stats.filter_drops);
  std::printf("  avg hash chain:  %.2f (skewed one-to-many duplicates)\n",
              output->stats.avg_chain_length);

  // WiSS substrate demo: a B+-tree index over customer ids on node 0's
  // fragment, as a scan accelerator.
  storage::BPlusTree index(&machine.node(0));
  const auto fragment = (*customers_rel)->fragment(0).PeekAll();
  for (uint64_t i = 0; i < fragment.size(); ++i) {
    index.Insert(fragment[i].GetInt32(customers_schema, 0), i);
  }
  const auto hits = index.RangeScan(100, 120);
  std::printf("\nB+-tree over node 0's customer fragment: height %d, "
              "%zu entries; cust_id in [100,120] -> %zu hits\n",
              index.height(), index.size(), hits.size());
  return 0;
}
