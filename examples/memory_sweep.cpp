// Memory sweep: compare all four parallel join algorithms while the
// aggregate joining memory shrinks from 100% of the inner relation to
// 10% — a compact version of the paper's central experiment (Figure 5),
// at a reduced scale so it runs instantly.
//
//   $ ./build/examples/memory_sweep [outer_cardinality]
#include <cstdio>
#include <cstdlib>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

using namespace gammadb;

int main(int argc, char** argv) {
  uint32_t outer_cardinality = 20000;
  if (argc > 1) outer_cardinality = static_cast<uint32_t>(std::atoi(argv[1]));

  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  sim::Machine machine(config);
  db::Catalog catalog;

  wisconsin::DatasetOptions dataset;
  dataset.outer_cardinality = outer_cardinality;
  dataset.inner_cardinality = outer_cardinality / 10;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }

  const join::Algorithm algorithms[] = {
      join::Algorithm::kHybridHash, join::Algorithm::kGraceHash,
      join::Algorithm::kSimpleHash, join::Algorithm::kSortMerge};

  std::printf("joinABprime at %u x %u tuples, 8 disk nodes\n",
              outer_cardinality, outer_cardinality / 10);
  std::printf("%-8s%14s%14s%14s%14s\n", "memory", "Hybrid", "Grace", "Simple",
              "SortMerge");
  for (double ratio : {1.0, 0.5, 1.0 / 3, 0.25, 0.2, 0.125, 0.1}) {
    std::printf("%-8.3f", ratio);
    for (join::Algorithm algorithm : algorithms) {
      join::JoinSpec spec;
      spec.inner_relation = "Bprime";
      spec.outer_relation = "A";
      spec.algorithm = algorithm;
      spec.memory_ratio = ratio;
      spec.result_name = "sweep_result";
      auto output = join::ExecuteJoin(machine, catalog, spec);
      if (!output.ok()) {
        std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
        return 1;
      }
      std::printf("%13.2fs", output->response_seconds());
      if (!catalog.Drop("sweep_result").ok()) return 1;
    }
    std::printf("\n");
  }
  std::printf("\n(seconds of simulated response time; smaller is better)\n");
  return 0;
}
