// Partitioning explorer: prints the split tables of Appendix A, shows
// how the mod structure short-circuits HPJA joins, demonstrates the
// join-process starvation pathology, and runs the bucket analyzer —
// the machinery behind the HPJA/non-HPJA experiments.
//
//   $ ./build/examples/partitioning_explorer
#include <cstdio>
#include <vector>

#include "common/hash.h"
#include "gamma/bucket_analyzer.h"
#include "gamma/split_table.h"

using namespace gammadb;

namespace {

void PrintTable(const char* title, const db::SplitTable& table) {
  std::printf("\n%s (%zu entries, %llu bytes serialized)\n", title,
              table.size(), (unsigned long long)table.SerializedBytes());
  std::printf("  %-8s%-18s%-8s\n", "entry", "destination node", "bucket");
  for (size_t e = 0; e < table.size(); ++e) {
    std::printf("  %-8zu%-18d%-8d\n", e, table.entry(e).node,
                table.entry(e).bucket);
  }
}

}  // namespace

int main() {
  // Appendix A, Table 1: three-bucket Grace join, two disk nodes.
  PrintTable("Grace partitioning table: 3 buckets, disk nodes {1,2}",
             db::SplitTable::GracePartitioning({1, 2}, 3));

  // Appendix A, Table 2: three-bucket Hybrid join, join processes on
  // nodes {3,4}.
  PrintTable("Hybrid partitioning table: 3 buckets, joiners {3,4}",
             db::SplitTable::HybridPartitioning({3, 4}, {1, 2}, 3));

  // Appendix A, Tables 3-4: the starvation pathology. Four joining
  // processes, two disks, three buckets: every stored-bucket tuple of
  // disk 1 re-maps to join node 1, starving nodes 3 and 4.
  const auto pathological =
      db::SplitTable::HybridPartitioning({1, 2, 3, 4}, {1, 2}, 3);
  const auto joining = db::SplitTable::Joining({1, 2, 3, 4});
  std::printf("\nBucket-2 re-splitting with 4 join processes (Appendix A "
              "Table 4):\n  %-10s%-28s%-14s\n", "disk", "sample hash values",
              "join node");
  std::printf("  %-10d%-28s%-14d\n", 1, "4, 12, 20, 28, 36, ...",
              joining.Route(4).node);
  std::printf("  %-10d%-28s%-14d\n", 2, "5, 13, 21, 29, 37, ...",
              joining.Route(5).node);
  std::printf("  -> join nodes 3 and 4 receive NO tuples from stored "
              "buckets.\n");

  // The bucket analyzer fixes it by growing the bucket count.
  const int fixed =
      db::AnalyzeBucketCount(db::BucketAlgorithm::kHybrid, 3, 2, 4);
  std::printf("\nBucket analyzer: 3 buckets -> %d buckets (2 disks, 4 join "
              "processes)\n", fixed);

  // HPJA short-circuiting: with 4 disks and hash declustering, every
  // hash value stored on disk d satisfies h mod 4 == d, so both the
  // Grace partitioning table and the joining table route it back to
  // disk d — no network traffic.
  const std::vector<int> disks = {0, 1, 2, 3};
  const auto grace = db::SplitTable::GracePartitioning(disks, 3);
  const auto local_joining = db::SplitTable::Joining(disks);
  std::printf("\nHPJA short-circuit check (4 disks, 3 Grace buckets):\n");
  int local = 0, total = 0;
  for (int32_t key = 0; key < 10000; ++key) {
    const uint64_t h = HashJoinAttribute(key);
    const int home_disk = static_cast<int>(h % disks.size());
    if (grace.Route(h).node == home_disk &&
        local_joining.Route(h).node == home_disk) {
      ++local;
    }
    ++total;
  }
  std::printf("  %d / %d keys route back to their home disk in both the\n"
              "  bucket-forming and bucket-joining phases.\n", local, total);

  // The packet-size threshold behind the scarce-memory kink.
  std::printf("\nSplit-table packets for 8 disks (2 KB packet):\n");
  for (int buckets : {5, 6, 7, 8}) {
    const auto table = db::SplitTable::GracePartitioning(
        {0, 1, 2, 3, 4, 5, 6, 7}, buckets);
    std::printf("  %d buckets: %llu bytes -> %s\n", buckets,
                (unsigned long long)table.SerializedBytes(),
                table.SerializedBytes() > 2048 ? "2 packets (sent in pieces)"
                                               : "1 packet");
  }
  return 0;
}
