// Table 2 (Section 4.3): percentage of bucket-forming writes that stay
// local for HPJA vs non-HPJA Hybrid joins on the remote configuration.
//
// HPJA: every stored-bucket tuple maps back to its own disk via the
// split-table mod structure, so the fraction of ALL tuples written
// locally is (N-1)/N. Non-HPJA: stored-bucket tuples land on a random
// disk, so only 1/numDiskNodes of the stored fraction stays local.
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

namespace {

double LocalWritePercent(const gammadb::join::JoinOutput& output) {
  const auto& c = output.metrics.counters;
  const double routed = static_cast<double>(c.tuples_sent_local +
                                            c.tuples_sent_remote);
  return routed == 0 ? 0.0
                     : 100.0 * static_cast<double>(c.tuples_sent_local) /
                           routed;
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "table2_local_writes");
  gammadb::bench::WorkloadOptions hpja_options;
  hpja_options.hpja = true;
  Workload hpja(RemoteConfig(), hpja_options);

  gammadb::bench::WorkloadOptions nonhpja_options;
  nonhpja_options.hpja = false;
  Workload nonhpja(RemoteConfig(), nonhpja_options);

  std::printf(
      "\nTable 2: %% of routed tuples delivered locally, Hybrid remote\n");
  std::printf("%8s%12s%16s%20s\n", "buckets", "ratio", "HPJA local %",
              "non-HPJA local %");
  for (int buckets = 1; buckets <= 10; ++buckets) {
    const double ratio = 1.0 / buckets;
    auto h = hpja.Run(Algorithm::kHybridHash, ratio, false, /*remote=*/true);
    auto n =
        nonhpja.Run(Algorithm::kHybridHash, ratio, false, /*remote=*/true);
    gammadb::bench::CheckResultCount(h, gammadb::bench::ExpectedJoinABprimeResult());
    gammadb::bench::CheckResultCount(n, gammadb::bench::ExpectedJoinABprimeResult());
    std::printf("%8d%12.3f%16.1f%20.1f\n", buckets, ratio,
                LocalWritePercent(h), LocalWritePercent(n));
  }
  return 0;
}
