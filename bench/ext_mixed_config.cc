// Extension experiment: mixed join-node placement.
//
// Paper Section 4.3: "Although Gamma is capable of executing a join
// operation on a mix of processors with and without disks, earlier
// tests for the Simple hash-join algorithm indicated the performance of
// such a configuration was almost always 1/2 way between that of the
// 'local' and 'remote' configurations." This bench reproduces that
// claim: 4 disk + 4 diskless join processors vs all-local and
// all-remote.
//
// Measured deviation: under this simulator's phase-synchronous model
// the mixed configuration tracks LOCAL, not the midpoint — the four
// dual-role processors still carry a full scan share plus a full join
// share and remain the bottleneck, because split-table routing gives
// every join process a fixed 1/J share. The paper's halfway result
// suggests Gamma's measured bottleneck blended across processors more
// smoothly than a max-over-nodes model allows; see EXPERIMENTS.md.
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::PrintFigure;
using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_mixed_config");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(RemoteConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  std::vector<double> local, mixed, remote, midpoint;
  for (double ratio : ratios) {
    auto l = workload.Run(Algorithm::kSimpleHash, ratio, false, false);
    auto r = workload.Run(Algorithm::kSimpleHash, ratio, false, true);
    auto m = workload.RunCustom(
        Algorithm::kSimpleHash, ratio, false, false,
        [](gammadb::join::JoinSpec& spec) {
          spec.join_nodes = {0, 1, 2, 3, 8, 9, 10, 11};  // 4 disk + 4 not
        });
    gammadb::bench::CheckResultCount(m, gammadb::bench::ExpectedJoinABprimeResult());
    local.push_back(l.response_seconds());
    mixed.push_back(m.response_seconds());
    remote.push_back(r.response_seconds());
    midpoint.push_back((l.response_seconds() + r.response_seconds()) / 2);
  }
  PrintFigure(
      "Extension: mixed 4-disk/4-diskless Simple joins vs local/remote "
      "(seconds)",
      {"Local", "Mixed", "Remote", "(L+R)/2"}, ratios,
      {local, mixed, remote, midpoint});
  return 0;
}
