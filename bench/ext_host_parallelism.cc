// Extension experiment: host-side executor parallelism. The simulated
// response times are thread-count invariant by construction (the
// determinism contract, DESIGN.md); what the thread pool buys is WALL
// CLOCK — the time a developer or CI job waits for a figure bench.
//
// Runs the full joinABprime workload once per thread count and reports
// real seconds plus the speedup over the single-threaded executor. The
// simulated response time is asserted identical across thread counts,
// so this bench doubles as an end-to-end determinism check at
// benchmark scale.
#include <chrono>
#include <cstdio>

#include "common/harness.h"
#include "common/logging.h"

using gammadb::JsonValue;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_host_parallelism");

  const int thread_counts[] = {1, 2, 4, 8};
  double real_seconds[4] = {0, 0, 0, 0};
  double simulated_seconds[4] = {0, 0, 0, 0};

  std::printf("\nHost parallelism: joinABprime, Hybrid @ 0.5 memory\n");
  std::printf("%-10s%14s%14s%12s\n", "threads", "real sec", "simulated sec",
              "speedup");
  for (int i = 0; i < 4; ++i) {
    gammadb::sim::MachineConfig config = gammadb::bench::LocalConfig();
    config.num_threads = thread_counts[i];
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload workload(config, options);
    const auto start = std::chrono::steady_clock::now();
    auto out = workload.Run(Algorithm::kHybridHash, 0.5, false, false);
    real_seconds[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    simulated_seconds[i] = out.response_seconds();
    gammadb::bench::CheckResultCount(
        out, gammadb::bench::ExpectedJoinABprimeResult());
    // The determinism contract at benchmark scale: thread count must
    // never leak into the simulated metrics.
    GAMMA_CHECK(simulated_seconds[i] == simulated_seconds[0])
        << "simulated response time varies with executor threads";
    std::printf("%-10d%14.3f%14.2f%11.2fx\n", thread_counts[i],
                real_seconds[i], simulated_seconds[i],
                real_seconds[0] / real_seconds[i]);
  }

  JsonValue table = JsonValue::MakeArray();
  for (int i = 0; i < 4; ++i) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("threads", JsonValue(thread_counts[i]));
    row.Set("real_seconds", JsonValue(real_seconds[i]));
    row.Set("speedup", JsonValue(real_seconds[0] / real_seconds[i]));
    table.Append(std::move(row));
  }
  gammadb::bench::RecordBenchExtra("host_parallelism", std::move(table));

  // Probe-dominated configuration: Simple hash at 1.5x memory keeps the
  // whole inner relation resident in one bucket, so the run is scan +
  // exchange + hash-table probes with no overflow or bucket I/O — the
  // host hot path the batched block pipeline targets. Single-threaded
  // so the number is a clean before/after wall-clock comparison
  // (docs/performance.md), independent of executor scaling.
  {
    gammadb::sim::MachineConfig config = gammadb::bench::LocalConfig();
    config.num_threads = 1;
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload workload(config, options);
    const auto start = std::chrono::steady_clock::now();
    auto out = workload.Run(Algorithm::kSimpleHash, 1.5, false, false);
    const double probe_real =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    gammadb::bench::CheckResultCount(
        out, gammadb::bench::ExpectedJoinABprimeResult());
    std::printf("\nProbe-dominated: joinABprime, Simple @ 1.5 memory, "
                "1 thread\n");
    std::printf("%-10s%14s%14s\n", "threads", "real sec", "simulated sec");
    std::printf("%-10d%14.3f%14.2f\n", 1, probe_real, out.response_seconds());
    JsonValue probe = JsonValue::MakeObject();
    probe.Set("threads", JsonValue(1));
    probe.Set("real_seconds", JsonValue(probe_real));
    probe.Set("simulated_response_seconds",
              JsonValue(out.response_seconds()));
    gammadb::bench::RecordBenchExtra("probe_dominated", std::move(probe));
  }
  return 0;
}
