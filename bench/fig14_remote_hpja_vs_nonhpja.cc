// Figure 14: remote configuration (8 disk nodes + 8 diskless join
// nodes): HPJA vs non-HPJA for the three hash algorithms.
//
// Expected shape (paper Section 4.3): Grace shows a constant HPJA
// advantage (bucket-forming short-circuits); Hybrid's advantage widens
// as memory shrinks (a growing fraction of tuples is written locally
// during bucket-forming, per the paper's Table 2); Simple shows no
// HPJA advantage at all (the changed hash function after overflow
// turns every overflow join into a non-HPJA join).
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::PrintFigure;
using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig14_remote_hpja_vs_nonhpja");
  gammadb::bench::WorkloadOptions hpja_options;
  hpja_options.hpja = true;
  Workload hpja(RemoteConfig(), hpja_options);

  gammadb::bench::WorkloadOptions nonhpja_options;
  nonhpja_options.hpja = false;
  Workload nonhpja(RemoteConfig(), nonhpja_options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash};
  const std::vector<std::string> names = {
      "Hybrid/HPJA",  "Hybrid/non",  "Grace/HPJA",
      "Grace/non",    "Simple/HPJA", "Simple/non"};

  std::vector<std::vector<double>> series(6);
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto h = hpja.Run(algorithms[a], ratio, false, /*remote=*/true);
      auto n = nonhpja.Run(algorithms[a], ratio, false, /*remote=*/true);
      gammadb::bench::CheckResultCount(h, gammadb::bench::ExpectedJoinABprimeResult());
      gammadb::bench::CheckResultCount(n, gammadb::bench::ExpectedJoinABprimeResult());
      series[2 * a].push_back(h.response_seconds());
      series[2 * a + 1].push_back(n.response_seconds());
    }
  }
  PrintFigure("Figure 14: remote joins, HPJA vs non-HPJA (seconds)", names,
              ratios, series);
  return 0;
}
