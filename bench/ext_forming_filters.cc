// Extension experiment: bit filtering during bucket-forming.
//
// The paper applies filters only "during the joining phase" and notes
// twice (Sections 4.2 and 4.4) that "extending bit filtering to the
// bucket-forming phases of the Grace and Hybrid join algorithms would
// significantly increase the performance of these algorithms" — because
// that is the only way filters can save disk I/O for Grace. This bench
// quantifies the prediction on joinABprime (non-HPJA, local, so the
// filter also saves network traffic).
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_forming_filters");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  for (Algorithm algorithm : {Algorithm::kGraceHash, Algorithm::kHybridHash}) {
    std::vector<double> plain, joining_only, with_forming, pages_saved;
    for (double ratio : ratios) {
      auto none = workload.Run(algorithm, ratio, false, false);
      auto joining = workload.Run(algorithm, ratio, true, false);
      auto forming = workload.RunCustom(
          algorithm, ratio, true, false,
          [](gammadb::join::JoinSpec& spec) {
            spec.use_forming_bit_filters = true;
          });
      gammadb::bench::CheckResultCount(forming, gammadb::bench::ExpectedJoinABprimeResult());
      plain.push_back(none.response_seconds());
      joining_only.push_back(joining.response_seconds());
      with_forming.push_back(forming.response_seconds());
      pages_saved.push_back(
          static_cast<double>(joining.metrics.counters.pages_written -
                              forming.metrics.counters.pages_written));
    }
    PrintFigure(std::string("Extension: forming-phase bit filters, ") +
                    AlgorithmName(algorithm) + " (seconds)",
                {"NoFilter", "JoiningOnly", "Forming+Joining", "PagesSaved"},
                ratios, {plain, joining_only, with_forming, pages_saved});
  }
  return 0;
}
