// Extension experiment: multiuser throughput (the study the paper
// defers to future work in Section 5).
//
// Using asymptotic bound analysis over measured single-query profiles
// (sim/throughput.h), this bench sweeps the multiprogramming level for
// local vs remote Hybrid joins. Expected shape: local wins single-query
// response for HPJA workloads, but the remote configuration's lower
// per-node demand sustains higher saturation throughput — the paper's
// closing argument for offloading joins to diskless processors.
#include <cstdio>

#include "common/harness.h"
#include "sim/throughput.h"

using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;
using gammadb::sim::EstimateThroughput;
using gammadb::sim::ThroughputEstimate;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_multiuser");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;  // the configuration-sensitive case
  Workload workload(RemoteConfig(), options);

  auto local_run = workload.Run(Algorithm::kHybridHash, 0.5, false, false);
  auto remote_run = workload.Run(Algorithm::kHybridHash, 0.5, false, true);
  gammadb::bench::CheckResultCount(local_run, gammadb::bench::ExpectedJoinABprimeResult());
  gammadb::bench::CheckResultCount(remote_run, gammadb::bench::ExpectedJoinABprimeResult());
  const ThroughputEstimate local = EstimateThroughput(local_run.metrics);
  const ThroughputEstimate remote = EstimateThroughput(remote_run.metrics);

  std::printf("\nMultiuser model, Hybrid non-HPJA joinABprime @ 0.5 memory\n");
  std::printf("%-10s%16s%22s%20s\n", "config", "R0 (1 query)",
              "bottleneck s/query", "saturation MPL");
  std::printf("%-10s%15.2fs%21.2fs%20d\n", "local",
              local.single_query_seconds, local.BottleneckSeconds(),
              local.SaturationMpl());
  std::printf("%-10s%15.2fs%21.2fs%20d\n", "remote",
              remote.single_query_seconds, remote.BottleneckSeconds(),
              remote.SaturationMpl());

  std::printf("\n%-6s%18s%18s%20s%20s\n", "MPL", "local q/h", "remote q/h",
              "local resp (s)", "remote resp (s)");
  for (int mpl : {1, 2, 3, 4, 6, 8, 12}) {
    std::printf("%-6d%18.1f%18.1f%20.1f%20.1f\n", mpl,
                3600 * local.ThroughputAtMpl(mpl),
                3600 * remote.ThroughputAtMpl(mpl),
                local.ResponseAtMpl(mpl), remote.ResponseAtMpl(mpl));
  }
  std::printf("\n(remote trades single-query response for saturation "
              "throughput — the\npaper's multiuser conjecture, "
              "quantified)\n");
  return 0;
}
