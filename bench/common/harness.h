// Shared harness for the paper-reproduction benchmarks: standard Gamma
// configurations, the joinABprime dataset at full benchmark scale, and
// table printing in the shape of the paper's figures.
#ifndef GAMMA_BENCH_COMMON_HARNESS_H_
#define GAMMA_BENCH_COMMON_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::bench {

/// The paper's "local" configuration: 8 processors with disks. (The
/// scheduling/deadlock processor is not modeled as a node; its cost
/// appears via the scheduler charges.)
sim::MachineConfig LocalConfig();

/// The paper's "remote" configuration: 8 disk + 8 diskless processors.
sim::MachineConfig RemoteConfig();

/// Memory ratios corresponding to an integral number of Grace/Hybrid
/// buckets: 1, 1/2, ..., 1/8, 1/10 (the plotted points of Figures 5-16).
std::vector<double> IntegralBucketRatios();

struct WorkloadOptions {
  bool hpja = true;        // join attribute == declustering attribute
  bool with_normal = false;
  db::PartitionStrategy strategy = db::PartitionStrategy::kHashed;
  int partition_field = wisconsin::fields::kUnique1;
  uint32_t outer_cardinality = 100000;
  uint32_t inner_cardinality = 10000;
  uint64_t seed = 42;
};

/// A machine + catalog + loaded joinABprime dataset.
class Workload {
 public:
  Workload(sim::MachineConfig machine_config, const WorkloadOptions& options);

  sim::Machine& machine() { return *machine_; }
  db::Catalog& catalog() { return catalog_; }

  /// Runs joinABprime with the given algorithm/parameters and drops the
  /// result relation afterwards. Aborts on error (benchmark context).
  join::JoinOutput Run(join::Algorithm algorithm, double memory_ratio,
                       bool bit_filters, bool remote_join_nodes,
                       int inner_field = -1, int outer_field = -1);

  /// Like Run(), but lets the caller adjust the final JoinSpec (bucket
  /// overrides, slack, predicates, ...) before execution.
  join::JoinOutput RunCustom(
      join::Algorithm algorithm, double memory_ratio, bool bit_filters,
      bool remote_join_nodes,
      const std::function<void(join::JoinSpec&)>& mutate);

  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
  int run_counter_ = 0;
};

/// Prints a response-time table: one row per ratio, one column per
/// series, in seconds — the data behind one paper figure.
void PrintFigure(const std::string& title,
                 const std::vector<std::string>& series_names,
                 const std::vector<double>& ratios,
                 const std::vector<std::vector<double>>& seconds_by_series);

/// Convenience: asserts the result cardinality every benchmark expects.
void CheckResultCount(const join::JoinOutput& output, size_t expected);

/// Shared driver for Figures 10-13: one algorithm, HPJA local
/// configuration, with and without bit filters, plus the measured
/// number of probing tuples eliminated by the filters.
void RunFilterComparisonFigure(const std::string& title,
                               join::Algorithm algorithm);

/// The Section 4.4 skew setup: a 100k outer relation with a
/// N(50000, 750) `normal` attribute, a 10k inner relation sampled from
/// it, each stored once range-declustered on unique1 and once on the
/// normal attribute (the paper ranges on the join attribute so every
/// disk holds an equal share).
class SkewBench {
 public:
  enum class JoinType { kUU, kNU, kUN, kNN };
  static const char* JoinTypeName(JoinType type);

  SkewBench();

  sim::Machine& machine() { return *machine_; }

  /// Runs the joinABprime skew variant. For Grace on NU/NN inputs one
  /// extra bucket is added, following the paper ("we executed this
  /// algorithm using one additional bucket so that no memory overflow
  /// would occur").
  join::JoinOutput Run(join::Algorithm algorithm, JoinType type,
                       double memory_ratio, bool bit_filters);

 private:
  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
  int run_counter_ = 0;
};

}  // namespace gammadb::bench

#endif  // GAMMA_BENCH_COMMON_HARNESS_H_
