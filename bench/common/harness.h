// Shared harness for the paper-reproduction benchmarks: standard Gamma
// configurations, the joinABprime dataset at full benchmark scale, and
// table printing in the shape of the paper's figures.
#ifndef GAMMA_BENCH_COMMON_HARNESS_H_
#define GAMMA_BENCH_COMMON_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::bench {

// --- Structured output & CLI ----------------------------------------------
//
// Every benchmark driver calls InitBench() first thing in main(). It
// parses the shared flags and, when JSON output is requested, arranges
// for one schema-versioned document (docs/benchmarking.md) to be
// written when the process exits cleanly: machine/workload config,
// every executed join (full sim::RunMetrics including per-phase
// per-node cpu/disk seconds) and every printed figure table.
//
// Shared flags:
//   --json <path>   write the JSON document to <path> (also honoured
//                    via the GAMMA_BENCH_JSON environment variable;
//                    the flag wins when both are given)
//   --smoke         CI-scale run: 10k x 1k joinABprime instead of the
//                    paper's 100k x 10k (the figures keep their shape,
//                    the run finishes in seconds)
//   --outer <n>     override the outer (probing) cardinality
//   --inner <n>     override the inner (building) cardinality
//   --threads <n>   executor threads per machine (also honoured via
//                    GAMMA_BENCH_THREADS; the flag wins). Default: the
//                    host's hardware concurrency. Thread count never
//                    changes simulated metrics (the determinism
//                    contract, docs/benchmarking.md), only wall clock.
//   --trace <path>  write a simulated-time Chrome trace_event JSON of
//                    every join to <path> (also honoured via
//                    GAMMA_BENCH_TRACE; the flag wins). Byte-identical
//                    at any --threads; see docs/tracing.md.
//   --attribution   include the per-node cost-attribution breakdown in
//                    the JSON document's run metrics (off by default so
//                    baseline documents keep their exact bytes)
//
/// Parses shared benchmark flags. Aborts with a usage message on
/// unknown flags. Call once, before constructing any Workload.
void InitBench(int argc, char** argv, const std::string& benchmark_name);

/// True when --smoke (or --outer/--inner) reduced the dataset scale.
bool BenchScaleOverridden();

/// Executor threads per machine for this benchmark process (the
/// --threads / GAMMA_BENCH_THREADS knob; defaults to the host's
/// hardware concurrency, clamped to [1, 16]).
int BenchThreads();

/// joinABprime result cardinality under the active scale: every inner
/// tuple joins exactly one outer tuple, so this is the (possibly
/// overridden) inner cardinality.
size_t ExpectedJoinABprimeResult();

/// Appends an extra top-level key to the JSON document (no-op when JSON
/// output is disabled). Benchmarks use this for driver-specific results
/// that fit neither the per-run records nor a figure table.
void RecordBenchExtra(const std::string& key, JsonValue value);

/// The paper's "local" configuration: 8 processors with disks. (The
/// scheduling/deadlock processor is not modeled as a node; its cost
/// appears via the scheduler charges.)
sim::MachineConfig LocalConfig();

/// The paper's "remote" configuration: 8 disk + 8 diskless processors.
sim::MachineConfig RemoteConfig();

/// Memory ratios corresponding to an integral number of Grace/Hybrid
/// buckets: 1, 1/2, ..., 1/8, 1/10 (the plotted points of Figures 5-16).
std::vector<double> IntegralBucketRatios();

struct WorkloadOptions {
  bool hpja = true;        // join attribute == declustering attribute
  bool with_normal = false;
  /// The cardinalities below are intrinsic to the experiment (scaleup
  /// sweeps, seed-dependent expected counts): exempt this workload from
  /// the --smoke / --outer / --inner scale overrides.
  bool fixed_scale = false;
  db::PartitionStrategy strategy = db::PartitionStrategy::kHashed;
  int partition_field = wisconsin::fields::kUnique1;
  uint32_t outer_cardinality = 100000;
  uint32_t inner_cardinality = 10000;
  uint64_t seed = 42;
};

/// A machine + catalog + loaded joinABprime dataset.
class Workload {
 public:
  Workload(sim::MachineConfig machine_config, const WorkloadOptions& options);

  sim::Machine& machine() { return *machine_; }
  db::Catalog& catalog() { return catalog_; }

  /// Runs joinABprime with the given algorithm/parameters and drops the
  /// result relation afterwards. Aborts on error (benchmark context).
  join::JoinOutput Run(join::Algorithm algorithm, double memory_ratio,
                       bool bit_filters, bool remote_join_nodes,
                       int inner_field = -1, int outer_field = -1);

  /// Like Run(), but lets the caller adjust the final JoinSpec (bucket
  /// overrides, slack, predicates, ...) before execution.
  join::JoinOutput RunCustom(
      join::Algorithm algorithm, double memory_ratio, bool bit_filters,
      bool remote_join_nodes,
      const std::function<void(join::JoinSpec&)>& mutate);

  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
  int run_counter_ = 0;
};

/// Prints a response-time table: one row per ratio, one column per
/// series, in seconds — the data behind one paper figure.
void PrintFigure(const std::string& title,
                 const std::vector<std::string>& series_names,
                 const std::vector<double>& ratios,
                 const std::vector<std::vector<double>>& seconds_by_series);

/// Convenience: asserts the result cardinality every benchmark expects.
void CheckResultCount(const join::JoinOutput& output, size_t expected);

/// Shared driver for Figures 10-13: one algorithm, HPJA local
/// configuration, with and without bit filters, plus the measured
/// number of probing tuples eliminated by the filters.
void RunFilterComparisonFigure(const std::string& title,
                               join::Algorithm algorithm);

/// The Section 4.4 skew setup: a 100k outer relation with a
/// N(50000, 750) `normal` attribute, a 10k inner relation sampled from
/// it, each stored once range-declustered on unique1 and once on the
/// normal attribute (the paper ranges on the join attribute so every
/// disk holds an equal share).
class SkewBench {
 public:
  enum class JoinType { kUU, kNU, kUN, kNN };
  static const char* JoinTypeName(JoinType type);

  SkewBench();

  sim::Machine& machine() { return *machine_; }

  /// Runs the joinABprime skew variant. For Grace on NU/NN inputs one
  /// extra bucket is added, following the paper ("we executed this
  /// algorithm using one additional bucket so that no memory overflow
  /// would occur").
  join::JoinOutput Run(join::Algorithm algorithm, JoinType type,
                       double memory_ratio, bool bit_filters);

 private:
  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
  int run_counter_ = 0;
};

/// The adaptive-repartitioning skew setup (docs/skew.md): a
/// joinABprime-style pair whose `normal` column is Zipf(theta)
/// distributed on both sides (the inner is sampled from the outer),
/// range-declustered on the join attribute so the static placement is
/// equal-share before hashing concentrates the heavy values.
/// Default scale is 20k x 2k; --smoke / --outer / --inner apply.
class ZipfBench {
 public:
  explicit ZipfBench(double theta);

  sim::Machine& machine() { return *machine_; }

  /// Runs the Zipf join on the `normal` attribute. `adaptive` toggles
  /// skew-aware adaptive repartitioning. The default memory ratio
  /// leaves headroom so heavy-bin replication stays byte-feasible and
  /// the rebalance planner never has to defer to the overflow protocol
  /// (docs/skew.md).
  join::JoinOutput Run(join::Algorithm algorithm, bool adaptive,
                       double memory_ratio = 2.0, bool bit_filters = false);

 private:
  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
  int run_counter_ = 0;
};

}  // namespace gammadb::bench

#endif  // GAMMA_BENCH_COMMON_HARNESS_H_
