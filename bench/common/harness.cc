#include "common/harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/metrics_json.h"
#include "sim/trace.h"

namespace gammadb::bench {

namespace {

/// Threads per simulated machine when no override is given: one per
/// hardware thread, clamped to the paper's largest node count.
int DefaultBenchThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return static_cast<int>(hw > 16 ? 16 : hw);
}

/// Process-wide benchmark state set up by InitBench().
struct BenchState {
  std::string benchmark_name;
  std::string json_path;                  // "" = JSON output disabled
  std::string trace_path;                 // "" = tracing disabled
  bool attribution = false;               // per-run attribution in JSON
  std::optional<uint32_t> outer_override;
  std::optional<uint32_t> inner_override;
  int threads = DefaultBenchThreads();
  JsonValue doc = JsonValue::MakeObject();
  sim::Tracer tracer;
};

BenchState& State() {
  static BenchState state;
  return state;
}

bool JsonEnabled() { return !State().json_path.empty(); }

/// The process-wide tracer when --trace / GAMMA_BENCH_TRACE is active,
/// else nullptr. Workload machines attach themselves to it.
sim::Tracer* BenchTracer() {
  BenchState& state = State();
  return state.trace_path.empty() ? nullptr : &state.tracer;
}

void WriteBenchTrace() {
  BenchState& state = State();
  if (state.trace_path.empty()) return;
  Status status = state.tracer.WriteFile(state.trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", state.trace_path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote trace JSON to %s\n", state.trace_path.c_str());
}

void WriteBenchJson() {
  BenchState& state = State();
  if (state.json_path.empty()) return;
  Status status = WriteJsonFile(state.json_path, state.doc);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", state.json_path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote benchmark JSON to %s\n",
               state.json_path.c_str());
}

[[noreturn]] void Usage(const char* argv0, const std::string& error) {
  std::fprintf(stderr,
               "%s\nusage: %s [--json <path>] [--trace <path>] "
               "[--attribution] [--smoke] [--outer <n>] "
               "[--inner <n>] [--threads <n>]\n",
               error.c_str(), argv0);
  std::exit(2);
}

/// Checked numeric flag parsing: atoi-style silent zeros are exactly
/// how "--threads x" used to become a zero-thread run. Rejects
/// non-numeric values and anything below `min_value` with a usage error.
int64_t ParseIntFlag(const char* argv0, const char* flag, const char* text,
                     int64_t min_value) {
  int64_t value = 0;
  if (!ParseInt64(text, &value)) {
    Usage(argv0, StrFormat("%s: '%s' is not an integer", flag, text));
  }
  if (value < min_value) {
    Usage(argv0, StrFormat("%s: %lld is below the minimum %lld", flag,
                           static_cast<long long>(value),
                           static_cast<long long>(min_value)));
  }
  return value;
}

JsonValue MachineConfigToJson(const sim::MachineConfig& config) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("num_disk_nodes", config.num_disk_nodes);
  out.Set("num_diskless_nodes", config.num_diskless_nodes);
  out.Set("num_threads", config.num_threads);
  return out;
}

JsonValue JoinStatsToJson(const join::JoinStats& stats) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("num_buckets", stats.num_buckets);
  out.Set("overflow_levels", stats.overflow_levels);
  out.Set("overflow_events", stats.overflow_events);
  out.Set("avg_chain_length", stats.avg_chain_length);
  out.Set("max_chain_length", stats.max_chain_length);
  out.Set("inner_sort_passes", stats.inner_sort_passes);
  out.Set("outer_sort_passes", stats.outer_sort_passes);
  out.Set("result_tuples", stats.result_tuples);
  out.Set("filter_drops", stats.filter_drops);
  // Rebalance keys appear only when a plan actually fired, so every
  // skew-free baseline document keeps its exact bytes.
  if (stats.rebalance_plans > 0) {
    out.Set("rebalance_plans", stats.rebalance_plans);
    out.Set("rebalance_moved_tuples", stats.rebalance_moved_tuples);
    out.Set("rebalance_replica_tuples", stats.rebalance_replica_tuples);
  }
  // Overflow-path keys likewise appear only when overflow machinery
  // actually engaged, keeping no-overflow baselines byte-identical
  // (docs/overflow.md).
  if (stats.nested_loop_fallbacks > 0) {
    out.Set("nested_loop_fallbacks", stats.nested_loop_fallbacks);
    out.Set("nested_loop_passes", stats.nested_loop_passes);
  }
  if (stats.spill_bytes > 0 || stats.refill_bytes > 0) {
    out.Set("spill_bytes", stats.spill_bytes);
    out.Set("refill_bytes", stats.refill_bytes);
  }
  return out;
}

/// Appends one executed join to the document's "runs" array: enough
/// spec fields to identify the run plus the full metrics tree.
/// `real_seconds` is the measured host wall-clock time of the join —
/// informational only (bench_diff never gates it), it tracks how fast
/// the simulator itself runs at the configured thread count.
void RecordJoinRun(const join::JoinSpec& spec, const join::JoinOutput& output,
                   double real_seconds) {
  if (!JsonEnabled()) return;
  JsonValue run = JsonValue::MakeObject();
  run.Set("algorithm", join::AlgorithmName(spec.algorithm));
  run.Set("inner_relation", spec.inner_relation);
  run.Set("outer_relation", spec.outer_relation);
  run.Set("inner_field", spec.inner_field);
  run.Set("outer_field", spec.outer_field);
  run.Set("memory_ratio", spec.memory_ratio);
  run.Set("bit_filters", spec.use_bit_filters);
  run.Set("forming_bit_filters", spec.use_forming_bit_filters);
  run.Set("remote_join_nodes", !spec.join_nodes.empty());
  if (spec.adaptive_repartition) run.Set("adaptive_repartition", true);
  run.Set("response_seconds", output.response_seconds());
  run.Set("real_seconds", real_seconds);
  run.Set("threads", State().threads);
  run.Set("stats", JoinStatsToJson(output.stats));
  run.Set("metrics",
          sim::RunMetricsToJson(output.metrics, State().attribution));
  JsonValue* runs = State().doc.Find("runs");
  GAMMA_CHECK(runs != nullptr);
  runs->Append(std::move(run));
}

void RecordWorkload(const sim::MachineConfig& machine_config,
                    const WorkloadOptions& options) {
  if (!JsonEnabled()) return;
  JsonValue workload = JsonValue::MakeObject();
  workload.Set("machine", MachineConfigToJson(machine_config));
  JsonValue opts = JsonValue::MakeObject();
  opts.Set("hpja", options.hpja);
  opts.Set("with_normal", options.with_normal);
  opts.Set("outer_cardinality", options.outer_cardinality);
  opts.Set("inner_cardinality", options.inner_cardinality);
  opts.Set("seed", static_cast<int64_t>(options.seed));
  workload.Set("options", std::move(opts));
  JsonValue* workloads = State().doc.Find("workloads");
  GAMMA_CHECK(workloads != nullptr);
  workloads->Append(std::move(workload));
}

/// Applies --smoke / --outer / --inner to a workload's options.
void ApplyScaleOverrides(WorkloadOptions& options) {
  if (options.fixed_scale) return;
  const BenchState& state = State();
  if (state.outer_override) options.outer_cardinality = *state.outer_override;
  if (state.inner_override) options.inner_cardinality = *state.inner_override;
}

}  // namespace

void InitBench(int argc, char** argv, const std::string& benchmark_name) {
  BenchState& state = State();
  state.benchmark_name = benchmark_name;
  if (const char* env = std::getenv("GAMMA_BENCH_JSON");
      env != nullptr && env[0] != '\0') {
    state.json_path = env;
  }
  if (const char* env = std::getenv("GAMMA_BENCH_THREADS");
      env != nullptr && env[0] != '\0') {
    state.threads = static_cast<int>(
        ParseIntFlag(argv[0], "GAMMA_BENCH_THREADS", env, 1));
  }
  if (const char* env = std::getenv("GAMMA_BENCH_TRACE");
      env != nullptr && env[0] != '\0') {
    state.trace_path = env;
  }
  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) Usage(argv[0], StrFormat("%s requires a value", flag));
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      state.json_path = next_value(i, "--json");
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      state.json_path = arg + 7;
    } else if (std::strcmp(arg, "--trace") == 0) {
      state.trace_path = next_value(i, "--trace");
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      state.trace_path = arg + 8;
    } else if (std::strcmp(arg, "--attribution") == 0) {
      state.attribution = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      state.outer_override = 10000;
      state.inner_override = 1000;
    } else if (std::strcmp(arg, "--outer") == 0) {
      state.outer_override = static_cast<uint32_t>(
          ParseIntFlag(argv[0], "--outer", next_value(i, "--outer"), 1));
    } else if (std::strcmp(arg, "--inner") == 0) {
      state.inner_override = static_cast<uint32_t>(
          ParseIntFlag(argv[0], "--inner", next_value(i, "--inner"), 1));
    } else if (std::strcmp(arg, "--threads") == 0) {
      state.threads = static_cast<int>(
          ParseIntFlag(argv[0], "--threads", next_value(i, "--threads"), 1));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      state.threads =
          static_cast<int>(ParseIntFlag(argv[0], "--threads", arg + 10, 1));
    } else {
      Usage(argv[0], StrFormat("unknown flag '%s'", arg));
    }
  }
  if (state.threads < 1) Usage(argv[0], "--threads must be >= 1");
  if (JsonEnabled()) {
    state.doc.Set("schema_version", sim::kMetricsSchemaVersion);
    state.doc.Set("benchmark", benchmark_name);
    state.doc.Set("smoke", BenchScaleOverridden());
    state.doc.Set("threads", state.threads);
    state.doc.Set("workloads", JsonValue::MakeArray());
    state.doc.Set("runs", JsonValue::MakeArray());
    state.doc.Set("figures", JsonValue::MakeArray());
    std::atexit(WriteBenchJson);
  }
  if (!state.trace_path.empty()) std::atexit(WriteBenchTrace);
}

bool BenchScaleOverridden() {
  return State().outer_override.has_value() ||
         State().inner_override.has_value();
}

int BenchThreads() { return State().threads; }

size_t ExpectedJoinABprimeResult() {
  return State().inner_override.value_or(10000);
}

void RecordBenchExtra(const std::string& key, JsonValue value) {
  if (!JsonEnabled()) return;
  State().doc.Set(key, std::move(value));
}

sim::MachineConfig LocalConfig() {
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  config.num_diskless_nodes = 0;
  config.num_threads = BenchThreads();
  return config;
}

sim::MachineConfig RemoteConfig() {
  sim::MachineConfig config = LocalConfig();
  config.num_diskless_nodes = 8;
  return config;
}

std::vector<double> IntegralBucketRatios() {
  return {1.0,       1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0, 1.0 / 5.0,
          1.0 / 6.0, 1.0 / 7.0, 1.0 / 8.0, 1.0 / 10.0};
}

Workload::Workload(sim::MachineConfig machine_config,
                   const WorkloadOptions& options)
    : options_(options), machine_(std::make_unique<sim::Machine>(machine_config)) {
  if (sim::Tracer* tracer = BenchTracer()) {
    machine_->set_tracer(tracer, State().benchmark_name);
  }
  ApplyScaleOverrides(options_);
  RecordWorkload(machine_config, options_);
  wisconsin::DatasetOptions dataset;
  dataset.outer_cardinality = options_.outer_cardinality;
  dataset.inner_cardinality = options_.inner_cardinality;
  dataset.seed = options_.seed;
  dataset.with_normal_attr = options_.with_normal;
  dataset.strategy = options_.strategy;
  dataset.partition_field = options_.partition_field;
  auto loaded = wisconsin::LoadJoinABprime(*machine_, catalog_, dataset);
  GAMMA_CHECK(loaded.ok()) << loaded.status().ToString();
}

join::JoinOutput Workload::RunCustom(
    join::Algorithm algorithm, double memory_ratio, bool bit_filters,
    bool remote_join_nodes,
    const std::function<void(join::JoinSpec&)>& mutate) {
  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  const int default_field = options_.hpja ? wisconsin::fields::kUnique1
                                          : wisconsin::fields::kUnique2;
  spec.inner_field = default_field;
  spec.outer_field = default_field;
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = bit_filters;
  if (remote_join_nodes) {
    spec.join_nodes = machine_->DisklessNodeIds();
    GAMMA_CHECK(!spec.join_nodes.empty())
        << "remote join requested on a machine without diskless nodes";
  }
  spec.result_name = "bench_result_" + std::to_string(run_counter_++);
  if (mutate) mutate(spec);
  const auto start = std::chrono::steady_clock::now();
  auto output = join::ExecuteJoin(*machine_, catalog_, spec);
  const std::chrono::duration<double> real =
      std::chrono::steady_clock::now() - start;
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  GAMMA_CHECK_OK(catalog_.Drop(spec.result_name));
  RecordJoinRun(spec, *output, real.count());
  return std::move(output).value();
}

join::JoinOutput Workload::Run(join::Algorithm algorithm, double memory_ratio,
                               bool bit_filters, bool remote_join_nodes,
                               int inner_field, int outer_field) {
  // HPJA joins use the declustering attribute (unique1); non-HPJA joins
  // use unique2, whose value distribution is identical.
  return RunCustom(algorithm, memory_ratio, bit_filters, remote_join_nodes,
                   [&](join::JoinSpec& spec) {
                     if (inner_field >= 0) spec.inner_field = inner_field;
                     if (outer_field >= 0) spec.outer_field = outer_field;
                   });
}

void PrintFigure(const std::string& title,
                 const std::vector<std::string>& series_names,
                 const std::vector<double>& ratios,
                 const std::vector<std::vector<double>>& seconds_by_series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s", "ratio");
  for (const auto& name : series_names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (size_t row = 0; row < ratios.size(); ++row) {
    std::printf("%-8.3f", ratios[row]);
    for (const auto& series : seconds_by_series) {
      std::printf("%14.2f", series[row]);
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  if (!JsonEnabled()) return;
  JsonValue figure = JsonValue::MakeObject();
  figure.Set("title", title);
  JsonValue names = JsonValue::MakeArray();
  for (const auto& name : series_names) names.Append(name);
  figure.Set("series", std::move(names));
  JsonValue ratio_values = JsonValue::MakeArray();
  for (double ratio : ratios) ratio_values.Append(ratio);
  figure.Set("ratios", std::move(ratio_values));
  JsonValue table = JsonValue::MakeArray();
  for (const auto& series : seconds_by_series) {
    JsonValue column = JsonValue::MakeArray();
    for (double v : series) column.Append(v);
    table.Append(std::move(column));
  }
  // Key ends in "seconds" so bench_diff applies the time-metric
  // tolerance to every nested value.
  figure.Set("series_seconds", std::move(table));
  JsonValue* figures = State().doc.Find("figures");
  GAMMA_CHECK(figures != nullptr);
  figures->Append(std::move(figure));
}

void RunFilterComparisonFigure(const std::string& title,
                               join::Algorithm algorithm) {
  WorkloadOptions options;
  options.hpja = true;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  std::vector<double> without, with, drops;
  for (double ratio : ratios) {
    auto plain = workload.Run(algorithm, ratio, /*bit_filters=*/false,
                              /*remote_join_nodes=*/false);
    auto filtered = workload.Run(algorithm, ratio, /*bit_filters=*/true,
                                 /*remote_join_nodes=*/false);
    CheckResultCount(plain, ExpectedJoinABprimeResult());
    CheckResultCount(filtered, ExpectedJoinABprimeResult());
    without.push_back(plain.response_seconds());
    with.push_back(filtered.response_seconds());
    drops.push_back(static_cast<double>(filtered.stats.filter_drops));
  }
  PrintFigure(title, {"NoFilter", "BitFilter", "TuplesDropped"}, ratios,
              {without, with, drops});
}

void CheckResultCount(const join::JoinOutput& output, size_t expected) {
  GAMMA_CHECK_EQ(output.stats.result_tuples, expected)
      << "benchmark join produced the wrong result cardinality";
}

const char* SkewBench::JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kUU:
      return "UU";
    case JoinType::kNU:
      return "NU";
    case JoinType::kUN:
      return "UN";
    case JoinType::kNN:
      return "NN";
  }
  return "?";
}

SkewBench::SkewBench() : machine_(std::make_unique<sim::Machine>(LocalConfig())) {
  if (sim::Tracer* tracer = BenchTracer()) {
    machine_->set_tracer(tracer, State().benchmark_name + " skew");
  }
  wisconsin::GenOptions gen;
  gen.cardinality = 100000;
  gen.seed = 42;
  gen.with_normal_attr = true;
  const auto outer_tuples = wisconsin::Generate(gen);
  const auto inner_tuples =
      wisconsin::SampleWithoutReplacement(outer_tuples, 10000, 43);

  const auto load = [&](const std::string& name,
                        const std::vector<storage::Tuple>& tuples,
                        int partition_field) {
    auto rel = catalog_.Create(*machine_, name, wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok()) << rel.status().ToString();
    db::LoadOptions options;
    options.strategy = db::PartitionStrategy::kRangeUniform;
    options.partition_field = partition_field;
    GAMMA_CHECK_OK(db::LoadRelation(*rel, tuples, options));
  };
  load("A_u", outer_tuples, wisconsin::fields::kUnique1);
  load("A_n", outer_tuples, wisconsin::fields::kNormal);
  load("B_u", inner_tuples, wisconsin::fields::kUnique1);
  load("B_n", inner_tuples, wisconsin::fields::kNormal);
}

join::JoinOutput SkewBench::Run(join::Algorithm algorithm, JoinType type,
                                double memory_ratio, bool bit_filters) {
  join::JoinSpec spec;
  const bool inner_normal = type == JoinType::kNU || type == JoinType::kNN;
  const bool outer_normal = type == JoinType::kUN || type == JoinType::kNN;
  spec.inner_relation = inner_normal ? "B_n" : "B_u";
  spec.outer_relation = outer_normal ? "A_n" : "A_u";
  spec.inner_field = inner_normal ? wisconsin::fields::kNormal
                                  : wisconsin::fields::kUnique1;
  spec.outer_field = outer_normal ? wisconsin::fields::kNormal
                                  : wisconsin::fields::kUnique1;
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = bit_filters;
  if (algorithm == join::Algorithm::kGraceHash && inner_normal) {
    // Paper Section 4.4: Grace runs skewed-inner joins with one extra
    // bucket so no memory overflow occurs.
    auto inner = catalog_.Get(spec.inner_relation);
    GAMMA_CHECK(inner.ok());
    const auto memory_bytes = static_cast<uint64_t>(
        memory_ratio * static_cast<double>((*inner)->total_bytes()));
    spec.num_buckets =
        join::OptimizerBucketCount((*inner)->total_bytes(), memory_bytes) + 1;
  }
  spec.result_name = "skew_result_" + std::to_string(run_counter_++);
  const auto start = std::chrono::steady_clock::now();
  auto output = join::ExecuteJoin(*machine_, catalog_, spec);
  const std::chrono::duration<double> real =
      std::chrono::steady_clock::now() - start;
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  GAMMA_CHECK_OK(catalog_.Drop(spec.result_name));
  RecordJoinRun(spec, *output, real.count());
  return std::move(output).value();
}

ZipfBench::ZipfBench(double theta)
    : machine_(std::make_unique<sim::Machine>(LocalConfig())) {
  if (sim::Tracer* tracer = BenchTracer()) {
    machine_->set_tracer(tracer, State().benchmark_name + " zipf");
  }
  const uint32_t outer_n = State().outer_override.value_or(20000);
  const uint32_t inner_n = State().inner_override.value_or(2000);
  wisconsin::GenOptions gen;
  gen.cardinality = outer_n;
  gen.seed = 42;
  gen.with_zipf_attr = true;
  gen.zipf_theta = theta;
  const auto outer_tuples = wisconsin::Generate(gen);
  const auto inner_tuples =
      wisconsin::SampleWithoutReplacement(outer_tuples, inner_n, 43);
  const auto load = [&](const std::string& name,
                        const std::vector<storage::Tuple>& tuples) {
    auto rel = catalog_.Create(*machine_, name, wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok()) << rel.status().ToString();
    db::LoadOptions options;
    options.strategy = db::PartitionStrategy::kRangeUniform;
    options.partition_field = wisconsin::fields::kNormal;
    GAMMA_CHECK_OK(db::LoadRelation(*rel, tuples, options));
  };
  load("A_z", outer_tuples);
  load("B_z", inner_tuples);
}

join::JoinOutput ZipfBench::Run(join::Algorithm algorithm, bool adaptive,
                                double memory_ratio, bool bit_filters) {
  join::JoinSpec spec;
  spec.inner_relation = "B_z";
  spec.outer_relation = "A_z";
  spec.inner_field = wisconsin::fields::kNormal;
  spec.outer_field = wisconsin::fields::kNormal;
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = bit_filters;
  spec.adaptive_repartition = adaptive;
  spec.result_name = "zipf_result_" + std::to_string(run_counter_++);
  const auto start = std::chrono::steady_clock::now();
  auto output = join::ExecuteJoin(*machine_, catalog_, spec);
  const std::chrono::duration<double> real =
      std::chrono::steady_clock::now() - start;
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  GAMMA_CHECK_OK(catalog_.Drop(spec.result_name));
  RecordJoinRun(spec, *output, real.count());
  return std::move(output).value();
}

}  // namespace gammadb::bench
