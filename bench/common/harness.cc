#include "common/harness.h"

#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"

namespace gammadb::bench {

sim::MachineConfig LocalConfig() {
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  config.num_diskless_nodes = 0;
  config.num_threads = 1;
  return config;
}

sim::MachineConfig RemoteConfig() {
  sim::MachineConfig config = LocalConfig();
  config.num_diskless_nodes = 8;
  return config;
}

std::vector<double> IntegralBucketRatios() {
  return {1.0,       1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0, 1.0 / 5.0,
          1.0 / 6.0, 1.0 / 7.0, 1.0 / 8.0, 1.0 / 10.0};
}

Workload::Workload(sim::MachineConfig machine_config,
                   const WorkloadOptions& options)
    : options_(options), machine_(std::make_unique<sim::Machine>(machine_config)) {
  wisconsin::DatasetOptions dataset;
  dataset.outer_cardinality = options.outer_cardinality;
  dataset.inner_cardinality = options.inner_cardinality;
  dataset.seed = options.seed;
  dataset.with_normal_attr = options.with_normal;
  dataset.strategy = options.strategy;
  dataset.partition_field = options.partition_field;
  auto loaded = wisconsin::LoadJoinABprime(*machine_, catalog_, dataset);
  GAMMA_CHECK(loaded.ok()) << loaded.status().ToString();
}

join::JoinOutput Workload::RunCustom(
    join::Algorithm algorithm, double memory_ratio, bool bit_filters,
    bool remote_join_nodes,
    const std::function<void(join::JoinSpec&)>& mutate) {
  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  const int default_field = options_.hpja ? wisconsin::fields::kUnique1
                                          : wisconsin::fields::kUnique2;
  spec.inner_field = default_field;
  spec.outer_field = default_field;
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = bit_filters;
  if (remote_join_nodes) {
    spec.join_nodes = machine_->DisklessNodeIds();
    GAMMA_CHECK(!spec.join_nodes.empty())
        << "remote join requested on a machine without diskless nodes";
  }
  spec.result_name = "bench_result_" + std::to_string(run_counter_++);
  if (mutate) mutate(spec);
  auto output = join::ExecuteJoin(*machine_, catalog_, spec);
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  GAMMA_CHECK_OK(catalog_.Drop(spec.result_name));
  return std::move(output).value();
}

join::JoinOutput Workload::Run(join::Algorithm algorithm, double memory_ratio,
                               bool bit_filters, bool remote_join_nodes,
                               int inner_field, int outer_field) {
  // HPJA joins use the declustering attribute (unique1); non-HPJA joins
  // use unique2, whose value distribution is identical.
  return RunCustom(algorithm, memory_ratio, bit_filters, remote_join_nodes,
                   [&](join::JoinSpec& spec) {
                     if (inner_field >= 0) spec.inner_field = inner_field;
                     if (outer_field >= 0) spec.outer_field = outer_field;
                   });
}

void PrintFigure(const std::string& title,
                 const std::vector<std::string>& series_names,
                 const std::vector<double>& ratios,
                 const std::vector<std::vector<double>>& seconds_by_series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-8s", "ratio");
  for (const auto& name : series_names) std::printf("%14s", name.c_str());
  std::printf("\n");
  for (size_t row = 0; row < ratios.size(); ++row) {
    std::printf("%-8.3f", ratios[row]);
    for (const auto& series : seconds_by_series) {
      std::printf("%14.2f", series[row]);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void RunFilterComparisonFigure(const std::string& title,
                               join::Algorithm algorithm) {
  WorkloadOptions options;
  options.hpja = true;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  std::vector<double> without, with, drops;
  for (double ratio : ratios) {
    auto plain = workload.Run(algorithm, ratio, /*bit_filters=*/false,
                              /*remote_join_nodes=*/false);
    auto filtered = workload.Run(algorithm, ratio, /*bit_filters=*/true,
                                 /*remote_join_nodes=*/false);
    CheckResultCount(plain, 10000);
    CheckResultCount(filtered, 10000);
    without.push_back(plain.response_seconds());
    with.push_back(filtered.response_seconds());
    drops.push_back(static_cast<double>(filtered.stats.filter_drops));
  }
  PrintFigure(title, {"NoFilter", "BitFilter", "TuplesDropped"}, ratios,
              {without, with, drops});
}

void CheckResultCount(const join::JoinOutput& output, size_t expected) {
  GAMMA_CHECK_EQ(output.stats.result_tuples, expected)
      << "benchmark join produced the wrong result cardinality";
}

const char* SkewBench::JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kUU:
      return "UU";
    case JoinType::kNU:
      return "NU";
    case JoinType::kUN:
      return "UN";
    case JoinType::kNN:
      return "NN";
  }
  return "?";
}

SkewBench::SkewBench() : machine_(std::make_unique<sim::Machine>(LocalConfig())) {
  wisconsin::GenOptions gen;
  gen.cardinality = 100000;
  gen.seed = 42;
  gen.with_normal_attr = true;
  const auto outer_tuples = wisconsin::Generate(gen);
  const auto inner_tuples =
      wisconsin::SampleWithoutReplacement(outer_tuples, 10000, 43);

  const auto load = [&](const std::string& name,
                        const std::vector<storage::Tuple>& tuples,
                        int partition_field) {
    auto rel = catalog_.Create(*machine_, name, wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok()) << rel.status().ToString();
    db::LoadOptions options;
    options.strategy = db::PartitionStrategy::kRangeUniform;
    options.partition_field = partition_field;
    GAMMA_CHECK_OK(db::LoadRelation(*rel, tuples, options));
  };
  load("A_u", outer_tuples, wisconsin::fields::kUnique1);
  load("A_n", outer_tuples, wisconsin::fields::kNormal);
  load("B_u", inner_tuples, wisconsin::fields::kUnique1);
  load("B_n", inner_tuples, wisconsin::fields::kNormal);
}

join::JoinOutput SkewBench::Run(join::Algorithm algorithm, JoinType type,
                                double memory_ratio, bool bit_filters) {
  join::JoinSpec spec;
  const bool inner_normal = type == JoinType::kNU || type == JoinType::kNN;
  const bool outer_normal = type == JoinType::kUN || type == JoinType::kNN;
  spec.inner_relation = inner_normal ? "B_n" : "B_u";
  spec.outer_relation = outer_normal ? "A_n" : "A_u";
  spec.inner_field = inner_normal ? wisconsin::fields::kNormal
                                  : wisconsin::fields::kUnique1;
  spec.outer_field = outer_normal ? wisconsin::fields::kNormal
                                  : wisconsin::fields::kUnique1;
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = bit_filters;
  if (algorithm == join::Algorithm::kGraceHash && inner_normal) {
    // Paper Section 4.4: Grace runs skewed-inner joins with one extra
    // bucket so no memory overflow occurs.
    auto inner = catalog_.Get(spec.inner_relation);
    GAMMA_CHECK(inner.ok());
    const auto memory_bytes = static_cast<uint64_t>(
        memory_ratio * static_cast<double>((*inner)->total_bytes()));
    spec.num_buckets =
        join::OptimizerBucketCount((*inner)->total_bytes(), memory_bytes) + 1;
  }
  spec.result_name = "skew_result_" + std::to_string(run_counter_++);
  auto output = join::ExecuteJoin(*machine_, catalog_, spec);
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  GAMMA_CHECK_OK(catalog_.Drop(spec.result_name));
  return std::move(output).value();
}

}  // namespace gammadb::bench
