// Figure 5: joinABprime response time vs available-memory ratio, local
// configuration (8 disk nodes), join attribute == partitioning
// attribute (HPJA), no bit filters.
//
// Expected shape (paper Section 4.1): Hybrid dominates everywhere;
// Simple equals Hybrid at ratio 1.0 and degrades rapidly below 0.5;
// Grace is nearly flat with a slight rise as buckets are added;
// sort-merge is slowest with steps from extra merge passes.
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig05_local_hpja");
  gammadb::bench::WorkloadOptions options;
  options.hpja = true;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash,
      Algorithm::kSortMerge};
  const std::vector<std::string> names = {"Hybrid", "Grace", "Simple",
                                          "SortMerge"};

  std::vector<std::vector<double>> series(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto output = workload.Run(algorithms[a], ratio, /*bit_filters=*/false,
                                 /*remote_join_nodes=*/false);
      gammadb::bench::CheckResultCount(output, gammadb::bench::ExpectedJoinABprimeResult());
      series[a].push_back(output.response_seconds());
    }
  }
  PrintFigure("Figure 5: HPJA joins, local configuration (seconds)", names,
              ratios, series);
  return 0;
}
