// Table 4 (Section 4.4): percentage improvement from bit-vector
// filters, on the Table 3 grid.
//
// Expected shape: sort-merge and Simple improve most (filters eliminate
// disk I/O); Grace improves least (filters apply only during
// bucket-joining, after the I/O is already spent); within each
// algorithm the NU joins improve most (duplicate normal values collide
// in the filter, leaving more bits clear).
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::SkewBench;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "table4_filter_improvement");
  SkewBench bench;

  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSortMerge,
                                  Algorithm::kSimpleHash};
  const char* names[] = {"Hybrid", "Grace", "Sort-Merge", "Simple"};
  const SkewBench::JoinType types[] = {SkewBench::JoinType::kUU,
                                       SkewBench::JoinType::kNU,
                                       SkewBench::JoinType::kUN};

  std::printf("\nTable 4: %% improvement from bit filters\n");
  std::printf("%-12s", "Algorithm");
  for (double mem : {1.0, 0.17}) {
    for (auto type : types) {
      std::printf("%9s@%-3.0f%%", SkewBench::JoinTypeName(type), mem * 100);
    }
  }
  std::printf("\n");
  for (size_t a = 0; a < 4; ++a) {
    std::printf("%-12s", names[a]);
    for (double mem : {1.0, 0.17}) {
      for (auto type : types) {
        auto plain = bench.Run(algorithms[a], type, mem, false);
        auto filtered = bench.Run(algorithms[a], type, mem, true);
        const double improvement =
            100.0 * (plain.response_seconds() - filtered.response_seconds()) /
            plain.response_seconds();
        std::printf("%13.1f%%", improvement);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  return 0;
}
