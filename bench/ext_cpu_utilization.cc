// Extension experiment: CPU utilization and multiuser throughput.
//
// Paper Section 5: "when Gamma processes joins 'locally', the
// processors are at 100% CPU utilization. However, when the 'remote'
// configuration is used, CPU utilization at the processors with disks
// drops to approximately 60%. Thus, in a multiuser environment,
// offloading joins to remote processors may permit higher throughput."
//
// This bench measures per-node utilization for both configurations and
// derives the throughput bound the paper conjectures: with queries
// pipelined back-to-back, sustainable throughput is limited by the
// busiest processor's CPU seconds per query.
#include <algorithm>
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

namespace {

struct UtilReport {
  double response;
  double disk_util;     // mean over disk nodes
  double joiner_util;   // mean over the join nodes actually used
  double busiest_cpu;   // CPU-seconds on the busiest node
};

UtilReport Measure(Workload& workload, bool remote) {
  auto output =
      workload.Run(Algorithm::kHybridHash, 1.0, false, remote);
  gammadb::bench::CheckResultCount(output, gammadb::bench::ExpectedJoinABprimeResult());
  const auto util = output.metrics.NodeCpuUtilization();
  const auto busy = output.metrics.NodeCpuSeconds();
  UtilReport report{};
  report.response = output.response_seconds();
  for (int i = 0; i < 8; ++i) report.disk_util += util[static_cast<size_t>(i)] / 8;
  if (remote) {
    for (size_t i = 8; i < 16; ++i) report.joiner_util += util[i] / 8;
  } else {
    report.joiner_util = report.disk_util;
  }
  report.busiest_cpu = *std::max_element(busy.begin(), busy.end());
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_cpu_utilization");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;  // non-HPJA: the case where offloading pays
  Workload workload(RemoteConfig(), options);

  const UtilReport local = Measure(workload, /*remote=*/false);
  const UtilReport remote = Measure(workload, /*remote=*/true);

  std::printf("\nCPU utilization, Hybrid non-HPJA joinABprime @ 100%% "
              "memory\n");
  std::printf("%-10s%12s%16s%16s%22s\n", "config", "response", "disk-node "
              "util", "joiner util", "throughput bound q/h");
  std::printf("%-10s%11.2fs%15.0f%%%15.0f%%%22.1f\n", "local",
              local.response, 100 * local.disk_util, 100 * local.joiner_util,
              3600.0 / local.busiest_cpu);
  std::printf("%-10s%11.2fs%15.0f%%%15.0f%%%22.1f\n", "remote",
              remote.response, 100 * remote.disk_util,
              100 * remote.joiner_util, 3600.0 / remote.busiest_cpu);
  std::printf(
      "\n(paper: local = 100%% CPU, remote disk nodes ~60%%; the freed "
      "disk-node\ncycles are the multiuser-throughput headroom)\n");
  return 0;
}
