// Extension experiment: hardware scaling. The Gamma project's companion
// papers (DEWI88) measured speedup and scaleup curves; this bench adds
// them for the four join algorithms.
//
//  * Speedup: fixed joinABprime (100k x 10k), 2 -> 16 disk nodes.
//    Expect near-linear gains flattening as per-node work shrinks
//    toward the fixed scheduling/partitioning overheads.
//  * Scaleup: data grows with the machine (12.5k outer tuples per
//    node); a flat curve means linear scaleup.
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::Workload;
using gammadb::join::Algorithm;

namespace {

gammadb::sim::MachineConfig ConfigWithDisks(int disks) {
  gammadb::sim::MachineConfig config;
  config.num_disk_nodes = disks;
  config.num_threads = 1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_speedup");
  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSimpleHash,
                                  Algorithm::kSortMerge};
  const char* names[] = {"Hybrid", "Grace", "Simple", "SortMerge"};

  std::printf("\nSpeedup: joinABprime 100k x 10k @ 0.5 memory (seconds)\n");
  std::printf("%-8s%14s%14s%14s%14s\n", "disks", names[0], names[1], names[2],
              names[3]);
  double base[4] = {0, 0, 0, 0};
  for (int disks : {2, 4, 8, 16}) {
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload workload(ConfigWithDisks(disks), options);
    std::printf("%-8d", disks);
    for (int a = 0; a < 4; ++a) {
      auto out = workload.Run(algorithms[a], 0.5, false, false);
      gammadb::bench::CheckResultCount(out, gammadb::bench::ExpectedJoinABprimeResult());
      if (disks == 2) base[a] = out.response_seconds();
      std::printf("%9.2f(%3.1fx)", out.response_seconds(),
                  base[a] / out.response_seconds());
    }
    std::printf("\n");
  }

  std::printf("\nScaleup: 12,500 outer tuples per disk node @ 0.5 memory "
              "(seconds; flat = linear)\n");
  std::printf("%-8s%14s%14s%14s%14s\n", "disks", names[0], names[1], names[2],
              names[3]);
  for (int disks : {2, 4, 8, 16}) {
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    options.fixed_scale = true;  // cardinality is the experiment variable
    options.outer_cardinality = static_cast<uint32_t>(12500 * disks);
    options.inner_cardinality = options.outer_cardinality / 10;
    Workload workload(ConfigWithDisks(disks), options);
    std::printf("%-8d", disks);
    for (int a = 0; a < 4; ++a) {
      auto out = workload.Run(algorithms[a], 0.5, false, false);
      gammadb::bench::CheckResultCount(out, options.inner_cardinality);
      std::printf("%14.2f", out.response_seconds());
    }
    std::printf("\n");
  }
  return 0;
}
