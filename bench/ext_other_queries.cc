// The paper's other benchmark queries: "We ran the experiments with the
// other benchmark join queries, joinAselB and joinCselAselB, but the
// trends were the same so those results are not presented." This bench
// presents them.
//
// joinAselB:      A (100k) joined with a 10% selection of B (100k) on
//                 unique1 — the selection runs inline at the scan.
// joinCselAselB:  C (10k) joined with (sel A join sel B), realized here
//                 as a selection on both join inputs.
#include <cstdio>

#include "common/harness.h"
#include "gamma/predicate.h"
#include "wisconsin/wisconsin.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::db::Predicate;
using gammadb::join::Algorithm;

namespace {

void RunQuery(const char* title, Workload& workload,
              const gammadb::db::PredicateList& inner_pred,
              const gammadb::db::PredicateList& outer_pred,
              uint64_t expected_inner, size_t expected_results) {
  const std::vector<double> ratios = IntegralBucketRatios();
  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSimpleHash,
                                  Algorithm::kSortMerge};
  std::vector<std::vector<double>> series(4);
  for (size_t a = 0; a < 4; ++a) {
    for (double ratio : ratios) {
      auto output = workload.RunCustom(
          algorithms[a], ratio, false, false,
          [&](gammadb::join::JoinSpec& spec) {
            spec.inner_predicate = inner_pred;
            spec.outer_predicate = outer_pred;
            // Optimizer selectivity estimate: base the memory ratio and
            // bucket count on the post-selection inner size, as the
            // paper's runs did.
            spec.estimated_inner_tuples = expected_inner;
          });
      gammadb::bench::CheckResultCount(output, expected_results);
      series[a].push_back(output.response_seconds());
    }
  }
  PrintFigure(title, {"Hybrid", "Grace", "Simple", "SortMerge"}, ratios,
              series);
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_other_queries");
  gammadb::bench::WorkloadOptions options;
  options.hpja = true;
  // The expected result cardinalities below are seed- and
  // scale-specific; exempt this workload from --smoke overrides.
  options.fixed_scale = true;
  Workload workload(LocalConfig(), options);

  // joinAselB: select 10% of the inner relation at the scan.
  RunQuery("joinAselB: A x sel_10%(Bprime), HPJA local (seconds)", workload,
           {Predicate{gammadb::wisconsin::fields::kTen,
                      Predicate::Op::kEq, 3}},
           {}, /*expected_inner=*/1059,
           1059 /* |{t in Bprime : unique1 % 10 == 3}| for seed 42 */);

  // joinCselAselB: selections on both inputs.
  RunQuery(
      "joinCselAselB: sel_50%(A) x sel_50%(Bprime), HPJA local (seconds)",
      workload,
      {Predicate{gammadb::wisconsin::fields::kFiftyPercent,
                 Predicate::Op::kEq, 0}},
      {Predicate{gammadb::wisconsin::fields::kFiftyPercent,
                 Predicate::Op::kEq, 0}},
      /*expected_inner=*/4964,
      4964 /* matching even-unique1 pairs for seed 42 */);

  std::printf("\n(the paper reports the joinABprime trends carry over to "
              "these queries;\nthe relative algorithm ordering above "
              "confirms it)\n");
  return 0;
}
