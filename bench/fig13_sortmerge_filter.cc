// Figure 13: Sort-merge with vs without bit filters (seconds)
// (paper Section 4.2; see Figures 10-13.)
#include "common/harness.h"

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig13_sortmerge_filter");
  gammadb::bench::RunFilterComparisonFigure(
      "Figure 13: Sort-merge with vs without bit filters (seconds)",
      gammadb::join::Algorithm::kSortMerge);
  return 0;
}
