// Extension experiment: fault injection and recovery cost. Sweeps
// seeded fault rates (sim/fault.h) over all four join algorithms on the
// non-HPJA joinABprime workload and reports how much response time the
// retries, retransmissions and operator restarts add on top of the
// fault-free baseline.
//
// The fault plans are pure functions of the scenario (counted events,
// no randomness), so this benchmark is as deterministic as the
// fault-free ones: its metrics JSON is byte-identical at any executor
// thread count and is gated in CI against a checked-in smoke baseline.
//
// Scenarios:
//   none        fault-free baseline
//   disk-1/16   every 16th page I/O on every node fails transiently
//   disk-1/4    every 4th page I/O fails transiently
//   disk+net    disk-1/4 plus every 16th packet to each node lost (and
//               every 32nd duplicated; the sliding-window protocol
//               recovers both)
//   crash       two mid-query node crashes -> Gamma operator restarts
#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/logging.h"
#include "sim/fault.h"

using gammadb::JsonValue;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;
using gammadb::sim::FaultKind;
using gammadb::sim::FaultPlan;

namespace {

struct Scenario {
  const char* name;
  uint64_t disk_period;    // 0 = no disk faults
  uint64_t packet_period;  // 0 = no packet faults
  bool crashes;
};

const Scenario kScenarios[] = {
    {"none", 0, 0, false},
    {"disk-1/16", 16, 0, false},
    {"disk-1/4", 4, 0, false},
    {"disk+net", 4, 16, false},
    {"crash", 0, 0, true},
};

/// Enough periodic events to cover any plausible run length; events
/// past the end of the run simply never fire.
constexpr int kEventHorizonPerNode = 1024;

FaultPlan PlanFor(const Scenario& scenario, int num_nodes) {
  FaultPlan plan;
  for (int node = 0; node < num_nodes; ++node) {
    if (scenario.disk_period > 0) {
      plan.AddPeriodic(FaultKind::kDiskReadTransient, node,
                       scenario.disk_period, kEventHorizonPerNode);
      plan.AddPeriodic(FaultKind::kDiskWriteTransient, node,
                       scenario.disk_period, kEventHorizonPerNode);
    }
    if (scenario.packet_period > 0) {
      plan.AddPeriodic(FaultKind::kPacketLoss, node, scenario.packet_period,
                       kEventHorizonPerNode);
      plan.AddPeriodic(FaultKind::kPacketDuplicate, node,
                       2 * scenario.packet_period, kEventHorizonPerNode);
    }
  }
  if (scenario.crashes) {
    gammadb::sim::FaultEvent crash;
    crash.kind = FaultKind::kNodeCrash;
    crash.node = 3 % num_nodes;
    crash.ordinal = 2;  // second query phase
    crash.phase_label = "";
    plan.Add(crash);
    crash.node = 5 % num_nodes;
    crash.ordinal = 4;  // counts restarted phases too: a second recovery
    plan.Add(crash);
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_fault_recovery");

  const Algorithm algorithms[] = {Algorithm::kSortMerge,
                                  Algorithm::kSimpleHash,
                                  Algorithm::kGraceHash, Algorithm::kHybridHash};
  const char* names[] = {"Sort-Merge", "Simple", "Grace", "Hybrid"};
  constexpr int kNumScenarios = 5;

  // Non-HPJA so redistribution puts real packets on the ring (an HPJA
  // join short-circuits them and the packet scenarios would be no-ops).
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(gammadb::bench::LocalConfig(), options);
  const int num_nodes = workload.machine().num_nodes();

  double seconds[kNumScenarios][4];
  double recovery[kNumScenarios][4];
  JsonValue table = JsonValue::MakeArray();

  std::printf("\nFault injection: joinABprime (non-HPJA), 0.5 memory, "
              "bit filters\n");
  std::printf("%-12s%14s%14s%12s%12s%10s\n", "scenario", "algorithm",
              "response", "recovery", "retries", "restarts");
  for (int s = 0; s < kNumScenarios; ++s) {
    const Scenario& scenario = kScenarios[s];
    const FaultPlan plan = PlanFor(scenario, num_nodes);
    for (int a = 0; a < 4; ++a) {
      // Re-arm per run: arming resets the event counters, so every run
      // sees the same fault schedule.
      if (plan.empty()) {
        workload.machine().DisarmFaults();
      } else {
        workload.machine().ArmFaults(plan);
      }
      auto out = workload.Run(algorithms[a], 0.5, true, false);
      gammadb::bench::CheckResultCount(
          out, gammadb::bench::ExpectedJoinABprimeResult());

      const gammadb::sim::Counters& c = out.metrics.counters;
      seconds[s][a] = out.response_seconds();
      recovery[s][a] = out.metrics.recovery_seconds;
      if (scenario.crashes) {
        GAMMA_CHECK_GE(c.operator_restarts, 1)
            << "crash scenario did not trigger a recovery";
        GAMMA_CHECK_GT(out.metrics.recovery_seconds, 0.0);
      } else {
        GAMMA_CHECK_EQ(c.operator_restarts, 0)
            << "transient faults must heal without a restart";
      }
      if (scenario.disk_period > 0) {
        GAMMA_CHECK_GT(c.io_retries, 0);
      }
      if (scenario.packet_period > 0) {
        GAMMA_CHECK_GT(c.packets_lost, 0);
      }
      if (s == 0) {
        GAMMA_CHECK(!c.AnyFaults());
      }

      std::printf("%-12s%14s%14.2f%12.3f%12lld%10lld\n", scenario.name,
                  names[a], seconds[s][a], recovery[s][a],
                  static_cast<long long>(c.io_retries),
                  static_cast<long long>(c.operator_restarts));

      JsonValue row = JsonValue::MakeObject();
      row.Set("scenario", std::string(scenario.name));
      row.Set("algorithm", std::string(names[a]));
      row.Set("response_seconds", seconds[s][a]);
      row.Set("recovery_seconds", recovery[s][a]);
      row.Set("overhead_seconds", seconds[s][a] - seconds[0][a]);
      row.Set("io_retries", c.io_retries);
      row.Set("packets_retransmitted", c.packets_retransmitted);
      row.Set("packets_duplicated", c.packets_duplicated);
      row.Set("node_crashes", c.node_crashes);
      row.Set("operator_restarts", c.operator_restarts);
      table.Append(std::move(row));
    }
  }
  workload.machine().DisarmFaults();

  std::printf("\nResponse-time overhead vs fault-free (percent):\n");
  std::printf("%-12s", "scenario");
  for (const char* name : names) std::printf("%12s", name);
  std::printf("\n");
  for (int s = 1; s < kNumScenarios; ++s) {
    std::printf("%-12s", kScenarios[s].name);
    for (int a = 0; a < 4; ++a) {
      std::printf("%11.1f%%", 100.0 * (seconds[s][a] / seconds[0][a] - 1.0));
    }
    std::printf("\n");
  }

  gammadb::bench::RecordBenchExtra("fault_recovery", std::move(table));
  return 0;
}
