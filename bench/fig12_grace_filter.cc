// Figure 12: Grace with vs without bit filters (seconds)
// (paper Section 4.2; see Figures 10-13.)
#include "common/harness.h"

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig12_grace_filter");
  gammadb::bench::RunFilterComparisonFigure(
      "Figure 12: Grace with vs without bit filters (seconds)",
      gammadb::join::Algorithm::kGraceHash);
  return 0;
}
