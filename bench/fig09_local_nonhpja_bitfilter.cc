// Figure 9: non-HPJA joins, local configuration, with bit filters.
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig09_local_nonhpja_bitfilter");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash,
      Algorithm::kSortMerge};
  const std::vector<std::string> names = {"Hybrid", "Grace", "Simple",
                                          "SortMerge"};

  std::vector<std::vector<double>> series(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto output = workload.Run(algorithms[a], ratio, /*bit_filters=*/true,
                                 /*remote_join_nodes=*/false);
      gammadb::bench::CheckResultCount(output, gammadb::bench::ExpectedJoinABprimeResult());
      series[a].push_back(output.response_seconds());
    }
  }
  PrintFigure("Figure 9: non-HPJA joins with bit filters, local (seconds)",
              names, ratios, series);
  return 0;
}
