// Figure 16: local vs remote join execution, non-HPJA joins.
//
// Expected shape (paper Section 4.3): at ratio 1.0 remote WINS for
// Hybrid and Simple (the tuples must cross the network anyway, so the
// build/probe CPU is successfully offloaded); as memory shrinks, a
// growing fraction of a Hybrid join behaves like an HPJA join and the
// curves cross in favour of local. Grace stays local-favoured by a
// constant margin; Simple stays remote-favoured (the changed hash
// function prevents it from ever regaining HPJA behaviour).
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::PrintFigure;
using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig16_local_vs_remote_nonhpja");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(RemoteConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash};
  const std::vector<std::string> names = {
      "Hybrid/local",  "Hybrid/remote", "Grace/local",
      "Grace/remote",  "Simple/local",  "Simple/remote"};

  std::vector<std::vector<double>> series(6);
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto local = workload.Run(algorithms[a], ratio, false, /*remote=*/false);
      auto remote = workload.Run(algorithms[a], ratio, false, /*remote=*/true);
      gammadb::bench::CheckResultCount(local, gammadb::bench::ExpectedJoinABprimeResult());
      gammadb::bench::CheckResultCount(remote, gammadb::bench::ExpectedJoinABprimeResult());
      series[2 * a].push_back(local.response_seconds());
      series[2 * a + 1].push_back(remote.response_seconds());
    }
  }
  PrintFigure("Figure 16: local vs remote joins, non-HPJA (seconds)", names,
              ratios, series);
  return 0;
}
