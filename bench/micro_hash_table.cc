// Microbenchmark for the cache-conscious open-addressing join hash
// table (src/join/hash_table.h): build, scalar probe, batched probe
// (the prefetching ProbeBatch the join engines' hot path uses), and
// histogram-guided eviction, at a table deliberately larger than the
// last-level cache so the prefetch distance matters.
//
// Tuple/match/eviction counts are deterministic and gated against
// bench/baselines/smoke_micro_hash.json; real_seconds and the derived
// throughputs are host metrics, reported but never gated
// (docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/harness.h"
#include "common/hash.h"
#include "common/logging.h"
#include "join/hash_table.h"
#include "sim/machine.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace {

using gammadb::JsonValue;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "micro_hash_table");

  // 256k 32-byte tuples = 8 MB of arena plus the slot array: well past
  // the last-level cache of any host this runs on. Smoke scale keeps
  // the same shape in a fraction of a second.
  const size_t num_tuples =
      gammadb::bench::BenchScaleOverridden() ? 16384 : 262144;
  const size_t num_probes = 4 * num_tuples;
  // ~1 in 9 probe keys misses the table entirely.
  const size_t key_space = num_tuples + num_tuples / 8;

  gammadb::sim::Machine machine(
      gammadb::sim::MachineConfig{1, 0, gammadb::sim::CostModel{}, 1});
  const gammadb::storage::Schema schema(
      {gammadb::storage::Field::Int32("k"),
       gammadb::storage::Field::Char("pad", 28)});
  machine.BeginPhase("micro_hash_table");
  gammadb::join::JoinHashTable table(&machine.node(0), &schema, 0,
                                     schema.tuple_bytes() * num_tuples);

  // --- build ---------------------------------------------------------
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_tuples; ++i) {
    const int32_t key = static_cast<int32_t>(i);
    gammadb::storage::Tuple t(schema.tuple_bytes());
    t.SetInt32(schema, 0, key);
    GAMMA_CHECK(table.Insert(std::move(t), gammadb::HashJoinAttribute(key)));
  }
  const double build_seconds = Seconds(start);
  GAMMA_CHECK_EQ(table.size(), num_tuples);

  // --- scalar probe --------------------------------------------------
  size_t scalar_matches = 0;
  start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < num_probes; ++i) {
    const int32_t key = static_cast<int32_t>(i % key_space);
    table.Probe(key, gammadb::HashJoinAttribute(key),
                [&](const gammadb::storage::Tuple&) { ++scalar_matches; });
  }
  const double scalar_seconds = Seconds(start);

  // --- batched probe (the engines' hot path) -------------------------
  constexpr size_t kBatch = gammadb::join::JoinHashTable::kProbeBatchMax;
  int32_t keys[kBatch];
  uint64_t hashes[kBatch];
  size_t batched_matches = 0;
  start = std::chrono::steady_clock::now();
  for (size_t base = 0; base < num_probes; base += kBatch) {
    const size_t count = std::min(kBatch, num_probes - base);
    for (size_t j = 0; j < count; ++j) {
      keys[j] = static_cast<int32_t>((base + j) % key_space);
      hashes[j] = gammadb::HashJoinAttribute(keys[j]);
    }
    table.ProbeBatch(keys, hashes, count,
                     [&](size_t, const gammadb::storage::Tuple&) {
                       ++batched_matches;
                     });
  }
  const double batched_seconds = Seconds(start);
  GAMMA_CHECK_EQ(batched_matches, scalar_matches)
      << "ProbeBatch diverged from scalar Probe";

  // --- eviction (the overflow protocol's bulk operation) -------------
  const uint64_t cutoff = table.histogram().CutoffForFraction(0.5);
  start = std::chrono::steady_clock::now();
  const auto evicted = table.EvictAtOrAbove(cutoff);
  const double evict_seconds = Seconds(start);
  GAMMA_CHECK_EQ(evicted.size() + table.size(), num_tuples);

  machine.EndPhase().IgnoreError();

  const double mt = 1e-6;  // tuples -> millions of tuples
  std::printf("\nHash-table micro: %zu tuples, %zu probes\n", num_tuples,
              num_probes);
  std::printf("%-14s%12s%14s%14s\n", "stage", "tuples", "real sec",
              "Mtuples/s");
  std::printf("%-14s%12zu%14.4f%14.1f\n", "build", num_tuples, build_seconds,
              mt * static_cast<double>(num_tuples) / build_seconds);
  std::printf("%-14s%12zu%14.4f%14.1f\n", "probe_scalar", num_probes,
              scalar_seconds,
              mt * static_cast<double>(num_probes) / scalar_seconds);
  std::printf("%-14s%12zu%14.4f%14.1f\n", "probe_batched", num_probes,
              batched_seconds,
              mt * static_cast<double>(num_probes) / batched_seconds);
  std::printf("%-14s%12zu%14.4f%14.1f\n", "evict", evicted.size(),
              evict_seconds,
              mt * static_cast<double>(evicted.size()) / evict_seconds);
  std::printf("batched/scalar probe speedup: %.2fx\n",
              scalar_seconds / batched_seconds);

  JsonValue rows = JsonValue::MakeArray();
  const auto add_row = [&rows](const char* stage, size_t tuples,
                               double seconds) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("stage", JsonValue(stage));
    row.Set("tuples", JsonValue(tuples));
    row.Set("real_seconds", JsonValue(seconds));
    rows.Append(std::move(row));
  };
  add_row("build", num_tuples, build_seconds);
  add_row("probe_scalar", num_probes, scalar_seconds);
  add_row("probe_batched", num_probes, batched_seconds);
  add_row("evict", evicted.size(), evict_seconds);
  JsonValue extra = JsonValue::MakeObject();
  extra.Set("stages", std::move(rows));
  extra.Set("matches", JsonValue(scalar_matches));
  gammadb::bench::RecordBenchExtra("micro_hash_table", std::move(extra));
  return 0;
}
