// Table 3 (Section 4.4): joinABprime under non-uniform join-attribute
// distributions. XY = inner/outer distribution, U = uniform (unique1),
// N = normal(50000, 750). Response times at 100% and 17% memory, with
// and without bit filters.
//
// Expected shape: NU hurts the hash joins (uneven distribution plus
// duplicate chains; overflow resolution at 17%) but HELPS sort-merge
// (the skewed inner lets the merge stop before reading all of the
// outer relation); UN is close to UU; Hybrid handles UN well. NN is
// reported only by its exploded cardinality, as in the paper.
// With `--zipf <theta>` an extra section compares static vs adaptive
// repartitioning (docs/skew.md) on a Zipf(theta) join-attribute
// distribution for all four algorithms.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/harness.h"
#include "common/logging.h"
#include "common/strings.h"

using gammadb::bench::SkewBench;
using gammadb::bench::ZipfBench;
using gammadb::join::Algorithm;

namespace {

/// Extracts `--zipf <theta>` / `--zipf=<theta>` from argv (InitBench
/// aborts on flags it does not know, so this runs first).
std::optional<double> TakeZipfFlag(int& argc, char** argv) {
  std::optional<double> theta;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--zipf") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--zipf requires a value\n");
        std::exit(2);
      }
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--zipf=", 7) == 0) {
      value = argv[i] + 7;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    double parsed = 0.0;
    if (!gammadb::ParseDouble(value, &parsed) || parsed < 0) {
      std::fprintf(stderr, "--zipf: '%s' is not a valid theta\n", value);
      std::exit(2);
    }
    theta = parsed;
  }
  argc = out;
  return theta;
}

void RunZipfSection(double theta) {
  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSortMerge,
                                  Algorithm::kSimpleHash};
  const char* names[] = {"Hybrid", "Grace", "Sort-Merge", "Simple"};
  ZipfBench bench(theta);
  std::printf("\nZipf(%.2f) join: static vs adaptive repartitioning\n", theta);
  std::printf("%-12s%14s%14s%14s\n", "Algorithm", "Static", "Adaptive",
              "MovedTuples");
  for (size_t a = 0; a < 4; ++a) {
    const auto fixed = bench.Run(algorithms[a], /*adaptive=*/false);
    const auto adaptive = bench.Run(algorithms[a], /*adaptive=*/true);
    GAMMA_CHECK_EQ(fixed.stats.result_tuples, adaptive.stats.result_tuples);
    std::printf("%-12s%14.2f%14.2f%14lld\n", names[a],
                fixed.response_seconds(), adaptive.response_seconds(),
                static_cast<long long>(adaptive.stats.rebalance_moved_tuples));
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<double> zipf_theta = TakeZipfFlag(argc, argv);
  gammadb::bench::InitBench(argc, argv, "table3_skew");
  SkewBench bench;

  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSortMerge,
                                  Algorithm::kSimpleHash};
  const char* names[] = {"Hybrid", "Grace", "Sort-Merge", "Simple"};
  const SkewBench::JoinType types[] = {SkewBench::JoinType::kUU,
                                       SkewBench::JoinType::kNU,
                                       SkewBench::JoinType::kUN};

  for (bool filters : {false, true}) {
    std::printf("\nTable 3 (%s bit filters): response seconds\n",
                filters ? "with" : "without");
    std::printf("%-12s", "Algorithm");
    for (double mem : {1.0, 0.17}) {
      for (auto type : types) {
        std::printf("%9s@%-3.0f%%", SkewBench::JoinTypeName(type), mem * 100);
      }
    }
    std::printf("\n");
    for (size_t a = 0; a < 4; ++a) {
      std::printf("%-12s", names[a]);
      for (double mem : {1.0, 0.17}) {
        for (auto type : types) {
          auto out = bench.Run(algorithms[a], type, mem, filters);
          std::printf("%14.2f", out.response_seconds());
          std::fflush(stdout);
        }
      }
      std::printf("\n");
    }
  }

  // Observations the paper reports alongside Table 3.
  auto nu = bench.Run(Algorithm::kHybridHash, SkewBench::JoinType::kNU, 1.0,
                      false);
  std::printf("\nNU result tuples: %zu (paper: 10,000)\n",
              nu.stats.result_tuples);
  std::printf("NU hash chains: average %.1f, max %d (paper: 3.3 avg, 16 max)\n",
              nu.stats.avg_chain_length, nu.stats.max_chain_length);
  auto un = bench.Run(Algorithm::kHybridHash, SkewBench::JoinType::kUN, 1.0,
                      false);
  std::printf("UN result tuples: %zu (paper: 10,036)\n",
              un.stats.result_tuples);
  auto nn = bench.Run(Algorithm::kHybridHash, SkewBench::JoinType::kNN, 1.0,
                      false);
  std::printf("NN result tuples: %zu (paper: 368,474 — not comparable, "
              "excluded from the table)\n",
              nn.stats.result_tuples);

  if (zipf_theta) RunZipfSection(*zipf_theta);
  return 0;
}
