// Ablation: which cost-model ingredients carry the paper's qualitative
// results? Each section disables one modeled mechanism and reports the
// experiment that depends on it.
//
//  1. Receive-path protocol asymmetry -> Figure 15's "local beats
//     remote for HPJA joins". With symmetric cheap packets, offloading
//     always wins and the result inverts.
//  2. Short-circuiting of same-node messages -> the Figure 5 vs 6
//     HPJA/non-HPJA gap. Charging local packets like remote ones
//     erases it.
//  3. Scheduling cost per operator phase -> Grace's slight rise with
//     the bucket count. For free scheduling, Grace becomes flat.
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

namespace {

double Run(Workload& w, Algorithm a, double ratio, bool remote) {
  auto output = w.Run(a, ratio, false, remote);
  gammadb::bench::CheckResultCount(output, gammadb::bench::ExpectedJoinABprimeResult());
  return output.response_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ablation_cost_model");
  // --- 1. Protocol asymmetry ---
  {
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload baseline(RemoteConfig(), options);

    auto symmetric_config = RemoteConfig();
    symmetric_config.cost.net_remote_packet_recv_cpu_seconds =
        symmetric_config.cost.net_remote_packet_send_cpu_seconds;
    symmetric_config.cost.cpu_receive_tuple_seconds = 0;
    Workload symmetric(symmetric_config, options);

    std::printf("\nAblation 1: receive-path asymmetry (Hybrid HPJA @ 0.5)\n");
    std::printf("  %-22s local %7.2fs  remote %7.2fs -> local %s\n",
                "asymmetric (default)",
                Run(baseline, Algorithm::kHybridHash, 0.5, false),
                Run(baseline, Algorithm::kHybridHash, 0.5, true),
                Run(baseline, Algorithm::kHybridHash, 0.5, false) <
                        Run(baseline, Algorithm::kHybridHash, 0.5, true)
                    ? "WINS (paper)"
                    : "loses");
    std::printf("  %-22s local %7.2fs  remote %7.2fs -> local %s\n",
                "symmetric (ablated)",
                Run(symmetric, Algorithm::kHybridHash, 0.5, false),
                Run(symmetric, Algorithm::kHybridHash, 0.5, true),
                Run(symmetric, Algorithm::kHybridHash, 0.5, false) <
                        Run(symmetric, Algorithm::kHybridHash, 0.5, true)
                    ? "wins"
                    : "LOSES (result inverted)");
  }

  // --- 2. Short-circuiting ---
  {
    gammadb::bench::WorkloadOptions hpja_options, non_options;
    hpja_options.hpja = true;
    non_options.hpja = false;

    auto no_shortcut = RemoteConfig();
    no_shortcut.cost.net_local_packet_cpu_seconds =
        no_shortcut.cost.net_remote_packet_send_cpu_seconds +
        no_shortcut.cost.net_remote_packet_recv_cpu_seconds;

    Workload hpja_base(RemoteConfig(), hpja_options);
    Workload non_base(RemoteConfig(), non_options);
    Workload hpja_ablated(no_shortcut, hpja_options);
    Workload non_ablated(no_shortcut, non_options);

    const double gap_base =
        Run(non_base, Algorithm::kGraceHash, 0.5, false) -
        Run(hpja_base, Algorithm::kGraceHash, 0.5, false);
    const double gap_ablated =
        Run(non_ablated, Algorithm::kGraceHash, 0.5, false) -
        Run(hpja_ablated, Algorithm::kGraceHash, 0.5, false);
    std::printf("\nAblation 2: short-circuit discount (Grace local @ 0.5)\n");
    std::printf("  HPJA advantage with short-circuiting: %6.2fs (paper: "
                "large)\n", gap_base);
    std::printf("  HPJA advantage without it:            %6.2fs (wire time "
                "only)\n", gap_ablated);
  }

  // --- 3. Scheduling cost ---
  {
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload baseline(RemoteConfig(), options);

    auto free_sched = RemoteConfig();
    free_sched.cost.sched_control_message_seconds = 0;
    Workload ablated(free_sched, options);

    const double rise_base = Run(baseline, Algorithm::kGraceHash, 0.1, false) -
                             Run(baseline, Algorithm::kGraceHash, 1.0, false);
    const double rise_ablated =
        Run(ablated, Algorithm::kGraceHash, 0.1, false) -
        Run(ablated, Algorithm::kGraceHash, 1.0, false);
    std::printf("\nAblation 3: per-bucket scheduling overhead (Grace rise "
                "1.0 -> 0.1)\n");
    std::printf("  with scheduling cost:    %6.2fs rise over 9 extra "
                "buckets\n", rise_base);
    std::printf("  free scheduling:         %6.2fs rise\n", rise_ablated);
  }
  return 0;
}
