// Figure 15: local vs remote join execution, HPJA joins.
//
// Expected shape (paper Section 4.3): local wins for Grace and Hybrid
// at all ratios (bucket-joining short-circuits locally); Simple starts
// local-favoured at ratio 1.0 and crosses over as overflow turns it
// into a non-HPJA join.
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::PrintFigure;
using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig15_local_vs_remote_hpja");
  gammadb::bench::WorkloadOptions options;
  options.hpja = true;
  // One 16-node machine; "local" runs join on the disk nodes, "remote"
  // on the diskless nodes.
  Workload workload(RemoteConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash};
  const std::vector<std::string> names = {
      "Hybrid/local",  "Hybrid/remote", "Grace/local",
      "Grace/remote",  "Simple/local",  "Simple/remote"};

  std::vector<std::vector<double>> series(6);
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto local = workload.Run(algorithms[a], ratio, false, /*remote=*/false);
      auto remote = workload.Run(algorithms[a], ratio, false, /*remote=*/true);
      gammadb::bench::CheckResultCount(local, gammadb::bench::ExpectedJoinABprimeResult());
      gammadb::bench::CheckResultCount(remote, gammadb::bench::ExpectedJoinABprimeResult());
      series[2 * a].push_back(local.response_seconds());
      series[2 * a + 1].push_back(remote.response_seconds());
    }
  }
  PrintFigure("Figure 15: local vs remote joins, HPJA (seconds)", names,
              ratios, series);
  return 0;
}
