// Figure 6: joinABprime, local configuration, join attribute is NOT the
// partitioning attribute (non-HPJA): relations are hash-declustered on
// unique1 but joined on unique2.
//
// Expected shape: identical to Figure 5 shifted up by a near-constant
// offset — only 1/8th of the tuples short-circuit the network during
// (re)partitioning (paper Section 4.1).
#include "common/harness.h"

using gammadb::bench::IntegralBucketRatios;
using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig06_local_nonhpja");
  gammadb::bench::WorkloadOptions options;
  options.hpja = false;
  Workload workload(LocalConfig(), options);

  const std::vector<double> ratios = IntegralBucketRatios();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kHybridHash, Algorithm::kGraceHash, Algorithm::kSimpleHash,
      Algorithm::kSortMerge};
  const std::vector<std::string> names = {"Hybrid", "Grace", "Simple",
                                          "SortMerge"};

  std::vector<std::vector<double>> series(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    for (double ratio : ratios) {
      auto output = workload.Run(algorithms[a], ratio, /*bit_filters=*/false,
                                 /*remote_join_nodes=*/false);
      gammadb::bench::CheckResultCount(output, gammadb::bench::ExpectedJoinABprimeResult());
      series[a].push_back(output.response_seconds());
    }
  }
  PrintFigure("Figure 6: non-HPJA joins, local configuration (seconds)",
              names, ratios, series);
  return 0;
}
