// Figure 7: Hybrid hash-join between memory ratios 0.5 and 1.0 — the
// pessimistic/optimistic trade-off (paper Section 4.1).
//
// Three series:
//  * optimal:     the straight line between the measured optima at 0.5
//                 (two perfectly-sized buckets) and 1.0 (pure in-memory),
//                 i.e. performance under perfect partitioning;
//  * two-bucket:  the pessimistic choice — always run with one extra
//                 bucket (flat, since bucket sizes don't change);
//  * overflow:    the optimistic choice — one bucket with exactly
//                 ratio * |R| of hash-table space (no slack), relying on
//                 the Simple-hash overflow mechanism.
//
// Expected shape: the overflow curve starts at the optimal point at 1.0
// and deteriorates below the two-bucket line as memory shrinks (the
// repeated table searches, >10%-forced evictions and extra I/O the
// paper describes).
#include "common/harness.h"

using gammadb::bench::LocalConfig;
using gammadb::bench::PrintFigure;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "fig07_hybrid_overflow");
  gammadb::bench::WorkloadOptions options;
  options.hpja = true;
  Workload workload(LocalConfig(), options);

  std::vector<double> ratios;
  for (double r = 1.0; r >= 0.4999; r -= 0.05) ratios.push_back(r);

  // Endpoints for the optimal line (default engine settings).
  const double at_full =
      workload.Run(Algorithm::kHybridHash, 1.0, false, false)
          .response_seconds();
  const double at_half =
      workload.Run(Algorithm::kHybridHash, 0.5, false, false)
          .response_seconds();

  std::vector<double> optimal, two_bucket, overflow;
  for (double ratio : ratios) {
    optimal.push_back(at_full + (1.0 - ratio) / 0.5 * (at_half - at_full));

    auto pessimistic = workload.RunCustom(
        Algorithm::kHybridHash, ratio, false, false,
        [](gammadb::join::JoinSpec& spec) { spec.num_buckets = 2; });
    gammadb::bench::CheckResultCount(pessimistic, gammadb::bench::ExpectedJoinABprimeResult());
    two_bucket.push_back(pessimistic.response_seconds());

    auto optimistic = workload.RunCustom(
        Algorithm::kHybridHash, ratio, false, false,
        [](gammadb::join::JoinSpec& spec) {
          spec.num_buckets = 1;
          // A small page-granularity headroom (instead of the default
          // variance-absorbing slack) so that no eviction happens at
          // ratio 1.0, as in the paper, while overflow sets in just
          // below it.
          spec.memory_slack = 0.08;
        });
    gammadb::bench::CheckResultCount(optimistic, gammadb::bench::ExpectedJoinABprimeResult());
    overflow.push_back(optimistic.response_seconds());
  }

  PrintFigure("Figure 7: Hybrid between 0.5 and 1.0 memory (seconds)",
              {"Optimal", "TwoBuckets", "Overflow"}, ratios,
              {optimal, two_bucket, overflow});
  return 0;
}
