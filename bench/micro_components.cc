// Microbenchmarks (google-benchmark) for the performance-critical
// components: these measure REAL wall-clock cost of the library's data
// structures (as opposed to the simulated response times the figure
// benches report).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/histogram.h"
#include "common/random.h"
#include "gamma/bit_filter.h"
#include "gamma/split_table.h"
#include "join/hash_table.h"
#include "sim/exchange.h"
#include "sim/machine.h"
#include "storage/btree.h"
#include "storage/external_sort.h"
#include "storage/heap_file.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

sim::Machine& BenchMachine() {
  static sim::Machine* machine = [] {
    sim::MachineConfig config;
    config.num_disk_nodes = 1;
    return new sim::Machine(config);
  }();
  return *machine;
}

const storage::Schema& BenchSchema() {
  static const storage::Schema* schema =
      new storage::Schema(wisconsin::WisconsinSchema());
  return *schema;
}

std::vector<storage::Tuple> BenchTuples(uint32_t n) {
  wisconsin::GenOptions gen;
  gen.cardinality = n;
  gen.seed = 7;
  return wisconsin::Generate(gen);
}

void BM_HashTableInsert(benchmark::State& state) {
  const auto tuples = BenchTuples(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    join::JoinHashTable table(&BenchMachine().node(0), &BenchSchema(),
                              wisconsin::fields::kUnique1,
                              static_cast<uint64_t>(tuples.size()) * 208 * 2);
    for (const auto& t : tuples) {
      const uint64_t h = HashJoinAttribute(
          t.GetInt32(BenchSchema(), wisconsin::fields::kUnique1));
      benchmark::DoNotOptimize(table.Insert(t, h));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_HashTableInsert)->Arg(1000)->Arg(10000);

void BM_HashTableProbe(benchmark::State& state) {
  const auto tuples = BenchTuples(static_cast<uint32_t>(state.range(0)));
  join::JoinHashTable table(&BenchMachine().node(0), &BenchSchema(),
                            wisconsin::fields::kUnique1,
                            static_cast<uint64_t>(tuples.size()) * 208 * 2);
  for (const auto& t : tuples) {
    table.Insert(t, HashJoinAttribute(t.GetInt32(
                        BenchSchema(), wisconsin::fields::kUnique1)));
  }
  for (auto _ : state) {
    size_t matches = 0;
    for (const auto& t : tuples) {
      const int32_t key =
          t.GetInt32(BenchSchema(), wisconsin::fields::kUnique1);
      table.Probe(key, HashJoinAttribute(key),
                  [&](const storage::Tuple&) { ++matches; });
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_HashTableProbe)->Arg(1000)->Arg(10000);

void BM_BitFilter(benchmark::State& state) {
  db::BitFilterSet filter(8);
  Rng rng(1);
  for (int i = 0; i < 1200; ++i) filter.Set(i % 8, rng.Next());
  for (auto _ : state) {
    uint64_t h = 0x1234;
    int hits = 0;
    for (int i = 0; i < 1000; ++i) {
      h = Mix64(h + 1);
      hits += filter.MayContain(static_cast<int>(h % 8), h) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BitFilter);

void BM_SplitTableRoute(benchmark::State& state) {
  const db::SplitTable table = db::SplitTable::HybridPartitioning(
      {8, 9, 10, 11, 12, 13, 14, 15}, {0, 1, 2, 3, 4, 5, 6, 7}, 8);
  for (auto _ : state) {
    uint64_t h = 99;
    int sum = 0;
    for (int i = 0; i < 1000; ++i) {
      h = Mix64(h);
      sum += table.Route(h).node;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SplitTableRoute);

void BM_ExternalSort(benchmark::State& state) {
  const auto tuples = BenchTuples(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    storage::ExternalSort sort(&BenchMachine().node(0), &BenchSchema(),
                               wisconsin::fields::kUnique1,
                               /*memory_pages=*/8);
    for (const auto& t : tuples) GAMMA_CHECK_OK(sort.Add(t));
    GAMMA_CHECK_OK(sort.FinishInput());
    auto stream = sort.OpenStream();
    storage::Tuple t;
    size_t n = 0;
    while (stream->Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_ExternalSort)->Arg(2000)->Arg(20000);

void BM_HashHistogramCutoff(benchmark::State& state) {
  HashHistogram histogram;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) histogram.Add(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.CutoffForFraction(0.10));
  }
}
BENCHMARK(BM_HashHistogramCutoff);

void BM_WisconsinGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BenchTuples(static_cast<uint32_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WisconsinGenerate)->Arg(10000);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    storage::BPlusTree tree(&BenchMachine().node(0));
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(static_cast<int32_t>(rng.Uniform(1u << 20)),
                  static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000);

void BM_BPlusTreeSearch(benchmark::State& state) {
  storage::BPlusTree tree(&BenchMachine().node(0));
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    tree.Insert(static_cast<int32_t>(rng.Uniform(1u << 20)),
                static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    size_t hits = 0;
    for (int i = 0; i < 1000; ++i) {
      hits += tree.Search(static_cast<int32_t>(rng.Uniform(1u << 20))).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BPlusTreeSearch);

void BM_HeapFileAppendScan(benchmark::State& state) {
  const auto tuples = BenchTuples(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    storage::HeapFile file(&BenchMachine().node(0), &BenchSchema(), "bm");
    for (const auto& t : tuples) GAMMA_CHECK_OK(file.Append(t));
    GAMMA_CHECK_OK(file.FlushAppends());
    auto scanner = file.Scan();
    storage::Tuple t;
    size_t n = 0;
    while (scanner.Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
    file.Free();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()) * 2);
}
BENCHMARK(BM_HeapFileAppendScan)->Arg(10000);

// Per-(src, dst) exchange lanes under the executor: every node sends
// its tuples round-robin, every node drains its inbox. Arg = executor
// threads, so /1 vs /4 shows the pooled send path's wall-clock gain.
void BM_ExchangeThroughput(benchmark::State& state) {
  sim::MachineConfig config;
  config.num_disk_nodes = 8;
  config.num_threads = static_cast<int>(state.range(0));
  sim::Machine machine(config);
  const std::vector<int> nodes = machine.DiskNodeIds();
  const auto tuples = BenchTuples(2000);
  std::vector<size_t> received(nodes.size());
  for (auto _ : state) {
    sim::Exchange<storage::Tuple> exchange(&machine);
    machine.RunOnNodes(nodes, [&](sim::Node& n) {
      exchange.ReserveRow(n.id(), tuples.size());
      size_t dest = static_cast<size_t>(n.id());
      for (const auto& t : tuples) {
        storage::Tuple copy = t;
        const uint32_t bytes = copy.size();
        exchange.Send(n.id(), nodes[dest++ % nodes.size()], std::move(copy),
                      bytes);
      }
    });
    machine.RunOnNodes(nodes, [&](sim::Node& n) {
      received[static_cast<size_t>(n.id())] =
          exchange.TakeInbox(n.id()).size();
    });
    benchmark::DoNotOptimize(received.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()) *
                          static_cast<int64_t>(nodes.size()));
}
BENCHMARK(BM_ExchangeThroughput)->Arg(1)->Arg(4);

// Wisconsin tuples (208 bytes) live in the small-buffer-optimized
// inline storage; join results (416 bytes) take the heap path.
void BM_TupleCopyInline(benchmark::State& state) {
  const auto tuples = BenchTuples(1000);
  for (auto _ : state) {
    for (const auto& t : tuples) {
      storage::Tuple copy = t;
      benchmark::DoNotOptimize(copy.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_TupleCopyInline);

void BM_TupleCopyHeap(benchmark::State& state) {
  const auto base = BenchTuples(1000);
  std::vector<storage::Tuple> tuples;
  tuples.reserve(base.size());
  for (const auto& t : base) tuples.push_back(storage::Tuple::Concat(t, t));
  for (auto _ : state) {
    for (const auto& t : tuples) {
      storage::Tuple copy = t;
      benchmark::DoNotOptimize(copy.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_TupleCopyHeap);

void BM_TupleMoveInline(benchmark::State& state) {
  auto pool = BenchTuples(1000);
  for (auto _ : state) {
    std::vector<storage::Tuple> sink;
    sink.reserve(pool.size());
    for (auto& t : pool) sink.push_back(std::move(t));
    pool = std::move(sink);
    benchmark::DoNotOptimize(pool.data());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TupleMoveInline);

void BM_WisconsinStringField(benchmark::State& state) {
  const auto tuples = BenchTuples(1000);
  for (auto _ : state) {
    uint64_t h = 0;
    for (const auto& t : tuples) {
      h ^= HashBytes(t.GetChars(BenchSchema(), wisconsin::fields::kStringU1));
    }
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WisconsinStringField);

}  // namespace
}  // namespace gammadb

BENCHMARK_MAIN();
