// Extension: skew-aware adaptive repartitioning (docs/skew.md) — not a
// paper figure. Both join columns follow a Zipf(theta) distribution, so
// under static hash partitioning the heaviest values pile onto a few
// join processors and the phase time is the hot node's time. The
// adaptive runs histogram the building relation, install a weighted
// split table that spreads/replicates the heavy hash bins, and must
// beat the static runs for ALL FOUR algorithms once the skew is real
// (theta >= 1.0). theta 0 is uniform: the plan never fires there and
// the static/adaptive columns must agree exactly.
#include <string>
#include <vector>

#include "common/harness.h"
#include "common/logging.h"

using gammadb::bench::ZipfBench;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ext_skew_adaptive");

  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSortMerge,
                                  Algorithm::kSimpleHash};
  const char* names[] = {"Hybrid", "Grace", "SortMerge", "Simple"};
  const std::vector<double> thetas = {0.0, 0.5, 1.0};

  std::vector<std::string> series;
  for (const char* name : names) {
    series.push_back(std::string(name) + "-static");
    series.push_back(std::string(name) + "-adapt");
  }
  std::vector<std::vector<double>> seconds(series.size());

  for (double theta : thetas) {
    ZipfBench bench(theta);
    for (size_t a = 0; a < 4; ++a) {
      const auto fixed = bench.Run(algorithms[a], /*adaptive=*/false);
      const auto adaptive = bench.Run(algorithms[a], /*adaptive=*/true);
      // Correctness first: replication must not duplicate or drop
      // result tuples.
      GAMMA_CHECK_EQ(fixed.stats.result_tuples, adaptive.stats.result_tuples)
          << names[a] << " theta=" << theta;
      if (theta >= 1.0) {
        GAMMA_CHECK_GT(adaptive.stats.rebalance_plans, 0)
            << names[a] << " theta=" << theta
            << ": expected a rebalance plan to fire";
        GAMMA_CHECK_LT(adaptive.response_seconds(), fixed.response_seconds())
            << names[a] << " theta=" << theta
            << ": adaptive must beat static under real skew";
      }
      seconds[2 * a].push_back(fixed.response_seconds());
      seconds[2 * a + 1].push_back(adaptive.response_seconds());
    }
  }

  gammadb::bench::PrintFigure(
      "Adaptive repartitioning under Zipf(theta) skew: response seconds",
      series, thetas, seconds);
  return 0;
}
