// Ablation: disk page size. The paper runs on 8 KB pages and notes its
// Figure 15 Simple-hash crossover "support[s] those reported in
// [DEWI88] for Gamma using 4 kbyte disk pages" — the qualitative
// results should be page-size independent. This bench re-runs the key
// comparisons at 4 KB and 16 KB pages.
#include <cstdio>

#include "common/harness.h"

using gammadb::bench::RemoteConfig;
using gammadb::bench::Workload;
using gammadb::join::Algorithm;

int main(int argc, char** argv) {
  gammadb::bench::InitBench(argc, argv, "ablation_page_size");
  for (uint32_t page_bytes : {4096u, 8192u, 16384u}) {
    auto config = RemoteConfig();
    config.cost.page_bytes = page_bytes;
    gammadb::bench::WorkloadOptions options;
    options.hpja = true;
    Workload workload(config, options);

    const auto seconds = [&](Algorithm a, double ratio, bool remote) {
      auto out = workload.Run(a, ratio, false, remote);
      gammadb::bench::CheckResultCount(out, gammadb::bench::ExpectedJoinABprimeResult());
      return out.response_seconds();
    };

    std::printf("\n=== %u-byte pages ===\n", page_bytes);
    std::printf("  Hybrid @1.0 %7.2fs | @0.5 %7.2fs | @0.1 %7.2fs\n",
                seconds(Algorithm::kHybridHash, 1.0, false),
                seconds(Algorithm::kHybridHash, 0.5, false),
                seconds(Algorithm::kHybridHash, 0.1, false));
    const double sm = seconds(Algorithm::kSortMerge, 0.5, false);
    const double grace = seconds(Algorithm::kGraceHash, 0.5, false);
    std::printf("  ordering @0.5: Hybrid %.1f < Grace %.1f < SortMerge %.1f "
                "-> %s\n",
                seconds(Algorithm::kHybridHash, 0.5, false), grace, sm,
                grace < sm ? "preserved" : "BROKEN");
    // The Figure 15 Simple crossover (local wins at 1.0, remote below).
    const double local_full = seconds(Algorithm::kSimpleHash, 1.0, false);
    const double remote_full = seconds(Algorithm::kSimpleHash, 1.0, true);
    const double local_low = seconds(Algorithm::kSimpleHash, 0.2, false);
    const double remote_low = seconds(Algorithm::kSimpleHash, 0.2, true);
    std::printf("  Simple local/remote @1.0: %.1f/%.1f (%s), @0.2: %.1f/%.1f "
                "(%s) -> crossover %s\n",
                local_full, remote_full,
                local_full < remote_full ? "local wins" : "remote wins",
                local_low, remote_low,
                local_low < remote_low ? "local wins" : "remote wins",
                local_full < remote_full && remote_low < local_low
                    ? "preserved"
                    : "BROKEN");
  }
  std::printf("\n(as in DEWI88, the qualitative results are page-size "
              "independent)\n");
  return 0;
}
