#include "wisconsin/queries.h"

#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"

namespace gammadb::wisconsin {
namespace {

class QueriesTest : public ::testing::Test {
 protected:
  QueriesTest() : machine_(gammadb::testing::SmallConfig(4)) {
    DatasetOptions options;
    options.outer_cardinality = 3000;
    options.inner_cardinality = 300;
    options.seed = 33;
    auto loaded = LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  join::JoinOutput MustRun(join::JoinSpec spec) {
    spec.result_name = "q_result";
    auto output = join::ExecuteJoin(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK_OK(catalog_.Drop("q_result"));
    return std::move(output).value();
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(QueriesTest, JoinABprimeProducesInnerCardinality) {
  QueryOptions options;
  auto output = MustRun(JoinABprimeSpec(options));
  EXPECT_EQ(output.stats.result_tuples, 300u);
}

TEST_F(QueriesTest, HpjaFlagSwitchesJoinAttribute) {
  QueryOptions options;
  options.hpja = false;
  const join::JoinSpec spec = JoinABprimeSpec(options);
  EXPECT_EQ(spec.inner_field, fields::kUnique2);
  EXPECT_EQ(spec.outer_field, fields::kUnique2);
  EXPECT_EQ(MustRun(spec).stats.result_tuples, 300u);
}

TEST_F(QueriesTest, JoinAselBSelectsATenth) {
  // The inner sample's ten==3 population for this seed.
  size_t expected = 0;
  auto inner = catalog_.Get("Bprime");
  ASSERT_TRUE(inner.ok());
  for (const auto& t : (*inner)->PeekAllTuples()) {
    if (t.GetInt32((*inner)->schema(), fields::kTen) == 3) ++expected;
  }
  QueryOptions options;
  options.memory_ratio = 0.5;
  auto output = MustRun(JoinAselBSpec(options, expected));
  EXPECT_EQ(output.stats.result_tuples, expected);
  // Bucket count derives from the post-selection size: one bucket
  // suffices at ratio 0.5 of ~30 tuples... the hint keeps it small.
  EXPECT_LE(output.stats.num_buckets, 2);
}

TEST_F(QueriesTest, JoinCselAselBSelectsBothSides) {
  size_t expected_inner = 0;
  auto inner = catalog_.Get("Bprime");
  ASSERT_TRUE(inner.ok());
  for (const auto& t : (*inner)->PeekAllTuples()) {
    if (t.GetInt32((*inner)->schema(), fields::kFiftyPercent) == 0) {
      ++expected_inner;
    }
  }
  QueryOptions options;
  auto output = MustRun(JoinCselAselBSpec(options, expected_inner));
  // Every selected inner tuple (even unique1) matches exactly its own
  // outer row, which also passes the outer selection.
  EXPECT_EQ(output.stats.result_tuples, expected_inner);
}

TEST_F(QueriesTest, AllAlgorithmsAgreeOnJoinAselB) {
  size_t expected = 0;
  auto inner = catalog_.Get("Bprime");
  ASSERT_TRUE(inner.ok());
  for (const auto& t : (*inner)->PeekAllTuples()) {
    if (t.GetInt32((*inner)->schema(), fields::kTen) == 3) ++expected;
  }
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    QueryOptions options;
    options.algorithm = algorithm;
    options.memory_ratio = 0.4;
    auto output = MustRun(JoinAselBSpec(options, expected));
    EXPECT_EQ(output.stats.result_tuples, expected)
        << join::AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace gammadb::wisconsin
