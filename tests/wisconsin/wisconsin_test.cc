#include "wisconsin/wisconsin.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "testing/test_util.h"

namespace gammadb::wisconsin {
namespace {

TEST(WisconsinTest, GeneratorProducesPermutations) {
  GenOptions options;
  options.cardinality = 5000;
  const auto tuples = Generate(options);
  ASSERT_EQ(tuples.size(), 5000u);
  const auto schema = WisconsinSchema();
  std::set<int32_t> u1, u2;
  for (const auto& t : tuples) {
    u1.insert(t.GetInt32(schema, fields::kUnique1));
    u2.insert(t.GetInt32(schema, fields::kUnique2));
  }
  EXPECT_EQ(u1.size(), 5000u);
  EXPECT_EQ(u2.size(), 5000u);
  EXPECT_EQ(*u1.begin(), 0);
  EXPECT_EQ(*u1.rbegin(), 4999);
}

TEST(WisconsinTest, DerivedColumnsFollowUnique1) {
  GenOptions options;
  options.cardinality = 1000;
  const auto tuples = Generate(options);
  const auto schema = WisconsinSchema();
  for (const auto& t : tuples) {
    const int32_t u1 = t.GetInt32(schema, fields::kUnique1);
    EXPECT_EQ(t.GetInt32(schema, fields::kTwo), u1 % 2);
    EXPECT_EQ(t.GetInt32(schema, fields::kFour), u1 % 4);
    EXPECT_EQ(t.GetInt32(schema, fields::kTen), u1 % 10);
    EXPECT_EQ(t.GetInt32(schema, fields::kTwenty), u1 % 20);
    EXPECT_EQ(t.GetInt32(schema, fields::kOnePercent), u1 % 100);
    EXPECT_EQ(t.GetInt32(schema, fields::kTenPercent), u1 % 10);
    EXPECT_EQ(t.GetInt32(schema, fields::kTwentyPercent), u1 % 5);
    EXPECT_EQ(t.GetInt32(schema, fields::kFiftyPercent), u1 % 2);
    EXPECT_EQ(t.GetInt32(schema, fields::kEvenOnePercent), (u1 % 100) * 2);
    EXPECT_EQ(t.GetInt32(schema, fields::kOddOnePercent), (u1 % 100) * 2 + 1);
  }
}

TEST(WisconsinTest, DeterministicBySeed) {
  GenOptions options;
  options.cardinality = 200;
  options.seed = 99;
  const auto a = Generate(options);
  const auto b = Generate(options);
  EXPECT_EQ(testing::Canonical(a), testing::Canonical(b));
  options.seed = 100;
  const auto c = Generate(options);
  EXPECT_NE(testing::Canonical(a), testing::Canonical(c));
}

TEST(WisconsinTest, NormalAttributeMatchesPaperParameters) {
  GenOptions options;
  options.cardinality = 100000;
  options.with_normal_attr = true;
  const auto tuples = Generate(options);
  const auto schema = WisconsinSchema();
  double sum = 0, sum_sq = 0;
  int32_t max_value = 0;
  int64_t in_tight_range = 0;
  for (const auto& t : tuples) {
    const int32_t v = t.GetInt32(schema, fields::kNormal);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 99999);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
    max_value = std::max(max_value, v);
    if (v >= 50000 && v <= 50243) ++in_tight_range;
  }
  const double mean = sum / 100000;
  const double stddev = std::sqrt(sum_sq / 100000 - mean * mean);
  EXPECT_NEAR(mean, 50000, 20);
  EXPECT_NEAR(stddev, 750, 15);
  // Paper: "12,500 tuples had join attribute values in the range of
  // 50,000 to 50,243" and the maximum value was 53,071.
  EXPECT_NEAR(in_tight_range, 12500, 600);
  EXPECT_NEAR(max_value, 53071, 500);
}

TEST(WisconsinTest, DuplicateStatisticsMatchPaper) {
  GenOptions options;
  options.cardinality = 100000;
  options.with_normal_attr = true;
  const auto tuples = Generate(options);
  const auto schema = WisconsinSchema();
  std::map<int32_t, int> counts;
  for (const auto& t : tuples) {
    ++counts[t.GetInt32(schema, fields::kNormal)];
  }
  int max_count = 0;
  for (const auto& [value, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Paper: "no single attribute value occurred in more than 77 tuples".
  EXPECT_GT(max_count, 40);
  EXPECT_LT(max_count, 110);
}

TEST(WisconsinTest, SampleWithoutReplacementSubset) {
  GenOptions options;
  options.cardinality = 2000;
  const auto tuples = Generate(options);
  const auto sample = SampleWithoutReplacement(tuples, 200, 7);
  ASSERT_EQ(sample.size(), 200u);
  const auto schema = WisconsinSchema();
  std::set<int32_t> keys;
  for (const auto& t : sample) {
    keys.insert(t.GetInt32(schema, fields::kUnique1));
  }
  EXPECT_EQ(keys.size(), 200u);  // distinct rows
}

TEST(WisconsinTest, LoadJoinABprimeCreatesBothRelations) {
  sim::Machine machine(testing::SmallConfig(4));
  db::Catalog catalog;
  DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  auto loaded = LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->outer->total_tuples(), 2000u);
  EXPECT_EQ(loaded->inner->total_tuples(), 200u);
  EXPECT_EQ(loaded->outer->strategy, db::PartitionStrategy::kHashed);
  // Inner tuples are a subset of outer tuples.
  const auto outer_rows = testing::Canonical(loaded->outer->PeekAllTuples());
  for (const auto& row : testing::Canonical(loaded->inner->PeekAllTuples())) {
    EXPECT_TRUE(std::binary_search(outer_rows.begin(), outer_rows.end(), row));
  }
}

TEST(WisconsinTest, StringsEncodeTheKey) {
  GenOptions options;
  options.cardinality = 100;
  const auto tuples = Generate(options);
  const auto schema = WisconsinSchema();
  std::set<std::string> strings;
  for (const auto& t : tuples) {
    const auto s = t.GetChars(schema, fields::kStringU1);
    EXPECT_EQ(s.size(), 52u);
    strings.emplace(s);
  }
  EXPECT_EQ(strings.size(), 100u);  // unique per unique1
}

}  // namespace
}  // namespace gammadb::wisconsin
