// GoogleTest helpers for Status / Result<T> assertions.
//
// GAMMA_ASSERT_OK / GAMMA_EXPECT_OK report the embedded code and message
// on failure instead of a bare boolean, and satisfy [[nodiscard]] so test
// bodies never silently drop a Status (docs/static_analysis.md).
#ifndef GAMMA_TESTS_TESTING_STATUS_MATCHERS_H_
#define GAMMA_TESTS_TESTING_STATUS_MATCHERS_H_

#include <gtest/gtest.h>

#include "common/status.h"

namespace gammadb::testing {

inline ::testing::AssertionResult IsOk(const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << status.ToString();
}

template <typename T>
::testing::AssertionResult IsOk(const Result<T>& result) {
  return IsOk(result.status());
}

}  // namespace gammadb::testing

#define GAMMA_ASSERT_OK(expr) ASSERT_TRUE(::gammadb::testing::IsOk((expr)))
#define GAMMA_EXPECT_OK(expr) EXPECT_TRUE(::gammadb::testing::IsOk((expr)))

#endif  // GAMMA_TESTS_TESTING_STATUS_MATCHERS_H_
