// Skewed key-distribution generators for the adaptive-repartitioning
// tests (docs/skew.md). Everything is seeded and deterministic.
#ifndef GAMMA_TESTS_TESTING_SKEW_UTIL_H_
#define GAMMA_TESTS_TESTING_SKEW_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace gammadb::testing {

/// n Zipf(theta)-distributed keys over 0..domain-1 (key 0 is the
/// hottest; theta 0 degenerates to uniform).
inline std::vector<int32_t> ZipfKeys(size_t n, uint32_t domain, double theta,
                                     uint64_t seed) {
  std::vector<double> cdf(domain);
  double total = 0;
  for (uint32_t r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, theta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  Rng rng(seed);
  std::vector<int32_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    const auto it =
        std::lower_bound(cdf.begin(), cdf.end(), rng.NextDouble());
    keys[i] = static_cast<int32_t>(
        std::min<size_t>(static_cast<size_t>(it - cdf.begin()), domain - 1));
  }
  return keys;
}

/// n keys where roughly `heavy_fraction` of the draws are the single
/// value `heavy_key` and the rest are uniform over 0..domain-1.
inline std::vector<int32_t> HeavyHitterKeys(size_t n, uint32_t domain,
                                            int32_t heavy_key,
                                            double heavy_fraction,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextDouble() < heavy_fraction
                  ? heavy_key
                  : static_cast<int32_t>(rng.Uniform(domain));
  }
  return keys;
}

}  // namespace gammadb::testing

#endif  // GAMMA_TESTS_TESTING_SKEW_UTIL_H_
