// Shared helpers for the gammadb test suite.
#ifndef GAMMA_TESTS_TESTING_TEST_UTIL_H_
#define GAMMA_TESTS_TESTING_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "gamma/predicate.h"
#include "join/spec.h"
#include "sim/machine.h"
#include "storage/tuple.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::testing {

/// A small local configuration (disk nodes only). Tests run with a
/// pooled executor by default: the determinism contract (DESIGN.md)
/// guarantees metrics identical to num_threads = 1, and running the
/// suite threaded keeps that contract continuously exercised.
inline sim::MachineConfig SmallConfig(int disk_nodes = 4,
                                      int diskless_nodes = 0) {
  sim::MachineConfig config;
  config.num_disk_nodes = disk_nodes;
  config.num_diskless_nodes = diskless_nodes;
  config.num_threads = 4;
  return config;
}

/// Canonical multiset representation of a tuple set: sorted raw-byte
/// strings. Two tuple sets are equal iff their canonical forms match.
inline std::vector<std::string> Canonical(
    const std::vector<storage::Tuple>& tuples) {
  std::vector<std::string> rows;
  rows.reserve(tuples.size());
  for (const auto& t : tuples) {
    rows.emplace_back(reinterpret_cast<const char*>(t.data()), t.size());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Dataset shared by the executor-equivalence integration tests: a
/// Wisconsin joinABprime instance small enough to run the full
/// algorithm matrix quickly but large enough to exercise overflow at
/// low memory ratios.
inline wisconsin::DatasetOptions ABprimeDataset() {
  wisconsin::DatasetOptions options;
  options.outer_cardinality = 3000;
  options.inner_cardinality = 300;
  options.seed = 53;
  return options;
}

/// Join spec over ABprimeDataset(). capture_results is on so callers
/// can compare JoinOutput::result_digest across configurations
/// (docs/testing.md).
inline join::JoinSpec ABprimeSpec(join::Algorithm algorithm,
                                  double memory_ratio) {
  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.memory_ratio = memory_ratio;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  spec.capture_results = true;
  return spec;
}

/// Single-threaded reference equi-join (ground truth for the parallel
/// algorithms): result tuples are Concat(inner, outer), matching the
/// engines' output composition.
inline std::vector<storage::Tuple> ReferenceJoin(
    const std::vector<storage::Tuple>& inner_tuples,
    const storage::Schema& inner_schema, int inner_field,
    const std::vector<storage::Tuple>& outer_tuples,
    const storage::Schema& outer_schema, int outer_field,
    const db::PredicateList& inner_pred = {},
    const db::PredicateList& outer_pred = {}) {
  std::multimap<int32_t, const storage::Tuple*> index;
  for (const auto& r : inner_tuples) {
    if (!db::EvalAll(inner_pred, inner_schema, r)) continue;
    index.emplace(r.GetInt32(inner_schema, static_cast<size_t>(inner_field)),
                  &r);
  }
  std::vector<storage::Tuple> out;
  for (const auto& s : outer_tuples) {
    if (!db::EvalAll(outer_pred, outer_schema, s)) continue;
    const int32_t key =
        s.GetInt32(outer_schema, static_cast<size_t>(outer_field));
    auto [lo, hi] = index.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      out.push_back(storage::Tuple::Concat(*it->second, s));
    }
  }
  return out;
}

}  // namespace gammadb::testing

#endif  // GAMMA_TESTS_TESTING_TEST_UTIL_H_
