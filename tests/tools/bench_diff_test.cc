#include "bench_diff_lib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace gammadb::tools {
namespace {

JsonValue Doc(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

constexpr const char* kBaseline = R"({
  "schema_version": 1,
  "benchmark": "fig05",
  "runs": [
    {"algorithm": "Hybrid", "response_seconds": 10.0,
     "metrics": {"counters": {"pages_read": 100}}},
    {"algorithm": "Grace", "response_seconds": 20.0,
     "metrics": {"counters": {"pages_read": 200}}}
  ]
})";

TEST(BenchDiffTest, IdenticalDocumentsPass) {
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), Doc(kBaseline), DiffOptions{});
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.regressions(), 0);
  EXPECT_EQ(report.missing(), 0);
  EXPECT_GT(report.compared_metrics, 0);
}

TEST(BenchDiffTest, ResponseTimeWithinTolerancePasses) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 10.4);
  DiffOptions options;
  options.seconds_tolerance = 0.05;
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, options);
  EXPECT_TRUE(report.Passed());
}

TEST(BenchDiffTest, ResponseTimeRegressionBeyondToleranceFails) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 11.0);
  DiffOptions options;
  options.seconds_tolerance = 0.05;
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, options);
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.regressions(), 1);
  ASSERT_FALSE(report.entries.empty());
  EXPECT_EQ(report.entries[0].path, "runs[0].response_seconds");
}

TEST(BenchDiffTest, ToleranceIsConfigurable) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 11.0);
  DiffOptions options;
  options.seconds_tolerance = 0.25;  // +10% now within tolerance
  EXPECT_TRUE(DiffBenchJson(Doc(kBaseline), candidate, options).Passed());
}

TEST(BenchDiffTest, ImprovementPasses) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 5.0);
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  EXPECT_TRUE(report.Passed());
  EXPECT_EQ(report.CountOf(DiffKind::kImprovement), 1);
}

TEST(BenchDiffTest, MissingMetricFails) {
  JsonValue candidate = Doc(kBaseline);
  // Drop the counters object from the second run.
  JsonValue& run = candidate.Find("runs")->AsArray()[1];
  run.Find("metrics")->AsObject().clear();
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.missing(), 1);
  EXPECT_EQ(report.entries[0].path, "runs[1].metrics.counters");
}

// A candidate-only metric means the baseline predates a schema change:
// it must fail the gate (otherwise new metrics would ship ungated) and
// name every new key so the refresh is a deliberate, reviewable step.
TEST(BenchDiffTest, ExtraCandidateMetricsFail) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Set("new_top_level_metric", 7);
  candidate.Find("runs")->AsArray()[0].Set("new_per_run_metric", 1.5);
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.regressions(), 0);
  EXPECT_EQ(report.extras(), 2);
  const std::string text = FormatReport(report);
  EXPECT_NE(text.find("EXTRA"), std::string::npos);
  EXPECT_NE(text.find("new_top_level_metric"), std::string::npos);
  EXPECT_NE(text.find("runs[0].new_per_run_metric"), std::string::npos);
  EXPECT_NE(text.find("2 extra"), std::string::npos);
}

TEST(BenchDiffTest, ExtraHostMetricIsInformational) {
  // A baseline recorded before host metrics existed must not fail when
  // the candidate carries them.
  JsonValue baseline = Doc(R"({"runs": [{"response_seconds": 10.0}]})");
  JsonValue candidate = Doc(
      R"({"runs": [{"response_seconds": 10.0, "real_seconds": 3.0,
          "threads": 8}]})");
  const DiffReport report =
      DiffBenchJson(baseline, candidate, DiffOptions{});
  EXPECT_TRUE(report.Passed()) << FormatReport(report);
  EXPECT_EQ(report.extras(), 0);
  EXPECT_GT(report.CountOf(DiffKind::kInfo), 0);
}

TEST(BenchDiffTest, StrictCounterDriftFails) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")
      ->AsArray()[0]
      .Find("metrics")
      ->Find("counters")
      ->Set("pages_read", 101);
  DiffOptions strict;
  strict.strict_counters = true;
  EXPECT_FALSE(DiffBenchJson(Doc(kBaseline), candidate, strict).Passed());
  DiffOptions lenient;
  lenient.strict_counters = false;
  EXPECT_TRUE(DiffBenchJson(Doc(kBaseline), candidate, lenient).Passed());
}

TEST(BenchDiffTest, ConfigIdentityMismatchFails) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Set("benchmark", "fig06");
  EXPECT_FALSE(
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{}).Passed());
}

TEST(BenchDiffTest, ArrayLengthChangeFails) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray().pop_back();
  EXPECT_FALSE(
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{}).Passed());
}

TEST(BenchDiffTest, ZeroBaselineDoesNotDivideByZero) {
  JsonValue baseline = Doc(R"({"idle_seconds": 0.0})");
  JsonValue candidate = Doc(R"({"idle_seconds": 1.0})");
  const DiffReport report =
      DiffBenchJson(baseline, candidate, DiffOptions{});
  EXPECT_FALSE(report.Passed());  // 0 -> 1s is a huge relative regression
}

TEST(BenchDiffTest, NestedFigureSecondsAreTimeMetrics) {
  JsonValue baseline =
      Doc(R"({"figures": [{"series_seconds": [[10.0, 20.0]]}]})");
  JsonValue within =
      Doc(R"({"figures": [{"series_seconds": [[10.2, 20.0]]}]})");
  JsonValue beyond =
      Doc(R"({"figures": [{"series_seconds": [[15.0, 20.0]]}]})");
  EXPECT_TRUE(DiffBenchJson(baseline, within, DiffOptions{}).Passed());
  EXPECT_FALSE(DiffBenchJson(baseline, beyond, DiffOptions{}).Passed());
}

// Host metrics (wall clock, thread counts) describe the machine running
// the benchmark, not the workload: a serial baseline must gate a
// threaded candidate without noise from them.
TEST(BenchDiffTest, HostMetricsAreNeverGated) {
  JsonValue baseline = Doc(R"({
    "threads": 1,
    "runs": [{"real_seconds": 30.0, "threads": 1, "response_seconds": 10.0}],
    "workloads": [{"machine": {"num_threads": 1}}]
  })");
  JsonValue candidate = Doc(R"({
    "threads": 4,
    "runs": [{"real_seconds": 9.0, "threads": 4, "response_seconds": 10.0}],
    "workloads": [{"machine": {"num_threads": 4}}]
  })");
  DiffOptions strict;
  strict.strict_counters = true;
  const DiffReport report = DiffBenchJson(baseline, candidate, strict);
  EXPECT_TRUE(report.Passed()) << FormatReport(report);
  EXPECT_GT(report.CountOf(DiffKind::kInfo), 0);
}

TEST(BenchDiffTest, MissingHostMetricIsInformational) {
  JsonValue baseline =
      Doc(R"({"real_seconds": 30.0, "num_threads": 8, "wall_seconds": 1.0})");
  JsonValue candidate = Doc(R"({})");
  const DiffReport report =
      DiffBenchJson(baseline, candidate, DiffOptions{});
  EXPECT_TRUE(report.Passed()) << FormatReport(report);
  EXPECT_EQ(report.missing(), 0);
}

TEST(BenchDiffTest, RealSecondsIsNotATimeGate) {
  // +200% on real_seconds would trip the seconds tolerance if the
  // host-metric carve-out were checked after the "seconds" suffix.
  JsonValue baseline = Doc(R"({"runs": [{"real_seconds": 10.0}]})");
  JsonValue candidate = Doc(R"({"runs": [{"real_seconds": 30.0}]})");
  EXPECT_TRUE(DiffBenchJson(baseline, candidate, DiffOptions{}).Passed());
}

TEST(BenchDiffTest, WallclockSummaryPairsLeavesAndComputesSpeedup) {
  JsonValue before = Doc(R"({
    "runs": [{"real_seconds": 30.0, "response_seconds": 5.0}],
    "extra": {"host": [{"wall_seconds": 4.0}]}
  })");
  JsonValue after = Doc(R"({
    "runs": [{"real_seconds": 10.0, "response_seconds": 5.0}],
    "extra": {"host": [{"wall_seconds": 2.0}]}
  })");
  const std::string table = WallclockSummary(before, after);
  EXPECT_NE(table.find("runs[0].real_seconds"), std::string::npos);
  EXPECT_NE(table.find("extra.host[0].wall_seconds"), std::string::npos);
  EXPECT_NE(table.find("3.00x"), std::string::npos);
  EXPECT_NE(table.find("2.00x"), std::string::npos);
  // Simulated time is not a host metric; it stays out of the table.
  EXPECT_EQ(table.find("response_seconds"), std::string::npos);
}

TEST(BenchDiffTest, WallclockSummaryMarksUnpairedLeaves) {
  JsonValue before = Doc(R"({"a": {"real_seconds": 1.0}})");
  JsonValue after = Doc(R"({"b": {"real_seconds": 2.0}})");
  const std::string table = WallclockSummary(before, after);
  EXPECT_NE(table.find("a.real_seconds"), std::string::npos);
  EXPECT_NE(table.find("b.real_seconds"), std::string::npos);
  EXPECT_EQ(table.find("x\n"), std::string::npos);  // no speedup column hits
}

TEST(BenchDiffTest, JsonPointerOfConvertsDiffPaths) {
  EXPECT_EQ(JsonPointerOf("schema_version"), "/schema_version");
  EXPECT_EQ(JsonPointerOf("runs[3].metrics.response_seconds"),
            "/runs/3/metrics/response_seconds");
  EXPECT_EQ(JsonPointerOf("series_seconds[1][3]"), "/series_seconds/1/3");
  EXPECT_EQ(JsonPointerOf("a~b.c/d"), "/a~0b/c~1d");
  EXPECT_EQ(JsonPointerOf(""), "");
}

// A schema-version mismatch means the documents are different formats:
// the report must name the offending JSON pointer and both values, and
// skip the metric walk (whose diffs would all be noise).
TEST(BenchDiffTest, SchemaVersionMismatchNamesThePointer) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Set("schema_version", 2);
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  EXPECT_FALSE(report.Passed());
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].kind, DiffKind::kRegression);
  const std::string text = FormatReport(report);
  EXPECT_NE(text.find("/schema_version"), std::string::npos) << text;
  EXPECT_NE(text.find("baseline 1"), std::string::npos) << text;
  EXPECT_NE(text.find("candidate 2"), std::string::npos) << text;
}

TEST(BenchDiffTest, SchemaVersionAbsentOnOneSideFails) {
  JsonValue no_version = Doc(kBaseline);
  auto& members = no_version.AsObject();
  members.erase(std::remove_if(members.begin(), members.end(),
                               [](const auto& kv) {
                                 return kv.first == "schema_version";
                               }),
                members.end());
  for (const bool candidate_missing : {true, false}) {
    const JsonValue& baseline = candidate_missing ? Doc(kBaseline) : no_version;
    const JsonValue& candidate = candidate_missing ? no_version : Doc(kBaseline);
    const DiffReport report =
        DiffBenchJson(baseline, candidate, DiffOptions{});
    EXPECT_FALSE(report.Passed());
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_NE(report.entries[0].message.find("(absent)"), std::string::npos);
    EXPECT_NE(report.entries[0].message.find("/schema_version"),
              std::string::npos);
  }
}

TEST(BenchDiffTest, MatchingSchemaVersionsStillWalkMetrics) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 11.0);
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.entries[0].path, "runs[0].response_seconds");
}

TEST(BenchDiffTest, FormatReportSummarizes) {
  JsonValue candidate = Doc(kBaseline);
  candidate.Find("runs")->AsArray()[0].Set("response_seconds", 11.0);
  const DiffReport report =
      DiffBenchJson(Doc(kBaseline), candidate, DiffOptions{});
  const std::string text = FormatReport(report);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("runs[0].response_seconds"), std::string::npos);
  EXPECT_NE(text.find("1 regressions"), std::string::npos);
}

}  // namespace
}  // namespace gammadb::tools
