// --fix corpus: ApplyFixes must rewrite the `(void)` discard below into
// an explicit .IgnoreError() call, and a second ApplyFixes pass must
// return the text unchanged (idempotence). gamma_lint_test also checks
// the fixed text lints clean for error/discarded-status.
#include "common/status.h"

gammadb::Status MightFail(int v);

void Caller() {
  (void)MightFail(1);
}
