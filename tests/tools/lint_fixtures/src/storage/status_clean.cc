// Clean counterpart of status_bad.cc: every Status is propagated,
// checked, or explicitly discarded via IgnoreError().
#include "common/status.h"

gammadb::Status MightFail(int v);

gammadb::Status Propagates() {
  GAMMA_RETURN_IF_ERROR(MightFail(1));
  gammadb::Status checked = MightFail(2);
  if (!checked.ok()) return checked;
  MightFail(3).IgnoreError();  // deliberate: best-effort cleanup
  return gammadb::Status::OK();
}
