// Seeded violations: error/discarded-status. MightFail is declared to
// return Status, so both discard shapes below are rejected: the
// `(void)` cast (weak-registry rule — the cast itself signals a
// Status-returning callee) and the bare expression statement
// (strict-registry rule — every collected MightFail declaration
// returns Status).
#include "common/status.h"

gammadb::Status MightFail(int v);

void Caller() {
  (void)MightFail(1);
  MightFail(2);
}
