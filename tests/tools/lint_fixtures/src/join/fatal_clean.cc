// Clean counterpart of fatal_bad.cc: the invariant check goes through
// GAMMA_CHECK (the registered invariant-check helper), which is allowed
// to terminate on a broken invariant.
#include "common/logging.h"
#include "common/status.h"

void Die(int node_id) {
  GAMMA_CHECK(false) << "node " << node_id << " is not a disk node";
}

gammadb::Status DataDependent(int node_id) {
  return gammadb::Status::InvalidArgument("not a disk node");
}
