// Seeded violations: determinism/unordered-container. Iteration order
// of std::unordered_map is implementation-defined, so it is banned in
// the deterministic directories (pseudo-path src/join/).
#include <unordered_map>

int CountDistinct(const int* values, int n) {
  std::unordered_map<int, int> seen;
  for (int i = 0; i < n; ++i) ++seen[values[i]];
  return static_cast<int>(seen.size());
}
