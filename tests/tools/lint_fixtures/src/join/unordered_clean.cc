// Clean counterpart of unordered_bad.cc: std::map has a deterministic
// iteration order, so the same code shape passes.
#include <map>

int CountDistinct(const int* values, int n) {
  std::map<int, int> seen;
  for (int i = 0; i < n; ++i) ++seen[values[i]];
  return static_cast<int>(seen.size());
}
