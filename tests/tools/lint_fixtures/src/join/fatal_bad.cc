// Seeded violations: error/fatal-in-library. Library code (pseudo-path
// src/join/) may not abort the process directly: broken invariants go
// through GAMMA_CHECK*, data-dependent failures return Status.
#include <cstdlib>

#include "common/logging.h"

void Die(int node_id) {
  GAMMA_LOG(Fatal) << "node " << node_id << " is not a disk node";
}

void DieHarder() { abort(); }
