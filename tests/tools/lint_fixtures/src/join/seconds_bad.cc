// Seeded violation: cost/raw-seconds-mutation. Outside src/sim/ the
// accounting fields may only be read; writing them bypasses the charge
// API's attribution and phase bookkeeping.
#include "sim/metrics.h"

void Tamper(gammadb::sim::NodeUsage& usage) {
  usage.cpu_seconds += 1.0;
}
