// Clean counterpart of wall_clock_bad.cc: the same shape of code with
// simulated time and seeded randomness only. A comment or string that
// merely *mentions* std::chrono or rand() must not fire (the tokenizer
// skips comments and treats literals as opaque).
#include <cstdint>

// std::chrono::steady_clock::now() would be banned here, but this is a
// comment, and the next line is a string literal.
const char* kDoc = "call rand() or std::chrono for host time";

double Now(double simulated_seconds) { return simulated_seconds; }

uint64_t Entropy(uint64_t seeded_state) {
  return seeded_state * 6364136223846793005ULL + 1442695040888963407ULL;
}
