// Clean counterpart of ../join/seconds_bad.cc: the identical mutation
// is legal here because the pseudo-path is src/sim/, the one directory
// that owns the accounting fields.
#include "sim/metrics.h"

void Accumulate(gammadb::sim::NodeUsage& usage) {
  usage.cpu_seconds += 1.0;
}
