// Seeded violations: determinism/wall-clock. Linted under the
// pseudo-path src/sim/, where host clock and entropy are banned.
// gamma_lint_test asserts the exact finding lines, so keep line
// numbers stable when editing.
#include <chrono>

long Now() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

int Entropy() { return rand(); }
