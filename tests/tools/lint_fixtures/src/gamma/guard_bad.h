// Seeded violation: hygiene/include-guard. The guard name does not
// match the convention for this pseudo-path (expected
// GAMMA_GAMMA_GUARD_BAD_H_).
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

int GuardBad();

#endif  // WRONG_GUARD_NAME_H
