// Seeded violation: hygiene/using-namespace-header. A using-directive
// in a header leaks into every includer.
#ifndef GAMMA_GAMMA_USING_BAD_H_
#define GAMMA_GAMMA_USING_BAD_H_

#include <string>

using namespace std;

inline string Greet() { return "hi"; }

#endif  // GAMMA_GAMMA_USING_BAD_H_
