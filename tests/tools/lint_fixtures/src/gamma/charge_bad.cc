// Seeded violation: cost/uncategorized-charge. Every Charge* call must
// name the sim::CostCategory it pays for; a bare seconds argument is
// rejected even though it compiled before the default was removed.
#include "sim/node.h"

void Work(gammadb::sim::Node& n) {
  n.ChargeCpu(1.0);
  n.ChargeDisk(2.0);
}
