// Clean counterpart of using_bad.h: qualified names in the header; a
// using-*declaration* (single name) inside a .cc would also be fine.
#ifndef GAMMA_GAMMA_USING_CLEAN_H_
#define GAMMA_GAMMA_USING_CLEAN_H_

#include <string>

inline std::string Greet() { return "hi"; }

#endif  // GAMMA_GAMMA_USING_CLEAN_H_
