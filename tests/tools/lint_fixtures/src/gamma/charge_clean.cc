// Clean counterpart of charge_bad.cc: both charges name a category, and
// the split form attributes its two parts separately.
#include "sim/node.h"

void Work(gammadb::sim::Node& n) {
  n.ChargeCpu(1.0, gammadb::sim::CostCategory::kOther);
  n.ChargeDisk(2.0, gammadb::sim::CostCategory::kDiskSeq);
  n.ChargeCpuSplit(1.0, gammadb::sim::CostCategory::kReadTuple, 2.0,
                   gammadb::sim::CostCategory::kWriteTuple);
}
