// Clean counterpart of guard_bad.h: guard follows the project
// convention (leading src/ stripped, GAMMA_ prefix, _H_ suffix).
#ifndef GAMMA_GAMMA_GUARD_CLEAN_H_
#define GAMMA_GAMMA_GUARD_CLEAN_H_

int GuardClean();

#endif  // GAMMA_GAMMA_GUARD_CLEAN_H_
