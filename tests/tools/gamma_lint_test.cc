// gamma_lint unit and fixture tests.
//
// The fixture corpus lives in tests/tools/lint_fixtures/ (one seeded
// violation file per rule plus a clean counterpart) and is linted under
// *pseudo-paths*: LintFile only uses the path string for rule scoping,
// so a fixture stored at lint_fixtures/src/sim/wall_clock_bad.cc is
// linted as if it were src/sim/wall_clock_bad.cc. The CLI walk skips
// the fixture directory for exactly this reason.
#include "tools/gamma_lint_lib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace gammadb::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFixture(const std::string& relpath) {
  const fs::path path = fs::path(GAMMA_LINT_FIXTURE_DIR) / relpath;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Mirrors the CLI: the registry is built from every fixture file, so
/// the strict/weak sets see the same declarations a real run would.
StatusRegistry FixtureRegistry() {
  RegistryBuilder builder;
  for (const auto& entry :
       fs::recursive_directory_iterator(GAMMA_LINT_FIXTURE_DIR)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    builder.Scan(buffer.str());
  }
  return builder.Build();
}

/// (rule, line, col) triples for one fixture, sorted.
std::vector<std::tuple<std::string, int, int>> Lint(
    const std::string& relpath) {
  const StatusRegistry registry = FixtureRegistry();
  std::vector<std::tuple<std::string, int, int>> out;
  for (const Finding& f : LintFile(relpath, ReadFixture(relpath), registry)) {
    EXPECT_EQ(f.file, relpath);
    out.emplace_back(f.rule, f.line, f.col);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Triples = std::vector<std::tuple<std::string, int, int>>;

// --- Tokenizer ------------------------------------------------------------

TEST(TokenizeTest, SkipsCommentsAndTreatsLiteralsAsOpaque) {
  const auto tokens = Tokenize(
      "int a;  // rand() in a comment\n"
      "/* std::chrono in a block comment */\n"
      "const char* s = \"std::chrono and rand()\";\n");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "chrono");
    }
  }
  // The string literal survives as a single opaque token.
  const auto is_string = [](const Token& t) {
    return t.kind == TokenKind::kString;
  };
  EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(), is_string), 1);
}

TEST(TokenizeTest, RawStringIsOneToken) {
  const auto tokens = Tokenize("auto s = R\"(rand() \" unbalanced)\";");
  const auto is_string = [](const Token& t) {
    return t.kind == TokenKind::kString;
  };
  EXPECT_EQ(std::count_if(tokens.begin(), tokens.end(), is_string), 1);
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

TEST(TokenizeTest, MaximalMunchOperators) {
  const auto tokens = Tokenize("a <<= b ->* c ^= d");
  std::vector<std::string> punct;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kPunct) punct.push_back(t.text);
  }
  EXPECT_EQ(punct, (std::vector<std::string>{"<<=", "->*", "^="}));
}

TEST(TokenizeTest, TracksLineAndColumn) {
  const auto tokens = Tokenize("int a;\n  foo();\n");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[3].text, "foo");
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[3].col, 3);
}

// --- Include-guard naming -------------------------------------------------

TEST(ExpectedGuardTest, StripsLeadingSrcAndUppercases) {
  EXPECT_EQ(ExpectedGuard("src/gamma/predicate.h"),
            "GAMMA_GAMMA_PREDICATE_H_");
  EXPECT_EQ(ExpectedGuard("src/common/status.h"), "GAMMA_COMMON_STATUS_H_");
  EXPECT_EQ(ExpectedGuard("bench/common/harness.h"),
            "GAMMA_BENCH_COMMON_HARNESS_H_");
  EXPECT_EQ(ExpectedGuard("tools/gamma_lint_lib.h"),
            "GAMMA_TOOLS_GAMMA_LINT_LIB_H_");
}

// --- Per-rule fixtures: seeded violations at exact positions --------------

TEST(LintFixtureTest, WallClock) {
  EXPECT_EQ(Lint("src/sim/wall_clock_bad.cc"),
            (Triples{{kRuleWallClock, 5, 11},     // #include <chrono>
                     {kRuleWallClock, 8, 17},     // std::chrono
                     {kRuleWallClock, 12, 24}})); // rand()
  EXPECT_EQ(Lint("src/sim/wall_clock_clean.cc"), Triples{});
}

TEST(LintFixtureTest, UnorderedContainer) {
  EXPECT_EQ(Lint("src/join/unordered_bad.cc"),
            (Triples{{kRuleUnordered, 4, 11},    // #include <unordered_map>
                     {kRuleUnordered, 7, 8}}));  // std::unordered_map use
  EXPECT_EQ(Lint("src/join/unordered_clean.cc"), Triples{});
}

TEST(LintFixtureTest, UncategorizedCharge) {
  EXPECT_EQ(Lint("src/gamma/charge_bad.cc"),
            (Triples{{kRuleCharge, 7, 5},    // ChargeCpu(1.0)
                     {kRuleCharge, 8, 5}})); // ChargeDisk(2.0)
  EXPECT_EQ(Lint("src/gamma/charge_clean.cc"), Triples{});
}

TEST(LintFixtureTest, RawSecondsMutation) {
  EXPECT_EQ(Lint("src/join/seconds_bad.cc"),
            (Triples{{kRuleSeconds, 7, 9}}));
  // The identical mutation under src/sim/ is in scope for the owner.
  EXPECT_EQ(Lint("src/sim/seconds_clean.cc"), Triples{});
}

TEST(LintFixtureTest, DiscardedStatus) {
  EXPECT_EQ(Lint("src/storage/status_bad.cc"),
            (Triples{{kRuleStatus, 12, 3},    // (void)MightFail(1)
                     {kRuleStatus, 12, 9},    // ...the dropped call itself
                     {kRuleStatus, 13, 3}})); // bare MightFail(2);
  EXPECT_EQ(Lint("src/storage/status_clean.cc"), Triples{});
}

TEST(LintFixtureTest, FatalInLibrary) {
  EXPECT_EQ(Lint("src/join/fatal_bad.cc"),
            (Triples{{kRuleFatal, 9, 3},      // GAMMA_LOG(Fatal)
                     {kRuleFatal, 12, 20}})); // abort()
  EXPECT_EQ(Lint("src/join/fatal_clean.cc"), Triples{});
}

TEST(LintFixtureTest, IncludeGuard) {
  EXPECT_EQ(Lint("src/gamma/guard_bad.h"), (Triples{{kRuleGuard, 4, 1}}));
  EXPECT_EQ(Lint("src/gamma/guard_clean.h"), Triples{});
}

TEST(LintFixtureTest, UsingNamespaceHeader) {
  EXPECT_EQ(Lint("src/gamma/using_bad.h"), (Triples{{kRuleUsing, 8, 1}}));
  EXPECT_EQ(Lint("src/gamma/using_clean.h"), Triples{});
}

// --- Status registry ------------------------------------------------------

TEST(RegistryTest, StrictRequiresEveryDeclToReturnStatus) {
  RegistryBuilder builder;
  builder.Scan("Status OnlyStatus(int v);\n");
  builder.Scan("Status Mixed(int v);\n");
  builder.Scan("void Mixed(double v);\n");
  const StatusRegistry registry = builder.Build();
  EXPECT_EQ(registry.strict.count("OnlyStatus"), 1u);
  EXPECT_EQ(registry.weak.count("OnlyStatus"), 1u);
  // A void overload demotes the name to weak-only: the bare-call rule
  // stays quiet (the compiler's [[nodiscard]] covers those sites), but
  // a (void)-cast still counts as a deliberate-looking discard.
  EXPECT_EQ(registry.strict.count("Mixed"), 0u);
  EXPECT_EQ(registry.weak.count("Mixed"), 1u);
}

TEST(RegistryTest, FixtureCorpusRegistersMightFail) {
  const StatusRegistry registry = FixtureRegistry();
  EXPECT_EQ(registry.strict.count("MightFail"), 1u);
}

// --- Allowlist ------------------------------------------------------------

constexpr const char* kAllowText =
    "# comment\n"
    "[[allow]]\n"
    "rule = \"determinism/wall-clock\"\n"
    "file = \"src/sim/wall_clock_bad.cc\"\n"
    "reason = \"fixture test\"\n";

TEST(AllowlistTest, ParsesEntries) {
  auto parsed = ParseAllowlist(kAllowText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].rule, "determinism/wall-clock");
  EXPECT_EQ(parsed.value()[0].file, "src/sim/wall_clock_bad.cc");
  EXPECT_TRUE(parsed.value()[0].token.empty());
  EXPECT_EQ(parsed.value()[0].reason, "fixture test");
}

TEST(AllowlistTest, RejectsMissingReason) {
  auto parsed = ParseAllowlist(
      "[[allow]]\nrule = \"x\"\nfile = \"y\"\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(AllowlistTest, RejectsUnknownKey) {
  auto parsed = ParseAllowlist(
      "[[allow]]\nrule = \"x\"\nfile = \"y\"\nreason = \"z\"\nbogus = \"w\"\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(AllowlistTest, FilterDropsMatchedAndFlagsStaleEntries) {
  auto parsed = ParseAllowlist(std::string(kAllowText) +
                               "\n[[allow]]\n"
                               "rule = \"error/fatal-in-library\"\n"
                               "file = \"src/never/matches.cc\"\n"
                               "reason = \"stale\"\n");
  ASSERT_TRUE(parsed.ok());
  const StatusRegistry registry = FixtureRegistry();
  std::vector<Finding> findings = LintFile(
      "src/sim/wall_clock_bad.cc", ReadFixture("src/sim/wall_clock_bad.cc"),
      registry);
  ASSERT_EQ(findings.size(), 3u);
  findings = FilterAllowed(std::move(findings), parsed.value(),
                           ".gamma_lint.allow");
  // The three wall-clock findings are allowlisted away; the stale
  // second entry becomes a finding of its own.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleAllow);
  EXPECT_EQ(findings[0].file, ".gamma_lint.allow");
}

// --- ApplyFixes -----------------------------------------------------------

TEST(ApplyFixesTest, RewritesVoidCastToIgnoreErrorIdempotently) {
  const StatusRegistry registry = FixtureRegistry();
  const std::string original = ReadFixture("src/storage/fix_me.cc");
  const std::string fixed =
      ApplyFixes("src/storage/fix_me.cc", original, registry);
  EXPECT_NE(fixed, original);
  EXPECT_NE(fixed.find("MightFail(1).IgnoreError();"), std::string::npos);
  EXPECT_EQ(fixed.find("(void)MightFail"), std::string::npos);
  // Idempotent: a second pass is a no-op.
  EXPECT_EQ(ApplyFixes("src/storage/fix_me.cc", fixed, registry), fixed);
  // And the fixed text lints clean.
  EXPECT_TRUE(LintFile("src/storage/fix_me.cc", fixed, registry).empty());
}

TEST(ApplyFixesTest, RenamesIncludeGuardIdempotently) {
  const StatusRegistry registry = FixtureRegistry();
  const std::string original = ReadFixture("src/gamma/guard_bad.h");
  const std::string fixed =
      ApplyFixes("src/gamma/guard_bad.h", original, registry);
  EXPECT_NE(fixed.find("GAMMA_GAMMA_GUARD_BAD_H_"), std::string::npos);
  EXPECT_EQ(ApplyFixes("src/gamma/guard_bad.h", fixed, registry), fixed);
  EXPECT_TRUE(LintFile("src/gamma/guard_bad.h", fixed, registry).empty());
}

TEST(ApplyFixesTest, LeavesBareCallDropsAlone) {
  // The bare `MightFail(2);` drop has no mechanical fix (the right
  // resolution depends on intent), so ApplyFixes must not touch it and
  // the finding must survive.
  const StatusRegistry registry = FixtureRegistry();
  const std::string original = ReadFixture("src/storage/status_bad.cc");
  const std::string fixed =
      ApplyFixes("src/storage/status_bad.cc", original, registry);
  EXPECT_NE(fixed.find("MightFail(2);"), std::string::npos);
  const auto remaining =
      LintFile("src/storage/status_bad.cc", fixed, registry);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, kRuleStatus);
}

// --- JSON report ----------------------------------------------------------

TEST(ReportJsonTest, CountsByRule) {
  std::vector<Finding> findings;
  findings.push_back({kRuleWallClock, "a.cc", 1, 2, "t", "m"});
  findings.push_back({kRuleWallClock, "b.cc", 3, 4, "t", "m"});
  findings.push_back({kRuleGuard, "c.h", 5, 6, "t", "m"});
  const JsonValue report = ReportJson(findings, 42);
  const std::string dumped = report.Dump(0);
  EXPECT_NE(dumped.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(dumped.find("\"gamma_lint\""), std::string::npos);
  EXPECT_NE(dumped.find("\"files_scanned\": 42"), std::string::npos);
  EXPECT_NE(dumped.find("\"finding_count\": 3"), std::string::npos);
}

}  // namespace
}  // namespace gammadb::lint
