// Tests for the differential fuzzer library behind tools/join_fuzz:
// generator determinism, repro-line round-trips, shrinker convergence on
// a synthetically injected mismatch, and regression configs the fuzzer
// found in real engine code.
#include <gtest/gtest.h>

#include <string>

#include "testing/fuzz.h"

namespace gammadb::testing {
namespace {

TEST(FuzzConfig, ReproLineRoundTrips) {
  FuzzConfig config;
  config.data_seed = 780923712;
  config.algorithm = join::Algorithm::kSimpleHash;
  config.threads = 4;
  config.inner_tuples = 250;
  config.outer_tuples = 4;
  config.key_domain = 5;
  config.zipf_theta = 1.0;
  config.sel_pct = 60;
  config.memory_pct = 35;
  config.zero_slack = true;
  config.hpja = true;
  config.remote = true;
  config.bit_filters = true;
  config.forming_bit_filters = true;
  config.adaptive_repartition = true;
  config.fault_seed = 17;
  config.inject_mismatch = true;

  const std::string line = config.ToReproString();
  const Result<FuzzConfig> parsed = FuzzConfig::FromReproString(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToReproString(), line);
}

TEST(FuzzConfig, RejectsMalformedReproLines) {
  EXPECT_FALSE(FuzzConfig::FromReproString("").ok());
  EXPECT_FALSE(FuzzConfig::FromReproString("not a repro line").ok());
  EXPECT_FALSE(FuzzConfig::FromReproString("algo=quantum threads=1").ok());
  EXPECT_FALSE(FuzzConfig::FromReproString("algo=sort-merge threads=zero").ok());
}

TEST(RandomConfig, DeterministicPerSeed) {
  for (uint64_t seed : {1ULL, 42ULL, 20260808ULL}) {
    EXPECT_EQ(RandomConfig(seed).ToReproString(),
              RandomConfig(seed).ToReproString())
        << "seed " << seed;
  }
  EXPECT_NE(RandomConfig(1).ToReproString(), RandomConfig(2).ToReproString());
}

TEST(RandomConfig, SeededBatchMatchesOracle) {
  // A fast in-process slice of what tools/join_fuzz runs at scale (the
  // join_fuzz_smoke ctest covers a bigger batch through the binary).
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzConfig config = RandomConfig(seed);
    const Result<FuzzRunResult> run = RunFuzzConfig(config);
    ASSERT_TRUE(run.ok()) << config.ToReproString() << "\n  "
                          << run.status().ToString();
    EXPECT_TRUE(run->ok()) << config.ToReproString() << "\n  engine "
                           << run->engine.ToString() << "\n  oracle "
                           << run->oracle.ToString();
  }
}

TEST(ShrinkFailure, ConvergesToMinimalInjectedMismatch) {
  // The injected-mismatch hook only fires for bit_filters && inner>=2 &&
  // outer>=32, so a correct greedy shrinker must land exactly on that
  // boundary with every other axis at its minimum.
  FuzzConfig failing;
  failing.data_seed = 7;
  failing.algorithm = join::Algorithm::kHybridHash;
  failing.threads = 8;
  failing.inner_tuples = 40;
  failing.outer_tuples = 400;
  failing.key_domain = 10;
  failing.zipf_theta = 0.5;
  failing.memory_pct = 35;
  failing.hpja = true;
  failing.bit_filters = true;
  failing.adaptive_repartition = true;
  failing.inject_mismatch = true;

  const Result<FuzzRunResult> original = RunFuzzConfig(failing);
  ASSERT_TRUE(original.ok());
  ASSERT_FALSE(original->ok()) << "injected mismatch did not fire";

  const ShrinkResult shrunk = ShrinkFailure(failing);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_GT(shrunk.runs, 0);
  const FuzzConfig& m = shrunk.config;
  EXPECT_EQ(m.inner_tuples, 2u);
  EXPECT_EQ(m.outer_tuples, 32u);
  EXPECT_TRUE(m.bit_filters);
  EXPECT_EQ(m.algorithm, join::Algorithm::kSortMerge);
  EXPECT_EQ(m.threads, 1);
  EXPECT_EQ(m.key_domain, 1u);
  EXPECT_EQ(m.zipf_theta, 0.0);
  EXPECT_EQ(m.memory_pct, 100);
  EXPECT_FALSE(m.hpja);
  EXPECT_FALSE(m.adaptive_repartition);

  // The shrunk config still fails, and its repro line round-trips to a
  // config that fails the same way.
  const Result<FuzzConfig> reparsed =
      FuzzConfig::FromReproString(m.ToReproString());
  ASSERT_TRUE(reparsed.ok());
  const Result<FuzzRunResult> rerun = RunFuzzConfig(*reparsed);
  ASSERT_TRUE(rerun.ok());
  EXPECT_FALSE(rerun->ok());
}

TEST(RegressionConfigs, RebalanceCapacityOverflow) {
  // Found by the fuzzer (batch seed 42, config seed 92): the rebalance
  // planner freed every heavy bin's resident bytes up front, so a heavy
  // bin that later found no destination returned to a process whose
  // space had already been promised to migrated bins, overflowing the
  // hash table mid-migration.
  const Result<FuzzConfig> config = FuzzConfig::FromReproString(
      "algo=simple-hash threads=4 inner=250 outer=4 domain=5 theta=1.000 "
      "sel=100 mem=100 slack0=0 hpja=0 remote=1 bf=0 fbf=0 adapt=1 faults=0 "
      "data=780923712 inject=0");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const Result<FuzzRunResult> run = RunFuzzConfig(*config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->ok()) << "engine " << run->engine.ToString() << "\n  oracle "
                         << run->oracle.ToString();
}

}  // namespace
}  // namespace gammadb::testing
