// Machine-width sweep: every algorithm must stay correct on any number
// of disk nodes (including widths that don't divide the hash space
// evenly) and with diskless joiners layered on top.
#include <gtest/gtest.h>

#include <tuple>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

using WidthParam = std::tuple<int /*disks*/, int /*diskless*/, Algorithm>;

class MachineWidthTest : public ::testing::TestWithParam<WidthParam> {};

std::string WidthParamName(const ::testing::TestParamInfo<WidthParam>& info) {
  const auto& [disks, diskless, algorithm] = info.param;
  std::string name = AlgorithmName(algorithm);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_d" + std::to_string(disks) + "_x" +
         std::to_string(diskless);
}

TEST_P(MachineWidthTest, CorrectOnThisTopology) {
  const auto& [disks, diskless, algorithm] = GetParam();
  sim::Machine machine(testing::SmallConfig(disks, diskless));
  db::Catalog catalog;
  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2500;
  options.inner_cardinality = 250;
  options.seed = 47;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok());

  JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.memory_ratio = 0.3;
  spec.use_bit_filters = true;
  if (diskless > 0 && algorithm != Algorithm::kSortMerge) {
    spec.join_nodes = machine.DisklessNodeIds();
  }
  auto output = ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->stats.result_tuples, 250u);

  auto result = catalog.Get(output->result_relation);
  ASSERT_TRUE(result.ok());
  const auto expected = testing::ReferenceJoin(
      loaded->inner->PeekAllTuples(), loaded->inner->schema(),
      spec.inner_field, loaded->outer->PeekAllTuples(),
      loaded->outer->schema(), spec.outer_field);
  EXPECT_EQ(testing::Canonical((*result)->PeekAllTuples()),
            testing::Canonical(expected));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MachineWidthTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0, 3),
                       ::testing::Values(Algorithm::kSortMerge,
                                         Algorithm::kSimpleHash,
                                         Algorithm::kGraceHash,
                                         Algorithm::kHybridHash)),
    WidthParamName);

}  // namespace
}  // namespace gammadb::join
