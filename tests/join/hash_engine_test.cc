// Unit tests for the hash-join engine's building blocks (the whole
// engine is exercised end-to-end by the correctness/property suites).
#include "join/hash_engine.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "wisconsin/wisconsin.h"
#include "testing/status_matchers.h"

namespace gammadb::join {
namespace {

class BucketFileSetTest : public ::testing::Test {
 protected:
  BucketFileSetTest()
      : machine_(sim::MachineConfig{3, 0, sim::CostModel{}, 1}),
        schema_(wisconsin::WisconsinSchema()) {
    machine_.BeginPhase("test");
  }
  ~BucketFileSetTest() override {
    machine_.EndPhase().IgnoreError();  // teardown balance only
  }

  storage::Tuple MakeTuple(int32_t k) {
    storage::Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, k);
    return t;
  }

  sim::Machine machine_;
  storage::Schema schema_;
};

TEST_F(BucketFileSetTest, MatrixShape) {
  BucketFileSet files(&machine_, {0, 1, 2}, &schema_, 4, "t");
  EXPECT_EQ(files.num_buckets(), 4);
  EXPECT_EQ(files.num_disks(), 3u);
  // Fragment (b, d) lives on disk node d.
  for (int b = 1; b <= 4; ++b) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(files.file(b, d).node()->id(), static_cast<int>(d));
      EXPECT_EQ(files.file(b, d).tuple_count(), 0u);
    }
  }
}

TEST_F(BucketFileSetTest, FlushByOwnerAndCounts) {
  BucketFileSet files(&machine_, {0, 1, 2}, &schema_, 2, "t");
  GAMMA_ASSERT_OK(files.file(1, 0).Append(MakeTuple(1)));
  GAMMA_ASSERT_OK(files.file(1, 0).Append(MakeTuple(2)));
  GAMMA_ASSERT_OK(files.file(2, 1).Append(MakeTuple(3)));
  GAMMA_ASSERT_OK(files.FlushFilesOwnedBy(0));
  // Node 0's fragments are on disk; node 1's bucket-2 fragment is not
  // yet flushed.
  EXPECT_EQ(files.file(1, 0).page_count(), 1u);
  EXPECT_EQ(files.file(2, 1).page_count(), 0u);
  GAMMA_ASSERT_OK(files.FlushFilesOwnedBy(1));
  EXPECT_EQ(files.file(2, 1).page_count(), 1u);
  EXPECT_EQ(files.BucketTuples(1), 2u);
  EXPECT_EQ(files.BucketTuples(2), 1u);
}

TEST_F(BucketFileSetTest, FreeBucketReleasesPages) {
  BucketFileSet files(&machine_, {0, 1, 2}, &schema_, 1, "t");
  for (int i = 0; i < 100; ++i)
    GAMMA_ASSERT_OK(files.file(1, 0).Append(MakeTuple(i)));
  GAMMA_ASSERT_OK(files.FlushFilesOwnedBy(0));
  EXPECT_GT(machine_.node(0).disk().live_pages(), 0u);
  files.FreeBucket(1);
  EXPECT_EQ(machine_.node(0).disk().live_pages(), 0u);
  EXPECT_EQ(files.BucketTuples(1), 0u);
}

TEST_F(BucketFileSetTest, ZeroBucketsIsValid) {
  BucketFileSet files(&machine_, {0, 1, 2}, &schema_, 0, "t");
  EXPECT_EQ(files.num_buckets(), 0);
  EXPECT_EQ(files.num_disks(), 0u);
}

}  // namespace
}  // namespace gammadb::join
