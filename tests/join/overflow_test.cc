// Tests of the Simple-hash overflow machinery as observed through whole
// joins: recursion depth, hash-function changes, eviction accounting.
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

class OverflowTest : public ::testing::Test {
 protected:
  OverflowTest() : machine_(testing::SmallConfig(4)) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 4000;
    options.inner_cardinality = 1000;
    options.seed = 5;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  JoinOutput MustJoin(const std::function<void(JoinSpec&)>& mutate) {
    JoinSpec spec;
    spec.inner_relation = "Bprime";
    spec.outer_relation = "A";
    spec.algorithm = Algorithm::kSimpleHash;
    spec.result_name = "result";
    mutate(spec);
    auto output = ExecuteJoin(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK_OK(catalog_.Drop("result"));
    return std::move(output).value();
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(OverflowTest, NoOverflowAtFullMemory) {
  auto output = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 1.0; });
  EXPECT_EQ(output.stats.overflow_events, 0);
  EXPECT_EQ(output.stats.overflow_levels, 0);
  EXPECT_EQ(output.stats.result_tuples, 1000u);
}

TEST_F(OverflowTest, OverflowTriggersBelowCapacity) {
  auto output = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 0.5; });
  EXPECT_GT(output.stats.overflow_events, 0);
  EXPECT_GE(output.stats.overflow_levels, 1);
  EXPECT_EQ(output.stats.result_tuples, 1000u);
}

TEST_F(OverflowTest, RecursionDeepensAsMemoryShrinks) {
  auto half = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 0.5; });
  auto tiny = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 0.1; });
  EXPECT_GT(tiny.stats.overflow_levels, half.stats.overflow_levels);
  EXPECT_GT(tiny.stats.overflow_events, half.stats.overflow_events);
  EXPECT_EQ(tiny.stats.result_tuples, 1000u);
  // Repeated re-reading shows in the I/O counters.
  EXPECT_GT(tiny.metrics.counters.pages_written,
            half.metrics.counters.pages_written);
}

TEST_F(OverflowTest, OverflowJoinsUseRemixedHashFunctions) {
  // The changed hash function after overflow must spread the overflow
  // partition across all join nodes: every node should insert tuples at
  // every level, i.e. the total inserted exceeds |R| (re-inserts) and
  // the join still completes with the right answer.
  auto output = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 0.25; });
  EXPECT_EQ(output.stats.result_tuples, 1000u);
  EXPECT_GT(output.metrics.counters.ht_inserts, 1000);
}

TEST_F(OverflowTest, HybridBucketZeroOverflowResolved) {
  JoinSpec spec;
  auto output = MustJoin([](JoinSpec& s) {
    s.algorithm = Algorithm::kHybridHash;
    s.memory_ratio = 0.8;
    s.num_buckets = 1;       // optimistic: force bucket-0 overflow
    s.memory_slack = 0.0;
  });
  EXPECT_GT(output.stats.overflow_events, 0);
  EXPECT_EQ(output.stats.result_tuples, 1000u);
}

TEST_F(OverflowTest, GraceBucketOverflowResolved) {
  auto output = MustJoin([](JoinSpec& s) {
    s.algorithm = Algorithm::kGraceHash;
    s.memory_ratio = 0.5;
    s.num_buckets = 1;       // bucket bigger than memory
    s.memory_slack = 0.0;
  });
  EXPECT_GT(output.stats.overflow_events, 0);
  EXPECT_EQ(output.stats.result_tuples, 1000u);
}

TEST_F(OverflowTest, TinyMemoryStillCorrect) {
  auto output = MustJoin([](JoinSpec& spec) { spec.memory_ratio = 0.03; });
  EXPECT_EQ(output.stats.result_tuples, 1000u);
  EXPECT_GE(output.stats.overflow_levels, 2);
}

}  // namespace
}  // namespace gammadb::join
