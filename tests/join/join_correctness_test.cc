// End-to-end correctness of all four parallel join algorithms against a
// single-threaded reference join, across memory ratios, configurations
// (local/remote), bit filters, skew and executor parallelism.
#include <gtest/gtest.h>

#include <tuple>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

struct Case {
  Algorithm algorithm;
  double memory_ratio;
  bool bit_filters;
  bool remote;       // 4 diskless join nodes instead of local
  bool skewed;       // normal-distributed inner join attribute
  int num_threads;   // executor parallelism
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = AlgorithmName(c.algorithm);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_m" + std::to_string(static_cast<int>(c.memory_ratio * 100));
  if (c.bit_filters) name += "_filter";
  if (c.remote) name += "_remote";
  if (c.skewed) name += "_skew";
  if (c.num_threads > 1) name += "_mt";
  return name;
}

class JoinCorrectnessTest : public ::testing::TestWithParam<Case> {};

TEST_P(JoinCorrectnessTest, MatchesReferenceJoin) {
  const Case& c = GetParam();
  sim::MachineConfig config = testing::SmallConfig(
      /*disk_nodes=*/4, /*diskless_nodes=*/c.remote ? 4 : 0);
  config.num_threads = c.num_threads;
  sim::Machine machine(config);
  db::Catalog catalog;

  wisconsin::DatasetOptions dataset_options;
  dataset_options.outer_cardinality = 4000;
  dataset_options.inner_cardinality = 400;
  dataset_options.seed = 7;
  dataset_options.with_normal_attr = c.skewed;
  if (c.skewed) {
    // Match the paper's skew setup: range-declustered on the join attr.
    dataset_options.strategy = db::PartitionStrategy::kRangeUniform;
    dataset_options.partition_field = wisconsin::fields::kNormal;
    dataset_options.outer_cardinality = 4000;
  }
  auto dataset = wisconsin::LoadJoinABprime(machine, catalog, dataset_options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  // Skewed case: NU join (normal inner attribute against outer unique1
  // does not make sense for the sample — instead join normal = normal?
  // NN explodes; use inner normal vs outer unique1: values share the
  // 0..3999 domain only partially — still a valid correctness check).
  spec.inner_field = c.skewed ? wisconsin::fields::kNormal
                              : wisconsin::fields::kUnique1;
  spec.outer_field = wisconsin::fields::kUnique1;
  spec.algorithm = c.algorithm;
  spec.memory_ratio = c.memory_ratio;
  spec.use_bit_filters = c.bit_filters;
  if (c.remote) spec.join_nodes = machine.DisklessNodeIds();

  auto output = ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Ground truth.
  auto inner_rel = catalog.Get("Bprime");
  auto outer_rel = catalog.Get("A");
  ASSERT_TRUE(inner_rel.ok() && outer_rel.ok());
  const auto expected = testing::ReferenceJoin(
      (*inner_rel)->PeekAllTuples(), (*inner_rel)->schema(), spec.inner_field,
      (*outer_rel)->PeekAllTuples(), (*outer_rel)->schema(), spec.outer_field);

  auto result_rel = catalog.Get(output->result_relation);
  ASSERT_TRUE(result_rel.ok());
  const auto actual = (*result_rel)->PeekAllTuples();

  EXPECT_EQ(output->stats.result_tuples, expected.size());
  EXPECT_EQ(testing::Canonical(actual), testing::Canonical(expected));
  EXPECT_GT(output->metrics.response_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, JoinCorrectnessTest,
    ::testing::Values(
        // Full memory, local.
        Case{Algorithm::kSortMerge, 1.0, false, false, false, 1},
        Case{Algorithm::kSimpleHash, 1.0, false, false, false, 1},
        Case{Algorithm::kGraceHash, 1.0, false, false, false, 1},
        Case{Algorithm::kHybridHash, 1.0, false, false, false, 1},
        // Constrained memory (buckets / overflow paths).
        Case{Algorithm::kSortMerge, 0.2, false, false, false, 1},
        Case{Algorithm::kSimpleHash, 0.2, false, false, false, 1},
        Case{Algorithm::kGraceHash, 0.2, false, false, false, 1},
        Case{Algorithm::kHybridHash, 0.2, false, false, false, 1},
        // Very scarce memory.
        Case{Algorithm::kSimpleHash, 0.07, false, false, false, 1},
        Case{Algorithm::kGraceHash, 0.07, false, false, false, 1},
        Case{Algorithm::kHybridHash, 0.07, false, false, false, 1},
        Case{Algorithm::kSortMerge, 0.07, false, false, false, 1},
        // Bit filters on.
        Case{Algorithm::kSortMerge, 0.5, true, false, false, 1},
        Case{Algorithm::kSimpleHash, 0.5, true, false, false, 1},
        Case{Algorithm::kGraceHash, 0.5, true, false, false, 1},
        Case{Algorithm::kHybridHash, 0.5, true, false, false, 1},
        // Remote configuration (hash algorithms only).
        Case{Algorithm::kSimpleHash, 0.5, false, true, false, 1},
        Case{Algorithm::kGraceHash, 0.5, false, true, false, 1},
        Case{Algorithm::kHybridHash, 0.5, false, true, false, 1},
        Case{Algorithm::kHybridHash, 0.3, true, true, false, 1},
        // Skewed inner join attribute (overflow with duplicates).
        Case{Algorithm::kSortMerge, 0.3, false, false, true, 1},
        Case{Algorithm::kSimpleHash, 0.3, false, false, true, 1},
        Case{Algorithm::kGraceHash, 0.3, false, false, true, 1},
        Case{Algorithm::kHybridHash, 0.3, false, false, true, 1},
        Case{Algorithm::kHybridHash, 0.3, true, false, true, 1},
        // Multi-threaded executor (order-independent results).
        Case{Algorithm::kSortMerge, 0.4, false, false, false, 4},
        Case{Algorithm::kSimpleHash, 0.4, false, false, false, 4},
        Case{Algorithm::kGraceHash, 0.4, false, false, false, 4},
        Case{Algorithm::kHybridHash, 0.4, true, true, false, 4}),
    CaseName);

}  // namespace
}  // namespace gammadb::join
