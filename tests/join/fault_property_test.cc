// Property: a *random* seeded FaultPlan never changes a join's result —
// only its metrics. This is the generative counterpart of the explicit
// fault matrix (tests/integration/fault_recovery_test.cc): whatever
// combination of transient disk errors, packet faults and node crashes
// a seed draws, recovery must be invisible in the data.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

constexpr int kNumNodes = 4;

/// Runs joinABprime with `plan` armed after the load (nullptr = fault
/// free); returns the canonical result rows and the run's metrics.
void RunJoin(join::Algorithm algorithm, const sim::FaultPlan* plan,
             std::vector<std::string>* rows, sim::RunMetrics* metrics) {
  sim::Machine machine(testing::SmallConfig(kNumNodes));
  db::Catalog catalog;

  wisconsin::DatasetOptions options;
  options.outer_cardinality = 1000;
  options.inner_cardinality = 100;
  options.seed = 71;
  options.partition_field = wisconsin::fields::kUnique2;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  if (plan != nullptr) machine.ArmFaults(*plan);

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  *metrics = output->metrics;
  auto rel = catalog.Get("result");
  ASSERT_TRUE(rel.ok());
  *rows = testing::Canonical((*rel)->PeekAllTuples());
}

TEST(FaultPropertyTest, RandomPlansNeverChangeJoinResults) {
  const join::Algorithm algorithms[] = {
      join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
      join::Algorithm::kGraceHash, join::Algorithm::kHybridHash};

  // One fault-free reference per algorithm.
  std::vector<std::string> reference[4];
  for (int a = 0; a < 4; ++a) {
    sim::RunMetrics metrics;
    RunJoin(algorithms[a], nullptr, &reference[a], &metrics);
    if (HasFatalFailure()) return;
    ASSERT_FALSE(reference[a].empty());
    ASSERT_FALSE(metrics.counters.AnyFaults());
  }

  sim::FaultPlan::RandomOptions options;
  options.num_nodes = kNumNodes;
  // Small horizons so most drawn events actually fire against the
  // 1000 x 100 workload (events past the end of the run are legal but
  // test nothing).
  options.io_horizon = 40;
  options.packet_horizon = 20;
  options.phase_horizon = 3;

  int plans_with_faults = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    // Rotate algorithms so twelve seeds cover all four.
    const join::Algorithm algorithm = algorithms[seed % 4];
    SCOPED_TRACE("seed " + std::to_string(seed) + " / " +
                 join::AlgorithmName(algorithm));
    const sim::FaultPlan plan = sim::FaultPlan::Random(seed, options);
    ASSERT_FALSE(plan.empty());

    std::vector<std::string> rows;
    sim::RunMetrics metrics;
    RunJoin(algorithm, &plan, &rows, &metrics);
    if (HasFatalFailure()) return;

    EXPECT_EQ(rows, reference[seed % 4]);
    if (metrics.counters.AnyFaults()) ++plans_with_faults;
  }
  // The property is vacuous if the random plans never engage the fault
  // machinery at all.
  EXPECT_GE(plans_with_faults, 6);
}

}  // namespace
}  // namespace gammadb
