// Process-granular join parallelism: several join processes may share a
// processor (the split tables are per-PROCESS, paper Appendix A), which
// is the appendix's remedy for the mod-structure starvation pathology
// ("if we (somehow) add a fifth join process to the three-bucket Hybrid
// join, all join processes can theoretically receive tuples").
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

class MultiProcessJoinTest : public ::testing::Test {
 protected:
  // The appendix configuration: two disk nodes, two diskless nodes.
  MultiProcessJoinTest() : machine_(testing::SmallConfig(2, 2)) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 3000;
    options.inner_cardinality = 600;
    options.seed = 23;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  JoinOutput MustJoin(const std::function<void(JoinSpec&)>& mutate) {
    JoinSpec spec;
    spec.inner_relation = "Bprime";
    spec.outer_relation = "A";
    spec.algorithm = Algorithm::kHybridHash;
    spec.result_name = "mp_result";
    mutate(spec);
    auto output = ExecuteJoin(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK_OK(catalog_.Drop("mp_result"));
    return std::move(output).value();
  }

  int64_t DisklessInserts() {
    return machine_.node(2).counters().ht_inserts +
           machine_.node(3).counters().ht_inserts;
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(MultiProcessJoinTest, AppendixStarvationPathologyReproduced) {
  // 3-bucket Hybrid, 4 join processes, analyzer OFF. The 8-entry
  // partitioning table re-maps each STORED bucket onto only two of the
  // four processes (Appendix A, Table 4: every bucket-2 tuple of disk 1
  // goes to join site 1): the disk nodes end up with 1.5x the diskless
  // nodes' build work (buckets 0+1+2 vs buckets 0+... of bucket 3).
  // Each stored bucket lands on only HALF the processes ("sites 1 and 2
  // will have twice as many tuples as expected, and hence the
  // probability of memory overflow is much higher"): with memory sized
  // by the optimizer's even-spread assumption, the join overflows —
  // and the Simple-hash machinery resolves it correctly.
  auto starved = MustJoin([&](JoinSpec& spec) {
    spec.join_nodes = {0, 1, 2, 3};
    spec.num_buckets = 3;
    spec.use_bucket_analyzer = false;
    spec.memory_ratio = 1.0 / 3.0;
  });
  EXPECT_EQ(starved.stats.result_tuples, 600u);
  EXPECT_GT(starved.stats.overflow_events, 0);
  // (The exact split-table mapping of the pathology — every bucket-2
  // tuple of disk 1 re-mapping to join site 1 — is asserted
  // entry-by-entry in split_table_test.cc.)

  // The analyzer's remedy: grow 3 buckets to 4.
  auto fixed = MustJoin([&](JoinSpec& spec) {
    spec.join_nodes = {0, 1, 2, 3};
    spec.num_buckets = 3;
    spec.use_bucket_analyzer = true;
    spec.memory_ratio = 1.0;
  });
  EXPECT_EQ(fixed.stats.num_buckets, 4);
  EXPECT_EQ(fixed.stats.result_tuples, 600u);
}

TEST_F(MultiProcessJoinTest, FifthProcessUnstarvesThreeBuckets) {
  // The appendix's alternative remedy: keep 3 buckets but run FIVE join
  // processes (two share node 3). Every process can receive tuples.
  auto output = MustJoin([&](JoinSpec& spec) {
    spec.join_nodes = {0, 1, 2, 3, 3};
    spec.num_buckets = 3;
    spec.use_bucket_analyzer = false;
    spec.memory_ratio = 1.0;
  });
  EXPECT_EQ(output.stats.result_tuples, 600u);
  // All four processors (and both processes on node 3) build tuples.
  for (int node = 0; node < 4; ++node) {
    EXPECT_GT(machine_.node(node).counters().ht_inserts, 60) << node;
  }
}

TEST_F(MultiProcessJoinTest, DuplicatedProcessesStayCorrect) {
  // Two processes on every node, constrained memory, filters on: the
  // result must still match the reference.
  auto output = MustJoin([&](JoinSpec& spec) {
    spec.join_nodes = {0, 0, 1, 1, 2, 2, 3, 3};
    spec.memory_ratio = 0.3;
    spec.use_bit_filters = true;
  });
  EXPECT_EQ(output.stats.result_tuples, 600u);

  auto inner = catalog_.Get("Bprime");
  auto outer = catalog_.Get("A");
  ASSERT_TRUE(inner.ok() && outer.ok());
  const auto expected = testing::ReferenceJoin(
      (*inner)->PeekAllTuples(), (*inner)->schema(),
      wisconsin::fields::kUnique1, (*outer)->PeekAllTuples(),
      (*outer)->schema(), wisconsin::fields::kUnique1);
  EXPECT_EQ(expected.size(), 600u);
}

TEST_F(MultiProcessJoinTest, SimpleHashWithProcessPairs) {
  auto output = MustJoin([&](JoinSpec& spec) {
    spec.algorithm = Algorithm::kSimpleHash;
    spec.join_nodes = {2, 2, 3, 3};
    spec.memory_ratio = 0.4;
  });
  EXPECT_EQ(output.stats.result_tuples, 600u);
  EXPECT_GT(output.stats.overflow_events, 0);
}

}  // namespace
}  // namespace gammadb::join
