#include "join/hash_table.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::join {
namespace {

class JoinHashTableTest : public ::testing::Test {
 protected:
  JoinHashTableTest()
      : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}),
        schema_({storage::Field::Int32("k"), storage::Field::Char("p", 28)}) {
    machine_.BeginPhase("test");
  }
  ~JoinHashTableTest() override {
    machine_.EndPhase().IgnoreError();  // teardown balance only
  }

  storage::Tuple MakeTuple(int32_t k) {
    storage::Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, k);
    return t;
  }

  uint64_t Hash(int32_t k) { return HashJoinAttribute(k); }

  sim::Machine machine_;
  storage::Schema schema_;  // 32-byte tuples
};

TEST_F(JoinHashTableTest, InsertAndProbe) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  for (int32_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  EXPECT_EQ(table.size(), 50u);
  EXPECT_EQ(table.bytes_used(), 50u * 32);
  int matches = 0;
  table.Probe(25, Hash(25), [&](const storage::Tuple& t) {
    EXPECT_EQ(t.GetInt32(schema_, 0), 25);
    ++matches;
  });
  EXPECT_EQ(matches, 1);
  table.Probe(999, Hash(999), [&](const storage::Tuple&) { ++matches; });
  EXPECT_EQ(matches, 1);
}

TEST_F(JoinHashTableTest, DuplicateKeysAllMatch) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(table.Insert(MakeTuple(5), Hash(5)));
  }
  int matches = 0;
  table.Probe(5, Hash(5), [&](const storage::Tuple&) { ++matches; });
  EXPECT_EQ(matches, 7);
  const auto chains = table.ComputeChainStats();
  EXPECT_EQ(chains.max, 7);
  EXPECT_EQ(chains.tuples, 7u);
  EXPECT_EQ(chains.occupied_slots, 1u);
  EXPECT_DOUBLE_EQ(chains.Average(), 7.0);
}

TEST_F(JoinHashTableTest, CapacityIsEnforcedInBytes) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 10);
  for (int32_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  EXPECT_FALSE(table.Insert(MakeTuple(11), Hash(11)));  // full
  EXPECT_EQ(table.size(), 10u);  // rejected tuple not inserted
}

TEST_F(JoinHashTableTest, EvictAtOrAboveRemovesExactlyTheRange) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 1000);
  for (int32_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  const uint64_t cutoff = table.histogram().CutoffForFraction(0.10);
  const auto evicted = table.EvictAtOrAbove(cutoff);
  EXPECT_GE(evicted.size(), 50u);  // at least 10%
  for (const auto& [hash, tuple] : evicted) {
    EXPECT_GE(hash, cutoff);
    EXPECT_EQ(hash, Hash(tuple.GetInt32(schema_, 0)));
  }
  EXPECT_EQ(table.size() + evicted.size(), 500u);
  EXPECT_EQ(table.bytes_used(), table.size() * 32);
  // Survivors are all below the cutoff and still probeable.
  int found = 0;
  for (int32_t k = 0; k < 500; ++k) {
    if (Hash(k) < cutoff) {
      table.Probe(k, Hash(k), [&](const storage::Tuple&) { ++found; });
    }
  }
  EXPECT_EQ(static_cast<size_t>(found), table.size());
}

TEST_F(JoinHashTableTest, InsertSucceedsAfterEviction) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 10);
  for (int32_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  ASSERT_FALSE(table.Insert(MakeTuple(100), Hash(100)));
  const uint64_t cutoff = table.histogram().CutoffForFraction(0.10);
  const auto evicted = table.EvictAtOrAbove(cutoff);
  ASSERT_GE(evicted.size(), 1u);
  EXPECT_TRUE(table.Insert(MakeTuple(100), Hash(100)));
}

TEST_F(JoinHashTableTest, ClearEmptiesEverything) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  for (int32_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.bytes_used(), 0u);
  EXPECT_EQ(table.histogram().total(), 0u);
  int matches = 0;
  table.Probe(5, Hash(5), [&](const storage::Tuple&) { ++matches; });
  EXPECT_EQ(matches, 0);
  // Reusable after Clear.
  EXPECT_TRUE(table.Insert(MakeTuple(1), Hash(1)));
}

TEST_F(JoinHashTableTest, ProbeChargesCpu) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  ASSERT_TRUE(table.Insert(MakeTuple(1), Hash(1)));
  const double cpu_before = machine_.node(0).phase_usage().cpu_seconds;
  table.Probe(1, Hash(1), [](const storage::Tuple&) {});
  EXPECT_GT(machine_.node(0).phase_usage().cpu_seconds, cpu_before);
  EXPECT_EQ(machine_.node(0).counters().ht_probes, 1);
  EXPECT_EQ(machine_.node(0).counters().ht_inserts, 1);
}

// Matches for a key are emitted newest-insertion-first (LIFO), the
// order the original chained layout produced by probing head-first.
TEST_F(JoinHashTableTest, ProbeEmitsMatchesNewestFirst) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  for (int i = 0; i < 4; ++i) {
    storage::Tuple t = MakeTuple(9);
    t.SetChars(schema_, 1, std::string(1, static_cast<char>('a' + i)));
    ASSERT_TRUE(table.Insert(std::move(t), Hash(9)));
  }
  std::string order;
  table.Probe(9, Hash(9), [&](const storage::Tuple& t) {
    order += t.GetChars(schema_, 1)[0];
  });
  EXPECT_EQ(order, "dcba");
}

// ProbeBatch must be observationally identical to a scalar Probe loop:
// same matches in the same order, same CPU charges, same counters.
TEST_F(JoinHashTableTest, ProbeBatchMatchesScalarProbeExactly) {
  sim::Machine scalar_machine(sim::MachineConfig{1, 0, sim::CostModel{}, 1});
  scalar_machine.BeginPhase("test");
  JoinHashTable batched(&machine_.node(0), &schema_, 0, 32 * 1000);
  JoinHashTable scalar(&scalar_machine.node(0), &schema_, 0, 32 * 1000);
  // Duplicate keys (k % 17) force multi-match probes and collisions.
  for (int32_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(batched.Insert(MakeTuple(k % 17), Hash(k % 17)));
    ASSERT_TRUE(scalar.Insert(MakeTuple(k % 17), Hash(k % 17)));
  }
  constexpr size_t kProbes = JoinHashTable::kProbeBatchMax;
  int32_t keys[kProbes];
  uint64_t hashes[kProbes];
  for (size_t i = 0; i < kProbes; ++i) {
    keys[i] = static_cast<int32_t>(i % 23);  // some keys miss (17..22)
    hashes[i] = Hash(keys[i]);
  }
  std::vector<std::pair<size_t, int32_t>> batched_matches;
  batched.ProbeBatch(keys, hashes, kProbes,
                     [&](size_t i, const storage::Tuple& t) {
                       batched_matches.emplace_back(i, t.GetInt32(schema_, 0));
                     });
  std::vector<std::pair<size_t, int32_t>> scalar_matches;
  for (size_t i = 0; i < kProbes; ++i) {
    scalar.Probe(keys[i], hashes[i], [&](const storage::Tuple& t) {
      scalar_matches.emplace_back(i, t.GetInt32(schema_, 0));
    });
  }
  EXPECT_EQ(batched_matches, scalar_matches);
  EXPECT_DOUBLE_EQ(machine_.node(0).phase_usage().cpu_seconds,
                   scalar_machine.node(0).phase_usage().cpu_seconds);
  EXPECT_EQ(machine_.node(0).counters().ht_probes,
            scalar_machine.node(0).counters().ht_probes);
  GAMMA_ASSERT_OK(scalar_machine.EndPhase());
}

TEST_F(JoinHashTableTest, ForEachResidentHashVisitsAll) {
  JoinHashTable table(&machine_.node(0), &schema_, 0, 32 * 100);
  for (int32_t k = 0; k < 30; ++k) {
    ASSERT_TRUE(table.Insert(MakeTuple(k), Hash(k)));
  }
  size_t visited = 0;
  table.ForEachResidentHash([&](uint64_t) { ++visited; });
  EXPECT_EQ(visited, 30u);
}

}  // namespace
}  // namespace gammadb::join
