// Sort-merge-specific behaviour: merge-pass staircase, duplicate
// handling on both sides, and the early-termination I/O saving that
// drives the paper's Table 3 NU result.
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

class SortMergeJoinTest : public ::testing::Test {
 protected:
  SortMergeJoinTest() : machine_(testing::SmallConfig(4)) {}

  void LoadStandard(uint32_t outer = 4000, uint32_t inner = 400) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = outer;
    options.inner_cardinality = inner;
    options.seed = 31;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  JoinOutput MustJoin(const std::function<void(JoinSpec&)>& mutate) {
    JoinSpec spec;
    spec.inner_relation = "Bprime";
    spec.outer_relation = "A";
    spec.algorithm = Algorithm::kSortMerge;
    spec.result_name = "sm_result";
    mutate(spec);
    auto output = ExecuteJoin(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK_OK(catalog_.Drop("sm_result"));
    return std::move(output).value();
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(SortMergeJoinTest, MergePassesStepWithMemory) {
  LoadStandard();
  // Explicit budgets: at this reduced scale ratios of the tiny inner
  // relation would clamp to the 3-page sort minimum on both sides.
  auto roomy = MustJoin(
      [](JoinSpec& s) { s.memory_bytes = 4ull * 64 * 8192; });  // 64 p/node
  auto tight = MustJoin(
      [](JoinSpec& s) { s.memory_bytes = 4ull * 3 * 8192; });  // 3 p/node
  EXPECT_EQ(roomy.stats.result_tuples, 400u);
  EXPECT_EQ(tight.stats.result_tuples, 400u);
  EXPECT_GE(tight.stats.outer_sort_passes, roomy.stats.outer_sort_passes);
  EXPECT_GT(tight.stats.outer_sort_passes, 0);
  EXPECT_GT(tight.metrics.counters.pages_written,
            roomy.metrics.counters.pages_written);
}

TEST_F(SortMergeJoinTest, EarlyTerminationSkipsOuterTail) {
  // Inner join values confined to the bottom 10% of the outer domain:
  // once the sorted inner stream is exhausted the merge must stop, so
  // the full-domain run reads measurably more than the confined run.
  LoadStandard(4000, 400);

  // Build a second inner relation whose unique1 values are all < 400.
  wisconsin::GenOptions gen;
  gen.cardinality = 4000;
  gen.seed = 31;
  auto outer_tuples = wisconsin::Generate(gen);
  std::vector<storage::Tuple> low;
  const auto schema = wisconsin::WisconsinSchema();
  for (const auto& t : outer_tuples) {
    if (t.GetInt32(schema, wisconsin::fields::kUnique1) < 400) {
      low.push_back(t);
    }
  }
  ASSERT_EQ(low.size(), 400u);
  auto rel = catalog_.Create(machine_, "LowInner", schema);
  ASSERT_TRUE(rel.ok());
  db::LoadOptions load;
  load.strategy = db::PartitionStrategy::kHashed;
  load.partition_field = wisconsin::fields::kUnique1;
  ASSERT_TRUE(db::LoadRelation(*rel, low, load).ok());

  auto spread = MustJoin([](JoinSpec& s) { s.memory_ratio = 0.5; });
  auto confined = MustJoin([](JoinSpec& s) {
    s.inner_relation = "LowInner";
    s.memory_ratio = 0.5;
  });
  EXPECT_EQ(spread.stats.result_tuples, 400u);
  EXPECT_EQ(confined.stats.result_tuples, 400u);
  // The confined inner ends the merge after ~10% of the outer stream.
  EXPECT_LT(confined.metrics.counters.pages_read,
            spread.metrics.counters.pages_read);
  EXPECT_LT(confined.response_seconds(), spread.response_seconds());
}

TEST_F(SortMergeJoinTest, DuplicatesOnBothSides) {
  // Join on a 10-value attribute: every inner tuple matches 1/10th of
  // the outer relation; inner duplicate groups must be buffered and
  // re-joined for every matching outer tuple.
  LoadStandard(600, 60);
  auto inner_rel = catalog_.Get("Bprime");
  auto outer_rel = catalog_.Get("A");
  ASSERT_TRUE(inner_rel.ok() && outer_rel.ok());
  const auto expected = testing::ReferenceJoin(
      (*inner_rel)->PeekAllTuples(), (*inner_rel)->schema(),
      wisconsin::fields::kTen, (*outer_rel)->PeekAllTuples(),
      (*outer_rel)->schema(), wisconsin::fields::kTen);

  JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.inner_field = wisconsin::fields::kTen;
  spec.outer_field = wisconsin::fields::kTen;
  spec.algorithm = Algorithm::kSortMerge;
  spec.memory_ratio = 0.4;
  spec.result_name = "dup_result";
  auto output = ExecuteJoin(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto result_rel = catalog_.Get("dup_result");
  ASSERT_TRUE(result_rel.ok());
  EXPECT_EQ(testing::Canonical((*result_rel)->PeekAllTuples()),
            testing::Canonical(expected));
  EXPECT_EQ(output->stats.result_tuples, expected.size());
}

TEST_F(SortMergeJoinTest, FilterSavesSortAndMergeWork) {
  LoadStandard();
  auto plain = MustJoin([](JoinSpec& s) { s.memory_ratio = 0.25; });
  auto filtered = MustJoin([](JoinSpec& s) {
    s.memory_ratio = 0.25;
    s.use_bit_filters = true;
  });
  EXPECT_EQ(filtered.stats.result_tuples, 400u);
  EXPECT_GT(filtered.stats.filter_drops, 0);
  // Eliminated outer tuples are never written to the temp files.
  EXPECT_LT(filtered.metrics.counters.pages_written,
            plain.metrics.counters.pages_written);
  EXPECT_LT(filtered.response_seconds(), plain.response_seconds());
}

}  // namespace
}  // namespace gammadb::join
