// Network short-circuiting invariants (paper Sections 4.1 and 4.3 and
// Appendix A): who crosses the ring under which declustering, join
// attribute and node placement.
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

class ShortCircuitTest : public ::testing::Test {
 protected:
  void Load(bool remote_machine) {
    machine_ = std::make_unique<sim::Machine>(
        testing::SmallConfig(8, remote_machine ? 8 : 0));
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 8000;
    options.inner_cardinality = 800;
    options.seed = 13;
    auto loaded = wisconsin::LoadJoinABprime(*machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  JoinOutput MustJoin(Algorithm algorithm, bool hpja, double ratio,
                      bool remote_join) {
    JoinSpec spec;
    spec.inner_relation = "Bprime";
    spec.outer_relation = "A";
    const int field = hpja ? wisconsin::fields::kUnique1
                           : wisconsin::fields::kUnique2;
    spec.inner_field = field;
    spec.outer_field = field;
    spec.algorithm = algorithm;
    spec.memory_ratio = ratio;
    if (remote_join) spec.join_nodes = machine_->DisklessNodeIds();
    spec.result_name = "result";
    auto output = ExecuteJoin(*machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK_OK(catalog_.Drop("result"));
    return std::move(output).value();
  }

  std::unique_ptr<sim::Machine> machine_;
  db::Catalog catalog_;
};

// Local HPJA joins short-circuit EVERYTHING: bucket-forming, joining,
// and (1/8th aside) even the result store traffic never leaves a node's
// own neighbourhood... result tuples go round-robin, so they do cross.
// The partition/build/probe traffic itself must be 100% local.
TEST_F(ShortCircuitTest, LocalHpjaHashJoinsShortCircuitJoinTraffic) {
  Load(/*remote_machine=*/false);
  for (Algorithm algorithm : {Algorithm::kGraceHash, Algorithm::kHybridHash,
                              Algorithm::kSortMerge}) {
    const auto output = MustJoin(algorithm, /*hpja=*/true, 0.5,
                                 /*remote_join=*/false);
    const auto& c = output.metrics.counters;
    // Only result tuples (800, routed round-robin: 7/8 remote) cross.
    EXPECT_LE(c.tuples_sent_remote, 800) << AlgorithmName(algorithm);
    EXPECT_GT(c.tuples_sent_local, 8000) << AlgorithmName(algorithm);
  }
}

TEST_F(ShortCircuitTest, LocalNonHpjaShortCircuitsOneEighth) {
  Load(false);
  const auto output =
      MustJoin(Algorithm::kGraceHash, /*hpja=*/false, 0.5, false);
  const auto& c = output.metrics.counters;
  // Bucket-forming spreads randomly (1/8 local); bucket-JOINING still
  // fully short-circuits (the Section 4.1 Grace argument), so the
  // overall local fraction is well above 1/8 but well below 1.
  const double local = c.ShortCircuitFraction();
  EXPECT_GT(local, 0.35);
  EXPECT_LT(local, 0.75);
}

TEST_F(ShortCircuitTest, GraceNonHpjaBucketJoinIsFullyLocal) {
  Load(false);
  // With one bucket the partition phase is the only non-local traffic:
  // 8800 tuples spread 1/8 local, the bucket join re-routes all 8800
  // locally, results 800 mostly remote.
  const auto output = MustJoin(Algorithm::kGraceHash, false, 1.0, false);
  const auto& c = output.metrics.counters;
  const int64_t expected_remote_partition = 8800 * 7 / 8;
  EXPECT_NEAR(static_cast<double>(c.tuples_sent_remote),
              static_cast<double>(expected_remote_partition + 800 * 7 / 8),
              150.0);
  // The bucket-join re-route (8800 tuples) must be local.
  EXPECT_GT(c.tuples_sent_local, 8800);
}

TEST_F(ShortCircuitTest, RemoteJoinNodesGetNoShortCircuitOnProbes) {
  Load(/*remote_machine=*/true);
  const auto output = MustJoin(Algorithm::kHybridHash, /*hpja=*/true, 1.0,
                               /*remote_join=*/true);
  const auto& c = output.metrics.counters;
  // One bucket: every tuple ships to a diskless joiner; results ship
  // back. Nothing can short-circuit.
  EXPECT_EQ(c.tuples_sent_local, 0);
  EXPECT_GE(c.tuples_sent_remote, 8800 + 800);
}

TEST_F(ShortCircuitTest, RemoteHpjaHybridWritesBucketsLocally) {
  Load(true);
  const auto two_buckets = MustJoin(Algorithm::kHybridHash, true, 0.5, true);
  // Half of both relations (bucket 1) is written to LOCAL disk; the
  // other half plus the bucket-join re-route plus results go remote.
  const auto& c = two_buckets.metrics.counters;
  EXPECT_NEAR(static_cast<double>(c.tuples_sent_local), 4400.0, 200.0);
}

TEST_F(ShortCircuitTest, RemoteNonHpjaHybridWritesBucketsRandomly) {
  Load(true);
  const auto output = MustJoin(Algorithm::kHybridHash, false, 0.5, true);
  const auto& c = output.metrics.counters;
  // Stored-bucket writes (4400 tuples) land on a random disk: 1/8 local.
  EXPECT_NEAR(static_cast<double>(c.tuples_sent_local), 4400.0 / 8, 120.0);
}

TEST_F(ShortCircuitTest, HpjaIsFasterThanNonHpjaLocally) {
  Load(false);
  for (Algorithm algorithm :
       {Algorithm::kSortMerge, Algorithm::kSimpleHash, Algorithm::kGraceHash,
        Algorithm::kHybridHash}) {
    const auto hpja = MustJoin(algorithm, true, 0.5, false);
    const auto non = MustJoin(algorithm, false, 0.5, false);
    EXPECT_LT(hpja.metrics.response_seconds, non.metrics.response_seconds)
        << AlgorithmName(algorithm);
    EXPECT_EQ(hpja.stats.result_tuples, non.stats.result_tuples);
  }
}

}  // namespace
}  // namespace gammadb::join
