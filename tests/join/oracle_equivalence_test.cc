// Deterministic differential matrix (docs/testing.md): every algorithm
// x edge-case scenario x executor thread count must produce exactly the
// oracle's result multiset, measured three ways — the digest streamed
// out of the engines (JoinSpec::capture_results), the digest recomputed
// from the stored result relation, and the nested-loop oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "join/digest.h"
#include "testing/fuzz.h"

namespace gammadb::testing {
namespace {

struct Scenario {
  const char* name;
  FuzzConfig config;  // algorithm/threads overwritten by the matrix
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;

  Scenario empty_r{"empty_inner", {}};
  empty_r.config.inner_tuples = 0;
  empty_r.config.outer_tuples = 60;
  empty_r.config.key_domain = 10;
  out.push_back(empty_r);

  Scenario empty_s{"empty_outer", {}};
  empty_s.config.inner_tuples = 40;
  empty_s.config.outer_tuples = 0;
  empty_s.config.key_domain = 10;
  out.push_back(empty_s);

  Scenario dup{"all_duplicate_keys", {}};
  dup.config.inner_tuples = 30;
  dup.config.outer_tuples = 60;
  dup.config.key_domain = 1;  // every tuple joins with every tuple
  out.push_back(dup);

  Scenario single{"one_tuple_each", {}};
  single.config.inner_tuples = 1;
  single.config.outer_tuples = 1;
  single.config.key_domain = 1;
  out.push_back(single);

  Scenario overflow{"deep_overflow", {}};
  overflow.config.inner_tuples = 250;
  overflow.config.outer_tuples = 400;
  overflow.config.key_domain = 100;
  overflow.config.memory_pct = 5;
  overflow.config.zero_slack = true;
  out.push_back(overflow);

  Scenario skew{"skew_rebalance", {}};
  skew.config.inner_tuples = 250;
  skew.config.outer_tuples = 600;
  skew.config.key_domain = 25;
  skew.config.zipf_theta = 1.2;
  skew.config.adaptive_repartition = true;
  skew.config.memory_pct = 35;
  out.push_back(skew);

  return out;
}

TEST(OracleEquivalence, AllAlgorithmsAllScenariosAllThreadCounts) {
  for (const Scenario& scenario : Scenarios()) {
    for (int algo = 0; algo < 4; ++algo) {
      for (int threads : {1, 4, 8}) {
        FuzzConfig config = scenario.config;
        config.data_seed = 20260808;
        config.algorithm = static_cast<join::Algorithm>(algo);
        config.threads = threads;
        const Result<FuzzRunResult> run = RunFuzzConfig(config);
        ASSERT_TRUE(run.ok())
            << scenario.name << ": " << run.status().ToString() << "\n  "
            << config.ToReproString();
        EXPECT_EQ(run->engine, run->oracle)
            << scenario.name << " engine digest diverged from the oracle\n  "
            << config.ToReproString() << "\n  engine " << run->engine.ToString()
            << "\n  oracle " << run->oracle.ToString();
        EXPECT_EQ(run->stored, run->oracle)
            << scenario.name << " stored digest diverged from the oracle\n  "
            << config.ToReproString() << "\n  stored " << run->stored.ToString()
            << "\n  oracle " << run->oracle.ToString();
      }
    }
  }
}

TEST(OracleEquivalence, HpjaAndRemoteVariantsMatchOracle) {
  for (const bool hpja : {false, true}) {
    for (const bool remote : {false, true}) {
      FuzzConfig config;
      config.data_seed = 7;
      config.algorithm = join::Algorithm::kHybridHash;
      config.threads = 4;
      config.inner_tuples = 100;
      config.outer_tuples = 300;
      config.key_domain = 25;
      config.hpja = hpja;
      config.remote = remote;
      const Result<FuzzRunResult> run = RunFuzzConfig(config);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->ok())
          << "hpja=" << hpja << " remote=" << remote << "\n  engine "
          << run->engine.ToString() << "\n  oracle " << run->oracle.ToString();
    }
  }
}

TEST(ResultDigest, OrderInsensitiveAndMergeable) {
  join::DigestAccumulator forward;
  join::DigestAccumulator backward;
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {5, 6, 7, 8};
  const uint8_t c[4] = {9, 10, 11, 12};
  forward.AddPair(1, a, sizeof(a), b, sizeof(b));
  forward.AddPair(2, b, sizeof(b), c, sizeof(c));
  forward.AddPair(1, a, sizeof(a), b, sizeof(b));  // duplicate pair counts
  backward.AddPair(1, a, sizeof(a), b, sizeof(b));
  backward.AddPair(1, a, sizeof(a), b, sizeof(b));
  backward.AddPair(2, b, sizeof(b), c, sizeof(c));
  EXPECT_EQ(forward.digest(), backward.digest());

  // Split across accumulators and merge — same digest.
  join::DigestAccumulator left;
  join::DigestAccumulator right;
  left.AddPair(1, a, sizeof(a), b, sizeof(b));
  right.AddPair(2, b, sizeof(b), c, sizeof(c));
  right.AddPair(1, a, sizeof(a), b, sizeof(b));
  left.Merge(right.digest());
  EXPECT_EQ(left.digest(), forward.digest());

  // Swapping inner and outer payloads is a DIFFERENT pair.
  join::DigestAccumulator swapped;
  swapped.AddPair(1, b, sizeof(b), a, sizeof(a));
  swapped.AddPair(2, b, sizeof(b), c, sizeof(c));
  swapped.AddPair(1, b, sizeof(b), a, sizeof(a));
  EXPECT_NE(swapped.digest(), forward.digest());
}

TEST(ResultDigest, CapturedDigestMatchesAcrossThreadCounts) {
  // The digest is a pure function of the result multiset, so it must be
  // bit-identical at every thread count (a stronger cousin of the
  // metrics determinism contract).
  FuzzConfig base;
  base.data_seed = 99;
  base.algorithm = join::Algorithm::kGraceHash;
  base.inner_tuples = 100;
  base.outer_tuples = 400;
  base.key_domain = 10;
  base.memory_pct = 35;

  base.threads = 1;
  const Result<FuzzRunResult> serial = RunFuzzConfig(base);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {4, 8}) {
    FuzzConfig config = base;
    config.threads = threads;
    const Result<FuzzRunResult> pooled = RunFuzzConfig(config);
    ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
    EXPECT_EQ(pooled->engine, serial->engine) << "threads=" << threads;
    EXPECT_TRUE(pooled->ok());
  }
}

}  // namespace
}  // namespace gammadb::testing
