// Tests of the hardened overflow path (docs/overflow.md): level-mixed
// hash seeds, the bounded-recursion matrix across all three hash
// algorithms and thread counts, and the deterministic nested-loop
// fallback on unsplittable (all-one-key) builds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "join/driver.h"
#include "join/hash_engine.h"
#include "sim/machine.h"
#include "sim/metrics_json.h"
#include "storage/schema.h"
#include "testing/oracle.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

TEST(OverflowLevelSeedTest, LevelsYieldDistinctSeeds) {
  // Every recursion level must hash with a seed unrelated to every
  // other level's; the old `base + level` derivation collapsed onto
  // shifted copies of the level-0 hash multiset (hash_engine.cc).
  const uint64_t base = kDefaultHashSeed;
  EXPECT_EQ(HashJoinEngine::OverflowLevelSeed(base, 0), base);
  std::vector<uint64_t> seeds;
  for (int level = 0; level <= 16; ++level) {
    seeds.push_back(HashJoinEngine::OverflowLevelSeed(base, level));
  }
  for (size_t a = 0; a < seeds.size(); ++a) {
    for (size_t b = a + 1; b < seeds.size(); ++b) {
      EXPECT_NE(seeds[a], seeds[b]) << "levels " << a << " and " << b;
    }
    // And none may degenerate to the additive family the fix removed.
    if (a > 0) {
      EXPECT_NE(seeds[a], base + a);
    }
  }
}

struct MatrixRun {
  JoinOutput output;
  ResultDigest oracle;
  std::string metrics_json;
};

MatrixRun RunOverflowMatrix(Algorithm algorithm, int threads) {
  sim::MachineConfig config = testing::SmallConfig(4);
  config.num_threads = threads;
  sim::Machine machine(config);
  db::Catalog catalog;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog,
                                           testing::ABprimeDataset());
  GAMMA_CHECK(loaded.ok());

  // Starved enough that every hash algorithm recurses at least twice.
  JoinSpec spec = testing::ABprimeSpec(algorithm, 0.03);
  spec.num_buckets = 1;  // Grace/Hybrid: one over-memory bucket
  spec.memory_slack = 0.0;

  MatrixRun run;
  auto oracle = testing::OracleJoinDigest(catalog, spec);
  GAMMA_CHECK(oracle.ok());
  run.oracle = *oracle;
  auto output = ExecuteJoin(machine, catalog, spec);
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  run.output = std::move(output).value();
  run.metrics_json = sim::RunMetricsToJson(run.output.metrics).Dump();
  return run;
}

TEST(OverflowRecursionMatrixTest, DeepRecursionIsCorrectAndDeterministic) {
  // For each hash algorithm: a config whose overflow recursion reaches
  // at least two levels must (a) produce the oracle's exact result
  // multiset and (b) emit byte-identical metrics JSON at 1, 4 and 8
  // executor threads (the determinism contract, DESIGN.md).
  for (Algorithm algorithm : {Algorithm::kSimpleHash, Algorithm::kGraceHash,
                              Algorithm::kHybridHash}) {
    SCOPED_TRACE(AlgorithmName(algorithm));
    const MatrixRun serial = RunOverflowMatrix(algorithm, 1);
    EXPECT_GE(serial.output.stats.overflow_levels, 2);
    ASSERT_TRUE(serial.output.result_digest.has_value());
    EXPECT_EQ(*serial.output.result_digest, serial.oracle);
    EXPECT_GT(serial.output.stats.spill_bytes, 0);
    EXPECT_GT(serial.output.stats.refill_bytes, 0);
    for (int threads : {4, 8}) {
      SCOPED_TRACE(threads);
      const MatrixRun threaded = RunOverflowMatrix(algorithm, threads);
      EXPECT_EQ(threaded.metrics_json, serial.metrics_json);
      ASSERT_TRUE(threaded.output.result_digest.has_value());
      EXPECT_EQ(*threaded.output.result_digest, serial.oracle);
    }
  }
}

class NestedLoopFallbackTest : public ::testing::Test {
 protected:
  NestedLoopFallbackTest() : machine_(testing::SmallConfig(4)) {}

  /// Loads R (inner) and S (outer) where EVERY tuple carries the same
  /// join key — the partition no rehash can split.
  void LoadOneKeyRelations(size_t inner_tuples, size_t outer_tuples) {
    const storage::Schema schema({storage::Field::Int32("key"),
                                  storage::Field::Int32("val")});
    const auto make = [&](size_t n) {
      std::vector<storage::Tuple> tuples;
      for (size_t i = 0; i < n; ++i) {
        storage::Tuple t(schema.tuple_bytes());
        t.SetInt32(schema, 0, 7);
        t.SetInt32(schema, 1, static_cast<int32_t>(i));
        tuples.push_back(std::move(t));
      }
      return tuples;
    };
    auto inner = catalog_.Create(machine_, "R", schema);
    auto outer = catalog_.Create(machine_, "S", schema);
    GAMMA_CHECK(inner.ok() && outer.ok());
    db::LoadOptions options;
    options.strategy = db::PartitionStrategy::kRoundRobin;
    GAMMA_CHECK_OK(db::LoadRelation(*inner, make(inner_tuples), options));
    GAMMA_CHECK_OK(db::LoadRelation(*outer, make(outer_tuples), options));
  }

  JoinOutput MustJoin(const std::function<void(JoinSpec&)>& mutate) {
    JoinSpec spec;
    spec.inner_relation = "R";
    spec.outer_relation = "S";
    spec.algorithm = Algorithm::kSimpleHash;
    spec.result_name = "result";
    spec.capture_results = true;
    mutate(spec);
    auto oracle = testing::OracleJoinDigest(catalog_, spec);
    GAMMA_CHECK(oracle.ok());
    auto output = ExecuteJoin(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    GAMMA_CHECK(output->result_digest.has_value());
    EXPECT_EQ(*output->result_digest, *oracle);
    GAMMA_CHECK_OK(catalog_.Drop("result"));
    return std::move(output).value();
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(NestedLoopFallbackTest, AllOneKeyBuildDegradesAndStaysCorrect) {
  // 200 identical keys against a budget of ~10 tuples per node: the
  // overflow partition can never shrink, so recursion must hand off to
  // the nested-loop fallback after one stuck level instead of failing.
  LoadOneKeyRelations(200, 300);
  auto output = MustJoin([](JoinSpec& spec) {
    spec.memory_bytes = 8u * 40;  // ~10 tuples of 8 bytes per node
    spec.memory_slack = 0.0;
  });
  EXPECT_GE(output.stats.nested_loop_fallbacks, 1);
  EXPECT_GT(output.stats.nested_loop_passes, 1);
  EXPECT_EQ(output.stats.result_tuples, 200u * 300u);
}

TEST_F(NestedLoopFallbackTest, ZeroMaxLevelsSkipsRecursionEntirely) {
  // max_overflow_levels = 0: the first overflow goes straight to the
  // fallback — no repartition level ever executes.
  LoadOneKeyRelations(100, 100);
  auto output = MustJoin([](JoinSpec& spec) {
    spec.memory_bytes = 8u * 40;
    spec.memory_slack = 0.0;
    spec.max_overflow_levels = 0;
  });
  EXPECT_EQ(output.stats.overflow_levels, 0);
  EXPECT_GE(output.stats.nested_loop_fallbacks, 1);
  EXPECT_EQ(output.stats.result_tuples, 100u * 100u);
}

TEST_F(NestedLoopFallbackTest, DepthCapTriggersFallbackOnSplittableKeys) {
  // Splittable keys but a shallow cap: recursion runs its budget of
  // levels, then the fallback finishes whatever is left.
  LoadOneKeyRelations(0, 0);  // placeholder relations, replaced below
  GAMMA_CHECK_OK(catalog_.Drop("R"));
  GAMMA_CHECK_OK(catalog_.Drop("S"));
  auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_,
                                           testing::ABprimeDataset());
  GAMMA_CHECK(loaded.ok());
  JoinSpec spec = testing::ABprimeSpec(Algorithm::kSimpleHash, 0.03);
  spec.memory_slack = 0.0;
  spec.max_overflow_levels = 1;
  auto oracle = testing::OracleJoinDigest(catalog_, spec);
  GAMMA_CHECK(oracle.ok());
  auto output = ExecuteJoin(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_LE(output->stats.overflow_levels, 1);
  EXPECT_GE(output->stats.nested_loop_fallbacks, 1);
  ASSERT_TRUE(output->result_digest.has_value());
  EXPECT_EQ(*output->result_digest, *oracle);
}

TEST_F(NestedLoopFallbackTest, InvalidDepthCapRejected) {
  LoadOneKeyRelations(4, 4);
  JoinSpec spec;
  spec.inner_relation = "R";
  spec.outer_relation = "S";
  spec.max_overflow_levels = -1;
  auto output = ExecuteJoin(machine_, catalog_, spec);
  EXPECT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST(SharedNodeOverflowTest, CoResidentProcessesShareTheNodeBudget) {
  // Two join processes pinned onto each of two nodes (Appendix A's
  // several-processes-per-processor remedy) under overflow pressure:
  // admission goes through the shared per-node broker budget and the
  // result multiset still matches the oracle.
  sim::Machine machine(testing::SmallConfig(4));
  db::Catalog catalog;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog,
                                           testing::ABprimeDataset());
  GAMMA_CHECK(loaded.ok());
  JoinSpec spec = testing::ABprimeSpec(Algorithm::kSimpleHash, 0.05);
  spec.join_nodes = {0, 0, 1, 1};
  spec.memory_slack = 0.0;
  auto oracle = testing::OracleJoinDigest(catalog, spec);
  GAMMA_CHECK(oracle.ok());
  auto output = ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_GT(output->stats.overflow_events, 0);
  ASSERT_TRUE(output->result_digest.has_value());
  EXPECT_EQ(*output->result_digest, *oracle);
}

}  // namespace
}  // namespace gammadb::join
