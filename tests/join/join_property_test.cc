// Property tests over the join engines: for a grid of workloads
// (duplicate densities, join attributes, memory budgets, predicates),
// every algorithm must produce byte-identical result multisets, and the
// execution metrics must satisfy structural invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

// (join field, memory ratio, with selection predicate)
using PropertyParam = std::tuple<int, double, bool>;

class JoinPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  JoinPropertyTest() : machine_(testing::SmallConfig(4)) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 1500;
    options.inner_cardinality = 300;
    options.seed = 21;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& [field, ratio, predicate] = info.param;
  std::string name = "field" + std::to_string(field) + "_m" +
                     std::to_string(static_cast<int>(ratio * 100));
  if (predicate) name += "_pred";
  return name;
}

TEST_P(JoinPropertyTest, AllAlgorithmsAgreeWithReference) {
  const auto& [field, ratio, with_predicate] = GetParam();

  JoinSpec base;
  base.inner_relation = "Bprime";
  base.outer_relation = "A";
  base.inner_field = field;
  base.outer_field = field;
  base.memory_ratio = ratio;
  if (with_predicate) {
    base.outer_predicate = {db::Predicate{
        wisconsin::fields::kFiftyPercent, db::Predicate::Op::kEq, 0}};
  }

  auto inner_rel = catalog_.Get("Bprime");
  auto outer_rel = catalog_.Get("A");
  ASSERT_TRUE(inner_rel.ok() && outer_rel.ok());
  const auto expected = testing::Canonical(testing::ReferenceJoin(
      (*inner_rel)->PeekAllTuples(), (*inner_rel)->schema(), field,
      (*outer_rel)->PeekAllTuples(), (*outer_rel)->schema(), field,
      base.inner_predicate, base.outer_predicate));

  for (Algorithm algorithm :
       {Algorithm::kSortMerge, Algorithm::kSimpleHash, Algorithm::kGraceHash,
        Algorithm::kHybridHash}) {
    for (bool filters : {false, true}) {
      JoinSpec spec = base;
      spec.algorithm = algorithm;
      spec.use_bit_filters = filters;
      spec.result_name = "prop_result";
      auto output = ExecuteJoin(machine_, catalog_, spec);
      ASSERT_TRUE(output.ok()) << output.status().ToString();

      auto result_rel = catalog_.Get("prop_result");
      ASSERT_TRUE(result_rel.ok());
      EXPECT_EQ(testing::Canonical((*result_rel)->PeekAllTuples()), expected)
          << AlgorithmName(algorithm) << (filters ? " +filters" : "");

      // Structural metric invariants.
      const auto& c = output->metrics.counters;
      EXPECT_EQ(output->stats.result_tuples, expected.size());
      EXPECT_EQ(c.result_tuples, static_cast<int64_t>(expected.size()));
      EXPECT_GE(c.pages_read, 0);
      EXPECT_GE(c.ht_probes, 0);
      const double short_circuit = c.ShortCircuitFraction();
      EXPECT_GE(short_circuit, 0.0);
      EXPECT_LE(short_circuit, 1.0);
      EXPECT_GT(output->metrics.response_seconds, 0.0);
      // Phase times sum to the response time.
      double sum = 0;
      for (const auto& phase : output->metrics.phases) {
        sum += phase.elapsed_seconds;
      }
      EXPECT_NEAR(sum, output->metrics.response_seconds, 1e-9);

      ASSERT_TRUE(catalog_.Drop("prop_result").ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, JoinPropertyTest,
    ::testing::Values(
        // Unique join attribute (one-to-one matches).
        PropertyParam{wisconsin::fields::kUnique1, 1.0, false},
        PropertyParam{wisconsin::fields::kUnique1, 0.3, false},
        PropertyParam{wisconsin::fields::kUnique2, 0.5, true},
        // Low-cardinality attributes: heavy many-to-many duplicates
        // (every inner tuple matches ~10% / ~5% of the outer relation).
        PropertyParam{wisconsin::fields::kTen, 0.6, true},
        PropertyParam{wisconsin::fields::kTwenty, 0.4, false},
        // Medium duplicates with deep overflow recursion.
        PropertyParam{wisconsin::fields::kOnePercent, 0.15, false}),
    ParamName);

}  // namespace
}  // namespace gammadb::join
