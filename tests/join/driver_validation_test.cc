// Error handling of the join driver: every invalid spec must come back
// as a Status, never a crash, and never leave a result relation behind.
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::join {
namespace {

class DriverValidationTest : public ::testing::Test {
 protected:
  DriverValidationTest() : machine_(testing::SmallConfig(4, 2)) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 1000;
    options.inner_cardinality = 100;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  JoinSpec ValidSpec() {
    JoinSpec spec;
    spec.inner_relation = "Bprime";
    spec.outer_relation = "A";
    return spec;
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(DriverValidationTest, UnknownRelation) {
  JoinSpec spec = ValidSpec();
  spec.inner_relation = "nope";
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kNotFound);
}

TEST_F(DriverValidationTest, BadJoinField) {
  JoinSpec spec = ValidSpec();
  spec.inner_field = 99;
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec = ValidSpec();
  spec.outer_field = wisconsin::fields::kStringU1;  // not int32
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverValidationTest, BadJoinNodes) {
  JoinSpec spec = ValidSpec();
  // Duplicate ids are LEGAL (two join processes on one node).
  spec.join_nodes = {0, 0};
  spec.result_name = "two_procs";
  auto two = ExecuteJoin(machine_, catalog_, spec);
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_EQ(two->stats.result_tuples, 100u);
  EXPECT_TRUE(catalog_.Drop("two_procs").ok());
  spec.result_name.clear();
  spec.join_nodes = {99};
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.join_nodes = {-1};
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverValidationTest, SortMergeRejectsDisklessJoiners) {
  JoinSpec spec = ValidSpec();
  spec.algorithm = Algorithm::kSortMerge;
  spec.join_nodes = machine_.DisklessNodeIds();
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverValidationTest, ZeroMemory) {
  JoinSpec spec = ValidSpec();
  spec.memory_ratio = 0.0;
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverValidationTest, CapacityBelowOneTuple) {
  JoinSpec spec = ValidSpec();
  spec.memory_bytes = 100;  // < 208 bytes per node
  spec.memory_slack = 0.0;
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DriverValidationTest, ResultNameCollision) {
  JoinSpec spec = ValidSpec();
  spec.result_name = "A";  // already exists
  EXPECT_EQ(ExecuteJoin(machine_, catalog_, spec).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DriverValidationTest, ExplicitMemoryBytesOverridesRatio) {
  JoinSpec spec = ValidSpec();
  spec.memory_ratio = 0.0;  // would be invalid alone
  spec.memory_bytes = 100u * 208u;  // 100 tuples aggregate
  auto output = ExecuteJoin(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->stats.result_tuples, 100u);
  EXPECT_TRUE(catalog_.Drop(output->result_relation).ok());
}

TEST_F(DriverValidationTest, FailedRunLeavesNoResultRelation) {
  JoinSpec spec = ValidSpec();
  spec.inner_field = 99;
  spec.result_name = "should_not_exist";
  EXPECT_FALSE(ExecuteJoin(machine_, catalog_, spec).ok());
  EXPECT_FALSE(catalog_.Get("should_not_exist").ok());
}

TEST_F(DriverValidationTest, OptimizerBucketCountFormula) {
  EXPECT_EQ(OptimizerBucketCount(1000, 1000), 1);
  EXPECT_EQ(OptimizerBucketCount(1000, 500), 2);
  EXPECT_EQ(OptimizerBucketCount(1001, 500), 3);
  EXPECT_EQ(OptimizerBucketCount(0, 500), 1);
  // Floating-point ratio tolerance: 1/3 of 2,080,000 truncated.
  EXPECT_EQ(OptimizerBucketCount(2080000, 693333), 3);
}

TEST_F(DriverValidationTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kSortMerge), "sort-merge");
  EXPECT_STREQ(AlgorithmName(Algorithm::kSimpleHash), "simple-hash");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGraceHash), "grace-hash");
  EXPECT_STREQ(AlgorithmName(Algorithm::kHybridHash), "hybrid-hash");
}

}  // namespace
}  // namespace gammadb::join
