#include "storage/byte_file.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

class ByteFileTest : public ::testing::Test {
 protected:
  ByteFileTest() : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}) {
    machine_.BeginPhase("bytefile");
  }
  ~ByteFileTest() override {
    machine_.EndPhase().IgnoreError();  // teardown balance only
  }

  sim::Machine machine_;
};

TEST_F(ByteFileTest, AppendReadRoundTrip) {
  ByteFile file(&machine_.node(0), "bf");
  std::vector<uint8_t> data(30000);
  Rng rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  GAMMA_ASSERT_OK(file.Append(data.data(), data.size()));
  GAMMA_ASSERT_OK(file.FlushAppends());
  EXPECT_EQ(file.size(), 30000u);
  EXPECT_EQ(file.page_count(), 4u);  // ceil(30000/8192)

  std::vector<uint8_t> out(30000);
  ASSERT_TRUE(file.ReadAt(0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ByteFileTest, PositionedReadsAcrossPageBoundaries) {
  ByteFile file(&machine_.node(0));
  std::vector<uint8_t> data(20000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  GAMMA_ASSERT_OK(file.Append(data.data(), data.size()));
  GAMMA_ASSERT_OK(file.FlushAppends());
  std::vector<uint8_t> out(100);
  // Straddles the first page boundary (8192).
  ASSERT_TRUE(file.ReadAt(8150, out.size(), out.data()).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(8150 + i));
  }
}

TEST_F(ByteFileTest, ReadPastEndRejected) {
  ByteFile file(&machine_.node(0));
  uint8_t byte = 7;
  GAMMA_ASSERT_OK(file.Append(&byte, 1));
  GAMMA_ASSERT_OK(file.FlushAppends());
  std::vector<uint8_t> out(2);
  EXPECT_EQ(file.ReadAt(0, 2, out.data()).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(file.ReadAt(0, 1, out.data()).ok());
  EXPECT_EQ(out[0], 7);
}

TEST_F(ByteFileTest, UnflushedTailRejectedThenReadable) {
  ByteFile file(&machine_.node(0));
  std::vector<uint8_t> data(100, 0xAA);
  GAMMA_ASSERT_OK(file.Append(data.data(), data.size()));
  std::vector<uint8_t> out(100);
  EXPECT_EQ(file.ReadAt(0, 100, out.data()).code(),
            StatusCode::kFailedPrecondition);
  GAMMA_ASSERT_OK(file.FlushAppends());
  EXPECT_TRUE(file.ReadAt(0, 100, out.data()).ok());
}

TEST_F(ByteFileTest, AppendAfterFlushRetractsSnapshot) {
  ByteFile file(&machine_.node(0));
  std::vector<uint8_t> first(100, 0x11), second(100, 0x22);
  GAMMA_ASSERT_OK(file.Append(first.data(), first.size()));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(file.Append(second.data(), second.size()));
  GAMMA_ASSERT_OK(file.FlushAppends());
  EXPECT_EQ(file.size(), 200u);
  EXPECT_EQ(file.page_count(), 1u);  // everything still fits one page
  std::vector<uint8_t> out(200);
  ASSERT_TRUE(file.ReadAt(0, 200, out.data()).ok());
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[150], 0x22);
}

TEST_F(ByteFileTest, SequentialReadsCheaperThanRandom) {
  ByteFile file(&machine_.node(0));
  std::vector<uint8_t> data(8192 * 4, 1);
  GAMMA_ASSERT_OK(file.Append(data.data(), data.size()));

  std::vector<uint8_t> out(8192);
  machine_.node(0).ResetPhaseUsage();
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(
        file.ReadAt(static_cast<uint64_t>(p) * 8192, 8192, out.data()).ok());
  }
  const double sequential = machine_.node(0).phase_usage().disk_seconds;

  machine_.node(0).ResetPhaseUsage();
  for (int p = 3; p >= 0; --p) {
    ASSERT_TRUE(
        file.ReadAt(static_cast<uint64_t>(p) * 8192, 8192, out.data()).ok());
  }
  const double random = machine_.node(0).phase_usage().disk_seconds;
  EXPECT_LT(sequential, random);
}

TEST_F(ByteFileTest, FreeReleasesPages) {
  ByteFile file(&machine_.node(0));
  std::vector<uint8_t> data(50000, 3);
  GAMMA_ASSERT_OK(file.Append(data.data(), data.size()));
  GAMMA_ASSERT_OK(file.FlushAppends());
  const size_t live = machine_.node(0).disk().live_pages();
  EXPECT_GT(live, 0u);
  file.Free();
  EXPECT_EQ(machine_.node(0).disk().live_pages(), 0u);
  EXPECT_EQ(file.size(), 0u);
}


// --- Fault injection: converted Status I/O paths (docs/fault_injection.md) --

TEST_F(ByteFileTest, AppendStaysConsistentAcrossHardWriteFault) {
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskWriteTransient;
  e.ordinal = 1;
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  // Arming is a between-phases operation; step out of the fixture's
  // phase first (its destructor ends the one we reopen).
  machine_.EndPhase().IgnoreError();
  machine_.ArmFaults(plan);
  machine_.BeginPhase("faulted append");

  ByteFile file(&machine_.node(0), "bf");
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  // The first full page's write exhausts its budget; the bytes stay
  // buffered in the tail, so the file never loses data.
  const Status append = file.Append(data.data(), data.size());
  EXPECT_EQ(append.code(), StatusCode::kUnavailable);
  Status flush = file.FlushAppends();
  for (int i = 0; !flush.ok() && i < 3; ++i) flush = file.FlushAppends();
  ASSERT_TRUE(flush.ok()) << flush.ToString();

  EXPECT_EQ(file.size(), 10000u);
  std::vector<uint8_t> out(10000);
  ASSERT_TRUE(file.ReadAt(0, out.size(), out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST_F(ByteFileTest, ReadAtSurfacesHardReadFault) {
  ByteFile file(&machine_.node(0), "bf");
  std::vector<uint8_t> data(10000, 0x5A);
  ASSERT_TRUE(file.Append(data.data(), data.size()).ok());
  ASSERT_TRUE(file.FlushAppends().ok());

  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskReadTransient;
  e.ordinal = 1;
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  machine_.EndPhase().IgnoreError();
  machine_.ArmFaults(plan);
  machine_.BeginPhase("faulted read");

  std::vector<uint8_t> out(100);
  EXPECT_EQ(file.ReadAt(0, out.size(), out.data()).code(),
            StatusCode::kUnavailable);
  // The fault burst is consumed: the same read now succeeds.
  EXPECT_TRUE(file.ReadAt(0, out.size(), out.data()).ok());
}

}  // namespace
}  // namespace gammadb::storage
