#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gammadb::storage {
namespace {

TEST(PageTest, CapacityFormula) {
  EXPECT_EQ(PageCapacity(8192, 208), (8192u - 4) / 208);  // 39 tuples
  EXPECT_EQ(PageCapacity(8192, 208), 39u);
  EXPECT_EQ(PageCapacity(4096, 100), 40u);
}

TEST(PageTest, WriteThenReadBack) {
  const uint32_t record_bytes = 16;
  PageWriter writer(1024, record_bytes);
  std::vector<uint8_t> rec(record_bytes);
  for (uint16_t i = 0; i < 10; ++i) {
    std::memset(rec.data(), i + 1, record_bytes);
    ASSERT_FALSE(writer.Full());
    writer.Append(rec.data());
  }
  const uint8_t* image = writer.Finish();
  PageReader reader(image, record_bytes);
  ASSERT_EQ(reader.count(), 10);
  for (uint16_t i = 0; i < 10; ++i) {
    EXPECT_EQ(reader.Record(i)[0], i + 1);
    EXPECT_EQ(reader.Record(i)[record_bytes - 1], i + 1);
  }
}

TEST(PageTest, FullAtCapacity) {
  PageWriter writer(100, 16);  // capacity (100-4)/16 = 6
  std::vector<uint8_t> rec(16, 0xAB);
  for (int i = 0; i < 6; ++i) {
    ASSERT_FALSE(writer.Full());
    writer.Append(rec.data());
  }
  EXPECT_TRUE(writer.Full());
  EXPECT_EQ(writer.capacity(), 6u);
}

TEST(PageTest, ResetClearsForReuse) {
  PageWriter writer(1024, 8);
  std::vector<uint8_t> rec(8, 0xCD);
  writer.Append(rec.data());
  writer.Finish();
  writer.Reset();
  EXPECT_EQ(writer.count(), 0);
  PageReader reader(writer.Finish(), 8);
  EXPECT_EQ(reader.count(), 0);
}

TEST(PageTest, EmptyPageReadsZeroRecords) {
  PageWriter writer(512, 32);
  PageReader reader(writer.Finish(), 32);
  EXPECT_EQ(reader.count(), 0);
}

}  // namespace
}  // namespace gammadb::storage
