// Parameterized property sweep for the external sort: over memory
// budgets, input sizes and value distributions, the output must equal
// the reference sort and the I/O accounting must balance.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/random.h"
#include "sim/machine.h"
#include "storage/external_sort.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

enum class Distribution { kUniform, kSorted, kReversed, kFewDistinct,
                          kAllEqual };

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kSorted:
      return "sorted";
    case Distribution::kReversed:
      return "reversed";
    case Distribution::kFewDistinct:
      return "fewdistinct";
    case Distribution::kAllEqual:
      return "allequal";
  }
  return "?";
}

using SortParam = std::tuple<uint32_t /*memory_pages*/, int /*n*/,
                             Distribution>;

class ExternalSortPropertyTest : public ::testing::TestWithParam<SortParam> {
 protected:
  ExternalSortPropertyTest()
      : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}),
        schema_({Field::Int32("k"), Field::Char("pad", 60)}) {}

  sim::Machine machine_;
  Schema schema_;
};

std::string SortParamName(const ::testing::TestParamInfo<SortParam>& info) {
  const auto& [pages, n, dist] = info.param;
  return std::string(DistributionName(dist)) + "_p" + std::to_string(pages) +
         "_n" + std::to_string(n);
}

TEST_P(ExternalSortPropertyTest, MatchesReferenceSort) {
  const auto& [memory_pages, n, distribution] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31 + memory_pages);
  std::vector<int32_t> values(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (distribution) {
      case Distribution::kUniform:
        values[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.Uniform(1u << 30));
        break;
      case Distribution::kSorted:
        values[static_cast<size_t>(i)] = i;
        break;
      case Distribution::kReversed:
        values[static_cast<size_t>(i)] = n - i;
        break;
      case Distribution::kFewDistinct:
        values[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.Uniform(7));
        break;
      case Distribution::kAllEqual:
        values[static_cast<size_t>(i)] = 42;
        break;
    }
  }

  machine_.BeginPhase("sort");
  ExternalSort sort(&machine_.node(0), &schema_, 0, memory_pages);
  for (int32_t v : values) {
    Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, v);
    GAMMA_ASSERT_OK(sort.Add(t));
  }
  GAMMA_ASSERT_OK(sort.FinishInput());
  std::vector<int32_t> output;
  output.reserve(values.size());
  auto stream = sort.OpenStream();
  Tuple t;
  while (stream->Next(&t)) output.push_back(t.GetInt32(schema_, 0));
  GAMMA_ASSERT_OK(machine_.EndPhase());

  std::vector<int32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(output, expected);

  // I/O balance: every page written for runs/merges is read back
  // exactly once (runs are read once during merges or the final
  // stream); an in-memory sort does no I/O at all.
  const auto& c = machine_.node(0).counters();
  EXPECT_EQ(c.pages_read, c.pages_written);
  if (sort.run_count() == 0) {
    EXPECT_EQ(c.pages_written, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortPropertyTest,
    ::testing::Combine(::testing::Values(3u, 4u, 8u, 32u),
                       ::testing::Values(0, 1, 500, 5000),
                       ::testing::Values(Distribution::kUniform,
                                         Distribution::kSorted,
                                         Distribution::kReversed,
                                         Distribution::kFewDistinct,
                                         Distribution::kAllEqual)),
    SortParamName);

}  // namespace
}  // namespace gammadb::storage
