#include "storage/schema.h"

#include <gtest/gtest.h>

#include "storage/tuple.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::storage {
namespace {

Schema TwoFieldSchema() {
  return Schema({Field::Int32("id"), Field::Char("name", 12)});
}

TEST(SchemaTest, OffsetsAndSize) {
  const Schema s = TwoFieldSchema();
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.tuple_bytes(), 16u);
}

TEST(SchemaTest, FieldIndexLookup) {
  const Schema s = TwoFieldSchema();
  EXPECT_EQ(s.FieldIndex("id"), 0);
  EXPECT_EQ(s.FieldIndex("name"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
}

TEST(SchemaTest, Int32RoundTrip) {
  const Schema s = TwoFieldSchema();
  Tuple t(s.tuple_bytes());
  t.SetInt32(s, 0, -123456);
  EXPECT_EQ(t.GetInt32(s, 0), -123456);
  t.SetInt32(s, 0, INT32_MAX);
  EXPECT_EQ(t.GetInt32(s, 0), INT32_MAX);
  t.SetInt32(s, 0, INT32_MIN);
  EXPECT_EQ(t.GetInt32(s, 0), INT32_MIN);
}

TEST(SchemaTest, CharsPadAndTruncate) {
  const Schema s = TwoFieldSchema();
  Tuple t(s.tuple_bytes());
  t.SetChars(s, 1, "abc");
  EXPECT_EQ(t.GetChars(s, 1), "abc         ");  // space padded to 12
  t.SetChars(s, 1, "averylongstringthatoverflows");
  EXPECT_EQ(t.GetChars(s, 1), "averylongstr");  // truncated to 12
}

TEST(SchemaTest, ConcatRenamesCollisions) {
  const Schema a = TwoFieldSchema();
  const Schema b = TwoFieldSchema();
  const Schema joined = Schema::Concat(a, b);
  EXPECT_EQ(joined.num_fields(), 4u);
  EXPECT_EQ(joined.tuple_bytes(), 32u);
  EXPECT_EQ(joined.FieldIndex("id"), 0);
  EXPECT_EQ(joined.FieldIndex("id_2"), 2);
  EXPECT_EQ(joined.FieldIndex("name_2"), 3);
}

TEST(SchemaTest, ConcatPreservesFieldAccess) {
  const Schema a = TwoFieldSchema();
  const Schema joined = Schema::Concat(a, a);
  Tuple left(a.tuple_bytes()), right(a.tuple_bytes());
  left.SetInt32(a, 0, 11);
  right.SetInt32(a, 0, 22);
  const Tuple both = Tuple::Concat(left, right);
  EXPECT_EQ(both.GetInt32(joined, 0), 11);
  EXPECT_EQ(both.GetInt32(joined, 2), 22);
}

TEST(SchemaTest, EqualityComparesFields) {
  EXPECT_TRUE(TwoFieldSchema() == TwoFieldSchema());
  const Schema other({Field::Int32("id"), Field::Char("name", 13)});
  EXPECT_FALSE(TwoFieldSchema() == other);
}

TEST(SchemaTest, WisconsinIs208Bytes) {
  const Schema w = wisconsin::WisconsinSchema();
  EXPECT_EQ(w.tuple_bytes(), 208u);
  EXPECT_EQ(w.num_fields(), 16u);
  EXPECT_EQ(w.FieldIndex("unique1"), wisconsin::fields::kUnique1);
  EXPECT_EQ(w.FieldIndex("unique2"), wisconsin::fields::kUnique2);
  EXPECT_EQ(w.FieldIndex("stringu1"), wisconsin::fields::kStringU1);
}

}  // namespace
}  // namespace gammadb::storage
