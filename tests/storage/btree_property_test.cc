// Parameterized B+-tree sweep: insert orders x sizes x duplicate
// densities, validated against a reference multimap.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "common/random.h"
#include "sim/machine.h"
#include "storage/btree.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

enum class InsertOrder { kAscending, kDescending, kRandom, kZigZag };

const char* OrderName(InsertOrder o) {
  switch (o) {
    case InsertOrder::kAscending:
      return "asc";
    case InsertOrder::kDescending:
      return "desc";
    case InsertOrder::kRandom:
      return "random";
    case InsertOrder::kZigZag:
      return "zigzag";
  }
  return "?";
}

using BTreeParam = std::tuple<InsertOrder, int /*n*/, int /*key_space*/>;

class BPlusTreePropertyTest : public ::testing::TestWithParam<BTreeParam> {
 protected:
  BPlusTreePropertyTest()
      : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}) {
    machine_.BeginPhase("btree");
  }
  ~BPlusTreePropertyTest() override {
    machine_.EndPhase().IgnoreError();  // teardown balance only
  }

  sim::Machine machine_;
};

std::string BTreeParamName(const ::testing::TestParamInfo<BTreeParam>& info) {
  const auto& [order, n, space] = info.param;
  return std::string(OrderName(order)) + "_n" + std::to_string(n) + "_k" +
         std::to_string(space);
}

TEST_P(BPlusTreePropertyTest, MatchesReferenceMultimap) {
  const auto& [order, n, key_space] = GetParam();
  std::vector<int32_t> keys(static_cast<size_t>(n));
  Rng rng(static_cast<uint64_t>(n) * 7 + key_space);
  for (int i = 0; i < n; ++i) {
    switch (order) {
      case InsertOrder::kAscending:
        keys[static_cast<size_t>(i)] = i % key_space;
        break;
      case InsertOrder::kDescending:
        keys[static_cast<size_t>(i)] = (n - i) % key_space;
        break;
      case InsertOrder::kRandom:
        keys[static_cast<size_t>(i)] =
            static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(key_space)));
        break;
      case InsertOrder::kZigZag:
        keys[static_cast<size_t>(i)] =
            (i % 2 == 0 ? i / 2 : key_space - i / 2) % key_space;
        break;
    }
  }

  BPlusTree tree(&machine_.node(0));
  std::multimap<int32_t, uint64_t> reference;
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], i);
    reference.emplace(keys[i], i);
  }
  tree.ValidateInvariants();
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));

  // Point lookups on a sample of keys (hits and misses).
  for (int32_t key = -2; key < key_space + 2; key += std::max(1, key_space / 37)) {
    auto hits = tree.Search(key);
    auto [lo, hi] = reference.equal_range(key);
    std::vector<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected) << "key " << key;
  }

  // A range scan over the middle third.
  const int32_t lo = key_space / 3;
  const int32_t hi = 2 * key_space / 3;
  const auto scanned = tree.RangeScan(lo, hi);
  size_t expected_count = 0;
  for (const auto& [key, value] : reference) {
    if (key >= lo && key <= hi) ++expected_count;
  }
  EXPECT_EQ(scanned.size(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreePropertyTest,
    ::testing::Combine(::testing::Values(InsertOrder::kAscending,
                                         InsertOrder::kDescending,
                                         InsertOrder::kRandom,
                                         InsertOrder::kZigZag),
                       ::testing::Values(100, 3000, 20000),
                       ::testing::Values(10, 1000, 1000000)),
    BTreeParamName);

}  // namespace
}  // namespace gammadb::storage
