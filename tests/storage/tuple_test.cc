#include "storage/tuple.h"

#include <gtest/gtest.h>

namespace gammadb::storage {
namespace {

Schema TestSchema() {
  return Schema({Field::Int32("a"), Field::Char("s", 8), Field::Int32("b")});
}

TEST(TupleTest, ZeroInitialized) {
  const Schema schema = TestSchema();
  Tuple t(schema.tuple_bytes());
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.GetInt32(schema, 0), 0);
  EXPECT_EQ(t.GetInt32(schema, 2), 0);
}

TEST(TupleTest, FieldWritesDoNotOverlap) {
  const Schema schema = TestSchema();
  Tuple t(schema.tuple_bytes());
  t.SetInt32(schema, 0, -1);
  t.SetChars(schema, 1, "xyz");
  t.SetInt32(schema, 2, 77);
  EXPECT_EQ(t.GetInt32(schema, 0), -1);
  EXPECT_EQ(t.GetChars(schema, 1), "xyz     ");
  EXPECT_EQ(t.GetInt32(schema, 2), 77);
}

TEST(TupleTest, CopyFromRawBytes) {
  const Schema schema = TestSchema();
  Tuple original(schema.tuple_bytes());
  original.SetInt32(schema, 0, 1234);
  Tuple copy(original.data(), original.size());
  EXPECT_EQ(copy, original);
  copy.SetInt32(schema, 0, 5678);
  EXPECT_NE(copy, original);  // deep copy
  EXPECT_EQ(original.GetInt32(schema, 0), 1234);
}

TEST(TupleTest, ConcatLaysOutLeftThenRight) {
  const Schema schema = TestSchema();
  Tuple left(schema.tuple_bytes()), right(schema.tuple_bytes());
  left.SetInt32(schema, 0, 1);
  right.SetInt32(schema, 0, 2);
  const Tuple joined = Tuple::Concat(left, right);
  EXPECT_EQ(joined.size(), 32u);
  const Schema joined_schema = Schema::Concat(schema, schema);
  EXPECT_EQ(joined.GetInt32(joined_schema, 0), 1);
  EXPECT_EQ(joined.GetInt32(joined_schema, 3), 2);
}

TEST(TupleTest, EmptyAndMove) {
  Tuple empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  Tuple filled(8);
  Tuple moved = std::move(filled);
  EXPECT_EQ(moved.size(), 8u);
}

}  // namespace
}  // namespace gammadb::storage
