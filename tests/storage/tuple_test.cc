#include "storage/tuple.h"

#include <gtest/gtest.h>

namespace gammadb::storage {
namespace {

Schema TestSchema() {
  return Schema({Field::Int32("a"), Field::Char("s", 8), Field::Int32("b")});
}

TEST(TupleTest, ZeroInitialized) {
  const Schema schema = TestSchema();
  Tuple t(schema.tuple_bytes());
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.GetInt32(schema, 0), 0);
  EXPECT_EQ(t.GetInt32(schema, 2), 0);
}

TEST(TupleTest, FieldWritesDoNotOverlap) {
  const Schema schema = TestSchema();
  Tuple t(schema.tuple_bytes());
  t.SetInt32(schema, 0, -1);
  t.SetChars(schema, 1, "xyz");
  t.SetInt32(schema, 2, 77);
  EXPECT_EQ(t.GetInt32(schema, 0), -1);
  EXPECT_EQ(t.GetChars(schema, 1), "xyz     ");
  EXPECT_EQ(t.GetInt32(schema, 2), 77);
}

TEST(TupleTest, CopyFromRawBytes) {
  const Schema schema = TestSchema();
  Tuple original(schema.tuple_bytes());
  original.SetInt32(schema, 0, 1234);
  Tuple copy(original.data(), original.size());
  EXPECT_EQ(copy, original);
  copy.SetInt32(schema, 0, 5678);
  EXPECT_NE(copy, original);  // deep copy
  EXPECT_EQ(original.GetInt32(schema, 0), 1234);
}

TEST(TupleTest, ConcatLaysOutLeftThenRight) {
  const Schema schema = TestSchema();
  Tuple left(schema.tuple_bytes()), right(schema.tuple_bytes());
  left.SetInt32(schema, 0, 1);
  right.SetInt32(schema, 0, 2);
  const Tuple joined = Tuple::Concat(left, right);
  EXPECT_EQ(joined.size(), 32u);
  const Schema joined_schema = Schema::Concat(schema, schema);
  EXPECT_EQ(joined.GetInt32(joined_schema, 0), 1);
  EXPECT_EQ(joined.GetInt32(joined_schema, 3), 2);
}

TEST(TupleTest, EmptyAndMove) {
  Tuple empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  Tuple filled(8);
  Tuple moved = std::move(filled);
  EXPECT_EQ(moved.size(), 8u);
}

// Small-buffer-optimization boundary: kInlineBytes stays inline,
// kInlineBytes + 1 goes to the heap. Copies and moves must be deep /
// ownership-transferring on both sides of the threshold.
TEST(TupleTest, InlineBoundarySizes) {
  for (const uint32_t size :
       {Tuple::kInlineBytes - 1, Tuple::kInlineBytes, Tuple::kInlineBytes + 1,
        2 * Tuple::kInlineBytes}) {
    Tuple t(size);
    EXPECT_EQ(t.size(), size);
    for (uint32_t i = 0; i < size; ++i) {
      EXPECT_EQ(t.data()[i], 0u) << size << ":" << i;
      t.data()[i] = static_cast<uint8_t>(i);
    }
    Tuple copy = t;
    EXPECT_EQ(copy, t);
    copy.data()[0] = 0xFF;
    EXPECT_NE(copy, t);  // deep copy on both storage paths

    Tuple moved = std::move(t);
    EXPECT_EQ(moved.size(), size);
    for (uint32_t i = 0; i < size; ++i) {
      EXPECT_EQ(moved.data()[i], static_cast<uint8_t>(i)) << size << ":" << i;
    }
  }
}

TEST(TupleTest, AssignmentAcrossStorageClasses) {
  const uint32_t small = 16;
  const uint32_t large = Tuple::kInlineBytes + 16;
  Tuple a(small), b(large);
  a.data()[0] = 1;
  b.data()[0] = 2;
  a = b;  // inline -> heap
  EXPECT_EQ(a.size(), large);
  EXPECT_EQ(a.data()[0], 2);
  Tuple c(small);
  c.data()[0] = 3;
  a = c;  // heap -> inline (releases the heap buffer)
  EXPECT_EQ(a.size(), small);
  EXPECT_EQ(a.data()[0], 3);
  a = std::move(b);  // move-assign a heap tuple
  EXPECT_EQ(a.size(), large);
  EXPECT_EQ(a.data()[0], 2);
}

TEST(TupleTest, ConcatCrossesInlineThreshold) {
  Tuple a(Tuple::kInlineBytes), b(Tuple::kInlineBytes);
  a.data()[0] = 11;
  b.data()[0] = 22;
  const Tuple joined = Tuple::Concat(a, b);
  EXPECT_EQ(joined.size(), 2 * Tuple::kInlineBytes);
  EXPECT_EQ(joined.data()[0], 11);
  EXPECT_EQ(joined.data()[Tuple::kInlineBytes], 22);
}

}  // namespace
}  // namespace gammadb::storage
