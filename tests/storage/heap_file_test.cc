#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "storage/schema.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}),
        schema_({Field::Int32("k"), Field::Char("pad", 200)}) {}

  Tuple MakeTuple(int32_t k) {
    Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, k);
    t.SetChars(schema_, 1, "pad");
    return t;
  }

  sim::Machine machine_;
  Schema schema_;  // 204 bytes -> 40 tuples per 8 KB page
};

TEST_F(HeapFileTest, AppendScanRoundTrip) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 1000; ++i) GAMMA_ASSERT_OK(file.Append(MakeTuple(i)));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(file.tuple_count(), 1000u);
  EXPECT_EQ(file.page_count(), (1000 + 39) / 40);

  machine_.BeginPhase("r");
  auto scanner = file.Scan();
  Tuple t;
  int32_t expected = 0;
  while (scanner.Next(&t)) {
    EXPECT_EQ(t.GetInt32(schema_, 0), expected++);
  }
  EXPECT_EQ(expected, 1000);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(machine_.node(0).counters().pages_read,
            static_cast<int64_t>(file.page_count()));
}

TEST_F(HeapFileTest, FlushIsIdempotentAndPartialPageStored) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  GAMMA_ASSERT_OK(file.Append(MakeTuple(7)));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(file.page_count(), 1u);
  EXPECT_EQ(file.PeekAll().size(), 1u);
}

TEST_F(HeapFileTest, EarlyAbandonedScanChargesOnlyPagesReached) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 400; ++i) GAMMA_ASSERT_OK(file.Append(MakeTuple(i)));  // 10 pages
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());

  machine_.BeginPhase("r");
  auto scanner = file.Scan();
  Tuple t;
  for (int i = 0; i < 45; ++i) ASSERT_TRUE(scanner.Next(&t));  // 2 pages
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(machine_.node(0).counters().pages_read, 2);
  EXPECT_EQ(scanner.pages_read(), 2u);
}

TEST_F(HeapFileTest, FreeReturnsPagesToDisk) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 100; ++i) GAMMA_ASSERT_OK(file.Append(MakeTuple(i)));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  const size_t live_before = machine_.node(0).disk().live_pages();
  file.Free();
  EXPECT_EQ(machine_.node(0).disk().live_pages(),
            live_before - 3);  // 100/40 -> 3 pages
  EXPECT_EQ(file.tuple_count(), 0u);
  EXPECT_EQ(file.page_count(), 0u);
}

TEST_F(HeapFileTest, PeekAllDoesNotCharge) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 50; ++i) GAMMA_ASSERT_OK(file.Append(MakeTuple(i)));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  machine_.ResetMetrics();
  machine_.BeginPhase("peek");
  EXPECT_EQ(file.PeekAll().size(), 50u);
  EXPECT_EQ(machine_.node(0).phase_usage().cpu_seconds, 0.0);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(machine_.Metrics().counters.pages_read, 0);
}

TEST_F(HeapFileTest, DataBytesMatchesCount) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 10; ++i) GAMMA_ASSERT_OK(file.Append(MakeTuple(i)));
  GAMMA_ASSERT_OK(file.FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(file.data_bytes(), 10u * schema_.tuple_bytes());
}

TEST_F(HeapFileTest, EmptyFileScansNothing) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  GAMMA_ASSERT_OK(file.FlushAppends());
  machine_.BeginPhase("r");
  auto scanner = file.Scan();
  Tuple t;
  EXPECT_FALSE(scanner.Next(&t));
  GAMMA_ASSERT_OK(machine_.EndPhase());
}


// --- Fault injection: converted Status I/O paths (docs/fault_injection.md) --

TEST_F(HeapFileTest, AppendSurvivesHardWriteFaultViaRetry) {
  // A write burst that exhausts the retry budget fails the Append, but
  // the page image stays buffered: once the scheduled faults are
  // consumed, FlushAppends lands the same page and no data is lost.
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskWriteTransient;
  e.ordinal = 1;
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  machine_.ArmFaults(plan);

  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  Status first_failure;
  for (int32_t i = 0; i < 41; ++i) {  // 40 tuples/page: one page write
    const Status st = file.Append(MakeTuple(i));
    if (!st.ok() && first_failure.ok()) first_failure = st;
  }
  Status flush = file.FlushAppends();
  for (int i = 0; !flush.ok() && i < 3; ++i) flush = file.FlushAppends();
  machine_.EndPhase().IgnoreError();

  EXPECT_EQ(first_failure.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(flush.ok()) << flush.ToString();
  EXPECT_EQ(file.tuple_count(), 41u);

  machine_.BeginPhase("r");
  auto scanner = file.Scan();
  Tuple t;
  int32_t expected = 0;
  while (scanner.Next(&t)) EXPECT_EQ(t.GetInt32(schema_, 0), expected++);
  EXPECT_EQ(expected, 41);
  EXPECT_TRUE(scanner.status().ok());
  machine_.EndPhase().IgnoreError();

  const sim::Counters& c = machine_.node(0).counters();
  EXPECT_EQ(c.disk_write_faults, sim::Disk::kMaxIoAttempts);
  EXPECT_EQ(c.io_retries, sim::Disk::kMaxIoAttempts - 1);
}

TEST_F(HeapFileTest, ScannerSurfacesHardReadFault) {
  HeapFile file(&machine_.node(0), &schema_, "t");
  machine_.BeginPhase("w");
  for (int32_t i = 0; i < 200; ++i) {  // 5 pages
    ASSERT_TRUE(file.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(file.FlushAppends().ok());
  machine_.EndPhase().IgnoreError();

  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskReadTransient;
  e.ordinal = 1;  // counters start at zero on arming
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  machine_.ArmFaults(plan);

  machine_.BeginPhase("r");
  auto scanner = file.Scan();
  Tuple t;
  int32_t seen = 0;
  while (scanner.Next(&t)) ++seen;
  machine_.EndPhase().IgnoreError();
  EXPECT_EQ(seen, 0);  // stopped by the failed first page, not EOF
  EXPECT_EQ(scanner.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gammadb::storage
