#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}) {
    machine_.BeginPhase("btree");
  }
  ~BPlusTreeTest() override {
    machine_.EndPhase().IgnoreError();  // teardown balance only
  }

  sim::Machine machine_;
};

TEST_F(BPlusTreeTest, EmptySearch) {
  BPlusTree tree(&machine_.node(0));
  EXPECT_TRUE(tree.Search(42).empty());
  EXPECT_TRUE(tree.RangeScan(0, 100).empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
}

TEST_F(BPlusTreeTest, InsertAndSearchSequential) {
  BPlusTree tree(&machine_.node(0));
  for (int32_t k = 0; k < 5000; ++k) {
    tree.Insert(k, static_cast<uint64_t>(k) * 10);
  }
  EXPECT_EQ(tree.size(), 5000u);
  for (int32_t k = 0; k < 5000; k += 37) {
    const auto hits = tree.Search(k);
    ASSERT_EQ(hits.size(), 1u) << k;
    EXPECT_EQ(hits[0], static_cast<uint64_t>(k) * 10);
  }
  EXPECT_TRUE(tree.Search(5001).empty());
  EXPECT_TRUE(tree.Search(-1).empty());
  tree.ValidateInvariants();
}

TEST_F(BPlusTreeTest, RandomInsertOrderMatchesReferenceMap) {
  BPlusTree tree(&machine_.node(0));
  std::multimap<int32_t, uint64_t> reference;
  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    const int32_t key = static_cast<int32_t>(rng.Uniform(3000));
    const uint64_t value = rng.Next();
    tree.Insert(key, value);
    reference.emplace(key, value);
  }
  tree.ValidateInvariants();
  EXPECT_GE(tree.height(), 2);
  for (int32_t key = 0; key < 3000; key += 101) {
    auto hits = tree.Search(key);
    auto [lo, hi] = reference.equal_range(key);
    std::vector<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(hits.begin(), hits.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hits, expected) << "key " << key;
  }
}

TEST_F(BPlusTreeTest, HeavyDuplicates) {
  BPlusTree tree(&machine_.node(0));
  // 2000 copies of one key — spans multiple leaves.
  for (uint64_t i = 0; i < 2000; ++i) tree.Insert(77, i);
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(76, 1000 + i);
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(78, 2000 + i);
  EXPECT_EQ(tree.Search(77).size(), 2000u);
  EXPECT_EQ(tree.Search(76).size(), 50u);
  EXPECT_EQ(tree.Search(78).size(), 50u);
  tree.ValidateInvariants();
}

TEST_F(BPlusTreeTest, RangeScanOrderedAndBounded) {
  BPlusTree tree(&machine_.node(0));
  Rng rng(9);
  std::vector<int32_t> keys;
  for (int i = 0; i < 10000; ++i) {
    const int32_t k = static_cast<int32_t>(rng.Uniform(100000));
    keys.push_back(k);
    tree.Insert(k, static_cast<uint64_t>(i));
  }
  const auto hits = tree.RangeScan(20000, 30000);
  size_t expected = 0;
  for (int32_t k : keys) {
    if (k >= 20000 && k <= 30000) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].first, 20000);
    EXPECT_LE(hits[i].first, 30000);
    if (i > 0) {
      EXPECT_LE(hits[i - 1].first, hits[i].first);
    }
  }
}

TEST_F(BPlusTreeTest, RangeScanEdgeCases) {
  BPlusTree tree(&machine_.node(0));
  tree.Insert(10, 1);
  tree.Insert(20, 2);
  EXPECT_TRUE(tree.RangeScan(11, 19).empty());
  EXPECT_TRUE(tree.RangeScan(30, 20).empty());  // lo > hi
  EXPECT_EQ(tree.RangeScan(10, 10).size(), 1u);
  EXPECT_EQ(tree.RangeScan(INT32_MIN, INT32_MAX).size(), 2u);
}

TEST_F(BPlusTreeTest, NegativeKeys) {
  BPlusTree tree(&machine_.node(0));
  for (int32_t k = -1000; k <= 1000; ++k) {
    tree.Insert(k, static_cast<uint64_t>(k + 1000));
  }
  EXPECT_EQ(tree.Search(-1000).size(), 1u);
  EXPECT_EQ(tree.RangeScan(-10, 10).size(), 21u);
  tree.ValidateInvariants();
}

TEST_F(BPlusTreeTest, LookupsChargeRandomIo) {
  BPlusTree tree(&machine_.node(0));
  for (int32_t k = 0; k < 1000; ++k) tree.Insert(k, 0);
  machine_.node(0).ResetCounters();
  (void)tree.Search(500);
  EXPECT_GE(machine_.node(0).counters().pages_read,
            static_cast<int64_t>(tree.height()));
}

}  // namespace
}  // namespace gammadb::storage
