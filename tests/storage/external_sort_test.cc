#include "storage/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "sim/machine.h"
#include "storage/schema.h"
#include "testing/status_matchers.h"

namespace gammadb::storage {
namespace {

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest()
      : machine_(sim::MachineConfig{1, 0, sim::CostModel{}, 1}),
        schema_({Field::Int32("k"), Field::Char("pad", 200)}) {}

  Tuple MakeTuple(int32_t k) {
    Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, k);
    return t;
  }

  std::vector<int32_t> SortValues(std::vector<int32_t> values,
                                  uint32_t memory_pages,
                                  ExternalSort* sort_out = nullptr) {
    machine_.BeginPhase("sort");
    ExternalSort sort(&machine_.node(0), &schema_, 0, memory_pages);
    for (int32_t v : values) GAMMA_EXPECT_OK(sort.Add(MakeTuple(v)));
    GAMMA_EXPECT_OK(sort.FinishInput());
    std::vector<int32_t> out;
    auto stream = sort.OpenStream();
    Tuple t;
    while (stream->Next(&t)) out.push_back(t.GetInt32(schema_, 0));
    GAMMA_EXPECT_OK(machine_.EndPhase());
    if (sort_out != nullptr) {
      // Note: runs are freed by the sort's destructor.
    }
    return out;
  }

  sim::Machine machine_;
  Schema schema_;  // 40 tuples / page
};

TEST_F(ExternalSortTest, InMemorySortWhenInputFits) {
  machine_.BeginPhase("p");
  ExternalSort sort(&machine_.node(0), &schema_, 0, 8);
  for (int32_t v : {5, 1, 4, 2, 3}) GAMMA_ASSERT_OK(sort.Add(MakeTuple(v)));
  GAMMA_ASSERT_OK(sort.FinishInput());
  EXPECT_EQ(sort.run_count(), 0u);  // no spill
  auto stream = sort.OpenStream();
  Tuple t;
  std::vector<int32_t> out;
  while (stream->Next(&t)) out.push_back(t.GetInt32(schema_, 0));
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(out, (std::vector<int32_t>{1, 2, 3, 4, 5}));
  // In-memory sort touches no disk.
  EXPECT_EQ(machine_.Metrics().counters.pages_written, 0);
}

TEST_F(ExternalSortTest, ExternalSortProducesSortedOutput) {
  Rng rng(4);
  std::vector<int32_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<int32_t>(rng.Uniform(100000)));
  }
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  // 3 memory pages = 120-tuple buffer: heavily external.
  EXPECT_EQ(SortValues(values, 3), expected);
}

TEST_F(ExternalSortTest, DuplicatesSurvive) {
  std::vector<int32_t> values(500, 7);
  values.push_back(3);
  values.push_back(9);
  const auto out = SortValues(values, 3);
  ASSERT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), 3);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(std::count(out.begin(), out.end(), 7), 500);
}

TEST_F(ExternalSortTest, IntermediatePassesStepWithMemory) {
  Rng rng(5);
  std::vector<int32_t> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(static_cast<int32_t>(rng.Uniform(1000000)));
  }
  // Plenty of memory: single-pass mergeable, zero intermediate passes.
  machine_.BeginPhase("a");
  ExternalSort big(&machine_.node(0), &schema_, 0, 32);
  for (int32_t v : values) GAMMA_ASSERT_OK(big.Add(MakeTuple(v)));
  GAMMA_ASSERT_OK(big.FinishInput());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(big.intermediate_passes(), 0);

  // Tiny memory: must merge intermediately.
  machine_.BeginPhase("b");
  ExternalSort small(&machine_.node(0), &schema_, 0, 3);
  for (int32_t v : values) GAMMA_ASSERT_OK(small.Add(MakeTuple(v)));
  GAMMA_ASSERT_OK(small.FinishInput());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_GT(small.intermediate_passes(), 0);
  EXPECT_GT(small.intermediate_merged_tuples(), 0u);
  // Still 2-way mergeable at the end.
  EXPECT_LE(small.run_count(), 2u);
}

TEST_F(ExternalSortTest, AlreadySortedAndReverseSortedInputs) {
  std::vector<int32_t> ascending, descending;
  for (int32_t i = 0; i < 3000; ++i) {
    ascending.push_back(i);
    descending.push_back(2999 - i);
  }
  EXPECT_EQ(SortValues(ascending, 4), ascending);
  EXPECT_EQ(SortValues(descending, 4), ascending);
}

TEST_F(ExternalSortTest, EmptyInput) {
  machine_.BeginPhase("p");
  ExternalSort sort(&machine_.node(0), &schema_, 0, 4);
  GAMMA_ASSERT_OK(sort.FinishInput());
  auto stream = sort.OpenStream();
  Tuple t;
  EXPECT_FALSE(stream->Next(&t));
  GAMMA_ASSERT_OK(machine_.EndPhase());
}

TEST_F(ExternalSortTest, NegativeKeysSortCorrectly) {
  EXPECT_EQ(SortValues({3, -1, 0, -100, 50}, 3),
            (std::vector<int32_t>{-100, -1, 0, 3, 50}));
}

TEST_F(ExternalSortTest, RunsFreedOnDestruction) {
  const size_t live_before = machine_.node(0).disk().live_pages();
  {
    machine_.BeginPhase("p");
    ExternalSort sort(&machine_.node(0), &schema_, 0, 3);
    Rng rng(6);
    for (int i = 0; i < 2000; ++i) {
      GAMMA_ASSERT_OK(sort.Add(MakeTuple(static_cast<int32_t>(rng.Uniform(1000)))));
    }
    GAMMA_ASSERT_OK(sort.FinishInput());
    GAMMA_ASSERT_OK(machine_.EndPhase());
    EXPECT_GT(machine_.node(0).disk().live_pages(), live_before);
  }
  EXPECT_EQ(machine_.node(0).disk().live_pages(), live_before);
}


// --- Fault injection: converted Status I/O paths (docs/fault_injection.md) --

TEST_F(ExternalSortTest, SpillWriteFailurePropagatesAndLeaksNothing) {
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskWriteTransient;
  e.ordinal = 1;
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  machine_.ArmFaults(plan);

  machine_.BeginPhase("sort");
  {
    ExternalSort sort(&machine_.node(0), &schema_, 0, 3);  // 120-tuple buffer
    Status first_failure;
    for (int32_t i = 0; i < 500 && first_failure.ok(); ++i) {
      first_failure = sort.Add(MakeTuple(i));
    }
    EXPECT_EQ(first_failure.code(), StatusCode::kUnavailable);
  }
  machine_.EndPhase().IgnoreError();
  // The failed spill and the sort destructor released every page.
  EXPECT_EQ(machine_.node(0).disk().live_pages(), 0u);
}

TEST_F(ExternalSortTest, StreamSurfacesHardReadFaultDuringMerge) {
  machine_.BeginPhase("sort");
  ExternalSort sort(&machine_.node(0), &schema_, 0, 3);
  for (int32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(sort.Add(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(sort.FinishInput().ok());
  ASSERT_GT(sort.run_count(), 0u);  // actually external
  machine_.EndPhase().IgnoreError();

  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskReadTransient;
  e.ordinal = 1;
  e.repeat = sim::Disk::kMaxIoAttempts;
  plan.Add(e);
  machine_.ArmFaults(plan);

  machine_.BeginPhase("merge");
  auto stream = sort.OpenStream();
  Tuple t;
  int32_t seen = 0;
  while (stream->Next(&t)) ++seen;
  machine_.EndPhase().IgnoreError();
  EXPECT_LT(seen, 500);
  EXPECT_EQ(stream->status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gammadb::storage
