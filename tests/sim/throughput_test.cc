#include "sim/throughput.h"

#include <gtest/gtest.h>

namespace gammadb::sim {
namespace {

RunMetrics ProfileWith(double response, std::vector<double> cpu,
                       std::vector<double> disk) {
  RunMetrics m;
  m.response_seconds = response;
  PhaseRecord phase;
  for (size_t i = 0; i < cpu.size(); ++i) {
    phase.usage.push_back(NodeUsage{cpu[i], disk[i]});
  }
  phase.elapsed_seconds = response;
  m.phases.push_back(std::move(phase));
  return m;
}

TEST(ThroughputTest, BottleneckIsBusiestResource) {
  const auto e =
      EstimateThroughput(ProfileWith(10.0, {4.0, 6.0}, {5.0, 1.0}));
  EXPECT_DOUBLE_EQ(e.bottleneck_cpu_seconds, 6.0);
  EXPECT_DOUBLE_EQ(e.bottleneck_disk_seconds, 5.0);
  EXPECT_DOUBLE_EQ(e.BottleneckSeconds(), 6.0);
  EXPECT_DOUBLE_EQ(e.MaxThroughput(), 1.0 / 6.0);
}

TEST(ThroughputTest, BottleneckSumsAcrossPhases) {
  RunMetrics m = ProfileWith(8.0, {3.0}, {1.0});
  PhaseRecord second;
  second.usage = {NodeUsage{2.5, 0.5}};
  m.phases.push_back(second);
  const auto e = EstimateThroughput(m);
  EXPECT_DOUBLE_EQ(e.bottleneck_cpu_seconds, 5.5);
}

TEST(ThroughputTest, ThroughputRampsThenSaturates) {
  // R0 = 10 s, bottleneck 5 s/query: pipeline bound up to MPL 2, then
  // flat at 0.2 q/s.
  const auto e = EstimateThroughput(ProfileWith(10.0, {5.0, 2.0}, {1.0, 1.0}));
  EXPECT_DOUBLE_EQ(e.ThroughputAtMpl(1), 0.1);
  EXPECT_DOUBLE_EQ(e.ThroughputAtMpl(2), 0.2);
  EXPECT_DOUBLE_EQ(e.ThroughputAtMpl(4), 0.2);  // saturated
  EXPECT_EQ(e.SaturationMpl(), 2);
}

TEST(ThroughputTest, ResponseGrowsLinearlyPastSaturation) {
  const auto e = EstimateThroughput(ProfileWith(10.0, {5.0}, {0.0}));
  EXPECT_DOUBLE_EQ(e.ResponseAtMpl(1), 10.0);
  EXPECT_DOUBLE_EQ(e.ResponseAtMpl(2), 10.0);  // still pipeline-bound
  EXPECT_DOUBLE_EQ(e.ResponseAtMpl(4), 20.0);  // 4 * 5 s of bottleneck
}

TEST(ThroughputTest, LowerBottleneckMeansMoreThroughputAtSameResponse) {
  // The paper's argument: remote execution may be slower single-query
  // but sustains more throughput because the per-node demand is lower.
  const auto local = EstimateThroughput(ProfileWith(10.0, {9.0}, {3.0}));
  const auto remote =
      EstimateThroughput(ProfileWith(12.0, {5.0, 6.0}, {3.0, 0.0}));
  EXPECT_LT(local.single_query_seconds, remote.single_query_seconds);
  EXPECT_GT(remote.MaxThroughput(), local.MaxThroughput());
}

TEST(ThroughputTest, EmptyProfileIsSafe) {
  const auto e = EstimateThroughput(RunMetrics{});
  EXPECT_DOUBLE_EQ(e.MaxThroughput(), 0.0);
  EXPECT_DOUBLE_EQ(e.ThroughputAtMpl(3), 0.0);
  EXPECT_EQ(e.SaturationMpl(), 1);
}

}  // namespace
}  // namespace gammadb::sim
