#include "sim/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace gammadb::sim {
namespace {

TEST(ExecutorTest, SerialRunsInSubmissionOrder) {
  Executor executor(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  executor.Run(std::move(tasks));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ExecutorTest, ParallelRunsAllTasks) {
  Executor executor(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  executor.Run(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, RunBlocksUntilCompletion) {
  Executor executor(3);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 50; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  executor.Run(std::move(tasks));
  EXPECT_EQ(sum.load(), 50 * 51 / 2);  // visible only if Run waited
}

TEST(ExecutorTest, SequentialBatchesReuseWorkers) {
  Executor executor(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&count] { ++count; });
    executor.Run(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, EmptyBatchIsANoOp) {
  Executor serial(1), pooled(2);
  serial.Run({});
  pooled.Run({});
}

}  // namespace
}  // namespace gammadb::sim
