#include "sim/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace gammadb::sim {
namespace {

TEST(ExecutorTest, SerialRunsInSubmissionOrder) {
  Executor executor(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  executor.Run(std::move(tasks));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ExecutorTest, ParallelRunsAllTasks) {
  Executor executor(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  executor.Run(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, RunBlocksUntilCompletion) {
  Executor executor(3);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 50; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  executor.Run(std::move(tasks));
  EXPECT_EQ(sum.load(), 50 * 51 / 2);  // visible only if Run waited
}

TEST(ExecutorTest, SequentialBatchesReuseWorkers) {
  Executor executor(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&count] { ++count; });
    executor.Run(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, EmptyBatchIsANoOp) {
  Executor serial(1), pooled(2);
  serial.Run({});
  pooled.Run({});
}

// A throwing task must not deadlock the completion wait: every task
// still counts as finished, the first exception is rethrown, and the
// executor remains usable for the next batch.
TEST(ExecutorTest, ThrowingTaskDoesNotDeadlockPool) {
  Executor executor(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&ran, i]() {
      ran.fetch_add(1);
      if (i % 2 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(executor.Run(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 32);  // the barrier drained the whole batch

  // The executor is not poisoned: a clean follow-up batch succeeds.
  std::atomic<int> follow_up{0};
  std::vector<std::function<void()>> next;
  for (int i = 0; i < 8; ++i) next.push_back([&follow_up] { ++follow_up; });
  executor.Run(std::move(next));
  EXPECT_EQ(follow_up.load(), 8);
}

// Task-to-worker assignment is static (worker w runs tasks w, w + T,
// w + 2T, ...), so repeated batches schedule identically — no
// work-stealing races leak into anything a task derives from its
// execution context.
TEST(ExecutorTest, StripingIsDeterministicAcrossBatches) {
  constexpr int kThreads = 4;
  constexpr size_t kTasks = 23;
  Executor executor(kThreads);
  std::vector<std::thread::id> first(kTasks), second(kTasks);
  for (auto* assignment : {&first, &second}) {
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([assignment, i] {
        (*assignment)[i] = std::this_thread::get_id();
      });
    }
    executor.Run(std::move(tasks));
  }
  EXPECT_EQ(first, second);
  // Stride structure: tasks i and i + kThreads share a worker.
  for (size_t i = 0; i + kThreads < kTasks; ++i) {
    EXPECT_EQ(first[i], first[i + kThreads]) << i;
  }
}

TEST(ExecutorTest, ThrowingTaskPropagatesFromSerialExecutor) {
  Executor executor(1);
  int ran = 0;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran] { ++ran; });
  tasks.push_back([]() { throw std::runtime_error("boom"); });
  tasks.push_back([&ran] { ++ran; });
  EXPECT_THROW(executor.Run(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran, 2);  // remaining tasks still ran (barrier semantics)

  executor.Run({[&ran] { ++ran; }});
  EXPECT_EQ(ran, 3);
}

}  // namespace
}  // namespace gammadb::sim
