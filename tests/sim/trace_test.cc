// The tracing determinism contract (docs/tracing.md): the serialized
// trace is stamped in simulated time only, so it is byte-identical at
// any executor thread count — for every join algorithm, with and
// without injected faults. Also covers the cost-attribution identities
// (per-node categories sum to the charged cpu + disk seconds; ring
// components sum to ring_seconds) and the opt-in attribution section of
// the metrics JSON.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "sim/metrics_json.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

/// Runs joinABprime (2000 x 200, seed 71, non-HPJA so remote packets
/// flow) with a Tracer attached and returns the serialized trace plus
/// the run metrics.
void RunTraced(join::Algorithm algorithm, int threads,
               const sim::FaultPlan* faults, std::string* trace_json,
               sim::RunMetrics* metrics) {
  sim::MachineConfig config = testing::SmallConfig(4);
  config.num_threads = threads;
  sim::Machine machine(config);
  sim::Tracer tracer;
  machine.set_tracer(&tracer, "trace_test");
  db::Catalog catalog;

  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  options.seed = 71;
  options.partition_field = wisconsin::fields::kUnique2;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  if (faults != nullptr) machine.ArmFaults(*faults);

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.memory_ratio = 1.0;
  spec.memory_slack = 0.35;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  *trace_json = tracer.Dump();
  *metrics = output->metrics;
}

sim::FaultPlan MixedFaultPlan() {
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskReadTransient;
  e.node = 1;
  e.ordinal = 3;
  plan.Add(e);
  e.kind = sim::FaultKind::kPacketLoss;
  e.node = 0;
  e.ordinal = 2;
  plan.Add(e);
  e.kind = sim::FaultKind::kPacketDuplicate;
  e.node = 3;
  e.ordinal = 1;
  plan.Add(e);
  e.kind = sim::FaultKind::kNodeCrash;
  e.node = 1;
  e.ordinal = 1;
  e.phase_label = "";
  plan.Add(e);
  return plan;
}

TEST(TraceTest, TraceIsThreadCountInvariant) {
  const sim::FaultPlan faults = MixedFaultPlan();
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    for (const sim::FaultPlan* plan :
         {static_cast<const sim::FaultPlan*>(nullptr), &faults}) {
      SCOPED_TRACE(std::string(join::AlgorithmName(algorithm)) +
                   (plan != nullptr ? " / faulted" : " / clean"));
      std::string serial_trace;
      sim::RunMetrics serial_metrics;
      RunTraced(algorithm, 1, plan, &serial_trace, &serial_metrics);
      if (HasFatalFailure()) return;
      EXPECT_NE(serial_trace.find("\"traceEvents\""), std::string::npos);
      for (int threads : {4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::string pooled_trace;
        sim::RunMetrics pooled_metrics;
        RunTraced(algorithm, threads, plan, &pooled_trace, &pooled_metrics);
        if (HasFatalFailure()) return;
        EXPECT_EQ(serial_trace, pooled_trace);
      }
    }
  }
}

TEST(TraceTest, AttributionSumsToChargedSeconds) {
  std::string trace;
  sim::RunMetrics metrics;
  RunTraced(join::Algorithm::kHybridHash, 1, nullptr, &trace, &metrics);
  if (HasFatalFailure()) return;
  ASSERT_FALSE(metrics.phases.empty());
  double total_attributed = 0;
  for (const sim::PhaseRecord& phase : metrics.phases) {
    for (const sim::NodeUsage& usage : phase.usage) {
      const double charged = usage.cpu_seconds + usage.disk_seconds;
      EXPECT_NEAR(usage.AttributedSeconds(), charged,
                  1e-9 * std::max(1.0, charged));
      total_attributed += usage.AttributedSeconds();
    }
    EXPECT_NEAR(phase.ring.Total(), phase.ring_seconds,
                1e-9 * std::max(1.0, phase.ring_seconds));
  }
  EXPECT_GT(total_attributed, 0.0);
}

TEST(TraceTest, FaultedRingAttributionIncludesRetransmitAndDuplicate) {
  const sim::FaultPlan faults = MixedFaultPlan();
  std::string trace;
  sim::RunMetrics metrics;
  RunTraced(join::Algorithm::kGraceHash, 1, &faults, &trace, &metrics);
  if (HasFatalFailure()) return;
  double retransmit = 0, duplicate = 0;
  for (const sim::PhaseRecord& phase : metrics.phases) {
    retransmit += phase.ring.retransmit_seconds;
    duplicate += phase.ring.duplicate_seconds;
  }
  EXPECT_GT(retransmit, 0.0);
  EXPECT_GT(duplicate, 0.0);
}

TEST(TraceTest, MetricsJsonAttributionSectionIsOptIn) {
  std::string trace;
  sim::RunMetrics metrics;
  RunTraced(join::Algorithm::kSimpleHash, 1, nullptr, &trace, &metrics);
  if (HasFatalFailure()) return;
  const std::string plain = sim::RunMetricsToJson(metrics).Dump();
  EXPECT_EQ(plain.find("\"attribution\""), std::string::npos);
  EXPECT_EQ(plain.find("\"attribution_totals\""), std::string::npos);
  const std::string with_attribution =
      sim::RunMetricsToJson(metrics, /*include_attribution=*/true).Dump();
  EXPECT_NE(with_attribution.find("\"attribution\""), std::string::npos);
  EXPECT_NE(with_attribution.find("\"attribution_totals\""),
            std::string::npos);
  EXPECT_NE(with_attribution.find("\"ring\""), std::string::npos);
  // The opt-in document must still contain the baseline document's
  // bytes-shaping keys untouched.
  EXPECT_NE(with_attribution.find("\"counters\""), std::string::npos);
}

TEST(TraceTest, NodeUsageTraceArgsHoldsNonzeroCategories) {
  sim::NodeUsage usage;
  usage.cpu_seconds = 2.0;
  usage.disk_seconds = 1.0;
  usage.by_category[static_cast<size_t>(sim::CostCategory::kHtProbe)] = 2.0;
  usage.by_category[static_cast<size_t>(sim::CostCategory::kDiskSeq)] = 1.0;
  const JsonValue args = sim::NodeUsageTraceArgs(usage);
  const JsonValue* attribution = args.Find("attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_EQ(attribution->AsObject().size(), 2u);
  EXPECT_DOUBLE_EQ(attribution->Find("ht_probe")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(attribution->Find("disk_seq")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(args.Find("cpu_seconds")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(args.Find("disk_seconds")->AsDouble(), 1.0);
}

TEST(TraceTest, TracerEmitsSortedSpansAndMetadata) {
  sim::Tracer tracer;
  const int pid = tracer.RegisterMachine(2, 2, "unit");
  sim::PhaseRecord record;
  record.label = "late";
  record.usage.resize(2);
  record.usage[0].cpu_seconds = 1.0;
  record.usage[0].by_category[static_cast<size_t>(
      sim::CostCategory::kOther)] = 1.0;
  record.elapsed_seconds = 1.0;
  tracer.RecordPhase(pid, /*start_seconds=*/5.0, record);
  record.label = "early";
  tracer.RecordPhase(pid, /*start_seconds=*/2.0, record);
  const std::string dump = tracer.Dump();
  // The later-recorded but earlier-in-time phase must serialize first.
  EXPECT_LT(dump.find("\"early\""), dump.find("\"late\""));
  EXPECT_NE(dump.find("\"process_name\""), std::string::npos);
  EXPECT_NE(dump.find("\"thread_name\""), std::string::npos);
}

}  // namespace
}  // namespace gammadb
