#include "sim/metrics_json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gammadb::sim {
namespace {

Counters FilledCounters() {
  Counters c;
  c.pages_read = 1;
  c.pages_written = 2;
  c.tuples_sent_local = 3;
  c.tuples_sent_remote = 4;
  c.bytes_local = 5;
  c.bytes_remote = 6;
  c.packets_local = 7;
  c.packets_remote = 8;
  c.control_messages = 9;
  c.ht_inserts = 10;
  c.ht_probes = 11;
  c.ht_overflows = 12;
  c.filter_drops = 13;
  c.result_tuples = 14;
  return c;
}

TEST(CountersToJsonTest, EveryCountersFieldIsPresent) {
  // The serialized schema every baseline and bench_diff run depends on:
  // one key per Counters field plus the derived short-circuit fraction.
  const std::vector<std::pair<std::string, int64_t>> expected = {
      {"pages_read", 1},      {"pages_written", 2},
      {"tuples_sent_local", 3}, {"tuples_sent_remote", 4},
      {"bytes_local", 5},     {"bytes_remote", 6},
      {"packets_local", 7},   {"packets_remote", 8},
      {"control_messages", 9}, {"ht_inserts", 10},
      {"ht_probes", 11},      {"ht_overflows", 12},
      {"filter_drops", 13},   {"result_tuples", 14},
  };
  const JsonValue json = CountersToJson(FilledCounters());
  ASSERT_TRUE(json.is_object());
  for (const auto& [key, value] : expected) {
    const JsonValue* field = json.Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_EQ(field->AsInt(), value) << key;
  }
  const JsonValue* fraction = json.Find("short_circuit_fraction");
  ASSERT_NE(fraction, nullptr);
  EXPECT_DOUBLE_EQ(fraction->AsDouble(), 3.0 / 7.0);
  // Nothing beyond the declared schema.
  EXPECT_EQ(json.AsObject().size(), expected.size() + 1);
}

TEST(CountersToJsonTest, FaultKeysAppearOnlyWhenFaultsEngaged) {
  // Fault-free runs must serialize byte-identically to pre-fault
  // baselines: no fault key may appear when every fault counter is zero.
  const std::vector<std::string> fault_keys = {
      "disk_read_faults",   "disk_write_faults",
      "io_retries",         "packets_lost",
      "packets_duplicated", "packets_retransmitted",
      "node_crashes",       "operator_restarts",
  };
  const JsonValue clean = CountersToJson(FilledCounters());
  for (const std::string& key : fault_keys) {
    EXPECT_EQ(clean.Find(key), nullptr) << key;
  }

  Counters faulted = FilledCounters();
  faulted.disk_read_faults = 15;
  faulted.disk_write_faults = 16;
  faulted.io_retries = 17;
  faulted.packets_lost = 18;
  faulted.packets_duplicated = 19;
  faulted.packets_retransmitted = 20;
  faulted.node_crashes = 21;
  faulted.operator_restarts = 22;
  ASSERT_TRUE(faulted.AnyFaults());
  const JsonValue json = CountersToJson(faulted);
  int64_t expected = 15;
  for (const std::string& key : fault_keys) {
    const JsonValue* field = json.Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_EQ(field->AsInt(), expected++) << key;
  }
  // All fault keys, and nothing else, joined the schema.
  EXPECT_EQ(json.AsObject().size(),
            clean.AsObject().size() + fault_keys.size());

  // A single nonzero fault counter is enough to switch the schema.
  Counters one = FilledCounters();
  one.operator_restarts = 1;
  EXPECT_NE(CountersToJson(one).Find("disk_read_faults"), nullptr);
}

TEST(CountersToJsonTest, RebalanceKeysAppearOnlyWhenRebalanceEngaged) {
  // Skew-free runs must serialize byte-identically to pre-rebalance
  // baselines, exactly like the fault keys.
  const std::vector<std::string> rebalance_keys = {
      "rebalance_plans",
      "rebalance_moved_tuples",
      "rebalance_replica_tuples",
  };
  const JsonValue clean = CountersToJson(FilledCounters());
  for (const std::string& key : rebalance_keys) {
    EXPECT_EQ(clean.Find(key), nullptr) << key;
  }

  Counters rebalanced = FilledCounters();
  rebalanced.rebalance_plans = 23;
  rebalanced.rebalance_moved_tuples = 24;
  rebalanced.rebalance_replica_tuples = 25;
  ASSERT_TRUE(rebalanced.AnyRebalance());
  const JsonValue json = CountersToJson(rebalanced);
  int64_t expected = 23;
  for (const std::string& key : rebalance_keys) {
    const JsonValue* field = json.Find(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_EQ(field->AsInt(), expected++) << key;
  }
  EXPECT_EQ(json.AsObject().size(),
            clean.AsObject().size() + rebalance_keys.size());

  // A single nonzero rebalance counter is enough to switch the schema,
  // and the fault keys stay independent of it.
  Counters one = FilledCounters();
  one.rebalance_moved_tuples = 1;
  const JsonValue partial = CountersToJson(one);
  EXPECT_NE(partial.Find("rebalance_plans"), nullptr);
  EXPECT_EQ(partial.Find("disk_read_faults"), nullptr);
}

TEST(RunMetricsToJsonTest, RecoverySecondsAppearsOnlyWithFaults) {
  RunMetrics metrics;
  metrics.response_seconds = 2.0;
  metrics.counters = FilledCounters();
  EXPECT_EQ(RunMetricsToJson(metrics).Find("recovery_seconds"), nullptr);

  metrics.counters.node_crashes = 1;
  metrics.counters.operator_restarts = 1;
  metrics.recovery_seconds = 0.75;
  const JsonValue json = RunMetricsToJson(metrics);
  const JsonValue* recovery = json.Find("recovery_seconds");
  ASSERT_NE(recovery, nullptr);
  EXPECT_DOUBLE_EQ(recovery->AsDouble(), 0.75);
}

TEST(PhaseRecordToJsonTest, SerializesPerNodeUsage) {
  PhaseRecord phase;
  phase.label = "partition R / build";
  phase.sched_seconds = 0.25;
  phase.ring_seconds = 0.5;
  phase.elapsed_seconds = 2.0;
  phase.usage.push_back(NodeUsage{1.0, 2.0});
  phase.usage.push_back(NodeUsage{0.5, 0.0});

  const JsonValue json = PhaseRecordToJson(phase);
  EXPECT_EQ(json.Find("label")->AsString(), "partition R / build");
  EXPECT_DOUBLE_EQ(json.Find("sched_seconds")->AsDouble(), 0.25);
  EXPECT_DOUBLE_EQ(json.Find("ring_seconds")->AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(json.Find("elapsed_seconds")->AsDouble(), 2.0);
  const JsonValue* nodes = json.Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(nodes->AsArray()[0].Find("cpu_seconds")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(nodes->AsArray()[0].Find("disk_seconds")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(nodes->AsArray()[1].Find("cpu_seconds")->AsDouble(), 0.5);
}

TEST(RunMetricsToJsonTest, SerializesResponsePhasesAndAggregates) {
  RunMetrics metrics;
  metrics.response_seconds = 12.5;
  metrics.counters = FilledCounters();
  PhaseRecord phase1;
  phase1.label = "phase1";
  phase1.usage.push_back(NodeUsage{1.0, 4.0});
  PhaseRecord phase2;
  phase2.label = "phase2";
  phase2.usage.push_back(NodeUsage{2.0, 0.5});
  metrics.phases = {phase1, phase2};

  const JsonValue json = RunMetricsToJson(metrics);
  EXPECT_DOUBLE_EQ(json.Find("response_seconds")->AsDouble(), 12.5);
  EXPECT_DOUBLE_EQ(json.Find("total_cpu_seconds")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(json.Find("total_disk_seconds")->AsDouble(), 4.5);
  ASSERT_NE(json.Find("counters"), nullptr);
  EXPECT_EQ(json.Find("counters")->Find("result_tuples")->AsInt(), 14);
  const JsonValue* phases = json.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->AsArray().size(), 2u);
  EXPECT_EQ(phases->AsArray()[1].Find("label")->AsString(), "phase2");
}

TEST(RunMetricsToJsonTest, DocumentParsesBackIdentically) {
  RunMetrics metrics;
  metrics.response_seconds = 1.0 / 3.0;
  metrics.counters.pages_read = 123456789;
  PhaseRecord phase;
  phase.label = "join bucket 3";
  phase.usage.push_back(NodeUsage{0.1, 0.2});
  metrics.phases.push_back(phase);

  const JsonValue json = RunMetricsToJson(metrics);
  auto reparsed = ParseJson(json.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(*reparsed == json);
}

}  // namespace
}  // namespace gammadb::sim
