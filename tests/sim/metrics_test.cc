#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace gammadb::sim {
namespace {

RunMetrics TwoPhaseMetrics() {
  RunMetrics m;
  PhaseRecord a;
  a.label = "a";
  a.usage = {NodeUsage{2.0, 1.0}, NodeUsage{1.0, 4.0}};
  a.elapsed_seconds = 4.0;
  PhaseRecord b;
  b.label = "b";
  b.usage = {NodeUsage{3.0, 0.0}, NodeUsage{0.5, 0.5}};
  b.elapsed_seconds = 3.0;
  m.phases = {a, b};
  m.response_seconds = 7.0;
  return m;
}

TEST(MetricsTest, NodeUsageElapsedIsMax) {
  EXPECT_DOUBLE_EQ((NodeUsage{2.0, 5.0}).Elapsed(), 5.0);
  EXPECT_DOUBLE_EQ((NodeUsage{6.0, 1.0}).Elapsed(), 6.0);
  EXPECT_DOUBLE_EQ(NodeUsage{}.Elapsed(), 0.0);
}

TEST(MetricsTest, TotalsSumAcrossPhasesAndNodes) {
  const RunMetrics m = TwoPhaseMetrics();
  EXPECT_DOUBLE_EQ(m.TotalCpuSeconds(), 2.0 + 1.0 + 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.TotalDiskSeconds(), 1.0 + 4.0 + 0.5);
}

TEST(MetricsTest, NodeCpuSecondsPerNode) {
  const auto busy = TwoPhaseMetrics().NodeCpuSeconds();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[0], 5.0);
  EXPECT_DOUBLE_EQ(busy[1], 1.5);
}

TEST(MetricsTest, UtilizationDividesByResponse) {
  const auto util = TwoPhaseMetrics().NodeCpuUtilization();
  ASSERT_EQ(util.size(), 2u);
  EXPECT_DOUBLE_EQ(util[0], 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(util[1], 1.5 / 7.0);
}

TEST(MetricsTest, ShortCircuitFraction) {
  Counters c;
  EXPECT_DOUBLE_EQ(c.ShortCircuitFraction(), 0.0);  // no traffic
  c.tuples_sent_local = 3;
  c.tuples_sent_remote = 1;
  EXPECT_DOUBLE_EQ(c.ShortCircuitFraction(), 0.75);
}

TEST(MetricsTest, EmptyMetricsAreZero) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.TotalCpuSeconds(), 0.0);
  EXPECT_TRUE(m.NodeCpuSeconds().empty());
  EXPECT_TRUE(m.NodeCpuUtilization().empty());
}

}  // namespace
}  // namespace gammadb::sim
