#include "sim/machine.h"

#include <gtest/gtest.h>
#include "testing/status_matchers.h"

namespace gammadb::sim {
namespace {

TEST(MachineTest, NodeTopology) {
  Machine machine(MachineConfig{8, 8, CostModel{}, 1});
  EXPECT_EQ(machine.num_nodes(), 16);
  EXPECT_EQ(machine.DiskNodeIds(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(machine.DisklessNodeIds(),
            (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
  for (int id = 0; id < 8; ++id) EXPECT_TRUE(machine.node(id).has_disk());
  for (int id = 8; id < 16; ++id) EXPECT_FALSE(machine.node(id).has_disk());
}

TEST(MachineTest, PhaseElapsedIsSlowestNode) {
  Machine machine(MachineConfig{3, 0, CostModel{}, 1});
  machine.BeginPhase("p");
  machine.node(0).ChargeCpu(1.0, CostCategory::kOther);
  machine.node(1).ChargeCpu(5.0, CostCategory::kOther);
  machine.node(2).ChargeCpu(2.0, CostCategory::kOther);
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_DOUBLE_EQ(machine.response_seconds(), 5.0);
}

TEST(MachineTest, CpuAndDiskOverlapWithinANode) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  machine.BeginPhase("p");
  machine.node(0).ChargeCpu(3.0, CostCategory::kOther);
  machine.node(0).ChargeDisk(7.0, CostCategory::kDiskSeq);  // overlapped: max, not sum
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_DOUBLE_EQ(machine.response_seconds(), 7.0);
}

TEST(MachineTest, PhasesAreSerial) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  machine.BeginPhase("a");
  machine.node(0).ChargeCpu(2.0, CostCategory::kOther);
  GAMMA_ASSERT_OK(machine.EndPhase());
  machine.BeginPhase("b");
  machine.node(1).ChargeCpu(3.0, CostCategory::kOther);
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_DOUBLE_EQ(machine.response_seconds(), 5.0);
  const RunMetrics m = machine.Metrics();
  ASSERT_EQ(m.phases.size(), 2u);
  EXPECT_EQ(m.phases[0].label, "a");
  EXPECT_DOUBLE_EQ(m.phases[1].elapsed_seconds, 3.0);
}

TEST(MachineTest, SchedulerTimeSerializesOnTopOfNodeWork) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  machine.BeginPhase("p");
  machine.node(0).ChargeCpu(1.0, CostCategory::kOther);
  machine.ChargeScheduler(0.5, 4);
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_DOUBLE_EQ(machine.response_seconds(), 1.5);
  EXPECT_EQ(machine.Metrics().counters.control_messages, 4);
}

TEST(MachineTest, ResetMetricsClearsEverything) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  machine.BeginPhase("p");
  machine.node(0).ChargeCpu(1.0, CostCategory::kOther);
  ++machine.node(0).counters().ht_inserts;
  GAMMA_ASSERT_OK(machine.EndPhase());
  machine.ResetMetrics();
  EXPECT_DOUBLE_EQ(machine.response_seconds(), 0.0);
  const RunMetrics m = machine.Metrics();
  EXPECT_TRUE(m.phases.empty());
  EXPECT_EQ(m.counters.ht_inserts, 0);
}

TEST(MachineTest, RunOnNodesVisitsExactlyTheGivenNodes) {
  Machine machine(MachineConfig{4, 0, CostModel{}, 1});
  std::vector<int> visited;
  machine.RunOnNodes({1, 3}, [&](Node& n) { visited.push_back(n.id()); });
  EXPECT_EQ(visited, (std::vector<int>{1, 3}));
}

TEST(MachineTest, MetricsMergeNodeCounters) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  machine.node(0).counters().ht_inserts = 5;
  machine.node(1).counters().ht_inserts = 7;
  machine.node(1).counters().result_tuples = 3;
  const RunMetrics m = machine.Metrics();
  EXPECT_EQ(m.counters.ht_inserts, 12);
  EXPECT_EQ(m.counters.result_tuples, 3);
}

}  // namespace
}  // namespace gammadb::sim
