#include "sim/disk.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::sim {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : machine_(MachineConfig{1, 0, CostModel{}, 1}) {}

  Node& node() { return machine_.node(0); }
  Disk& disk() { return machine_.node(0).disk(); }
  uint32_t page_bytes() { return machine_.cost().page_bytes; }

  Machine machine_;
};

TEST_F(DiskTest, WriteReadRoundTrip) {
  std::vector<uint8_t> in(page_bytes()), out(page_bytes());
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i * 7);
  const PageId id = disk().AllocatePage();
  GAMMA_ASSERT_OK(disk().WritePage(id, in.data(), AccessPattern::kSequential));
  GAMMA_ASSERT_OK(disk().ReadPage(id, out.data(), AccessPattern::kSequential));
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST_F(DiskTest, IoChargesDeviceAndCpuTime) {
  std::vector<uint8_t> buf(page_bytes());
  machine_.BeginPhase("io");
  const PageId id = disk().AllocatePage();
  GAMMA_ASSERT_OK(disk().WritePage(id, buf.data(), AccessPattern::kSequential));
  GAMMA_ASSERT_OK(disk().ReadPage(id, buf.data(), AccessPattern::kRandom));
  const NodeUsage& usage = node().phase_usage();
  const CostModel& cost = machine_.cost();
  EXPECT_DOUBLE_EQ(usage.disk_seconds,
                   cost.disk_seq_page_seconds + cost.disk_rand_page_seconds);
  EXPECT_DOUBLE_EQ(usage.cpu_seconds, 2 * cost.cpu_page_io_seconds);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(node().counters().pages_written, 1);
  EXPECT_EQ(node().counters().pages_read, 1);
}

TEST_F(DiskTest, FreedPagesAreReusedZeroed) {
  const PageId a = disk().AllocatePage();
  std::vector<uint8_t> buf(page_bytes(), 0xFF);
  machine_.BeginPhase("p");
  GAMMA_ASSERT_OK(disk().WritePage(a, buf.data(), AccessPattern::kSequential));
  GAMMA_ASSERT_OK(machine_.EndPhase());
  disk().FreePage(a);
  const PageId b = disk().AllocatePage();
  EXPECT_EQ(b, a);  // LIFO reuse
  const uint8_t* raw = disk().PeekPage(b);
  for (uint32_t i = 0; i < page_bytes(); ++i) ASSERT_EQ(raw[i], 0) << i;
}

TEST_F(DiskTest, LivePagesTracksAllocations) {
  EXPECT_EQ(disk().live_pages(), 0u);
  const PageId a = disk().AllocatePage();
  const PageId b = disk().AllocatePage();
  (void)b;
  EXPECT_EQ(disk().live_pages(), 2u);
  disk().FreePage(a);
  EXPECT_EQ(disk().live_pages(), 1u);
}

TEST_F(DiskTest, PeekDoesNotCharge) {
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("peek");
  (void)disk().PeekPage(id);
  EXPECT_EQ(node().phase_usage().cpu_seconds, 0.0);
  EXPECT_EQ(node().phase_usage().disk_seconds, 0.0);
  GAMMA_ASSERT_OK(machine_.EndPhase());
}

}  // namespace
}  // namespace gammadb::sim
