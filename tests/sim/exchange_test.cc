#include "sim/exchange.h"

#include <gtest/gtest.h>

#include <string>
#include "testing/status_matchers.h"

namespace gammadb::sim {
namespace {

TEST(ExchangeTest, DeliversToInboxAndAccountsNetwork) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 1, "hello", 5);
  exchange.Send(0, 1, "world", 5);
  exchange.Send(1, 1, "self", 4);
  auto inbox1 = exchange.TakeInbox(1);
  ASSERT_EQ(inbox1.size(), 3u);
  EXPECT_EQ(inbox1[0], "hello");
  EXPECT_TRUE(exchange.AllEmpty());
  GAMMA_ASSERT_OK(machine.EndPhase());
  const Counters& c = machine.Metrics().counters;
  EXPECT_EQ(c.tuples_sent_remote, 2);
  EXPECT_EQ(c.tuples_sent_local, 1);
}

TEST(ExchangeTest, TakeInboxDrains) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 0, 42, 4);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 1u);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 0u);
  GAMMA_ASSERT_OK(machine.EndPhase());
}

// The determinism contract: an inbox drains its per-source lanes in
// ascending source order, each lane in send order — regardless of the
// order the sends were interleaved across sources.
TEST(ExchangeTest, DrainsLanesInAscendingSourceOrder) {
  Machine machine(MachineConfig{3, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(2, 0, "c1", 2);
  exchange.Send(0, 0, "a1", 2);
  exchange.Send(2, 0, "c2", 2);
  exchange.Send(1, 0, "b1", 2);
  exchange.Send(0, 0, "a2", 2);
  const auto inbox = exchange.TakeInbox(0);
  ASSERT_EQ(inbox.size(), 5u);
  EXPECT_EQ(inbox[0], "a1");
  EXPECT_EQ(inbox[1], "a2");
  EXPECT_EQ(inbox[2], "b1");
  EXPECT_EQ(inbox[3], "c1");
  EXPECT_EQ(inbox[4], "c2");
  GAMMA_ASSERT_OK(machine.EndPhase());
}

TEST(ExchangeTest, ReserveDoesNotAffectDelivery) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Reserve(0, 1, 100);
  exchange.ReserveRow(1, 100);
  exchange.Send(0, 1, 7, 4);
  exchange.Send(1, 1, 8, 4);
  const auto inbox = exchange.TakeInbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0], 7);
  EXPECT_EQ(inbox[1], 8);
  EXPECT_TRUE(exchange.AllEmpty());
  GAMMA_ASSERT_OK(machine.EndPhase());
}

TEST(ExchangeTest, TakeInboxAllLanesEmptyReturnsEmpty) {
  Machine machine(MachineConfig{3, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  EXPECT_TRUE(exchange.TakeInbox(0).empty());
  EXPECT_TRUE(exchange.TakeInbox(2).empty());
  EXPECT_TRUE(exchange.AllEmpty());
  GAMMA_ASSERT_OK(machine.EndPhase());
}

// With exactly one non-empty lane the inbox is the lane's buffer moved
// wholesale — its contents intact, nothing from the empty lanes.
TEST(ExchangeTest, TakeInboxSingleNonEmptyLaneMovesWholesale) {
  Machine machine(MachineConfig{4, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(2, 1, "x", 1);
  exchange.Send(2, 1, "y", 1);
  const auto inbox = exchange.TakeInbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0], "x");
  EXPECT_EQ(inbox[1], "y");
  EXPECT_TRUE(exchange.AllEmpty());
  GAMMA_ASSERT_OK(machine.EndPhase());
}

// Lanes drained by DrainInboxBlocks keep their buffers: a later round
// sending the same volume does not re-grow them from zero.
TEST(ExchangeTest, DrainedLanesRetainCapacityAcrossRounds) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  for (int i = 0; i < 100; ++i) exchange.Send(0, 1, i, 4);
  const size_t grown = exchange.LaneCapacity(0, 1);
  EXPECT_GE(grown, 100u);
  exchange.DrainInboxBlocks(1, [](std::vector<int>&) {});
  EXPECT_EQ(exchange.LaneCapacity(0, 1), grown);
  for (int i = 0; i < 100; ++i) exchange.Send(0, 1, i, 4);
  EXPECT_EQ(exchange.LaneCapacity(0, 1), grown);
  GAMMA_ASSERT_OK(machine.EndPhase());
}

// Concatenating DrainInboxBlocks' lane blocks reproduces TakeInbox's
// item order exactly (ascending source, send order within a source) —
// the equivalence the block-granular consumers in the join engines
// rely on.
TEST(ExchangeTest, DrainInboxBlocksMatchesTakeInboxOrder) {
  Machine take_machine(MachineConfig{3, 0, CostModel{}, 1});
  Machine drain_machine(MachineConfig{3, 0, CostModel{}, 1});
  Exchange<std::string> take(&take_machine);
  Exchange<std::string> drain(&drain_machine);
  take_machine.BeginPhase("p");
  drain_machine.BeginPhase("p");
  const auto send_pattern = [](Exchange<std::string>& e) {
    e.Send(2, 0, "c1", 2);
    e.Send(0, 0, "a1", 2);
    e.Send(2, 0, "c2", 2);
    e.Send(1, 0, "b1", 2);
    e.Send(0, 0, "a2", 2);
  };
  send_pattern(take);
  send_pattern(drain);
  const std::vector<std::string> consolidated = take.TakeInbox(0);
  std::vector<std::string> concatenated;
  size_t blocks = 0;
  drain.DrainInboxBlocks(0, [&](std::vector<std::string>& lane) {
    ++blocks;
    concatenated.insert(concatenated.end(), lane.begin(), lane.end());
  });
  EXPECT_EQ(blocks, 3u);  // one per non-empty source lane
  EXPECT_EQ(concatenated, consolidated);
  EXPECT_TRUE(drain.AllEmpty());
  GAMMA_ASSERT_OK(take_machine.EndPhase());
  GAMMA_ASSERT_OK(drain_machine.EndPhase());
}

// ReserveRow spreads an expected row total over the lanes with a ceil
// divide: an exact multiple reserves exactly total/n per lane, not
// total/n + 1 (which over-reserved one item per lane, n per row).
TEST(ExchangeTest, ReserveRowUsesCeilDividePerLane) {
  Machine machine(MachineConfig{4, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.ReserveRow(0, 400);  // exact multiple: 100 per lane
  for (int dst = 0; dst < 4; ++dst) {
    EXPECT_EQ(exchange.LaneCapacity(0, dst), 100u);
  }
  exchange.ReserveRow(1, 401);  // remainder: ceil(401/4) = 101
  for (int dst = 0; dst < 4; ++dst) {
    EXPECT_EQ(exchange.LaneCapacity(1, dst), 101u);
  }
  GAMMA_ASSERT_OK(machine.EndPhase());
}

// SendBatch must append in fill order after already-sent items, with
// the per-item network accounting supplied via Account.
TEST(ExchangeTest, SendBatchAppendsInFillOrderAfterSends) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 1, 1, 4);
  exchange.Account(0, 1, 4);
  exchange.Account(0, 1, 4);
  exchange.SendBatch(0, 1, 2, [](size_t k, int& out) {
    out = 2 + static_cast<int>(k);
  });
  const auto inbox = exchange.TakeInbox(1);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0], 1);
  EXPECT_EQ(inbox[1], 2);
  EXPECT_EQ(inbox[2], 3);
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_EQ(machine.Metrics().counters.tuples_sent_remote, 3);
}

TEST(ExchangeTest, ConcurrentSendersAllDeliver) {
  Machine machine(MachineConfig{8, 0, CostModel{}, 4});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  machine.RunOnNodes({0, 1, 2, 3, 4, 5, 6, 7}, [&](Node& n) {
    for (int i = 0; i < 1000; ++i) {
      exchange.Send(n.id(), i % 8, n.id() * 10000 + i, 8);
    }
  });
  size_t total = 0;
  for (int node = 0; node < 8; ++node) {
    total += exchange.TakeInbox(node).size();
  }
  EXPECT_EQ(total, 8000u);
  GAMMA_ASSERT_OK(machine.EndPhase());
}

}  // namespace
}  // namespace gammadb::sim
