#include "sim/exchange.h"

#include <gtest/gtest.h>

#include <string>

namespace gammadb::sim {
namespace {

TEST(ExchangeTest, DeliversToInboxAndAccountsNetwork) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 1, "hello", 5);
  exchange.Send(0, 1, "world", 5);
  exchange.Send(1, 1, "self", 4);
  auto inbox1 = exchange.TakeInbox(1);
  ASSERT_EQ(inbox1.size(), 3u);
  EXPECT_EQ(inbox1[0], "hello");
  EXPECT_TRUE(exchange.AllEmpty());
  machine.EndPhase();
  const Counters& c = machine.Metrics().counters;
  EXPECT_EQ(c.tuples_sent_remote, 2);
  EXPECT_EQ(c.tuples_sent_local, 1);
}

TEST(ExchangeTest, TakeInboxDrains) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 0, 42, 4);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 1u);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 0u);
  machine.EndPhase();
}

// The determinism contract: an inbox drains its per-source lanes in
// ascending source order, each lane in send order — regardless of the
// order the sends were interleaved across sources.
TEST(ExchangeTest, DrainsLanesInAscendingSourceOrder) {
  Machine machine(MachineConfig{3, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(2, 0, "c1", 2);
  exchange.Send(0, 0, "a1", 2);
  exchange.Send(2, 0, "c2", 2);
  exchange.Send(1, 0, "b1", 2);
  exchange.Send(0, 0, "a2", 2);
  const auto inbox = exchange.TakeInbox(0);
  ASSERT_EQ(inbox.size(), 5u);
  EXPECT_EQ(inbox[0], "a1");
  EXPECT_EQ(inbox[1], "a2");
  EXPECT_EQ(inbox[2], "b1");
  EXPECT_EQ(inbox[3], "c1");
  EXPECT_EQ(inbox[4], "c2");
  machine.EndPhase();
}

TEST(ExchangeTest, ReserveDoesNotAffectDelivery) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Reserve(0, 1, 100);
  exchange.ReserveRow(1, 100);
  exchange.Send(0, 1, 7, 4);
  exchange.Send(1, 1, 8, 4);
  const auto inbox = exchange.TakeInbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0], 7);
  EXPECT_EQ(inbox[1], 8);
  EXPECT_TRUE(exchange.AllEmpty());
  machine.EndPhase();
}

TEST(ExchangeTest, ConcurrentSendersAllDeliver) {
  Machine machine(MachineConfig{8, 0, CostModel{}, 4});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  machine.RunOnNodes({0, 1, 2, 3, 4, 5, 6, 7}, [&](Node& n) {
    for (int i = 0; i < 1000; ++i) {
      exchange.Send(n.id(), i % 8, n.id() * 10000 + i, 8);
    }
  });
  size_t total = 0;
  for (int node = 0; node < 8; ++node) {
    total += exchange.TakeInbox(node).size();
  }
  EXPECT_EQ(total, 8000u);
  machine.EndPhase();
}

}  // namespace
}  // namespace gammadb::sim
