#include "sim/exchange.h"

#include <gtest/gtest.h>

#include <string>

namespace gammadb::sim {
namespace {

TEST(ExchangeTest, DeliversToInboxAndAccountsNetwork) {
  Machine machine(MachineConfig{2, 0, CostModel{}, 1});
  Exchange<std::string> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 1, "hello", 5);
  exchange.Send(0, 1, "world", 5);
  exchange.Send(1, 1, "self", 4);
  auto inbox1 = exchange.TakeInbox(1);
  ASSERT_EQ(inbox1.size(), 3u);
  EXPECT_EQ(inbox1[0], "hello");
  EXPECT_TRUE(exchange.AllEmpty());
  machine.EndPhase();
  const Counters& c = machine.Metrics().counters;
  EXPECT_EQ(c.tuples_sent_remote, 2);
  EXPECT_EQ(c.tuples_sent_local, 1);
}

TEST(ExchangeTest, TakeInboxDrains) {
  Machine machine(MachineConfig{1, 0, CostModel{}, 1});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  exchange.Send(0, 0, 42, 4);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 1u);
  EXPECT_EQ(exchange.TakeInbox(0).size(), 0u);
  machine.EndPhase();
}

TEST(ExchangeTest, ConcurrentSendersAllDeliver) {
  Machine machine(MachineConfig{8, 0, CostModel{}, 4});
  Exchange<int> exchange(&machine);
  machine.BeginPhase("p");
  machine.RunOnNodes({0, 1, 2, 3, 4, 5, 6, 7}, [&](Node& n) {
    for (int i = 0; i < 1000; ++i) {
      exchange.Send(n.id(), i % 8, n.id() * 10000 + i, 8);
    }
  });
  size_t total = 0;
  for (int node = 0; node < 8; ++node) {
    total += exchange.TakeInbox(node).size();
  }
  EXPECT_EQ(total, 8000u);
  machine.EndPhase();
}

}  // namespace
}  // namespace gammadb::sim
