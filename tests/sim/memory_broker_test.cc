// Unit tests of the per-node build-memory broker (sim/memory_broker.h):
// budget arithmetic, shared admission across co-resident consumers, and
// the spill/refill observability ledger.
#include "sim/memory_broker.h"

#include <gtest/gtest.h>

namespace gammadb::sim {
namespace {

TEST(MemoryBrokerTest, StartsEmpty) {
  MemoryBroker broker(3);
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(broker.budget(node), 0u);
    EXPECT_EQ(broker.used(node), 0u);
    EXPECT_EQ(broker.available(node), 0u);
  }
  EXPECT_EQ(broker.TotalSpillBytes(), 0u);
  EXPECT_EQ(broker.TotalRefillBytes(), 0u);
  // Zero budget admits nothing (but a zero-byte reservation is fine).
  EXPECT_FALSE(broker.TryReserve(0, 1));
  EXPECT_TRUE(broker.TryReserve(0, 0));
}

TEST(MemoryBrokerTest, ReserveAndReleaseTrackTheLedger) {
  MemoryBroker broker(2);
  broker.AddBudget(0, 100);
  EXPECT_EQ(broker.budget(0), 100u);
  EXPECT_TRUE(broker.TryReserve(0, 60));
  EXPECT_EQ(broker.used(0), 60u);
  EXPECT_EQ(broker.available(0), 40u);
  // Over-budget reservation fails WITHOUT reserving anything.
  EXPECT_FALSE(broker.TryReserve(0, 41));
  EXPECT_EQ(broker.used(0), 60u);
  EXPECT_TRUE(broker.TryReserve(0, 40));
  EXPECT_EQ(broker.available(0), 0u);
  broker.Release(0, 100);
  EXPECT_EQ(broker.used(0), 0u);
  // Node 1 is an independent pool.
  EXPECT_FALSE(broker.TryReserve(1, 1));
}

TEST(MemoryBrokerTest, CoResidentProcessesShareOneBudget) {
  // Two join processes placed on node 0 each contribute their capacity
  // share; admission then draws on the SUM, not on two private copies —
  // together they can never hold more than the node owns.
  MemoryBroker broker(1);
  broker.AddBudget(0, 50);
  broker.AddBudget(0, 50);
  EXPECT_EQ(broker.budget(0), 100u);
  EXPECT_TRUE(broker.TryReserve(0, 70));   // process A takes 70...
  EXPECT_FALSE(broker.TryReserve(0, 40));  // ...so B cannot also take 40
  EXPECT_TRUE(broker.TryReserve(0, 30));
}

TEST(MemoryBrokerTest, SpillRefillTotalsAccumulateAcrossNodes) {
  MemoryBroker broker(3);
  broker.NoteSpill(0, 10);
  broker.NoteSpill(2, 5);
  broker.NoteRefill(1, 7);
  broker.NoteSpill(0, 1);
  EXPECT_EQ(broker.TotalSpillBytes(), 16u);
  EXPECT_EQ(broker.TotalRefillBytes(), 7u);
  // Observability never affects admission.
  broker.AddBudget(0, 8);
  EXPECT_TRUE(broker.TryReserve(0, 8));
}

}  // namespace
}  // namespace gammadb::sim
