#include "sim/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/disk.h"
#include "sim/machine.h"

namespace gammadb::sim {
namespace {

FaultEvent Ev(FaultKind kind, int node, uint64_t ordinal, int repeat = 1,
              std::string phase_label = "") {
  FaultEvent e;
  e.kind = kind;
  e.node = node;
  e.ordinal = ordinal;
  e.repeat = repeat;
  e.phase_label = std::move(phase_label);
  return e;
}

// ---------------------------------------------------------------------------
// FaultInjector: counted-event bookkeeping.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FiresAtExactOrdinal) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 3));
  FaultInjector inj(plan, /*num_nodes=*/1);
  EXPECT_FALSE(inj.OnPageRead(0));
  EXPECT_FALSE(inj.OnPageRead(0));
  EXPECT_TRUE(inj.OnPageRead(0));
  EXPECT_FALSE(inj.OnPageRead(0));  // fires at most once
}

TEST(FaultInjectorTest, RepeatExpandsToConsecutiveOrdinals) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskWriteTransient, 0, 2, 3));
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.OnPageWrite(0));
  EXPECT_TRUE(inj.OnPageWrite(0));
  EXPECT_TRUE(inj.OnPageWrite(0));
  EXPECT_TRUE(inj.OnPageWrite(0));
  EXPECT_FALSE(inj.OnPageWrite(0));
}

TEST(FaultInjectorTest, TracksArePerNodeAndPerKind) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 1, 1));
  FaultInjector inj(plan, 2);
  // Same ordinal on another node or another kind never fires.
  EXPECT_FALSE(inj.OnPageRead(0));
  EXPECT_FALSE(inj.OnPageWrite(1));
  EXPECT_TRUE(inj.OnPageRead(1));
}

TEST(FaultInjectorTest, AddPeriodicSchedulesMultiplesOfPeriod) {
  FaultPlan plan;
  plan.AddPeriodic(FaultKind::kDiskReadTransient, 0, /*period=*/3,
                   /*count=*/2);
  ASSERT_EQ(plan.events().size(), 2u);
  FaultInjector inj(plan, 1);
  int fired = 0;
  std::vector<int> fired_at;
  for (int i = 1; i <= 9; ++i) {
    if (inj.OnPageRead(0)) {
      ++fired;
      fired_at.push_back(i);
    }
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6}));
}

TEST(FaultInjectorTest, PacketFaultsCountedAgainstDeliveredRanges) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketLoss, 1, 3));
  plan.Add(Ev(FaultKind::kPacketDuplicate, 1, 4));
  FaultInjector inj(plan, 2);
  FaultInjector::PacketFaults pf = inj.OnPacketsDelivered(1, 2);
  EXPECT_EQ(pf.lost, 0);
  EXPECT_EQ(pf.duplicated, 0);
  pf = inj.OnPacketsDelivered(1, 3);  // covers ordinals 3..5
  EXPECT_EQ(pf.lost, 1);
  EXPECT_EQ(pf.duplicated, 1);
  pf = inj.OnPacketsDelivered(1, 10);
  EXPECT_EQ(pf.lost, 0);
  EXPECT_EQ(pf.duplicated, 0);
}

TEST(FaultInjectorTest, CrashMatchesLabelSubstringAtOrdinal) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kNodeCrash, 2, 2, 1, "build"));
  FaultInjector inj(plan, 4);
  EXPECT_EQ(inj.OnPhaseEntry("probe S"), -1);       // no match, not counted
  EXPECT_EQ(inj.OnPhaseEntry("build R (1)"), -1);   // first match
  EXPECT_EQ(inj.OnPhaseEntry("build R (2)"), 2);    // second match: crash
  EXPECT_EQ(inj.OnPhaseEntry("build R (3)"), -1);   // fires at most once
}

TEST(FaultInjectorTest, EmptyLabelMatchesEveryPhase) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kNodeCrash, 0, 1, 1, ""));
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.OnPhaseEntry("anything"), 0);
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  FaultPlan::RandomOptions opts;
  opts.num_nodes = 4;
  const FaultPlan a = FaultPlan::Random(17, opts);
  const FaultPlan b = FaultPlan::Random(17, opts);
  ASSERT_EQ(a.events().size(), b.events().size());
  EXPECT_FALSE(a.empty());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].ordinal, b.events()[i].ordinal);
    EXPECT_EQ(a.events()[i].repeat, b.events()[i].repeat);
    EXPECT_EQ(a.events()[i].phase_label, b.events()[i].phase_label);
    EXPECT_GE(a.events()[i].node, 0);
    EXPECT_LT(a.events()[i].node, opts.num_nodes);
    EXPECT_GE(a.events()[i].ordinal, 1u);
  }
  const FaultPlan c = FaultPlan::Random(18, opts);
  bool differs = a.events().size() != c.events().size();
  for (size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].kind != c.events()[i].kind ||
              a.events()[i].node != c.events()[i].node ||
              a.events()[i].ordinal != c.events()[i].ordinal;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, RandomHonorsClassToggles) {
  FaultPlan::RandomOptions opts;
  opts.disk_faults = false;
  opts.crashes = false;
  const FaultPlan plan = FaultPlan::Random(5, opts);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_TRUE(e.kind == FaultKind::kPacketLoss ||
                e.kind == FaultKind::kPacketDuplicate)
        << FaultKindName(e.kind);
  }
}

// ---------------------------------------------------------------------------
// Disk: transient faults retry and self-heal; exhausted budgets are hard
// errors.
// ---------------------------------------------------------------------------

class DiskFaultTest : public ::testing::Test {
 protected:
  DiskFaultTest() : machine_(MachineConfig{2, 0, CostModel{}, 1}) {}

  Disk& disk(int n = 0) { return machine_.node(n).disk(); }
  std::vector<uint8_t> PageBuf(uint8_t fill = 0) {
    return std::vector<uint8_t>(machine_.cost().page_bytes, fill);
  }

  Machine machine_;
};

TEST_F(DiskFaultTest, TransientReadFaultRetriesAndSelfHeals) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 1));
  machine_.ArmFaults(plan);
  EXPECT_TRUE(machine_.faults_armed());

  std::vector<uint8_t> in = PageBuf(0xAB), out = PageBuf();
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("fault io");
  ASSERT_TRUE(disk().WritePage(id, in.data(), AccessPattern::kSequential).ok());
  const Status read = disk().ReadPage(id, out.data(), AccessPattern::kRandom);
  EXPECT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(in, out);  // data is never corrupted by a transient fault

  // The failed attempt plus the successful retry each paid full device
  // and issue-CPU time.
  const CostModel& cost = machine_.cost();
  const NodeUsage& usage = machine_.node(0).phase_usage();
  EXPECT_DOUBLE_EQ(usage.disk_seconds, cost.disk_seq_page_seconds +
                                           2 * cost.disk_rand_page_seconds);
  EXPECT_DOUBLE_EQ(usage.cpu_seconds, 3 * cost.cpu_page_io_seconds);
  machine_.EndPhase().IgnoreError();

  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.disk_read_faults, 1);
  EXPECT_EQ(c.disk_write_faults, 0);
  EXPECT_EQ(c.io_retries, 1);
  EXPECT_EQ(c.pages_read, 1);
  EXPECT_EQ(c.pages_written, 1);
  EXPECT_TRUE(c.AnyFaults());
}

TEST_F(DiskFaultTest, TransientWriteFaultCountsSeparately) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskWriteTransient, 0, 1));
  machine_.ArmFaults(plan);
  std::vector<uint8_t> buf = PageBuf(0x11);
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("w");
  EXPECT_TRUE(disk().WritePage(id, buf.data(), AccessPattern::kSequential).ok());
  machine_.EndPhase().IgnoreError();
  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.disk_write_faults, 1);
  EXPECT_EQ(c.disk_read_faults, 0);
  EXPECT_EQ(c.io_retries, 1);
  EXPECT_EQ(c.pages_written, 1);
}

TEST_F(DiskFaultTest, RepeatAtRetryBudgetBecomesHardError) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 1, Disk::kMaxIoAttempts));
  machine_.ArmFaults(plan);
  std::vector<uint8_t> out = PageBuf();
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("hard");
  const Status st = disk().ReadPage(id, out.data(), AccessPattern::kRandom);
  machine_.EndPhase().IgnoreError();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.disk_read_faults, Disk::kMaxIoAttempts);
  EXPECT_EQ(c.io_retries, Disk::kMaxIoAttempts - 1);
  EXPECT_EQ(c.pages_read, 0);  // the read never completed
}

TEST_F(DiskFaultTest, RepeatBelowBudgetStillSucceeds) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 1, Disk::kMaxIoAttempts - 1));
  machine_.ArmFaults(plan);
  std::vector<uint8_t> out = PageBuf();
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("heal");
  EXPECT_TRUE(disk().ReadPage(id, out.data(), AccessPattern::kRandom).ok());
  machine_.EndPhase().IgnoreError();
  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.disk_read_faults, Disk::kMaxIoAttempts - 1);
  EXPECT_EQ(c.io_retries, Disk::kMaxIoAttempts - 1);
  EXPECT_EQ(c.pages_read, 1);
}

TEST_F(DiskFaultTest, FaultCountersSurviveResetMetrics) {
  // Event counters are monotonic from ArmFaults: a fault scheduled on the
  // second read fires even when ResetMetrics runs between the reads.
  // This is what lets a restarted operator run past consumed faults.
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 2));
  machine_.ArmFaults(plan);
  std::vector<uint8_t> out = PageBuf();
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("a");
  EXPECT_TRUE(disk().ReadPage(id, out.data(), AccessPattern::kRandom).ok());
  machine_.EndPhase().IgnoreError();
  EXPECT_EQ(machine_.Metrics().counters.disk_read_faults, 0);

  machine_.ResetMetrics();
  machine_.BeginPhase("b");
  EXPECT_TRUE(disk().ReadPage(id, out.data(), AccessPattern::kRandom).ok());
  machine_.EndPhase().IgnoreError();
  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.disk_read_faults, 1);
  EXPECT_EQ(c.io_retries, 1);
}

TEST_F(DiskFaultTest, EmptyPlanDisarms) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kDiskReadTransient, 0, 1));
  machine_.ArmFaults(plan);
  EXPECT_TRUE(machine_.faults_armed());
  machine_.ArmFaults(FaultPlan{});
  EXPECT_FALSE(machine_.faults_armed());

  machine_.ArmFaults(plan);
  machine_.DisarmFaults();
  EXPECT_FALSE(machine_.faults_armed());
  std::vector<uint8_t> out = PageBuf();
  const PageId id = disk().AllocatePage();
  machine_.BeginPhase("clean");
  EXPECT_TRUE(disk().ReadPage(id, out.data(), AccessPattern::kRandom).ok());
  machine_.EndPhase().IgnoreError();
  EXPECT_FALSE(machine_.Metrics().counters.AnyFaults());
}

// ---------------------------------------------------------------------------
// Network: packet loss charges the sender's retransmission, duplication
// charges the receiver's discard path. Data never changes.
// ---------------------------------------------------------------------------

class NetFaultTest : public ::testing::Test {
 protected:
  NetFaultTest() : machine_(MachineConfig{2, 0, CostModel{}, 1}) {}
  Machine machine_;
};

TEST_F(NetFaultTest, PacketLossChargesSenderRetransmission) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketLoss, 1, 1));
  machine_.ArmFaults(plan);
  const CostModel& cost = machine_.cost();
  machine_.BeginPhase("xfer");
  machine_.network().AccountTuple(0, 1, cost.packet_payload_bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());  // loss is not an error: protocol
                                          // guarantees delivery
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.packets_remote, 1);
  EXPECT_EQ(m.counters.packets_lost, 1);
  EXPECT_EQ(m.counters.packets_retransmitted, 1);
  EXPECT_EQ(m.counters.packets_duplicated, 0);
  // Sender pays the original send, the loss detection, and the resend.
  EXPECT_DOUBLE_EQ(m.phases[0].usage[0].cpu_seconds,
                   2 * cost.net_remote_packet_send_cpu_seconds +
                       cost.net_retransmit_detect_cpu_seconds);
  // Receiver pays the normal receive path exactly once.
  EXPECT_DOUBLE_EQ(m.phases[0].usage[1].cpu_seconds,
                   cost.net_remote_packet_recv_cpu_seconds +
                       cost.cpu_receive_tuple_seconds);
  // The ring carried the payload twice.
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   2 * cost.packet_payload_bytes *
                       cost.net_wire_seconds_per_byte);
}

TEST_F(NetFaultTest, PacketDuplicateChargesReceiverDiscard) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketDuplicate, 1, 1));
  machine_.ArmFaults(plan);
  const CostModel& cost = machine_.cost();
  machine_.BeginPhase("xfer");
  machine_.network().AccountTuple(0, 1, cost.packet_payload_bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.packets_duplicated, 1);
  EXPECT_EQ(m.counters.packets_lost, 0);
  // Sender is untouched.
  EXPECT_DOUBLE_EQ(m.phases[0].usage[0].cpu_seconds,
                   cost.net_remote_packet_send_cpu_seconds);
  // Receiver pays one extra receive path; the duplicate is discarded by
  // sequence number before per-tuple processing.
  EXPECT_DOUBLE_EQ(m.phases[0].usage[1].cpu_seconds,
                   2 * cost.net_remote_packet_recv_cpu_seconds +
                       cost.cpu_receive_tuple_seconds);
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   2 * cost.packet_payload_bytes *
                       cost.net_wire_seconds_per_byte);
}

// Regression: a faulted *tail* packet carries only the cell's residual
// bytes, so its extra wire copy must be charged at the actual payload,
// not a full packet_payload_bytes (the old code overcharged the ring by
// nearly a full packet per tail fault).
TEST_F(NetFaultTest, PacketLossOnPartialTailChargesActualPayload) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketLoss, 1, 2));  // second packet = the tail
  machine_.ArmFaults(plan);
  const CostModel& cost = machine_.cost();
  const uint64_t bytes = cost.packet_payload_bytes + 1;  // tail carries 1 byte
  machine_.BeginPhase("xfer");
  machine_.network().AccountBytes(0, 1, bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.packets_remote, 2);
  EXPECT_EQ(m.counters.packets_lost, 1);
  EXPECT_EQ(m.counters.packets_retransmitted, 1);
  const double wire = cost.net_wire_seconds_per_byte;
  // Payload once, plus the 1-byte tail resent — not a full extra packet.
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   static_cast<double>(bytes) * wire + 1 * wire);
  EXPECT_DOUBLE_EQ(m.phases[0].ring.payload_seconds,
                   static_cast<double>(bytes) * wire);
  EXPECT_DOUBLE_EQ(m.phases[0].ring.retransmit_seconds, 1 * wire);
  EXPECT_DOUBLE_EQ(m.phases[0].ring.duplicate_seconds, 0.0);
}

TEST_F(NetFaultTest, PacketLossBeforeTailStillChargesFullPayload) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketLoss, 1, 1));  // first packet is full
  machine_.ArmFaults(plan);
  const CostModel& cost = machine_.cost();
  const uint64_t bytes = cost.packet_payload_bytes + 1;
  machine_.BeginPhase("xfer");
  machine_.network().AccountBytes(0, 1, bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());
  const RunMetrics m = machine_.Metrics();
  const double wire = cost.net_wire_seconds_per_byte;
  EXPECT_DOUBLE_EQ(m.phases[0].ring.retransmit_seconds,
                   cost.packet_payload_bytes * wire);
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   static_cast<double>(bytes) * wire +
                       cost.packet_payload_bytes * wire);
}

TEST_F(NetFaultTest, PacketDuplicateOnPartialTailChargesActualPayload) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketDuplicate, 1, 3));  // tail of 3 packets
  machine_.ArmFaults(plan);
  const CostModel& cost = machine_.cost();
  const uint64_t tail = cost.packet_payload_bytes / 2;
  const uint64_t bytes = 2 * cost.packet_payload_bytes + tail;
  machine_.BeginPhase("xfer");
  machine_.network().AccountBytes(0, 1, bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.packets_remote, 3);
  EXPECT_EQ(m.counters.packets_duplicated, 1);
  const double wire = cost.net_wire_seconds_per_byte;
  EXPECT_DOUBLE_EQ(m.phases[0].ring.duplicate_seconds,
                   static_cast<double>(tail) * wire);
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   static_cast<double>(bytes + tail) * wire);
  // The attribution identity ring == payload + retransmit + duplicate.
  EXPECT_DOUBLE_EQ(m.phases[0].ring.Total(), m.phases[0].ring_seconds);
}

TEST_F(NetFaultTest, LocalDeliveryNeverFaults) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kPacketLoss, 0, 1));
  machine_.ArmFaults(plan);
  machine_.BeginPhase("local");
  machine_.network().AccountTuple(0, 0, machine_.cost().packet_payload_bytes);
  EXPECT_TRUE(machine_.EndPhase().ok());
  const Counters c = machine_.Metrics().counters;
  EXPECT_EQ(c.packets_local, 1);
  EXPECT_EQ(c.packets_lost, 0);  // short-circuited packets never touch
                                 // the ring, so they cannot be lost
}

// ---------------------------------------------------------------------------
// Machine: node crashes abort the phase; recovery is booked explicitly.
// ---------------------------------------------------------------------------

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : machine_(MachineConfig{2, 0, CostModel{}, 1}) {}
  Machine machine_;
};

TEST_F(CrashTest, CrashAbortsMatchingPhaseOnce) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kNodeCrash, 1, 1, 1, "join"));
  machine_.ArmFaults(plan);

  machine_.BeginPhase("scan R");
  EXPECT_TRUE(machine_.EndPhase().ok());  // label does not match

  machine_.BeginPhase("join bucket 1");
  machine_.node(0).ChargeCpu(0.25, CostCategory::kOther);  // work still runs — and is wasted
  const Status st = machine_.EndPhase();
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(machine_.Metrics().counters.node_crashes, 1);
  EXPECT_DOUBLE_EQ(machine_.response_seconds(), 0.25);

  machine_.BeginPhase("join bucket 1");  // the restart's phase
  EXPECT_TRUE(machine_.EndPhase().ok());  // each crash fires at most once
  EXPECT_EQ(machine_.Metrics().counters.node_crashes, 1);
}

TEST_F(CrashTest, CrashOrdinalCountsMatchingEntries) {
  FaultPlan plan;
  plan.Add(Ev(FaultKind::kNodeCrash, 0, 2, 1, "probe"));
  machine_.ArmFaults(plan);
  machine_.BeginPhase("probe S (1)");
  EXPECT_TRUE(machine_.EndPhase().ok());
  machine_.BeginPhase("build R");  // not counted
  EXPECT_TRUE(machine_.EndPhase().ok());
  machine_.BeginPhase("probe S (2)");
  EXPECT_EQ(machine_.EndPhase().code(), StatusCode::kAborted);
}

TEST_F(CrashTest, RecordOperatorRestartBooksRecoveryTime) {
  machine_.BeginPhase("wasted attempt");
  machine_.node(0).ChargeCpu(1.5, CostCategory::kOther);
  machine_.EndPhase().IgnoreError();
  const double wasted = machine_.response_seconds();
  ASSERT_GT(wasted, 0.0);

  machine_.RecordOperatorRestart(wasted);
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.operator_restarts, 1);
  EXPECT_DOUBLE_EQ(m.recovery_seconds, wasted);
  EXPECT_TRUE(m.counters.AnyFaults());
  // Recovery time is part of response time, not in addition to it.
  EXPECT_DOUBLE_EQ(m.response_seconds, wasted);
}

}  // namespace
}  // namespace gammadb::sim
