// The executor determinism contract (DESIGN.md): RunMetrics is a pure
// function of the query plan, never of the thread count. Every join
// algorithm, with and without HPJA declustering and under
// overflow-inducing memory pressure, must produce byte-identical
// metrics JSON at 1, 4 and 8 executor threads.
//
// This is what lets one checked-in serial baseline gate threaded CI
// runs (tools/bench_diff), and what makes pooled execution safe as the
// default for tests and benchmarks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "sim/metrics_json.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

struct Scenario {
  const char* name;
  bool hpja;             // partition field == join attribute?
  double memory_ratio;   // joining memory / |R|
  double memory_slack;   // 0 forces hash-table overflow at low ratios
};

const Scenario kScenarios[] = {
    {"hpja", true, 1.0, 0.35},
    {"non_hpja", false, 1.0, 0.35},
    {"overflow", true, 0.15, 0.0},
};

/// Runs joinABprime under `scenario` with `threads` executor threads
/// and returns the serialized RunMetrics JSON plus the canonical result
/// rows. A non-null `faults` is armed after the load (fault ordinals
/// count query events).
void RunScenario(const Scenario& scenario, join::Algorithm algorithm,
                 int threads, std::string* metrics_json,
                 std::vector<std::string>* result_rows,
                 const sim::FaultPlan* faults = nullptr) {
  sim::MachineConfig config = testing::SmallConfig(4);
  config.num_threads = threads;
  sim::Machine machine(config);
  db::Catalog catalog;

  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  options.seed = 71;
  options.partition_field = scenario.hpja ? wisconsin::fields::kUnique1
                                          : wisconsin::fields::kUnique2;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  if (faults != nullptr) machine.ArmFaults(*faults);

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.memory_ratio = scenario.memory_ratio;
  spec.memory_slack = scenario.memory_slack;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  *metrics_json = sim::RunMetricsToJson(output->metrics).Dump();
  auto rel = catalog.Get("result");
  ASSERT_TRUE(rel.ok());
  *result_rows = testing::Canonical((*rel)->PeekAllTuples());
}

TEST(DeterminismTest, MetricsJsonIsThreadCountInvariant) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    for (const Scenario& scenario : kScenarios) {
      SCOPED_TRACE(std::string(join::AlgorithmName(algorithm)) + " / " +
                   scenario.name);
      std::string serial_json;
      std::vector<std::string> serial_rows;
      RunScenario(scenario, algorithm, 1, &serial_json, &serial_rows);
      if (HasFatalFailure()) return;
      EXPECT_FALSE(serial_rows.empty());
      for (int threads : {4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::string pooled_json;
        std::vector<std::string> pooled_rows;
        RunScenario(scenario, algorithm, threads, &pooled_json, &pooled_rows);
        if (HasFatalFailure()) return;
        EXPECT_EQ(serial_json, pooled_json);
        EXPECT_EQ(serial_rows, pooled_rows);
      }
    }
  }
}

/// Fault injection composes with the determinism contract: with a fixed
/// FaultPlan armed, the metrics JSON — retry counts, retransmissions,
/// crash recovery time and all — is still byte-identical at 1, 4 and 8
/// executor threads. Faults are keyed on counted events, never on
/// thread interleaving.
TEST(DeterminismTest, FaultedMetricsJsonIsThreadCountInvariant) {
  sim::FaultPlan plan;
  // One of each class, including a crash on the first phase so every
  // algorithm takes an operator restart.
  plan.AddPeriodic(sim::FaultKind::kDiskReadTransient, 1, /*period=*/3,
                   /*count=*/2);
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kDiskWriteTransient;
  e.node = 2;
  e.ordinal = 1;
  plan.Add(e);
  e.kind = sim::FaultKind::kPacketLoss;
  e.node = 0;
  e.ordinal = 2;
  plan.Add(e);
  e.kind = sim::FaultKind::kPacketDuplicate;
  e.node = 3;
  e.ordinal = 1;
  plan.Add(e);
  e.kind = sim::FaultKind::kNodeCrash;
  e.node = 1;
  e.ordinal = 1;
  e.phase_label = "";
  plan.Add(e);

  const Scenario& scenario = kScenarios[1];  // non-HPJA: remote packets
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    SCOPED_TRACE(join::AlgorithmName(algorithm));
    std::string serial_json;
    std::vector<std::string> serial_rows;
    RunScenario(scenario, algorithm, 1, &serial_json, &serial_rows, &plan);
    if (HasFatalFailure()) return;
    EXPECT_FALSE(serial_rows.empty());
    // The plan must actually engage the machinery it claims to test.
    EXPECT_NE(serial_json.find("\"operator_restarts\""), std::string::npos);
    EXPECT_NE(serial_json.find("\"io_retries\""), std::string::npos);
    for (int threads : {4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::string pooled_json;
      std::vector<std::string> pooled_rows;
      RunScenario(scenario, algorithm, threads, &pooled_json, &pooled_rows,
                  &plan);
      if (HasFatalFailure()) return;
      EXPECT_EQ(serial_json, pooled_json);
      EXPECT_EQ(serial_rows, pooled_rows);
    }
  }
}

/// The overflow scenario must actually exercise the eviction path —
/// otherwise the matrix above silently loses its hardest case.
TEST(DeterminismTest, OverflowScenarioDoesOverflow) {
  sim::MachineConfig config = testing::SmallConfig(4);
  sim::Machine machine(config);
  db::Catalog catalog;
  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  options.seed = 71;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok());

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = join::Algorithm::kSimpleHash;
  spec.memory_ratio = 0.15;
  spec.memory_slack = 0.0;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_GT(output->stats.overflow_events, 0);
}

}  // namespace
}  // namespace gammadb
