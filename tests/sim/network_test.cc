#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : machine_(MachineConfig{2, 2, CostModel{}, 1}) {}
  Machine machine_;
};

TEST_F(NetworkTest, LocalTrafficShortCircuits) {
  machine_.BeginPhase("p");
  // 3 tuples of 208 bytes node 0 -> node 0: one local packet.
  for (int i = 0; i < 3; ++i) machine_.network().AccountTuple(0, 0, 208);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  const Counters& c = machine_.Metrics().counters;
  EXPECT_EQ(c.tuples_sent_local, 3);
  EXPECT_EQ(c.tuples_sent_remote, 0);
  EXPECT_EQ(c.packets_local, 1);
  EXPECT_EQ(c.packets_remote, 0);
  EXPECT_EQ(c.bytes_local, 3 * 208);
  EXPECT_DOUBLE_EQ(c.ShortCircuitFraction(), 1.0);
  // Ring never occupied by local traffic.
  EXPECT_DOUBLE_EQ(machine_.Metrics().phases[0].ring_seconds, 0.0);
}

TEST_F(NetworkTest, RemoteTrafficChargesAsymmetrically) {
  const CostModel& cost = machine_.cost();
  machine_.BeginPhase("p");
  machine_.network().AccountTuple(0, 1, 2048);  // exactly one packet
  GAMMA_ASSERT_OK(machine_.EndPhase());
  const RunMetrics m = machine_.Metrics();
  EXPECT_EQ(m.counters.packets_remote, 1);
  EXPECT_DOUBLE_EQ(m.phases[0].usage[0].cpu_seconds,
                   cost.net_remote_packet_send_cpu_seconds);
  EXPECT_DOUBLE_EQ(m.phases[0].usage[1].cpu_seconds,
                   cost.net_remote_packet_recv_cpu_seconds +
                       cost.cpu_receive_tuple_seconds);
  EXPECT_DOUBLE_EQ(m.phases[0].ring_seconds,
                   2048 * cost.net_wire_seconds_per_byte);
}

TEST_F(NetworkTest, PacketizationRoundsUpPerDestination) {
  machine_.BeginPhase("p");
  // 2049 bytes to node 1 -> 2 packets; 1 byte to node 2 -> 1 packet.
  machine_.network().AccountBytes(0, 1, 2049);
  machine_.network().AccountBytes(0, 2, 1);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(machine_.Metrics().counters.packets_remote, 3);
}

TEST_F(NetworkTest, TrafficMatrixClearsBetweenPhases) {
  machine_.BeginPhase("a");
  machine_.network().AccountTuple(0, 1, 100);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  machine_.BeginPhase("b");
  GAMMA_ASSERT_OK(machine_.EndPhase());
  const RunMetrics m = machine_.Metrics();
  EXPECT_DOUBLE_EQ(m.phases[1].ring_seconds, 0.0);
  EXPECT_EQ(m.counters.packets_remote, 1);  // not double counted
}

TEST_F(NetworkTest, RingTimeAccumulatesAcrossSenders) {
  machine_.BeginPhase("p");
  machine_.network().AccountBytes(0, 1, 10000);
  machine_.network().AccountBytes(1, 2, 10000);
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_DOUBLE_EQ(machine_.Metrics().phases[0].ring_seconds,
                   20000 * machine_.cost().net_wire_seconds_per_byte);
}

}  // namespace
}  // namespace gammadb::sim
