// Property tests over the reproduced experiments: the qualitative
// claims of the paper's evaluation section (the "expected shape
// criteria" of DESIGN.md) must hold at full benchmark scale.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/harness.h"

namespace gammadb::experiments {
namespace {

using bench::IntegralBucketRatios;
using bench::LocalConfig;
using bench::RemoteConfig;
using bench::Workload;
using join::Algorithm;

/// Workloads are expensive to load; share them across the suite.
class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench::WorkloadOptions hpja;
    hpja.hpja = true;
    local_hpja_ = new Workload(LocalConfig(), hpja);
    remote_hpja_ = new Workload(RemoteConfig(), hpja);
    bench::WorkloadOptions non;
    non.hpja = false;
    local_non_ = new Workload(LocalConfig(), non);
    remote_non_ = new Workload(RemoteConfig(), non);
  }
  static void TearDownTestSuite() {
    delete local_hpja_;
    delete remote_hpja_;
    delete local_non_;
    delete remote_non_;
    local_hpja_ = remote_hpja_ = local_non_ = remote_non_ = nullptr;
  }

  static double Seconds(Workload* w, Algorithm a, double ratio,
                        bool filters = false, bool remote = false) {
    auto output = w->Run(a, ratio, filters, remote);
    EXPECT_EQ(output.stats.result_tuples, 10000u);
    return output.response_seconds();
  }

  static Workload* local_hpja_;
  static Workload* remote_hpja_;
  static Workload* local_non_;
  static Workload* remote_non_;
};

Workload* ShapeTest::local_hpja_ = nullptr;
Workload* ShapeTest::remote_hpja_ = nullptr;
Workload* ShapeTest::local_non_ = nullptr;
Workload* ShapeTest::remote_non_ = nullptr;

// Criterion 1: Hybrid dominates every other algorithm at every ratio
// (Figures 5/6; paper Section 5 conclusion).
TEST_F(ShapeTest, HybridDominatesEverywhere) {
  for (Workload* w : {local_hpja_, local_non_}) {
    for (double ratio : IntegralBucketRatios()) {
      const double hybrid = Seconds(w, Algorithm::kHybridHash, ratio);
      EXPECT_LE(hybrid, Seconds(w, Algorithm::kGraceHash, ratio) * 1.001)
          << ratio;
      EXPECT_LE(hybrid, Seconds(w, Algorithm::kSimpleHash, ratio) * 1.001)
          << ratio;
      EXPECT_LE(hybrid, Seconds(w, Algorithm::kSortMerge, ratio) * 1.001)
          << ratio;
    }
  }
}

// Criterion 2: Simple == Hybrid at ratio 1.0; Simple degrades
// super-linearly and falls behind Grace below ~0.5.
TEST_F(ShapeTest, SimpleEqualsHybridAtFullMemoryThenCollapses) {
  const double hybrid_full = Seconds(local_hpja_, Algorithm::kHybridHash, 1.0);
  const double simple_full = Seconds(local_hpja_, Algorithm::kSimpleHash, 1.0);
  EXPECT_NEAR(simple_full, hybrid_full, 1e-9);

  EXPECT_GT(Seconds(local_hpja_, Algorithm::kSimpleHash, 1.0 / 3),
            Seconds(local_hpja_, Algorithm::kGraceHash, 1.0 / 3));
  // Rapid degradation: 10% memory costs Simple > 2.5x its full-memory
  // time while Hybrid stays under 2x.
  EXPECT_GT(Seconds(local_hpja_, Algorithm::kSimpleHash, 0.1),
            2.5 * simple_full);
  EXPECT_LT(Seconds(local_hpja_, Algorithm::kHybridHash, 0.1),
            2.0 * hybrid_full);
}

// Criterion 3: Grace is nearly flat over the whole memory range.
TEST_F(ShapeTest, GraceIsInsensitiveToMemory) {
  const double at_full = Seconds(local_hpja_, Algorithm::kGraceHash, 1.0);
  const double at_tenth = Seconds(local_hpja_, Algorithm::kGraceHash, 0.1);
  EXPECT_LT(at_tenth, 1.35 * at_full);
  EXPECT_GT(at_tenth, at_full);  // ...but extra buckets do cost a little
}

// Paper Section 4.1: "the response time for the Hybrid algorithm
// approaches that of the Grace algorithm as memory is reduced".
TEST_F(ShapeTest, HybridApproachesGraceAsMemoryShrinks) {
  const double gap_full = Seconds(local_hpja_, Algorithm::kGraceHash, 1.0) -
                          Seconds(local_hpja_, Algorithm::kHybridHash, 1.0);
  const double gap_tenth = Seconds(local_hpja_, Algorithm::kGraceHash, 0.1) -
                           Seconds(local_hpja_, Algorithm::kHybridHash, 0.1);
  EXPECT_GT(gap_full, 0);
  EXPECT_GT(gap_tenth, 0);
  EXPECT_LT(gap_tenth, 0.5 * gap_full);
}

// Criterion 4: sort-merge is dominated over the entire range and rises
// overall as memory shrinks (with the paper's own small local dips).
TEST_F(ShapeTest, SortMergeDominatedAndRising) {
  const double at_full = Seconds(local_hpja_, Algorithm::kSortMerge, 1.0);
  const double at_tenth = Seconds(local_hpja_, Algorithm::kSortMerge, 0.1);
  EXPECT_GT(at_full, Seconds(local_hpja_, Algorithm::kGraceHash, 1.0));
  EXPECT_GT(at_tenth, at_full);
}

// Criterion 5: non-HPJA joins sit above HPJA joins by a near-constant
// offset (Figures 5 vs 6).
TEST_F(ShapeTest, NonHpjaOffsetIsNearConstant) {
  for (Algorithm a : {Algorithm::kHybridHash, Algorithm::kGraceHash}) {
    const double offset_full =
        Seconds(local_non_, a, 1.0) - Seconds(local_hpja_, a, 1.0);
    const double offset_fifth =
        Seconds(local_non_, a, 0.2) - Seconds(local_hpja_, a, 0.2);
    EXPECT_GT(offset_full, 0);
    EXPECT_NEAR(offset_fifth, offset_full, 0.25 * offset_full)
        << AlgorithmName(a);
  }
}

// Criterion 6: bit filters always help (Figures 8-13) and Grace gains
// least (no I/O is saved).
TEST_F(ShapeTest, BitFiltersHelpAndGraceGainsLeast) {
  const double ratio = 0.25;
  double improvement[4];
  const Algorithm algorithms[] = {Algorithm::kHybridHash,
                                  Algorithm::kGraceHash,
                                  Algorithm::kSimpleHash,
                                  Algorithm::kSortMerge};
  for (int i = 0; i < 4; ++i) {
    const double plain = Seconds(local_hpja_, algorithms[i], ratio, false);
    const double filtered = Seconds(local_hpja_, algorithms[i], ratio, true);
    improvement[i] = (plain - filtered) / plain;
    EXPECT_GT(improvement[i], 0) << AlgorithmName(algorithms[i]);
  }
  EXPECT_LT(improvement[1], improvement[0]);  // grace < hybrid
  EXPECT_LT(improvement[1], improvement[2]);  // grace < simple
  EXPECT_LT(improvement[1], improvement[3]);  // grace < sort-merge
}

// Criterion 7a (Figure 15): HPJA joins run faster locally than remotely
// for Hybrid and Grace at every ratio; Simple crosses over.
TEST_F(ShapeTest, HpjaLocalBeatsRemote) {
  for (Algorithm a : {Algorithm::kHybridHash, Algorithm::kGraceHash}) {
    for (double ratio : {1.0, 0.5, 0.25, 0.1}) {
      EXPECT_LT(Seconds(remote_hpja_, a, ratio, false, false),
                Seconds(remote_hpja_, a, ratio, false, true))
          << AlgorithmName(a) << " @ " << ratio;
    }
  }
  // Simple: local wins at 1.0, remote wins deep in overflow territory.
  EXPECT_LT(Seconds(remote_hpja_, Algorithm::kSimpleHash, 1.0, false, false),
            Seconds(remote_hpja_, Algorithm::kSimpleHash, 1.0, false, true));
  EXPECT_GT(Seconds(remote_hpja_, Algorithm::kSimpleHash, 0.2, false, false),
            Seconds(remote_hpja_, Algorithm::kSimpleHash, 0.2, false, true));
}

// Criterion 7b (Figure 16): non-HPJA Hybrid is faster REMOTE at full
// memory and crosses back to local as memory shrinks; Simple never
// crosses back; Grace stays local-favoured by a near-constant margin.
TEST_F(ShapeTest, NonHpjaRemoteCrossovers) {
  EXPECT_GT(Seconds(remote_non_, Algorithm::kHybridHash, 1.0, false, false),
            Seconds(remote_non_, Algorithm::kHybridHash, 1.0, false, true));
  EXPECT_LT(Seconds(remote_non_, Algorithm::kHybridHash, 0.1, false, false),
            Seconds(remote_non_, Algorithm::kHybridHash, 0.1, false, true));
  for (double ratio : {1.0, 0.25, 0.1}) {
    EXPECT_GT(Seconds(remote_non_, Algorithm::kSimpleHash, ratio, false,
                      false),
              Seconds(remote_non_, Algorithm::kSimpleHash, ratio, false,
                      true))
        << ratio;
    EXPECT_LT(Seconds(remote_non_, Algorithm::kGraceHash, ratio, false,
                      false),
              Seconds(remote_non_, Algorithm::kGraceHash, ratio, false, true))
        << ratio;
  }
}

// Figure 14: Grace's HPJA advantage on the remote configuration is
// constant; Hybrid's widens as memory shrinks; Simple's is ~zero.
TEST_F(ShapeTest, RemoteHpjaAdvantageShapes) {
  const auto gap = [&](Algorithm a, double ratio) {
    return Seconds(remote_non_, a, ratio, false, true) -
           Seconds(remote_hpja_, a, ratio, false, true);
  };
  const double grace_full = gap(Algorithm::kGraceHash, 1.0);
  const double grace_tenth = gap(Algorithm::kGraceHash, 0.1);
  EXPECT_NEAR(grace_tenth, grace_full, 0.25 * grace_full);

  const double hybrid_full = gap(Algorithm::kHybridHash, 1.0);
  const double hybrid_tenth = gap(Algorithm::kHybridHash, 0.1);
  EXPECT_GT(hybrid_tenth, hybrid_full + 0.5 * grace_full);

  const double simple_half = gap(Algorithm::kSimpleHash, 0.5);
  EXPECT_LT(std::abs(simple_half), 0.15 * Seconds(remote_hpja_,
                                                  Algorithm::kSimpleHash, 0.5,
                                                  false, true));
}

// Figure 7 trade-off: the optimistic one-bucket overflow run beats the
// pessimistic two-bucket run near ratio 1.0 and loses near 0.5.
TEST_F(ShapeTest, HybridOverflowTradeoff) {
  const auto overflow_run = [&](double ratio) {
    auto output = local_hpja_->RunCustom(
        Algorithm::kHybridHash, ratio, false, false, [](join::JoinSpec& s) {
          s.num_buckets = 1;
          s.memory_slack = 0.08;
        });
    return output.response_seconds();
  };
  const auto two_bucket_run = [&](double ratio) {
    auto output = local_hpja_->RunCustom(
        Algorithm::kHybridHash, ratio, false, false,
        [](join::JoinSpec& s) { s.num_buckets = 2; });
    return output.response_seconds();
  };
  EXPECT_LT(overflow_run(0.95), two_bucket_run(0.95));
  EXPECT_GT(overflow_run(0.55), two_bucket_run(0.55));
}

}  // namespace
}  // namespace gammadb::experiments
