// Shape guards for the extension experiments (the paper's future-work
// section), mirroring shape_test.cc for the reproduced figures.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/harness.h"
#include "sim/throughput.h"

namespace gammadb::experiments {
namespace {

using bench::RemoteConfig;
using bench::Workload;
using join::Algorithm;

class ExtensionShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench::WorkloadOptions non;
    non.hpja = false;
    remote_non_ = new Workload(RemoteConfig(), non);
  }
  static void TearDownTestSuite() {
    delete remote_non_;
    remote_non_ = nullptr;
  }
  static Workload* remote_non_;
};

Workload* ExtensionShapeTest::remote_non_ = nullptr;

// Forming-phase bit filters "would significantly increase the
// performance of these algorithms" (paper Sections 4.2/4.4): for Grace
// they must beat joining-only filters AND eliminate page writes.
TEST_F(ExtensionShapeTest, FormingFiltersBeatJoiningOnlyForGrace) {
  auto joining_only =
      remote_non_->Run(Algorithm::kGraceHash, 0.5, true, false);
  auto forming = remote_non_->RunCustom(
      Algorithm::kGraceHash, 0.5, true, false,
      [](join::JoinSpec& spec) { spec.use_forming_bit_filters = true; });
  EXPECT_EQ(forming.stats.result_tuples, 10000u);
  EXPECT_LT(forming.response_seconds(),
            0.85 * joining_only.response_seconds());
  EXPECT_LT(forming.metrics.counters.pages_written,
            joining_only.metrics.counters.pages_written - 500);
}

// Section 5 utilization claim: local joins saturate the CPUs; remote
// execution leaves the disk nodes half idle.
TEST_F(ExtensionShapeTest, RemoteExecutionIdlesDiskNodes) {
  auto local = remote_non_->Run(Algorithm::kHybridHash, 1.0, false, false);
  auto remote = remote_non_->Run(Algorithm::kHybridHash, 1.0, false, true);
  const auto local_util = local.metrics.NodeCpuUtilization();
  const auto remote_util = remote.metrics.NodeCpuUtilization();
  double local_disk = 0, remote_disk = 0, remote_joiner = 0;
  for (int i = 0; i < 8; ++i) local_disk += local_util[static_cast<size_t>(i)] / 8;
  for (int i = 0; i < 8; ++i) remote_disk += remote_util[static_cast<size_t>(i)] / 8;
  for (size_t i = 8; i < 16; ++i) remote_joiner += remote_util[i] / 8;
  EXPECT_GT(local_disk, 0.90);    // "100% CPU utilization"
  EXPECT_LT(remote_disk, 0.65);   // "approximately 60%"
  EXPECT_GT(remote_joiner, 0.85);
}

// ...and the throughput consequence: the remote profile sustains more
// queries/hour despite (potentially) worse single-query response.
TEST_F(ExtensionShapeTest, RemoteSustainsMoreThroughput) {
  auto local = remote_non_->Run(Algorithm::kHybridHash, 0.5, false, false);
  auto remote = remote_non_->Run(Algorithm::kHybridHash, 0.5, false, true);
  const auto local_bound = sim::EstimateThroughput(local.metrics);
  const auto remote_bound = sim::EstimateThroughput(remote.metrics);
  EXPECT_GT(remote_bound.MaxThroughput(), 1.2 * local_bound.MaxThroughput());
}

// Speedup: doubling the disk nodes must cut the response by a healthy
// factor (>1.6x per doubling on this workload), and scaleup must stay
// within ~35% of flat from 2 to 16 nodes.
TEST_F(ExtensionShapeTest, SpeedupAndScaleup) {
  const auto response_with = [&](int disks, uint32_t outer) {
    sim::MachineConfig config;
    config.num_disk_nodes = disks;
    bench::WorkloadOptions options;
    options.hpja = true;
    options.outer_cardinality = outer;
    options.inner_cardinality = outer / 10;
    Workload workload(config, options);
    auto out = workload.Run(Algorithm::kHybridHash, 0.5, false, false);
    return out.response_seconds();
  };
  const double at2 = response_with(2, 100000);
  const double at4 = response_with(4, 100000);
  const double at8 = response_with(8, 100000);
  EXPECT_GT(at2 / at4, 1.6);
  EXPECT_GT(at4 / at8, 1.6);

  const double scale2 = response_with(2, 25000);
  const double scale8 = response_with(8, 100000);
  EXPECT_LT(scale8, 1.35 * scale2);
}

// Mixed placement tracks the local configuration under this simulator
// (documented deviation from the paper's "halfway" — see
// EXPERIMENTS.md); guard the documented behaviour.
TEST_F(ExtensionShapeTest, MixedPlacementTracksLocal) {
  auto local = remote_non_->Run(Algorithm::kSimpleHash, 0.5, false, false);
  auto mixed = remote_non_->RunCustom(
      Algorithm::kSimpleHash, 0.5, false, false, [](join::JoinSpec& spec) {
        spec.join_nodes = {0, 1, 2, 3, 8, 9, 10, 11};
      });
  EXPECT_NEAR(mixed.response_seconds(), local.response_seconds(),
              0.05 * local.response_seconds());
}

}  // namespace
}  // namespace gammadb::experiments
