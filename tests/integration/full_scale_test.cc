// Full-benchmark-scale integration tests: the exact joinABprime setup
// of the paper (100,000 x 10,000 tuples, 8 disk nodes), each algorithm
// verified for result cardinality and determinism.
#include <gtest/gtest.h>

#include "common/harness.h"
#include "gamma/catalog.h"
#include "join/driver.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

class FullScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench::WorkloadOptions options;
    options.hpja = true;
    workload_ = new bench::Workload(bench::LocalConfig(), options);
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static bench::Workload* workload_;
};

bench::Workload* FullScaleTest::workload_ = nullptr;

TEST_F(FullScaleTest, AllAlgorithmsProduceTenThousandResults) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    auto output = workload_->Run(algorithm, 0.5, false, false);
    EXPECT_EQ(output.stats.result_tuples, 10000u)
        << join::AlgorithmName(algorithm);
    EXPECT_GT(output.response_seconds(), 0);
  }
}

TEST_F(FullScaleTest, RunsAreDeterministic) {
  auto a = workload_->Run(join::Algorithm::kHybridHash, 0.25, true, false);
  auto b = workload_->Run(join::Algorithm::kHybridHash, 0.25, true, false);
  EXPECT_DOUBLE_EQ(a.response_seconds(), b.response_seconds());
  EXPECT_EQ(a.metrics.counters.pages_read, b.metrics.counters.pages_read);
  EXPECT_EQ(a.metrics.counters.packets_remote,
            b.metrics.counters.packets_remote);
  EXPECT_EQ(a.stats.filter_drops, b.stats.filter_drops);
}

TEST_F(FullScaleTest, PaperScaleSanity) {
  auto output = workload_->Run(join::Algorithm::kHybridHash, 1.0, false,
                               false);
  // One in-memory bucket: reads A + Bprime once (~2,824 data pages),
  // writes only the ~4.2 MB result.
  EXPECT_NEAR(static_cast<double>(output.metrics.counters.pages_read),
              2824.0, 64.0);
  EXPECT_NEAR(static_cast<double>(output.metrics.counters.pages_written),
              540.0, 40.0);
  // Response lands in the paper's magnitude band (tens of seconds).
  EXPECT_GT(output.response_seconds(), 20.0);
  EXPECT_LT(output.response_seconds(), 200.0);
}

TEST_F(FullScaleTest, BucketCountsMatchRatios) {
  for (int buckets = 1; buckets <= 8; ++buckets) {
    auto output = workload_->Run(join::Algorithm::kGraceHash,
                                 1.0 / buckets, false, false);
    EXPECT_EQ(output.stats.num_buckets, buckets);
    EXPECT_EQ(output.stats.overflow_events, 0) << buckets;
  }
}

TEST_F(FullScaleTest, GraceIoConservation) {
  // Grace's defining property: both relations are written back to disk
  // during bucket-forming and read again during bucket-joining. At full
  // benchmark scale: Bprime = 257 data pages, A = 2,565, result = 527
  // (416-byte result tuples, 19/page), plus per-fragment partial pages.
  auto output = workload_->Run(join::Algorithm::kGraceHash, 0.25, false,
                               false);
  ASSERT_EQ(output.stats.overflow_events, 0);
  const auto& c = output.metrics.counters;
  const int64_t data_pages = 257 + 2565;
  const int64_t result_pages = 527;
  // Written: both relations staged once + the stored result. 4 buckets
  // x 8 disks x 2 relations of partial-page slop.
  EXPECT_GE(c.pages_written, data_pages + result_pages);
  EXPECT_LE(c.pages_written, data_pages + result_pages + 2 * 64 + 8);
  // Read: the base relations once + every staged bucket page once.
  const int64_t staged = c.pages_written - result_pages;
  EXPECT_GE(c.pages_read, data_pages + staged);
  EXPECT_LE(c.pages_read, data_pages + staged + 80);
}

TEST_F(FullScaleTest, HybridStagesExactlyTheStoredFraction) {
  // At N buckets, Hybrid stages (N-1)/N of both relations; the written
  // page counts must track that fraction (plus the constant result).
  auto two = workload_->Run(join::Algorithm::kHybridHash, 0.5, false, false);
  auto four = workload_->Run(join::Algorithm::kHybridHash, 0.25, false,
                             false);
  const double staged_two =
      static_cast<double>(two.metrics.counters.pages_written - 527);
  const double staged_four =
      static_cast<double>(four.metrics.counters.pages_written - 527);
  const double total_data = 257 + 2565;
  EXPECT_NEAR(staged_two, 0.5 * total_data, 90);
  EXPECT_NEAR(staged_four, 0.75 * total_data, 90);
}

}  // namespace
}  // namespace gammadb
