// Skew-aware adaptive repartitioning (docs/skew.md), end to end: with a
// Zipf-distributed join attribute every algorithm must produce exactly
// the static-run tuple multiset with a plan active, the determinism
// contract must hold (byte-identical metrics JSON at 1, 4, and 8
// executor threads, clean and faulted), and a node crash in the middle
// of the rebalance exchange must recover through the operator-restart
// scheme without losing or duplicating migrated residents.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "sim/metrics_json.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

constexpr int kNumNodes = 4;
constexpr double kTheta = 1.0;

const join::Algorithm kAllAlgorithms[] = {
    join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
    join::Algorithm::kGraceHash, join::Algorithm::kHybridHash};

struct RunOutput {
  std::vector<std::string> rows;
  join::JoinStats stats;
  std::string metrics_json;
};

/// Runs the 2000 x 200 Zipf(1.0) join on the `normal` attribute. The
/// memory ratio leaves headroom so heavy-bin replication is
/// byte-feasible and the plan never defers to the overflow protocol.
void RunZipfJoin(join::Algorithm algorithm, bool adaptive, int threads,
                 const sim::FaultPlan* faults, RunOutput* out) {
  sim::MachineConfig config = testing::SmallConfig(kNumNodes);
  config.num_threads = threads;
  sim::Machine machine(config);
  db::Catalog catalog;

  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  options.seed = 71;
  options.with_zipf_attr = true;
  options.zipf_theta = kTheta;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  if (faults != nullptr) machine.ArmFaults(*faults);

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.inner_field = wisconsin::fields::kNormal;
  spec.outer_field = wisconsin::fields::kNormal;
  spec.algorithm = algorithm;
  spec.memory_ratio = 2.0;
  spec.adaptive_repartition = adaptive;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  out->stats = output->stats;
  out->metrics_json =
      sim::RunMetricsToJson(output->metrics, /*attribution=*/true).Dump();
  auto rel = catalog.Get("result");
  ASSERT_TRUE(rel.ok());
  out->rows = testing::Canonical((*rel)->PeekAllTuples());
}

/// One node crash on the first phase whose label mentions the
/// rebalance exchange.
sim::FaultPlan CrashMidRebalance(int node) {
  sim::FaultPlan plan;
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kNodeCrash;
  e.node = node;
  e.ordinal = 1;
  e.phase_label = "rebalance";
  plan.Add(e);
  return plan;
}

TEST(SkewAdaptiveTest, PlanFiresAndPreservesResults) {
  for (join::Algorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(join::AlgorithmName(algorithm));
    RunOutput fixed, adaptive;
    RunZipfJoin(algorithm, /*adaptive=*/false, /*threads=*/4, nullptr,
                &fixed);
    RunZipfJoin(algorithm, /*adaptive=*/true, /*threads=*/4, nullptr,
                &adaptive);
    if (HasFatalFailure()) return;
    ASSERT_FALSE(fixed.rows.empty());
    // Replication must neither drop nor duplicate result pairs.
    EXPECT_EQ(adaptive.rows, fixed.rows);
    // The Zipf(1.0) inner relation is skewed enough that a plan fires.
    EXPECT_GE(adaptive.stats.rebalance_plans, 1);
    EXPECT_GT(adaptive.stats.rebalance_moved_tuples, 0);
    // Static runs never pay rebalance costs.
    EXPECT_EQ(fixed.stats.rebalance_plans, 0);
    EXPECT_EQ(fixed.stats.rebalance_moved_tuples, 0);
  }
}

TEST(SkewAdaptiveTest, MetricsByteIdenticalAcrossThreadCounts) {
  for (join::Algorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(join::AlgorithmName(algorithm));
    const sim::FaultPlan faults = CrashMidRebalance(1);
    RunOutput clean_base, faulted_base;
    RunZipfJoin(algorithm, /*adaptive=*/true, /*threads=*/1, nullptr,
                &clean_base);
    RunZipfJoin(algorithm, /*adaptive=*/true, /*threads=*/1, &faults,
                &faulted_base);
    if (HasFatalFailure()) return;
    for (int threads : {4, 8}) {
      SCOPED_TRACE(threads);
      RunOutput clean, faulted;
      RunZipfJoin(algorithm, /*adaptive=*/true, threads, nullptr, &clean);
      RunZipfJoin(algorithm, /*adaptive=*/true, threads, &faults, &faulted);
      if (HasFatalFailure()) return;
      EXPECT_EQ(clean.metrics_json, clean_base.metrics_json);
      EXPECT_EQ(clean.rows, clean_base.rows);
      EXPECT_EQ(faulted.metrics_json, faulted_base.metrics_json);
      EXPECT_EQ(faulted.rows, faulted_base.rows);
    }
  }
}

TEST(SkewAdaptiveTest, CrashMidRebalanceRecovers) {
  for (join::Algorithm algorithm : kAllAlgorithms) {
    SCOPED_TRACE(join::AlgorithmName(algorithm));
    RunOutput clean, faulted;
    RunZipfJoin(algorithm, /*adaptive=*/true, /*threads=*/4, nullptr,
                &clean);
    for (int node : {0, 2}) {
      SCOPED_TRACE(node);
      const sim::FaultPlan faults = CrashMidRebalance(node);
      RunZipfJoin(algorithm, /*adaptive=*/true, /*threads=*/4, &faults,
                  &faulted);
      if (HasFatalFailure()) return;
      // The crash lands inside the rebalance exchange; recovery re-runs
      // the operator and the final tuple multiset is untouched.
      EXPECT_EQ(faulted.rows, clean.rows);
      EXPECT_GE(faulted.stats.rebalance_plans, 1);
      // The restart is visible in the fault counters via the JSON
      // (operator_restarts lives in sim::Counters, surfaced through the
      // serialized metrics the determinism test compares).
      EXPECT_NE(faulted.metrics_json.find("operator_restarts"),
                std::string::npos);
      EXPECT_NE(faulted.metrics_json.find("node_crashes"),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace gammadb
