// Executor-parallelism equivalence: running the simulated nodes on a
// real thread pool must not change the simulation.
//
// The per-(src, dst) exchange lanes (sim/exchange.h) make tuple arrival
// order a pure function of the query plan, so metrics and results are
// bit-identical between the serial and multi-threaded executors even
// when hash-table overflow makes eviction cutoffs depend on arrival
// order. tests/sim/determinism_test.cc covers the full algorithm x
// scenario x thread-count matrix at the metrics-JSON level; the digest
// checks here additionally pin the result MULTISET to the same contract
// (docs/testing.md).
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/oracle.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

struct RunArtifacts {
  join::JoinOutput output;
  std::vector<std::string> rows;
  /// Digest recomputed from the stored result relation — must agree
  /// with the digest the engines streamed out during execution.
  join::ResultDigest stored_digest;
};

RunArtifacts RunWith(int threads, join::Algorithm algorithm, double ratio) {
  sim::MachineConfig config = testing::SmallConfig(4);
  config.num_threads = threads;
  sim::Machine machine(config);
  db::Catalog catalog;
  auto loaded =
      wisconsin::LoadJoinABprime(machine, catalog, testing::ABprimeDataset());
  GAMMA_CHECK(loaded.ok());

  const join::JoinSpec spec = testing::ABprimeSpec(algorithm, ratio);
  auto output = join::ExecuteJoin(machine, catalog, spec);
  GAMMA_CHECK(output.ok()) << output.status().ToString();

  RunArtifacts artifacts;
  artifacts.output = std::move(output).value();
  auto rel = catalog.Get("result");
  GAMMA_CHECK(rel.ok());
  artifacts.rows = testing::Canonical((*rel)->PeekAllTuples());
  auto inner = catalog.Get(spec.inner_relation);
  GAMMA_CHECK(inner.ok());
  artifacts.stored_digest = testing::DigestStoredResult(
      **rel, (*inner)->schema(), spec.inner_field);
  return artifacts;
}

void ExpectSameDigest(const RunArtifacts& serial, const RunArtifacts& run,
                      join::Algorithm algorithm, int threads) {
  ASSERT_TRUE(serial.output.result_digest.has_value());
  ASSERT_TRUE(run.output.result_digest.has_value());
  EXPECT_EQ(*run.output.result_digest, *serial.output.result_digest)
      << join::AlgorithmName(algorithm) << " threads=" << threads;
  EXPECT_EQ(run.stored_digest, *run.output.result_digest)
      << join::AlgorithmName(algorithm) << " threads=" << threads
      << ": stored relation disagrees with the captured digest";
}

TEST(ParallelEquivalenceTest, NoOverflowRunsAreBitIdentical) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kGraceHash,
        join::Algorithm::kHybridHash}) {
    const RunArtifacts serial = RunWith(1, algorithm, 1.0);
    const RunArtifacts parallel = RunWith(4, algorithm, 1.0);
    EXPECT_DOUBLE_EQ(serial.output.response_seconds(),
                     parallel.output.response_seconds())
        << join::AlgorithmName(algorithm);
    EXPECT_EQ(serial.output.metrics.counters.pages_read,
              parallel.output.metrics.counters.pages_read);
    EXPECT_EQ(serial.output.metrics.counters.packets_remote,
              parallel.output.metrics.counters.packets_remote);
    EXPECT_EQ(serial.output.metrics.counters.bytes_local,
              parallel.output.metrics.counters.bytes_local);
    EXPECT_EQ(serial.output.stats.filter_drops, parallel.output.stats.filter_drops);
    EXPECT_EQ(serial.rows, parallel.rows);
    ExpectSameDigest(serial, parallel, algorithm, 4);
  }
}

TEST(ParallelEquivalenceTest, OverflowRunsAreBitIdentical) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSimpleHash, join::Algorithm::kHybridHash}) {
    const RunArtifacts serial = RunWith(1, algorithm, 0.2);
    const RunArtifacts parallel = RunWith(4, algorithm, 0.2);
    EXPECT_EQ(serial.output.stats.result_tuples, 300u);
    EXPECT_DOUBLE_EQ(serial.output.response_seconds(),
                     parallel.output.response_seconds())
        << join::AlgorithmName(algorithm);
    EXPECT_EQ(serial.output.metrics.counters.pages_read,
              parallel.output.metrics.counters.pages_read);
    EXPECT_EQ(serial.output.metrics.counters.pages_written,
              parallel.output.metrics.counters.pages_written);
    EXPECT_EQ(serial.output.stats.overflow_events,
              parallel.output.stats.overflow_events);
    EXPECT_EQ(serial.rows, parallel.rows) << join::AlgorithmName(algorithm);
    ExpectSameDigest(serial, parallel, algorithm, 4);
  }
}

TEST(ParallelEquivalenceTest, ResultDigestsIdenticalAcrossThreadCounts) {
  // All four algorithms, in the overflow region, at 1/4/8 executor
  // threads: the captured digest is a pure function of the plan.
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    const RunArtifacts serial = RunWith(1, algorithm, 0.3);
    for (int threads : {4, 8}) {
      const RunArtifacts pooled = RunWith(threads, algorithm, 0.3);
      ExpectSameDigest(serial, pooled, algorithm, threads);
      EXPECT_EQ(pooled.rows, serial.rows)
          << join::AlgorithmName(algorithm) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace gammadb
