// Executor-parallelism equivalence: running the simulated nodes on a
// real thread pool must not change the simulation.
//
// The per-(src, dst) exchange lanes (sim/exchange.h) make tuple arrival
// order a pure function of the query plan, so metrics and results are
// bit-identical between the serial and multi-threaded executors even
// when hash-table overflow makes eviction cutoffs depend on arrival
// order. tests/sim/determinism_test.cc covers the full algorithm x
// scenario x thread-count matrix at the metrics-JSON level.
#include <gtest/gtest.h>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

join::JoinOutput RunWith(int threads, join::Algorithm algorithm,
                         double ratio,
                         std::vector<std::string>* result_rows) {
  sim::MachineConfig config = testing::SmallConfig(4);
  config.num_threads = threads;
  sim::Machine machine(config);
  db::Catalog catalog;
  wisconsin::DatasetOptions options;
  options.outer_cardinality = 3000;
  options.inner_cardinality = 300;
  options.seed = 53;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  GAMMA_CHECK(loaded.ok());

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.memory_ratio = ratio;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  GAMMA_CHECK(output.ok()) << output.status().ToString();
  if (result_rows != nullptr) {
    auto rel = catalog.Get("result");
    GAMMA_CHECK(rel.ok());
    *result_rows = testing::Canonical((*rel)->PeekAllTuples());
  }
  return std::move(output).value();
}

TEST(ParallelEquivalenceTest, NoOverflowRunsAreBitIdentical) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kGraceHash,
        join::Algorithm::kHybridHash}) {
    std::vector<std::string> serial_rows, parallel_rows;
    auto serial = RunWith(1, algorithm, 1.0, &serial_rows);
    auto parallel = RunWith(4, algorithm, 1.0, &parallel_rows);
    EXPECT_DOUBLE_EQ(serial.response_seconds(), parallel.response_seconds())
        << join::AlgorithmName(algorithm);
    EXPECT_EQ(serial.metrics.counters.pages_read,
              parallel.metrics.counters.pages_read);
    EXPECT_EQ(serial.metrics.counters.packets_remote,
              parallel.metrics.counters.packets_remote);
    EXPECT_EQ(serial.metrics.counters.bytes_local,
              parallel.metrics.counters.bytes_local);
    EXPECT_EQ(serial.stats.filter_drops, parallel.stats.filter_drops);
    EXPECT_EQ(serial_rows, parallel_rows);
  }
}

TEST(ParallelEquivalenceTest, OverflowRunsAreBitIdentical) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSimpleHash, join::Algorithm::kHybridHash}) {
    std::vector<std::string> serial_rows, parallel_rows;
    auto serial = RunWith(1, algorithm, 0.2, &serial_rows);
    auto parallel = RunWith(4, algorithm, 0.2, &parallel_rows);
    EXPECT_EQ(serial.stats.result_tuples, 300u);
    EXPECT_DOUBLE_EQ(serial.response_seconds(), parallel.response_seconds())
        << join::AlgorithmName(algorithm);
    EXPECT_EQ(serial.metrics.counters.pages_read,
              parallel.metrics.counters.pages_read);
    EXPECT_EQ(serial.metrics.counters.pages_written,
              parallel.metrics.counters.pages_written);
    EXPECT_EQ(serial.stats.overflow_events, parallel.stats.overflow_events);
    EXPECT_EQ(serial_rows, parallel_rows) << join::AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace gammadb
