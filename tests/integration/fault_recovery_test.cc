// The fault matrix (ISSUE 3): every join algorithm must survive every
// fault class and still produce exactly the tuples of a fault-free run.
//
//   4 algorithms x {disk-transient, disk-hard, packet, node-crash} x 3 seeds
//
// Faults only ever change *metrics* (retries, retransmissions, wasted
// recovery time) — never data. Transient disk errors heal inside the
// disk's retry loop; a retry budget exhausted mid-operator or a node
// crash aborts the operator, which ExecuteJoin answers with Gamma's
// recovery scheme: discard the partial result and re-run. Because
// fault-event counters are monotonic from ArmFaults, the restart runs
// past the consumed faults and completes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gamma/catalog.h"
#include "join/driver.h"
#include "sim/disk.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb {
namespace {

using sim::FaultKind;
using sim::FaultPlan;

constexpr int kNumNodes = 4;

enum class FaultClass {
  kDiskTransient,  // scheduled attempts fail, the retry loop heals them
  kDiskHard,       // a burst exhausts the retry budget -> operator restart
  kPacket,         // remote packets lost and duplicated in flight
  kNodeCrash,      // a node dies at a phase entry -> operator restart
};

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kDiskTransient:
      return "disk-transient";
    case FaultClass::kDiskHard:
      return "disk-hard";
    case FaultClass::kPacket:
      return "packet";
    case FaultClass::kNodeCrash:
      return "node-crash";
  }
  return "?";
}

/// A deterministic plan for one (class, seed) matrix cell. Ordinals are
/// kept small so every cell actually fires against the 2000 x 200
/// workload regardless of algorithm.
FaultPlan PlanFor(FaultClass fault_class, uint64_t seed) {
  const int node = static_cast<int>(seed % kNumNodes);
  FaultPlan plan;
  sim::FaultEvent e;
  switch (fault_class) {
    case FaultClass::kDiskTransient:
      plan.AddPeriodic(FaultKind::kDiskReadTransient, node,
                       /*period=*/2 + seed, /*count=*/2);
      e.kind = FaultKind::kDiskWriteTransient;
      e.node = (node + 1) % kNumNodes;
      e.ordinal = 1;
      plan.Add(e);
      break;
    case FaultClass::kDiskHard:
      e.kind = FaultKind::kDiskReadTransient;
      e.node = node;
      e.ordinal = 1 + seed;
      e.repeat = sim::Disk::kMaxIoAttempts;  // -> Status::Unavailable
      plan.Add(e);
      break;
    case FaultClass::kPacket:
      e.kind = FaultKind::kPacketLoss;
      e.node = node;
      e.ordinal = seed;
      plan.Add(e);
      e.kind = FaultKind::kPacketDuplicate;
      e.node = (node + 2) % kNumNodes;
      e.ordinal = seed + 1;
      plan.Add(e);
      break;
    case FaultClass::kNodeCrash:
      e.kind = FaultKind::kNodeCrash;
      e.node = node;
      e.ordinal = 1 + (seed % 2);
      e.phase_label = "";  // any phase
      plan.Add(e);
      break;
  }
  return plan;
}

struct RunOutput {
  std::vector<std::string> rows;
  sim::RunMetrics metrics;
};

/// Runs joinABprime, arming `plan` after loading (fault ordinals count
/// query events, not load events). Asserts the join succeeds.
void RunJoin(join::Algorithm algorithm, const FaultPlan* plan,
             RunOutput* out) {
  sim::Machine machine(testing::SmallConfig(kNumNodes));
  db::Catalog catalog;

  wisconsin::DatasetOptions options;
  options.outer_cardinality = 2000;
  options.inner_cardinality = 200;
  options.seed = 71;
  // Non-HPJA partitioning: the join attribute differs from the
  // declustering attribute, so redistribution puts real packets on the
  // ring (an HPJA join could short-circuit them all, and the packet
  // fault class would never fire).
  options.partition_field = wisconsin::fields::kUnique2;
  auto loaded = wisconsin::LoadJoinABprime(machine, catalog, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  if (plan != nullptr) machine.ArmFaults(*plan);

  join::JoinSpec spec;
  spec.inner_relation = "Bprime";
  spec.outer_relation = "A";
  spec.algorithm = algorithm;
  spec.use_bit_filters = true;
  spec.result_name = "result";
  auto output = join::ExecuteJoin(machine, catalog, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  out->metrics = output->metrics;
  auto rel = catalog.Get("result");
  ASSERT_TRUE(rel.ok());
  out->rows = testing::Canonical((*rel)->PeekAllTuples());
}

TEST(FaultRecoveryTest, MatrixPreservesJoinResults) {
  for (join::Algorithm algorithm :
       {join::Algorithm::kSortMerge, join::Algorithm::kSimpleHash,
        join::Algorithm::kGraceHash, join::Algorithm::kHybridHash}) {
    SCOPED_TRACE(join::AlgorithmName(algorithm));
    RunOutput clean;
    RunJoin(algorithm, nullptr, &clean);
    if (HasFatalFailure()) return;
    ASSERT_FALSE(clean.rows.empty());
    EXPECT_FALSE(clean.metrics.counters.AnyFaults());
    EXPECT_EQ(clean.metrics.recovery_seconds, 0.0);

    for (FaultClass fault_class :
         {FaultClass::kDiskTransient, FaultClass::kDiskHard,
          FaultClass::kPacket, FaultClass::kNodeCrash}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE(std::string(FaultClassName(fault_class)) + " seed " +
                     std::to_string(seed));
        const FaultPlan plan = PlanFor(fault_class, seed);
        RunOutput faulted;
        RunJoin(algorithm, &plan, &faulted);
        if (HasFatalFailure()) return;

        // Recovery is invisible in the data: the tuple multiset is
        // identical to the fault-free run.
        EXPECT_EQ(faulted.rows, clean.rows);

        // ...but visible in the metrics.
        const sim::Counters& c = faulted.metrics.counters;
        EXPECT_TRUE(c.AnyFaults());
        switch (fault_class) {
          case FaultClass::kDiskTransient:
            EXPECT_GT(c.disk_read_faults + c.disk_write_faults, 0);
            EXPECT_GT(c.io_retries, 0);
            EXPECT_EQ(c.operator_restarts, 0);  // retries heal in place
            break;
          case FaultClass::kDiskHard:
            EXPECT_GE(c.disk_read_faults, sim::Disk::kMaxIoAttempts);
            EXPECT_GE(c.operator_restarts, 1);
            EXPECT_GT(faulted.metrics.recovery_seconds, 0.0);
            break;
          case FaultClass::kPacket:
            EXPECT_EQ(c.packets_lost, 1);
            EXPECT_EQ(c.packets_retransmitted, 1);
            EXPECT_EQ(c.packets_duplicated, 1);
            EXPECT_EQ(c.operator_restarts, 0);  // protocol-level recovery
            break;
          case FaultClass::kNodeCrash:
            EXPECT_GE(c.node_crashes, 1);
            EXPECT_GE(c.operator_restarts, 1);
            EXPECT_GT(faulted.metrics.recovery_seconds, 0.0);
            break;
        }
        // Recovery time, when booked, is wasted time inside the
        // response time — never larger than it.
        EXPECT_LE(faulted.metrics.recovery_seconds,
                  faulted.metrics.response_seconds);
        // Faults only add work: a faulted run is never faster.
        EXPECT_GE(faulted.metrics.response_seconds,
                  clean.metrics.response_seconds);
      }
    }
  }
}

}  // namespace
}  // namespace gammadb
