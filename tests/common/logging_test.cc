#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace gammadb {
namespace {

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(original);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  // Just exercise the suppressed path; no crash, no output assertion.
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  GAMMA_LOG(Debug) << "suppressed " << 42;
  GAMMA_LOG(Info) << "also suppressed";
  SetLogThreshold(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ GAMMA_CHECK(1 == 2) << "boom"; }, "Check failed");
  EXPECT_DEATH({ GAMMA_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(GAMMA_CHECK_OK(Status::Internal("bad state")), "bad state");
}

TEST(LoggingTest, CheckPassesSilently) {
  GAMMA_CHECK(true) << "never rendered";
  GAMMA_CHECK_EQ(5, 5);
  GAMMA_CHECK_LT(1, 2);
  GAMMA_CHECK_LE(2, 2);
  GAMMA_CHECK_GT(3, 2);
  GAMMA_CHECK_GE(3, 3);
  GAMMA_CHECK_NE(1, 2);
  GAMMA_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace gammadb
