#include "common/status.h"

#include <gtest/gtest.h>

namespace gammadb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad field");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad field");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad field");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, RecoveryCodesRenderCanonically) {
  // kUnavailable and kAborted are the recovery triggers (sim/fault.h):
  // join::ExecuteJoin restarts the operator on exactly these codes.
  EXPECT_EQ(Status::Unavailable("disk gave up").ToString(),
            "Unavailable: disk gave up");
  EXPECT_EQ(Status::Aborted("node 3 crashed").ToString(),
            "Aborted: node 3 crashed");
}

TEST(StatusTest, IgnoreErrorIsANoOp) {
  const Status s = Status::Aborted("phase aborted");
  s.IgnoreError();  // documents a deliberate discard; changes nothing
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.message(), "phase aborted");
  Status::OK().IgnoreError();
}

TEST(StatusTest, CopyIsCheapAndEqualityHolds) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared rep
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Status::OK());
  EXPECT_EQ(Status(), Status::OK());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  GAMMA_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainWithAssign(int x) {
  GAMMA_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnBindsAndPropagates) {
  auto ok = ChainWithAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  EXPECT_FALSE(ChainWithAssign(-5).ok());
}

}  // namespace
}  // namespace gammadb
