#include "common/strings.h"

#include <gtest/gtest.h>

namespace gammadb {
namespace {

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 7, 1.5), "x=7 y=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string long_arg(5000, 'a');
  const std::string out = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(StringsTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
  EXPECT_EQ(WithThousandsSeparators(100000), "100,000");
}

TEST(StringsTest, ParseInt64Accepts) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("100000", &v));
  EXPECT_EQ(v, 100000);
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("+7", &v));
  EXPECT_EQ(v, 7);
}

TEST(StringsTest, ParseInt64RejectsWhatAtoiSilentlyZeroes) {
  int64_t v = 123;
  // atoi("abc") == 0; the checked parser must refuse instead.
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));   // trailing junk
  EXPECT_FALSE(ParseInt64("1 2", &v));   // embedded space
  EXPECT_FALSE(ParseInt64(" 12", &v));   // leading space
  EXPECT_FALSE(ParseInt64("1.5", &v));   // not an integer
  EXPECT_FALSE(ParseInt64("99999999999999999999", &v));  // overflow
  EXPECT_EQ(v, 123);  // output untouched on failure
}

TEST(StringsTest, ParseDoubleAccepts) {
  double v = -1;
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(ParseDouble("0.125", &v));
  EXPECT_DOUBLE_EQ(v, 0.125);
  EXPECT_TRUE(ParseDouble("1e-2", &v));
  EXPECT_DOUBLE_EQ(v, 0.01);
  EXPECT_TRUE(ParseDouble("-3.5E2", &v));
  EXPECT_DOUBLE_EQ(v, -350.0);
  EXPECT_TRUE(ParseDouble("+.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(StringsTest, ParseDoubleRejectsWhatAtofSilentlyZeroes) {
  double v = 123.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1e-2x", &v));  // the motivating bug: atof -> 0.01,
                                           // atoi-style gate -> exact match
  EXPECT_FALSE(ParseDouble("0x10", &v));   // hex floats are config typos
  EXPECT_FALSE(ParseDouble("inf", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble(" 1.0", &v));
  EXPECT_FALSE(ParseDouble("1.0 ", &v));
  EXPECT_FALSE(ParseDouble("1e999", &v));  // out of range
  EXPECT_DOUBLE_EQ(v, 123.0);
}

}  // namespace
}  // namespace gammadb
