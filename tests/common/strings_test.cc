#include "common/strings.h"

#include <gtest/gtest.h>

namespace gammadb {
namespace {

TEST(StringsTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 7, 1.5), "x=7 y=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string long_arg(5000, 'a');
  const std::string out = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(StringsTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
  EXPECT_EQ(WithThousandsSeparators(100000), "100,000");
}

}  // namespace
}  // namespace gammadb
