#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

namespace gammadb {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).AsBool());
  EXPECT_EQ(JsonValue(42).AsInt(), 42);
  EXPECT_TRUE(JsonValue(42).is_number());
  EXPECT_DOUBLE_EQ(JsonValue(42).AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(JsonValue("s").AsString(), "s");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrderAndReplaces) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("z", 3);  // replace in place, order unchanged
  EXPECT_EQ(obj.Dump(), "{\"z\":3,\"a\":2}");
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->AsInt(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonValueTest, DumpCompactAndPretty) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("a", JsonValue::Array{1, 2});
  EXPECT_EQ(obj.Dump(), "{\"a\":[1,2]}");
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
}

TEST(JsonValueTest, DoublesNeverDumpAsIntegers) {
  EXPECT_EQ(JsonValue(1.0).Dump(), "1.0");
  EXPECT_EQ(JsonValue(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue(static_cast<int64_t>(1)).Dump(), "1");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("-17")->AsInt(), -17);
  EXPECT_TRUE(ParseJson("-17")->is_int());
  EXPECT_DOUBLE_EQ(ParseJson("2.5e3")->AsDouble(), 2500.0);
  EXPECT_TRUE(ParseJson("2.5e3")->is_double());
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, IntegerOverflowFallsBackToDouble) {
  auto v = ParseJson("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, {"b": null}], "c": "d"})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(a->AsArray()[1].Find("b")->is_null());
  EXPECT_EQ(v->Find("c")->AsString(), "d");
}

TEST(JsonParseTest, DecodesEscapes) {
  auto v = ParseJson(R"("a\"\\\/\b\f\n\r\tb")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"\\/\b\f\n\r\tb");
}

TEST(JsonParseTest, DecodesUnicodeEscapes) {
  EXPECT_EQ(ParseJson(R"("\u0041")")->AsString(), "A");
  EXPECT_EQ(ParseJson(R"("\u00e9")")->AsString(), "\xc3\xa9");      // é
  EXPECT_EQ(ParseJson(R"("\u20ac")")->AsString(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseJson(R"("\ud83d\ude00")")->AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"\\q\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());  // unpaired surrogate
  EXPECT_FALSE(ParseJson(std::string("\"\x01\"", 3)).ok());
}

TEST(JsonRoundTripTest, DumpThenParseIsIdentity) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", "bench \"x\" \n tab\t");
  doc.Set("count", static_cast<int64_t>(1) << 60);
  doc.Set("ratio", 1.0 / 3.0);
  doc.Set("flag", false);
  doc.Set("nothing", nullptr);
  JsonValue runs = JsonValue::MakeArray();
  for (int i = 0; i < 3; ++i) {
    JsonValue run = JsonValue::MakeObject();
    run.Set("response_seconds", 0.1 * i);
    run.Set("pages", i);
    runs.Append(std::move(run));
  }
  doc.Set("runs", std::move(runs));

  for (int indent : {-1, 0, 2, 4}) {
    auto reparsed = ParseJson(doc.Dump(indent));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(*reparsed == doc) << "indent=" << indent;
  }
}

TEST(JsonRoundTripTest, DoubleValuesRoundTripExactly) {
  for (double value : {0.1, 1e-300, 1e300, -2.2250738585072014e-308,
                       std::numeric_limits<double>::max(), 3.141592653589793}) {
    auto reparsed = ParseJson(JsonValue(value).Dump());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->AsDouble(), value);
  }
}

TEST(JsonFileTest, WriteThenReadRoundTrips) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("hello", "world");
  const std::string path = testing::TempDir() + "/json_test_roundtrip.json";
  ASSERT_TRUE(WriteJsonFile(path, doc).ok());
  auto read = ReadJsonFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(*read == doc);
  std::remove(path.c_str());
}

TEST(JsonFileTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadJsonFile("/nonexistent/dir/nope.json").ok());
}

}  // namespace
}  // namespace gammadb
