#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gammadb {
namespace {

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashJoinAttribute(42), HashJoinAttribute(42));
  EXPECT_NE(HashJoinAttribute(42), HashJoinAttribute(43));
  EXPECT_NE(HashJoinAttribute(42, 1), HashJoinAttribute(42, 2));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip ~half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    const uint64_t a = Mix64(0x1234567890ABCDEFULL);
    const uint64_t b = Mix64(0x1234567890ABCDEFULL ^ (1ULL << bit));
    const int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GE(flipped, 16) << "bit " << bit;
    EXPECT_LE(flipped, 48) << "bit " << bit;
  }
}

TEST(HashTest, ModDistributionIsBalanced) {
  // Sequential keys (Wisconsin unique1) must spread evenly under the
  // mod-based split-table indexing the whole system relies on.
  const int kNodes = 8;
  int counts[kNodes] = {0};
  const int n = 80000;
  for (int32_t key = 0; key < n; ++key) {
    ++counts[HashJoinAttribute(key) % kNodes];
  }
  for (int node = 0; node < kNodes; ++node) {
    EXPECT_NEAR(counts[node], n / kNodes, n / kNodes / 20) << node;
  }
}

TEST(HashTest, LargerModAlsoBalanced) {
  // Grace partitioning uses mod (numDisks * N); check a non-power-of-2.
  const int kEntries = 56;  // 7 buckets x 8 disks
  std::vector<int> counts(kEntries, 0);
  const int n = 112000;
  for (int32_t key = 0; key < n; ++key) {
    ++counts[HashJoinAttribute(key) % kEntries];
  }
  for (int e = 0; e < kEntries; ++e) {
    EXPECT_NEAR(counts[e], n / kEntries, n / kEntries / 5) << e;
  }
}

TEST(HashTest, NoCollisionsOnSmallDomain) {
  std::set<uint64_t> seen;
  for (int32_t key = 0; key < 100000; ++key) {
    seen.insert(HashJoinAttribute(key));
  }
  EXPECT_EQ(seen.size(), 100000u);  // 64-bit space: collisions ~0
}

TEST(HashTest, HashBytesDiffersByContentAndSeed) {
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hello", 2));
  EXPECT_NE(HashBytes(""), HashBytes("x"));
}

}  // namespace
}  // namespace gammadb
