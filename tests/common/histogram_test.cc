#include "common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"

namespace gammadb {
namespace {

TEST(HashHistogramTest, EmptyCutoffEvictsNothing) {
  HashHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.CutoffForFraction(0.10),
            std::numeric_limits<uint64_t>::max());
}

TEST(HashHistogramTest, AddRemoveTracksTotals) {
  HashHistogram h(16);
  h.Add(0);
  h.Add(UINT64_MAX);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(15), 1u);
  h.Remove(UINT64_MAX);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bin_count(15), 0u);
}

TEST(HashHistogramTest, BinBoundariesRoundTrip) {
  HashHistogram h(256);
  for (uint32_t bin = 0; bin < h.num_bins(); ++bin) {
    EXPECT_EQ(h.BinOf(h.BinLowerBound(bin)), bin);
  }
}

TEST(HashHistogramTest, CutoffClearsRequestedFraction) {
  HashHistogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Next());
  const uint64_t cutoff = h.CutoffForFraction(0.10);
  const uint64_t above = h.CountAtOrAbove(cutoff);
  // At least 10% must clear; bin granularity (256 bins over a uniform
  // population) keeps the overshoot below ~one bin (~0.4%) plus noise.
  EXPECT_GE(above, 10000u);
  EXPECT_LE(above, 11000u);
}

TEST(HashHistogramTest, CutoffDecreasesUnderRepeatedEviction) {
  // Mirrors the overflow protocol: evict 10%, re-request, cutoff must
  // strictly decrease while population remains.
  HashHistogram h;
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) h.Add(rng.Next());
  uint64_t cutoff = std::numeric_limits<uint64_t>::max();
  for (int round = 0; round < 5; ++round) {
    const uint64_t next = h.CutoffForFraction(0.10);
    ASSERT_LT(next, cutoff);
    cutoff = next;
    // Evict everything at or above the cutoff (rebuild with survivors).
    HashHistogram rebuilt;
    Rng replay(2);
    for (int i = 0; i < 50000; ++i) {
      const uint64_t v = replay.Next();
      if (v < cutoff) rebuilt.Add(v);
    }
    h = rebuilt;
    ASSERT_GT(h.total(), 0u);
  }
}

TEST(HashHistogramTest, SkewedPopulationStillFindsCutoff) {
  // All mass in one low bin: the cutoff must fall back to that bin.
  HashHistogram h(64);
  for (int i = 0; i < 1000; ++i) h.Add(42);  // bin 0
  const uint64_t cutoff = h.CutoffForFraction(0.10);
  EXPECT_EQ(cutoff, h.BinLowerBound(0));
  EXPECT_EQ(h.CountAtOrAbove(cutoff), 1000u);
}

TEST(HashHistogramTest, TinyTotalRoundsEvictionTargetUp) {
  // Regression: 10% of 15 tuples is 1.5 — truncation set the target to
  // 1 and the cutoff could leave the table fuller than requested. The
  // ceiling makes the target 2.
  HashHistogram h(16);
  // One tuple per bin in the top 15 bins.
  for (uint32_t bin = 1; bin < 16; ++bin) h.Add(h.BinLowerBound(bin));
  const uint64_t cutoff = h.CutoffForFraction(0.10);
  EXPECT_EQ(h.CountAtOrAbove(cutoff), 2u);
  EXPECT_EQ(cutoff, h.BinLowerBound(14));
}

TEST(HashHistogramTest, FractionNearZeroStillEvictsSomething) {
  // A nonzero fraction of a nonempty population must evict at least one
  // tuple: ceil keeps the target >= 1 (truncation gave 0, and the
  // "above > 0" guard then walked to the topmost populated bin anyway —
  // now the two agree by construction).
  HashHistogram h(16);
  for (uint32_t bin = 0; bin < 16; ++bin) h.Add(h.BinLowerBound(bin));
  const uint64_t cutoff = h.CutoffForFraction(1e-9);
  EXPECT_EQ(h.CountAtOrAbove(cutoff), 1u);
  EXPECT_EQ(cutoff, h.BinLowerBound(15));
}

TEST(HashHistogramTest, FractionOneEvictsEverything) {
  HashHistogram h(16);
  for (uint32_t bin = 4; bin < 12; ++bin) h.Add(h.BinLowerBound(bin));
  const uint64_t cutoff = h.CutoffForFraction(1.0);
  EXPECT_EQ(h.CountAtOrAbove(cutoff), h.total());
  // The lowest populated bin satisfies the target; no need to fall to 0.
  EXPECT_EQ(cutoff, h.BinLowerBound(4));
}

TEST(HashHistogramTest, SingleTupleAnyFractionEvictsIt) {
  HashHistogram h(16);
  h.Add(h.BinLowerBound(7));
  for (double fraction : {0.01, 0.5, 1.0}) {
    const uint64_t cutoff = h.CutoffForFraction(fraction);
    EXPECT_EQ(cutoff, h.BinLowerBound(7)) << "fraction " << fraction;
    EXPECT_EQ(h.CountAtOrAbove(cutoff), 1u);
  }
}

TEST(HashHistogramTest, CutoffIsAlwaysABinBoundary) {
  HashHistogram h;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.Add(rng.Next());
  for (double fraction : {1e-6, 0.1, 0.25, 0.9, 1.0}) {
    const uint64_t cutoff = h.CutoffForFraction(fraction);
    EXPECT_EQ(cutoff, h.BinLowerBound(h.BinOf(cutoff)))
        << "fraction " << fraction;
  }
}

TEST(HashHistogramTest, ClearResets) {
  HashHistogram h(32);
  h.Add(1);
  h.Add(2);
  h.Clear();
  EXPECT_EQ(h.total(), 0u);
  for (uint32_t b = 0; b < h.num_bins(); ++b) EXPECT_EQ(h.bin_count(b), 0u);
}

}  // namespace
}  // namespace gammadb
