#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gammadb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversClosedRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(11);
  int counts[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(10)];
  for (int bucket = 0; bucket < 10; ++bucket) {
    EXPECT_NEAR(counts[bucket], n / 10, 500) << "bucket " << bucket;
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(50000, 750);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 50000, 10);
  EXPECT_NEAR(std::sqrt(variance), 750, 10);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(1000);
  for (int i = 0; i < 1000; ++i) v[static_cast<size_t>(i)] = i;
  rng.Shuffle(v);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 1000u);
  EXPECT_NE(v[0] * 3 + v[1], 1);  // overwhelmingly likely shuffled
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint32_t idx : sample) EXPECT_LT(idx, 1000u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(21);
  const auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

}  // namespace
}  // namespace gammadb
