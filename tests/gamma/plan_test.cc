#include "gamma/plan.h"

#include <gtest/gtest.h>

#include "gamma/planner.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

namespace wf = wisconsin::fields;

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : machine_(gammadb::testing::SmallConfig(4)) {
    wisconsin::DatasetOptions options;
    options.outer_cardinality = 2000;
    options.inner_cardinality = 200;
    options.seed = 17;
    auto loaded = wisconsin::LoadJoinABprime(machine_, catalog_, options);
    GAMMA_CHECK(loaded.ok());
  }

  sim::Machine machine_;
  db::Catalog catalog_;
};

TEST_F(PlanTest, PlainJoinPlan) {
  Plan plan = Plan::Join(Plan::Scan("Bprime"), Plan::Scan("A"),
                         wf::kUnique1, wf::kUnique1, {});
  auto result = ExecutePlan(machine_, catalog_, plan, "answer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->result_tuples, 200u);
  ASSERT_EQ(result->steps.size(), 1u);
  // Uniform inner at full memory: the optimizer picks Hybrid.
  EXPECT_NE(result->steps[0].description.find("hybrid"), std::string::npos);
  EXPECT_GT(result->total_seconds, 0);
  EXPECT_TRUE(catalog_.Drop("answer").ok());
}

TEST_F(PlanTest, SelectionPushdownAvoidsMaterialization) {
  Plan plan = Plan::Join(
      Plan::Scan("Bprime",
                 {Predicate{wf::kUnique1, Predicate::Op::kLt, 500}}),
      Plan::Scan("A"), wf::kUnique1, wf::kUnique1, {});
  auto result = ExecutePlan(machine_, catalog_, plan, "answer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Exactly one step: the selection ran inside the join's scans.
  ASSERT_EQ(result->steps.size(), 1u);
  auto rel = catalog_.Get("answer");
  ASSERT_TRUE(rel.ok());
  for (const auto& t : (*rel)->PeekAllTuples()) {
    EXPECT_LT(t.GetInt32((*rel)->schema(), wf::kUnique1), 500);
  }
  EXPECT_TRUE(catalog_.Drop("answer").ok());
}

TEST_F(PlanTest, ProjectionForcesMaterializedSelect) {
  Plan plan = Plan::Join(
      Plan::Scan("Bprime", {}, {wf::kUnique1, wf::kUnique2}),
      Plan::Scan("A"), /*inner_field=*/0, wf::kUnique1, {});
  auto result = ExecutePlan(machine_, catalog_, plan, "answer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), 2u);  // select + join
  EXPECT_NE(result->steps[0].description.find("select"), std::string::npos);
  EXPECT_EQ(result->result_tuples, 200u);
  auto rel = catalog_.Get("answer");
  ASSERT_TRUE(rel.ok());
  // Projected inner schema (2 fields) + full outer schema (16 fields).
  EXPECT_EQ((*rel)->schema().num_fields(), 18u);
  EXPECT_TRUE(catalog_.Drop("answer").ok());
}

TEST_F(PlanTest, AggregateOverJoin) {
  Plan plan = Plan::Aggregate(
      Plan::Join(Plan::Scan("Bprime"), Plan::Scan("A"), wf::kUnique1,
                 wf::kUnique1, {}),
      /*group_by=*/wf::kTen, AggFunction::kCount, /*value=*/0);
  auto result = ExecutePlan(machine_, catalog_, plan, "per_ten");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->steps.size(), 2u);
  EXPECT_EQ(result->result_tuples, 10u);
  auto rel = catalog_.Get("per_ten");
  ASSERT_TRUE(rel.ok());
  int64_t total = 0;
  for (const auto& t : (*rel)->PeekAllTuples()) {
    total += t.GetInt32((*rel)->schema(), 1);
  }
  EXPECT_EQ(total, 200);  // counts sum to the join cardinality
  // No temporary relations leaked.
  EXPECT_EQ(catalog_.Names().size(), 3u);  // A, Bprime, per_ten
  EXPECT_TRUE(catalog_.Drop("per_ten").ok());
}

TEST_F(PlanTest, JoinOfJoins) {
  // (Bprime ⋈ A) ⋈ Bprime on unique1: each result row matches once.
  Plan inner_join = Plan::Join(Plan::Scan("Bprime"), Plan::Scan("A"),
                               wf::kUnique1, wf::kUnique1, {});
  Plan plan = Plan::Join(Plan::Scan("Bprime"), inner_join, wf::kUnique1,
                         /*outer_field=*/wf::kUnique1, {});
  auto result = ExecutePlan(machine_, catalog_, plan, "twice");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->steps.size(), 2u);
  EXPECT_EQ(result->result_tuples, 200u);
  EXPECT_EQ(catalog_.Names().size(), 3u);  // temporaries dropped
  EXPECT_TRUE(catalog_.Drop("twice").ok());
}

TEST_F(PlanTest, FailureCleansUpTemporaries) {
  Plan plan = Plan::Join(Plan::Scan("missing"), Plan::Scan("A"),
                         wf::kUnique1, wf::kUnique1, {});
  EXPECT_FALSE(ExecutePlan(machine_, catalog_, plan, "answer").ok());
  EXPECT_EQ(catalog_.Names().size(), 2u);
  EXPECT_FALSE(catalog_.Get("answer").ok());
}

TEST_F(PlanTest, EmptyResultNameRejected) {
  Plan plan = Plan::Scan("A");
  EXPECT_EQ(ExecutePlan(machine_, catalog_, plan, "").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Planner rule tests --------------------------------------------------

TEST_F(PlanTest, AnalyzeColumnComputesExactStats) {
  auto rel = catalog_.Get("A");
  ASSERT_TRUE(rel.ok());
  auto unique = AnalyzeColumn(**rel, wf::kUnique1);
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(unique->cardinality, 2000u);
  EXPECT_EQ(unique->distinct, 2000u);
  EXPECT_EQ(unique->max_duplicates, 1u);
  EXPECT_EQ(unique->min_value, 0);
  EXPECT_EQ(unique->max_value, 1999);
  EXPECT_FALSE(unique->HighlySkewed());

  auto ten = AnalyzeColumn(**rel, wf::kTen);
  ASSERT_TRUE(ten.ok());
  EXPECT_EQ(ten->distinct, 10u);
  EXPECT_EQ(ten->max_duplicates, 200u);
  // Uniform duplicates: heavy but not skewed (max == average).
  EXPECT_FALSE(ten->HighlySkewed());

  EXPECT_FALSE(AnalyzeColumn(**rel, 99).ok());
  EXPECT_FALSE(AnalyzeColumn(**rel, wf::kStringU1).ok());
}

TEST_F(PlanTest, ChooserFollowsSectionFiveRule) {
  ColumnStats uniform;
  uniform.cardinality = 10000;
  uniform.distinct = 10000;
  uniform.max_duplicates = 1;
  ColumnStats skewed;
  skewed.cardinality = 10000;
  skewed.distinct = 3000;       // avg 3.3 duplicates...
  skewed.max_duplicates = 77;   // ...max 77: the paper's NU column
  EXPECT_TRUE(skewed.HighlySkewed());

  // Uniform inner: Hybrid at any memory.
  EXPECT_EQ(ChooseJoinAlgorithm(uniform, 1.0),
            join::Algorithm::kHybridHash);
  EXPECT_EQ(ChooseJoinAlgorithm(uniform, 0.1),
            join::Algorithm::kHybridHash);
  // Skewed inner with plenty of memory: still Hybrid ("we find it very
  // encouraging that Hybrid still performs best...").
  EXPECT_EQ(ChooseJoinAlgorithm(skewed, 1.0), join::Algorithm::kHybridHash);
  // Skewed inner and limited memory on the paper's ORIGINAL executor
  // (no adaptive repartitioning, overflow failures fatal): sort-merge
  // (Section 5).
  EXPECT_EQ(ChooseJoinAlgorithm(skewed, 0.17,
                                /*adaptive_repartition_available=*/false,
                                /*robust_overflow_available=*/false),
            join::Algorithm::kSortMerge);
  // This executor's overflow resolution is total (bounded recursion +
  // nested-loop degrade, docs/overflow.md), so by default the
  // conservative fallback is retired even without rebalancing.
  EXPECT_EQ(ChooseJoinAlgorithm(skewed, 0.17), join::Algorithm::kHybridHash);

  // Run-time rebalancing alone (docs/skew.md) retires it too: adaptive
  // Hybrid absorbs the skew inside each bucket's sub-join.
  EXPECT_EQ(ChooseJoinAlgorithm(skewed, 0.17,
                                /*adaptive_repartition_available=*/true,
                                /*robust_overflow_available=*/false),
            join::Algorithm::kHybridHash);
  EXPECT_EQ(ChooseJoinAlgorithm(uniform, 0.17,
                                /*adaptive_repartition_available=*/true),
            join::Algorithm::kHybridHash);
}

TEST_F(PlanTest, PlannerKeepsHybridForSkewedLowMemoryJoin) {
  // Build a skewed inner relation and let the plan choose. The
  // sort-merge skew fallback is retired (docs/overflow.md): the
  // overflow path is total, so the planner stays with Hybrid and the
  // join must still complete correctly.
  wisconsin::GenOptions gen;
  gen.cardinality = 2000;
  gen.seed = 18;
  gen.with_normal_attr = true;
  gen.normal_mean = 1000;
  gen.normal_stddev = 30;
  gen.normal_max = 1999;
  auto rel = catalog_.Create(machine_, "Skewed", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  LoadOptions load;
  load.strategy = PartitionStrategy::kRangeUniform;
  load.partition_field = wf::kNormal;
  ASSERT_TRUE(LoadRelation(*rel, wisconsin::Generate(gen), load).ok());

  Plan::JoinOptions options;
  options.memory_ratio = 0.15;
  Plan plan = Plan::Join(Plan::Scan("Skewed"), Plan::Scan("A"), wf::kNormal,
                         wf::kUnique1, options);
  auto result = ExecutePlan(machine_, catalog_, plan, "skew_answer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->steps[0].description.find("hybrid-hash"),
            std::string::npos)
      << result->steps[0].description;
  EXPECT_TRUE(catalog_.Drop("skew_answer").ok());
}

}  // namespace
}  // namespace gammadb::db
