#include "gamma/predicate.h"

#include <gtest/gtest.h>

namespace gammadb::db {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : schema_({storage::Field::Int32("x"),
                             storage::Field::Int32("y")}) {}

  storage::Tuple MakeTuple(int32_t x, int32_t y) {
    storage::Tuple t(schema_.tuple_bytes());
    t.SetInt32(schema_, 0, x);
    t.SetInt32(schema_, 1, y);
    return t;
  }

  storage::Schema schema_;
};

TEST_F(PredicateTest, AllOperators) {
  const auto t = MakeTuple(10, 20);
  using Op = Predicate::Op;
  EXPECT_TRUE((Predicate{0, Op::kLt, 11}).Eval(schema_, t));
  EXPECT_FALSE((Predicate{0, Op::kLt, 10}).Eval(schema_, t));
  EXPECT_TRUE((Predicate{0, Op::kLe, 10}).Eval(schema_, t));
  EXPECT_TRUE((Predicate{0, Op::kEq, 10}).Eval(schema_, t));
  EXPECT_FALSE((Predicate{0, Op::kEq, 11}).Eval(schema_, t));
  EXPECT_TRUE((Predicate{0, Op::kNe, 11}).Eval(schema_, t));
  EXPECT_TRUE((Predicate{0, Op::kGe, 10}).Eval(schema_, t));
  EXPECT_FALSE((Predicate{0, Op::kGt, 10}).Eval(schema_, t));
  EXPECT_TRUE((Predicate{1, Op::kGt, 10}).Eval(schema_, t));
}

TEST_F(PredicateTest, ConjunctionSemantics) {
  using Op = Predicate::Op;
  const PredicateList both = {{0, Op::kGe, 5}, {1, Op::kLt, 25}};
  EXPECT_TRUE(EvalAll(both, schema_, MakeTuple(10, 20)));
  EXPECT_FALSE(EvalAll(both, schema_, MakeTuple(4, 20)));
  EXPECT_FALSE(EvalAll(both, schema_, MakeTuple(10, 30)));
}

TEST_F(PredicateTest, EmptyListAcceptsEverything) {
  EXPECT_TRUE(EvalAll({}, schema_, MakeTuple(-1, -1)));
}

}  // namespace
}  // namespace gammadb::db
