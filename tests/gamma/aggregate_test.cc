#include "gamma/aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : machine_(gammadb::testing::SmallConfig(4, 2)) {
    auto rel = catalog_.Create(machine_, "A", wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok());
    wisconsin::GenOptions gen;
    gen.cardinality = 3000;
    gen.seed = 4;
    tuples_ = wisconsin::Generate(gen);
    LoadOptions load;
    load.strategy = PartitionStrategy::kHashed;
    load.partition_field = wisconsin::fields::kUnique1;
    GAMMA_CHECK_OK(LoadRelation(*rel, tuples_, load));
  }

  /// Reference grouped aggregate over the raw tuples.
  std::map<int32_t, int64_t> Reference(AggFunction f, int group_field,
                                       int value_field) {
    const auto schema = wisconsin::WisconsinSchema();
    std::map<int32_t, int64_t> out;
    for (const auto& t : tuples_) {
      const int32_t g = t.GetInt32(schema, static_cast<size_t>(group_field));
      const int64_t v = t.GetInt32(schema, static_cast<size_t>(value_field));
      auto [it, inserted] = out.try_emplace(
          g, f == AggFunction::kMin   ? INT64_MAX
             : f == AggFunction::kMax ? INT64_MIN
                                      : 0);
      switch (f) {
        case AggFunction::kCount:
          ++it->second;
          break;
        case AggFunction::kSum:
          it->second += v;
          break;
        case AggFunction::kMin:
          it->second = std::min(it->second, v);
          break;
        case AggFunction::kMax:
          it->second = std::max(it->second, v);
          break;
      }
    }
    return out;
  }

  std::map<int32_t, int32_t> RunGrouped(const AggregateSpec& spec) {
    auto output = ExecuteAggregate(machine_, catalog_, spec);
    GAMMA_CHECK(output.ok()) << output.status().ToString();
    auto rel = catalog_.Get(spec.output_relation);
    GAMMA_CHECK(rel.ok());
    std::map<int32_t, int32_t> rows;
    for (const auto& t : (*rel)->PeekAllTuples()) {
      rows[t.GetInt32((*rel)->schema(), 0)] =
          t.GetInt32((*rel)->schema(), 1);
    }
    GAMMA_CHECK_OK(catalog_.Drop(spec.output_relation));
    return rows;
  }

  sim::Machine machine_;
  Catalog catalog_;
  std::vector<storage::Tuple> tuples_;
};

TEST_F(AggregateTest, GroupedCount) {
  AggregateSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "counts";
  spec.group_by_field = wisconsin::fields::kTen;
  spec.function = AggFunction::kCount;
  const auto rows = RunGrouped(spec);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& [group, count] : rows) EXPECT_EQ(count, 300) << group;
}

TEST_F(AggregateTest, GroupedSumMinMaxMatchReference) {
  for (AggFunction f :
       {AggFunction::kSum, AggFunction::kMin, AggFunction::kMax}) {
    AggregateSpec spec;
    spec.input_relation = "A";
    spec.output_relation = "agg";
    spec.group_by_field = wisconsin::fields::kTwenty;
    spec.value_field = wisconsin::fields::kUnique2;
    spec.function = f;
    const auto rows = RunGrouped(spec);
    const auto expected =
        Reference(f, wisconsin::fields::kTwenty, wisconsin::fields::kUnique2);
    ASSERT_EQ(rows.size(), expected.size()) << AggFunctionName(f);
    for (const auto& [group, value] : expected) {
      EXPECT_EQ(rows.at(group), value) << AggFunctionName(f) << " " << group;
    }
  }
}

TEST_F(AggregateTest, ScalarAggregate) {
  AggregateSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "total";
  spec.group_by_field = -1;
  spec.value_field = wisconsin::fields::kUnique1;
  spec.function = AggFunction::kMax;
  auto output = ExecuteAggregate(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->groups, 1u);
  auto rel = catalog_.Get("total");
  ASSERT_TRUE(rel.ok());
  const auto rows = (*rel)->PeekAllTuples();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ((*rel)->schema().num_fields(), 1u);
  EXPECT_EQ(rows[0].GetInt32((*rel)->schema(), 0), 2999);
}

TEST_F(AggregateTest, PredicateFiltersInput) {
  AggregateSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "filtered";
  spec.group_by_field = -1;
  spec.function = AggFunction::kCount;
  spec.predicate = {Predicate{wisconsin::fields::kUnique1,
                              Predicate::Op::kLt, 100}};
  auto output = ExecuteAggregate(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  auto rel = catalog_.Get("filtered");
  const auto rows = (*rel)->PeekAllTuples();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetInt32((*rel)->schema(), 0), 100);
}

TEST_F(AggregateTest, RunsOnDisklessProcessors) {
  AggregateSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "remote_agg";
  spec.group_by_field = wisconsin::fields::kTen;
  spec.function = AggFunction::kCount;
  spec.agg_nodes = machine_.DisklessNodeIds();
  auto output = ExecuteAggregate(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->groups, 10u);
  // The merge ran remotely: partials crossed the ring.
  EXPECT_GT(output->metrics.counters.tuples_sent_remote, 0);
}

TEST_F(AggregateTest, SumOverflowDetected) {
  // Build a small relation whose 32-bit sum overflows.
  auto rel = catalog_.Create(machine_, "big", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  const auto schema = wisconsin::WisconsinSchema();
  std::vector<storage::Tuple> rows;
  for (int i = 0; i < 10; ++i) {
    storage::Tuple t(schema.tuple_bytes());
    t.SetInt32(schema, wisconsin::fields::kUnique1, i);
    t.SetInt32(schema, wisconsin::fields::kUnique2, INT32_MAX);
    rows.push_back(std::move(t));
  }
  LoadOptions load;
  load.strategy = PartitionStrategy::kRoundRobin;
  ASSERT_TRUE(LoadRelation(*rel, rows, load).ok());

  AggregateSpec spec;
  spec.input_relation = "big";
  spec.output_relation = "overflowed";
  spec.group_by_field = -1;
  spec.value_field = wisconsin::fields::kUnique2;
  spec.function = AggFunction::kSum;
  EXPECT_EQ(ExecuteAggregate(machine_, catalog_, spec).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(catalog_.Get("overflowed").ok());  // cleaned up
}

TEST_F(AggregateTest, RejectsBadFields) {
  AggregateSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "bad";
  spec.group_by_field = 99;
  EXPECT_EQ(ExecuteAggregate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.group_by_field = wisconsin::fields::kStringU1;
  EXPECT_EQ(ExecuteAggregate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.group_by_field = -1;
  spec.function = AggFunction::kSum;
  spec.value_field = 99;
  EXPECT_EQ(ExecuteAggregate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gammadb::db
