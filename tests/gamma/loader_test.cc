#include "gamma/loader.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "sim/machine.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : machine_(sim::MachineConfig{4, 0, sim::CostModel{}, 1}) {}

  StoredRelation* CreateAndLoad(const LoadOptions& options, uint32_t n = 4000) {
    auto rel = catalog_.Create(machine_, "r" + std::to_string(counter_++),
                               wisconsin::WisconsinSchema());
    EXPECT_TRUE(rel.ok());
    wisconsin::GenOptions gen;
    gen.cardinality = n;
    gen.seed = 3;
    auto status = LoadRelation(*rel, wisconsin::Generate(gen), options);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return *rel;
  }

  sim::Machine machine_;
  Catalog catalog_;
  int counter_ = 0;
};

TEST_F(LoaderTest, RoundRobinBalancesExactly) {
  LoadOptions options;
  options.strategy = PartitionStrategy::kRoundRobin;
  StoredRelation* rel = CreateAndLoad(options);
  for (size_t i = 0; i < rel->num_fragments(); ++i) {
    EXPECT_EQ(rel->fragment(i).tuple_count(), 1000u);
  }
  EXPECT_EQ(rel->strategy, PartitionStrategy::kRoundRobin);
}

TEST_F(LoaderTest, HashedPlacementMatchesModRule) {
  LoadOptions options;
  options.strategy = PartitionStrategy::kHashed;
  options.partition_field = wisconsin::fields::kUnique1;
  StoredRelation* rel = CreateAndLoad(options);
  // Every tuple must live on site hash(unique1) mod 4 — the invariant
  // HPJA short-circuiting depends on.
  const auto& schema = rel->schema();
  for (size_t frag = 0; frag < rel->num_fragments(); ++frag) {
    for (const auto& t : rel->fragment(frag).PeekAll()) {
      const int32_t key =
          t.GetInt32(schema, wisconsin::fields::kUnique1);
      EXPECT_EQ(HashJoinAttribute(key, options.hash_seed) % 4, frag);
    }
  }
  EXPECT_EQ(rel->total_tuples(), 4000u);
}

TEST_F(LoaderTest, RangeUserRespectsBoundaries) {
  LoadOptions options;
  options.strategy = PartitionStrategy::kRangeUser;
  options.partition_field = wisconsin::fields::kUnique1;
  options.range_boundaries = {999, 1999, 2999};
  StoredRelation* rel = CreateAndLoad(options);
  const auto& schema = rel->schema();
  const int32_t los[] = {0, 1000, 2000, 3000};
  const int32_t his[] = {999, 1999, 2999, 3999};
  for (size_t frag = 0; frag < 4; ++frag) {
    EXPECT_EQ(rel->fragment(frag).tuple_count(), 1000u);
    for (const auto& t : rel->fragment(frag).PeekAll()) {
      const int32_t key = t.GetInt32(schema, wisconsin::fields::kUnique1);
      EXPECT_GE(key, los[frag]);
      EXPECT_LE(key, his[frag]);
    }
  }
}

TEST_F(LoaderTest, RangeUniformEqualizesSkewedData) {
  // Normal-distributed partitioning attribute: range-uniform must still
  // give every site an equal share (the paper's skew-experiment setup).
  auto rel = catalog_.Create(machine_, "skewed", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  wisconsin::GenOptions gen;
  gen.cardinality = 4000;
  gen.with_normal_attr = true;
  gen.normal_mean = 2000;
  gen.normal_stddev = 100;
  gen.normal_max = 3999;
  LoadOptions options;
  options.strategy = PartitionStrategy::kRangeUniform;
  options.partition_field = wisconsin::fields::kNormal;
  ASSERT_TRUE(LoadRelation(*rel, wisconsin::Generate(gen), options).ok());
  for (size_t frag = 0; frag < 4; ++frag) {
    EXPECT_NEAR((*rel)->fragment(frag).tuple_count(), 1000u, 60u);
  }
}

TEST_F(LoaderTest, UniformRangeBoundariesQuantiles) {
  std::vector<int32_t> values;
  for (int32_t v = 0; v < 100; ++v) values.push_back(v);
  const auto boundaries = UniformRangeBoundaries(values, 4);
  EXPECT_EQ(boundaries, (std::vector<int32_t>{24, 49, 74}));
  EXPECT_TRUE(UniformRangeBoundaries(values, 1).empty());
}

TEST_F(LoaderTest, RejectsNonEmptyRelation) {
  LoadOptions options;
  StoredRelation* rel = CreateAndLoad(options, 100);
  wisconsin::GenOptions gen;
  gen.cardinality = 10;
  auto status = LoadRelation(rel, wisconsin::Generate(gen), options);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(LoaderTest, RejectsBadPartitionField) {
  auto rel = catalog_.Create(machine_, "bad", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  wisconsin::GenOptions gen;
  gen.cardinality = 10;
  const auto tuples = wisconsin::Generate(gen);
  LoadOptions options;
  options.partition_field = 99;
  EXPECT_EQ(LoadRelation(*rel, tuples, options).code(),
            StatusCode::kInvalidArgument);
  options.partition_field = wisconsin::fields::kStringU1;  // not int32
  EXPECT_EQ(LoadRelation(*rel, tuples, options).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, RejectsBadRangeBoundaries) {
  auto rel = catalog_.Create(machine_, "bad2", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  wisconsin::GenOptions gen;
  gen.cardinality = 10;
  const auto tuples = wisconsin::Generate(gen);
  LoadOptions options;
  options.strategy = PartitionStrategy::kRangeUser;
  options.range_boundaries = {5, 3, 8};  // not ascending (and 3 needed)
  EXPECT_EQ(LoadRelation(*rel, tuples, options).code(),
            StatusCode::kInvalidArgument);
  options.range_boundaries = {5};  // wrong count
  EXPECT_EQ(LoadRelation(*rel, tuples, options).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gammadb::db
