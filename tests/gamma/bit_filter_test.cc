#include "gamma/bit_filter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gammadb::db {
namespace {

TEST(BitFilterTest, PaperBitBudget) {
  // 8 sites sharing one 2 KB packet: 1,973 bits per site (Section 4.2).
  BitFilterSet filter(8);
  EXPECT_EQ(filter.bits_per_site(), 1973u);
  EXPECT_EQ(filter.num_sites(), 8);
  EXPECT_EQ(filter.packet_bytes(), 2048u);
  // Fewer sites -> larger slices.
  EXPECT_EQ(BitFilterSet(1).bits_per_site(), 15784u);
}

TEST(BitFilterTest, NoFalseNegatives) {
  BitFilterSet filter(4);
  Rng rng(1);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 500; ++i) inserted.push_back(rng.Next());
  for (uint64_t h : inserted) filter.Set(static_cast<int>(h % 4), h);
  for (uint64_t h : inserted) {
    EXPECT_TRUE(filter.MayContain(static_cast<int>(h % 4), h));
  }
}

TEST(BitFilterTest, FalsePositiveRateMatchesFill) {
  BitFilterSet filter(8);
  Rng rng(2);
  for (int i = 0; i < 1250; ++i) filter.Set(0, rng.Next());
  const double fill = filter.FillFraction(0);
  // 1250 hashes into 1973 bits: expected fill 1 - exp(-1250/1973) = 0.47.
  EXPECT_NEAR(fill, 0.47, 0.04);
  // Unrelated probes pass with probability == fill.
  int passes = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain(0, rng.Next())) ++passes;
  }
  EXPECT_NEAR(static_cast<double>(passes) / probes, fill, 0.02);
}

TEST(BitFilterTest, SitesAreIndependent) {
  BitFilterSet filter(2);
  filter.Set(0, 12345);
  EXPECT_TRUE(filter.MayContain(0, 12345));
  EXPECT_FALSE(filter.MayContain(1, 12345));
}

TEST(BitFilterTest, DuplicateValuesShareOneBit) {
  // The Section 4.4 effect: skewed data sets fewer bits.
  BitFilterSet filter(1);
  for (int i = 0; i < 1000; ++i) filter.Set(0, /*hash=*/42);
  EXPECT_NEAR(filter.FillFraction(0), 1.0 / filter.bits_per_site(), 1e-9);
}

TEST(BitFilterTest, ClearAllResets) {
  BitFilterSet filter(2);
  filter.Set(0, 1);
  filter.Set(1, 2);
  filter.ClearAll();
  EXPECT_FALSE(filter.MayContain(0, 1));
  EXPECT_FALSE(filter.MayContain(1, 2));
  EXPECT_DOUBLE_EQ(filter.FillFraction(0), 0.0);
}

}  // namespace
}  // namespace gammadb::db
