#include "gamma/rebalance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "gamma/bucket_analyzer.h"
#include "gamma/split_table.h"
#include "testing/skew_util.h"

namespace gammadb::db {
namespace {

constexpr uint64_t kTupleBytes = 8;
constexpr uint64_t kNoCap = UINT64_MAX;

/// num_processes x num_bins count matrix filled with `base`.
std::vector<std::vector<uint64_t>> UniformCounts(size_t num_processes,
                                                 size_t num_bins,
                                                 uint64_t base) {
  return std::vector<std::vector<uint64_t>>(
      num_processes, std::vector<uint64_t>(num_bins, base));
}

TEST(LoadImbalanceTest, DegenerateInputsAreZero) {
  EXPECT_EQ(LoadImbalance({}), 0.0);
  EXPECT_EQ(LoadImbalance({0.0, 0.0, 0.0}), 0.0);
}

TEST(LoadImbalanceTest, UniformLoadIsOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(LoadImbalanceTest, MaxOverMean) {
  // max 3 over mean 1.5.
  EXPECT_DOUBLE_EQ(LoadImbalance({3.0, 1.0, 1.0, 1.0}), 2.0);
}

TEST(RebalancePlanTest, UniformCountsProduceNoPlan) {
  const auto counts = UniformCounts(4, 8, 100);
  const RebalancePlan plan =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  EXPECT_FALSE(plan.active);
  EXPECT_EQ(plan.overridden_bins, 0);
  EXPECT_EQ(plan.DestinationsFor(0), nullptr);
}

TEST(RebalancePlanTest, FewerThanTwoProcessesNeverPlan) {
  const auto counts = UniformCounts(1, 8, 1000);
  EXPECT_FALSE(ComputeRebalancePlan(counts, kTupleBytes, kNoCap,
                                    RebalanceOptions{})
                   .active);
}

TEST(RebalancePlanTest, EmptyRelationProducesNoPlan) {
  const auto counts = UniformCounts(4, 8, 0);
  EXPECT_FALSE(ComputeRebalancePlan(counts, kTupleBytes, kNoCap,
                                    RebalanceOptions{})
                   .active);
}

TEST(RebalancePlanTest, SkewAcrossBinsButBalancedAcrossProcessesNoPlan) {
  // Bin 0 is globally heavy but every process holds an equal share of
  // it: static routing is already balanced, so no plan.
  auto counts = UniformCounts(4, 8, 10);
  for (size_t p = 0; p < 4; ++p) counts[p][0] = 150;
  EXPECT_FALSE(ComputeRebalancePlan(counts, kTupleBytes, kNoCap,
                                    RebalanceOptions{})
                   .active);
}

TEST(RebalancePlanTest, SingleHeavyBinIsReplicated) {
  // One process holds a heavy-hitter bin: the quadratic duplicate-key
  // model wants the probe stream split, so the bin is replicated, not
  // merely consolidated.
  auto counts = UniformCounts(4, 8, 10);
  counts[0][0] = 2000;
  const RebalancePlan plan =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.num_bins, 8u);
  EXPECT_EQ(plan.shift, 61);  // bin = top 3 bits
  EXPECT_EQ(plan.overridden_bins, 1);
  EXPECT_EQ(plan.replicated_bins, 1);
  ASSERT_FALSE(plan.destinations[0].empty());
  EXPECT_GT(plan.destinations[0].size(), 1u);
  // Destination lists are sorted (determinism contract).
  for (size_t i = 1; i < plan.destinations[0].size(); ++i) {
    EXPECT_LT(plan.destinations[0][i - 1], plan.destinations[0][i]);
  }
  // Only the heavy bin is overridden.
  for (uint32_t b = 1; b < 8; ++b) EXPECT_TRUE(plan.destinations[b].empty());
  // DestinationsFor routes by the top bits: hash 0 is in bin 0.
  EXPECT_NE(plan.DestinationsFor(0), nullptr);
  EXPECT_EQ(plan.DestinationsFor(UINT64_MAX), nullptr);  // bin 7: static
}

TEST(RebalancePlanTest, ConsolidationWorseThanStaticIsRejected) {
  // max_replicas = 1 forbids splitting the probe stream; moving the
  // whole bin to one process cannot beat leaving it where it is, so the
  // plan must deactivate rather than churn tuples for nothing.
  auto counts = UniformCounts(4, 8, 10);
  counts[0][0] = 2000;
  RebalanceOptions options;
  options.max_replicas = 1;
  const RebalancePlan plan =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, options);
  EXPECT_FALSE(plan.active);
  EXPECT_EQ(plan.overridden_bins, 0);
}

TEST(RebalancePlanTest, CapacityBlocksInfeasibleMigration) {
  // No destination can absorb the heavy bin's bytes: the bin keeps its
  // static route and the plan deactivates (the overflow protocol owns
  // memory pressure, docs/skew.md).
  auto counts = UniformCounts(4, 8, 10);
  counts[0][0] = 2000;
  const uint64_t capacity = 100 * kTupleBytes;  // < 2030 tuples' bytes
  const RebalancePlan plan = ComputeRebalancePlan(counts, kTupleBytes,
                                                  capacity, RebalanceOptions{});
  EXPECT_FALSE(plan.active);
  EXPECT_EQ(plan.overridden_bins, 0);
}

TEST(RebalancePlanTest, ImbalanceThresholdGates) {
  auto counts = UniformCounts(4, 8, 10);
  counts[0][0] = 2000;
  RebalanceOptions lax;
  lax.imbalance_threshold = 100.0;  // imbalance ~4x is below this
  EXPECT_FALSE(
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, lax).active);
}

TEST(RebalancePlanTest, DeterministicForIdenticalInputs) {
  auto counts = UniformCounts(4, 16, 7);
  counts[1][3] = 900;
  counts[2][12] = 1500;
  const RebalancePlan a =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  const RebalancePlan b =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.destinations, b.destinations);
  EXPECT_EQ(a.overridden_bins, b.overridden_bins);
  EXPECT_EQ(a.replicated_bins, b.replicated_bins);
}

TEST(RebalancePlanTest, SerializedBytesCountsOneEntryPerDestination) {
  auto counts = UniformCounts(4, 8, 10);
  counts[0][0] = 2000;
  const RebalancePlan plan =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  ASSERT_TRUE(plan.active);
  uint64_t entries = 0;
  for (const auto& d : plan.destinations) entries += d.size();
  EXPECT_GT(entries, 0u);
  EXPECT_EQ(plan.SerializedBytes(), SplitTable::SerializedBytesFor(entries));
  EXPECT_EQ(RebalancePlan{}.SerializedBytes(), 0u);
}

/// Buckets `keys` the way a join process histogram would: top hash
/// bits pick the bin, low bits (mod) pick the process.
std::vector<std::vector<uint64_t>> CountsFromKeys(
    const std::vector<int32_t>& keys, size_t num_processes,
    uint32_t num_bins) {
  uint32_t shift = 64;
  for (uint32_t b = num_bins; b > 1; b >>= 1) --shift;
  auto counts = UniformCounts(num_processes, num_bins, 0);
  for (int32_t key : keys) {
    const uint64_t hash = HashJoinAttribute(key);
    ++counts[hash % num_processes][hash >> shift];
  }
  return counts;
}

TEST(RebalancePlanTest, ZipfKeysFireAPlanOnlyWhenSkewed) {
  // Zipf(1.0): one hot key dominates one bin of one process.
  const auto skewed = CountsFromKeys(
      testing::ZipfKeys(4000, 2000, /*theta=*/1.0, /*seed=*/5), 4, 256);
  EXPECT_TRUE(
      ComputeRebalancePlan(skewed, kTupleBytes, kNoCap, RebalanceOptions{})
          .active);

  // Zipf(0) is uniform: the imbalance gate declines.
  const auto uniform = CountsFromKeys(
      testing::ZipfKeys(4000, 2000, /*theta=*/0.0, /*seed=*/5), 4, 256);
  EXPECT_FALSE(
      ComputeRebalancePlan(uniform, kTupleBytes, kNoCap, RebalanceOptions{})
          .active);
}

TEST(RebalancePlanTest, HeavyHitterBinIsReplicatedAcrossProcesses) {
  // Half of all draws are one key: its bin carries a quadratic penalty
  // no single process should absorb alone.
  const auto counts = CountsFromKeys(
      testing::HeavyHitterKeys(4000, 2000, /*heavy_key=*/7,
                               /*heavy_fraction=*/0.5, /*seed=*/9),
      4, 256);
  const RebalancePlan plan =
      ComputeRebalancePlan(counts, kTupleBytes, kNoCap, RebalanceOptions{});
  ASSERT_TRUE(plan.active);
  const uint64_t hash = HashJoinAttribute(7);
  const std::vector<int>* dests = plan.DestinationsFor(hash);
  ASSERT_NE(dests, nullptr);
  EXPECT_GT(dests->size(), 1u);
  EXPECT_GE(plan.replicated_bins, 1u);
}

}  // namespace
}  // namespace gammadb::db
