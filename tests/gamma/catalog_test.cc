#include "gamma/catalog.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "wisconsin/wisconsin.h"
#include "testing/status_matchers.h"

namespace gammadb::db {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : machine_(sim::MachineConfig{4, 2, sim::CostModel{}, 1}) {}

  sim::Machine machine_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateDeclustersOverAllDiskNodes) {
  auto rel = catalog_.Create(machine_, "r", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->num_fragments(), 4u);
  EXPECT_EQ((*rel)->home_nodes(), machine_.DiskNodeIds());
  EXPECT_EQ((*rel)->total_tuples(), 0u);
  EXPECT_EQ((*rel)->name(), "r");
}

TEST_F(CatalogTest, DuplicateNameRejected) {
  ASSERT_TRUE(catalog_.Create(machine_, "r", wisconsin::WisconsinSchema()).ok());
  auto dup = catalog_.Create(machine_, "r", wisconsin::WisconsinSchema());
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetAndDrop) {
  ASSERT_TRUE(catalog_.Create(machine_, "r", wisconsin::WisconsinSchema()).ok());
  EXPECT_TRUE(catalog_.Get("r").ok());
  EXPECT_FALSE(catalog_.Get("missing").ok());
  EXPECT_TRUE(catalog_.Drop("r").ok());
  EXPECT_FALSE(catalog_.Get("r").ok());
  EXPECT_EQ(catalog_.Drop("r").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DropFreesDiskPages) {
  auto rel = catalog_.Create(machine_, "r", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  machine_.BeginPhase("load");
  wisconsin::GenOptions gen;
  gen.cardinality = 400;
  for (const auto& t : wisconsin::Generate(gen)) {
    GAMMA_ASSERT_OK((*rel)->fragment(0).Append(t));
  }
  GAMMA_ASSERT_OK((*rel)->fragment(0).FlushAppends());
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_GT(machine_.node(0).disk().live_pages(), 0u);
  ASSERT_TRUE(catalog_.Drop("r").ok());
  EXPECT_EQ(machine_.node(0).disk().live_pages(), 0u);
}

TEST_F(CatalogTest, NamesAreSorted) {
  ASSERT_TRUE(catalog_.Create(machine_, "zeta", wisconsin::WisconsinSchema()).ok());
  ASSERT_TRUE(catalog_.Create(machine_, "alpha", wisconsin::WisconsinSchema()).ok());
  EXPECT_EQ(catalog_.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST_F(CatalogTest, PartitionStrategyNames) {
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kHashed), "hashed");
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kRangeUser),
               "range-user");
  EXPECT_STREQ(PartitionStrategyName(PartitionStrategy::kRangeUniform),
               "range-uniform");
}

}  // namespace
}  // namespace gammadb::db
