// Split-table layout tests, including the worked examples of the
// paper's Appendix A.
#include "gamma/split_table.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace gammadb::db {
namespace {

TEST(SplitTableTest, LoadingTableRoutesByMod) {
  const SplitTable table = SplitTable::Loading({0, 1, 2});
  ASSERT_EQ(table.size(), 3u);
  for (uint64_t h = 0; h < 30; ++h) {
    EXPECT_EQ(table.Route(h).node, static_cast<int>(h % 3));
    EXPECT_EQ(table.Route(h).bucket, 0);
  }
}

TEST(SplitTableTest, JoiningTablePreservesNodeOrder) {
  const SplitTable table = SplitTable::Joining({8, 9, 10, 11});
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table.Route(5).node, 9);  // 5 mod 4 = 1 -> second entry
  EXPECT_TRUE(table.HasImmediateBucket());
  EXPECT_EQ(table.MaxBucket(), 0);
}

// Appendix A, Table 1: a three-bucket Grace join on two disk nodes.
// Entries alternate destination nodes 1,2 with buckets 1,1,2,2,3,3.
TEST(SplitTableTest, AppendixTable1GraceLayout) {
  const SplitTable table = SplitTable::GracePartitioning({1, 2}, 3);
  ASSERT_EQ(table.size(), 6u);
  const int expected_node[] = {1, 2, 1, 2, 1, 2};
  const int expected_bucket[] = {1, 1, 2, 2, 3, 3};
  for (size_t e = 0; e < 6; ++e) {
    EXPECT_EQ(table.entry(e).node, expected_node[e]) << "entry " << e;
    EXPECT_EQ(table.entry(e).bucket, expected_bucket[e]) << "entry " << e;
  }
  EXPECT_FALSE(table.HasImmediateBucket());
  EXPECT_EQ(table.MaxBucket(), 3);
}

// Appendix A, Table 2: three-bucket Hybrid join, disk nodes {1,2},
// joining processes on nodes {3,4}.
TEST(SplitTableTest, AppendixTable2HybridLayout) {
  const SplitTable table = SplitTable::HybridPartitioning({3, 4}, {1, 2}, 3);
  ASSERT_EQ(table.size(), 6u);
  const int expected_node[] = {3, 4, 1, 2, 1, 2};
  const int expected_bucket[] = {0, 0, 1, 1, 2, 2};
  for (size_t e = 0; e < 6; ++e) {
    EXPECT_EQ(table.entry(e).node, expected_node[e]) << "entry " << e;
    EXPECT_EQ(table.entry(e).bucket, expected_bucket[e]) << "entry " << e;
  }
}

// Appendix A, Table 3/4: three-bucket Hybrid with two disk nodes and
// FOUR joining processes. Bucket-2 tuples stored on disk 1 all have
// hash = 8n+4; re-splitting them mod 4 maps every one to join entry 0
// — the starvation pathology the bucket analyzer exists to fix.
TEST(SplitTableTest, AppendixTable4SkewPathology) {
  const SplitTable partitioning =
      SplitTable::HybridPartitioning({1, 2, 3, 4}, {1, 2}, 3);
  ASSERT_EQ(partitioning.size(), 8u);
  const SplitTable joining = SplitTable::Joining({1, 2, 3, 4});

  // Hash values 8n+4 route to partitioning entry 4: disk 1, first
  // STORED bucket (the paper's "bucket 2" — it numbers the immediate
  // bucket as bucket 1, while the code tags it bucket 0).
  for (uint64_t n = 0; n < 16; ++n) {
    const uint64_t h = 8 * n + 4;
    EXPECT_EQ(partitioning.IndexOf(h), 4u);
    EXPECT_EQ(partitioning.Route(h).node, 1);
    EXPECT_EQ(partitioning.Route(h).bucket, 1);
    // Re-split for joining: ALL map to entry 0 (node 1).
    EXPECT_EQ(joining.Route(h).node, 1);
  }
  // Likewise 8n+5 -> disk 2, and all re-map to join entry 1.
  for (uint64_t n = 0; n < 16; ++n) {
    const uint64_t h = 8 * n + 5;
    EXPECT_EQ(partitioning.Route(h).node, 2);
    EXPECT_EQ(joining.Route(h).node, 2);
  }
}

// Section 4.1, Table 1: 3-bucket Grace with 4 disk nodes — every
// fragment's tuples return a constant index under the joining mod, and
// that index maps them back to the same disk node ("all tuples in all
// fragments on an individual disk will return the same index value").
TEST(SplitTableTest, Section41Table1FragmentsRemapLocally) {
  const std::vector<int> disks = {0, 1, 2, 3};
  const SplitTable partitioning = SplitTable::GracePartitioning(disks, 3);
  const SplitTable joining = SplitTable::Joining(disks);
  for (uint64_t h = 0; h < 36; ++h) {
    const SplitEntry& stored = partitioning.Route(h);
    // After bucket-forming, the tuple sits on disk `stored.node`; the
    // joining split table must route it back to the same node.
    EXPECT_EQ(joining.Route(h).node, stored.node) << "hash " << h;
  }
}

// The paper's packet-size threshold: 6 buckets x 8 disks fits in one
// 2 KB packet, 7 buckets does not (Section 4.4, Table 4 discussion).
TEST(SplitTableTest, SerializedBytesPacketThreshold) {
  const std::vector<int> disks = {0, 1, 2, 3, 4, 5, 6, 7};
  const SplitTable six = SplitTable::GracePartitioning(disks, 6);
  const SplitTable seven = SplitTable::GracePartitioning(disks, 7);
  EXPECT_LE(six.SerializedBytes(), 2048u);
  EXPECT_GT(seven.SerializedBytes(), 2048u);
}

TEST(SplitTableTest, HybridWithOneBucketIsJoiningTable) {
  const SplitTable table = SplitTable::HybridPartitioning({5, 6}, {0, 1}, 1);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.MaxBucket(), 0);
  EXPECT_EQ(table.entry(0).node, 5);
  EXPECT_EQ(table.entry(1).node, 6);
}

}  // namespace
}  // namespace gammadb::db
