// Parameterized declustering sweep: every strategy on several machine
// widths and cardinalities must preserve the data exactly and satisfy
// its placement invariant.
#include <gtest/gtest.h>

#include <tuple>

#include "common/hash.h"
#include "gamma/loader.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

using LoaderParam = std::tuple<PartitionStrategy, int /*sites*/,
                               uint32_t /*cardinality*/>;

class LoaderPropertyTest : public ::testing::TestWithParam<LoaderParam> {};

std::string LoaderParamName(const ::testing::TestParamInfo<LoaderParam>& info) {
  const auto& [strategy, sites, n] = info.param;
  std::string name = PartitionStrategyName(strategy);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_s" + std::to_string(sites) + "_n" + std::to_string(n);
}

TEST_P(LoaderPropertyTest, PreservesDataAndPlacementInvariant) {
  const auto& [strategy, sites, cardinality] = GetParam();
  sim::Machine machine(gammadb::testing::SmallConfig(sites));
  Catalog catalog;
  auto rel = catalog.Create(machine, "r", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());

  wisconsin::GenOptions gen;
  gen.cardinality = cardinality;
  gen.seed = 41;
  const auto tuples = wisconsin::Generate(gen);

  LoadOptions options;
  options.strategy = strategy;
  options.partition_field = wisconsin::fields::kUnique1;
  if (strategy == PartitionStrategy::kRangeUser) {
    options.range_boundaries.clear();
    for (int i = 1; i < sites; ++i) {
      options.range_boundaries.push_back(
          static_cast<int32_t>(cardinality) * i / sites - 1);
    }
  }
  ASSERT_TRUE(LoadRelation(*rel, tuples, options).ok());

  // No tuple lost or duplicated.
  EXPECT_EQ((*rel)->total_tuples(), cardinality);
  EXPECT_EQ(gammadb::testing::Canonical((*rel)->PeekAllTuples()),
            gammadb::testing::Canonical(tuples));

  const auto& schema = (*rel)->schema();
  for (size_t frag = 0; frag < (*rel)->num_fragments(); ++frag) {
    const auto rows = (*rel)->fragment(frag).PeekAll();
    switch (strategy) {
      case PartitionStrategy::kRoundRobin:
        // Exact balance (up to remainder).
        EXPECT_NEAR(static_cast<double>(rows.size()),
                    static_cast<double>(cardinality) / sites, 1.0);
        break;
      case PartitionStrategy::kHashed:
        for (const auto& t : rows) {
          const int32_t key =
              t.GetInt32(schema, wisconsin::fields::kUnique1);
          EXPECT_EQ(HashJoinAttribute(key) % static_cast<uint64_t>(sites),
                    frag);
        }
        break;
      case PartitionStrategy::kRangeUser:
      case PartitionStrategy::kRangeUniform: {
        // Fragments hold disjoint ascending ranges.
        int32_t lo = INT32_MAX, hi = INT32_MIN;
        for (const auto& t : rows) {
          const int32_t key =
              t.GetInt32(schema, wisconsin::fields::kUnique1);
          lo = std::min(lo, key);
          hi = std::max(hi, key);
        }
        if (!rows.empty() && frag + 1 < (*rel)->num_fragments()) {
          const auto next = (*rel)->fragment(frag + 1).PeekAll();
          for (const auto& t : next) {
            EXPECT_GT(t.GetInt32(schema, wisconsin::fields::kUnique1), hi);
          }
        }
        // Uniform ranges additionally balance the load.
        if (strategy == PartitionStrategy::kRangeUniform) {
          EXPECT_NEAR(static_cast<double>(rows.size()),
                      static_cast<double>(cardinality) / sites,
                      cardinality * 0.02 + 2);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoaderPropertyTest,
    ::testing::Combine(::testing::Values(PartitionStrategy::kRoundRobin,
                                         PartitionStrategy::kHashed,
                                         PartitionStrategy::kRangeUser,
                                         PartitionStrategy::kRangeUniform),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(64u, 2000u)),
    LoaderParamName);

}  // namespace
}  // namespace gammadb::db
