#include "gamma/operators.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

class SelectTest : public ::testing::Test {
 protected:
  SelectTest() : machine_(gammadb::testing::SmallConfig(4)) {
    auto rel = catalog_.Create(machine_, "A", wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok());
    wisconsin::GenOptions gen;
    gen.cardinality = 2000;
    gen.seed = 3;
    LoadOptions load;
    load.strategy = PartitionStrategy::kHashed;
    load.partition_field = wisconsin::fields::kUnique1;
    GAMMA_CHECK_OK(LoadRelation(*rel, wisconsin::Generate(gen), load));
  }

  sim::Machine machine_;
  Catalog catalog_;
};

TEST_F(SelectTest, PredicateSelectsExpectedFraction) {
  SelectSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "tenth";
  spec.predicate = {Predicate{wisconsin::fields::kUnique1,
                              Predicate::Op::kLt, 200}};
  auto output = ExecuteSelect(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->input_tuples, 2000u);
  EXPECT_EQ(output->output_tuples, 200u);
  auto out_rel = catalog_.Get("tenth");
  ASSERT_TRUE(out_rel.ok());
  for (const auto& t : (*out_rel)->PeekAllTuples()) {
    EXPECT_LT(t.GetInt32((*out_rel)->schema(), wisconsin::fields::kUnique1),
              200);
  }
}

TEST_F(SelectTest, ProjectionNarrowsSchema) {
  SelectSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "narrow";
  spec.projection = {wisconsin::fields::kUnique1,
                     wisconsin::fields::kStringU1};
  auto output = ExecuteSelect(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  auto out_rel = catalog_.Get("narrow");
  ASSERT_TRUE(out_rel.ok());
  const auto& schema = (*out_rel)->schema();
  EXPECT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.tuple_bytes(), 56u);
  EXPECT_EQ(schema.FieldIndex("unique1"), 0);
  EXPECT_EQ(schema.FieldIndex("stringu1"), 1);
  EXPECT_EQ((*out_rel)->total_tuples(), 2000u);
}

TEST_F(SelectTest, RoundRobinOutputBalances) {
  SelectSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "balanced";
  auto output = ExecuteSelect(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  auto out_rel = catalog_.Get("balanced");
  ASSERT_TRUE(out_rel.ok());
  for (size_t i = 0; i < (*out_rel)->num_fragments(); ++i) {
    EXPECT_NEAR((*out_rel)->fragment(i).tuple_count(), 500u, 6u);
  }
}

TEST_F(SelectTest, HashedOutputFollowsModRule) {
  SelectSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "hashed";
  spec.projection = {wisconsin::fields::kUnique2,
                     wisconsin::fields::kUnique1};
  spec.output_strategy = PartitionStrategy::kHashed;
  spec.output_partition_field = 0;  // unique2 in the OUTPUT schema
  auto output = ExecuteSelect(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  auto out_rel = catalog_.Get("hashed");
  ASSERT_TRUE(out_rel.ok());
  for (size_t frag = 0; frag < 4; ++frag) {
    for (const auto& t : (*out_rel)->fragment(frag).PeekAll()) {
      const int32_t key = t.GetInt32((*out_rel)->schema(), 0);
      EXPECT_EQ(HashJoinAttribute(key) % 4, frag);
    }
  }
  EXPECT_EQ((*out_rel)->strategy, PartitionStrategy::kHashed);
}

TEST_F(SelectTest, MetricsCoverScanAndStore) {
  SelectSpec spec;
  spec.input_relation = "A";
  spec.output_relation = "copy";
  auto output = ExecuteSelect(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->metrics.response_seconds, 0);
  EXPECT_GT(output->metrics.counters.pages_read, 0);
  EXPECT_GT(output->metrics.counters.pages_written, 0);
}

TEST_F(SelectTest, RejectsBadInputs) {
  SelectSpec spec;
  spec.input_relation = "missing";
  spec.output_relation = "x";
  EXPECT_EQ(ExecuteSelect(machine_, catalog_, spec).status().code(),
            StatusCode::kNotFound);

  spec.input_relation = "A";
  spec.projection = {99};
  EXPECT_EQ(ExecuteSelect(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);

  spec.projection = {};
  spec.predicate = {Predicate{99, Predicate::Op::kEq, 0}};
  EXPECT_EQ(ExecuteSelect(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);

  spec.predicate = {};
  spec.output_strategy = PartitionStrategy::kRangeUniform;
  EXPECT_EQ(ExecuteSelect(machine_, catalog_, spec).status().code(),
            StatusCode::kNotImplemented);

  spec.output_strategy = PartitionStrategy::kHashed;
  spec.output_partition_field = wisconsin::fields::kStringU1;
  EXPECT_EQ(ExecuteSelect(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SelectTest, SelectionThenJoinMatchesPredicatePushdown) {
  // joinAselB two ways: materialized selection + join vs join with an
  // inline predicate — identical results (the paper's "trends were the
  // same" claim is tested at the bench level; here: equivalence).
  SelectSpec select;
  select.input_relation = "A";
  select.output_relation = "Asel";
  select.predicate = {Predicate{wisconsin::fields::kUnique1,
                                Predicate::Op::kLt, 500}};
  select.output_strategy = PartitionStrategy::kHashed;
  select.output_partition_field = wisconsin::fields::kUnique1;
  ASSERT_TRUE(ExecuteSelect(machine_, catalog_, select).ok());

  join::JoinSpec materialized;
  materialized.inner_relation = "Asel";
  materialized.outer_relation = "A";
  materialized.result_name = "r1";
  auto first = join::ExecuteJoin(machine_, catalog_, materialized);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  join::JoinSpec inline_pred;
  inline_pred.inner_relation = "A";
  inline_pred.outer_relation = "A";
  inline_pred.inner_predicate = select.predicate;
  inline_pred.result_name = "r2";
  auto second = join::ExecuteJoin(machine_, catalog_, inline_pred);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(first->stats.result_tuples, 500u);
  EXPECT_EQ(second->stats.result_tuples, 500u);
}

}  // namespace
}  // namespace gammadb::db
