#include "gamma/bucket_analyzer.h"

#include <gtest/gtest.h>

namespace gammadb::db {
namespace {

// The paper's worked example (Appendix A): a three-bucket Hybrid join
// with two disk nodes and four joining nodes must grow to four buckets.
TEST(BucketAnalyzerTest, PaperExampleHybridGrowsToFour) {
  EXPECT_EQ(AnalyzeBucketCount(BucketAlgorithm::kHybrid, 3, /*num_disks=*/2,
                               /*join_nodes=*/4),
            4);
}

// Local configurations (join nodes == disk nodes) never need extra
// buckets: the mod cycle reaches every node by construction.
TEST(BucketAnalyzerTest, LocalConfigurationsUnchanged) {
  for (int buckets = 1; buckets <= 12; ++buckets) {
    EXPECT_EQ(AnalyzeBucketCount(BucketAlgorithm::kGrace, buckets, 8, 8),
              buckets)
        << buckets << " buckets (grace)";
    EXPECT_EQ(AnalyzeBucketCount(BucketAlgorithm::kHybrid, buckets, 8, 8),
              buckets)
        << buckets << " buckets (hybrid)";
  }
}

TEST(BucketAnalyzerTest, SingleBucketFewerDisksThanJoinersIsFine) {
  EXPECT_EQ(AnalyzeBucketCount(BucketAlgorithm::kHybrid, 1, 2, 4), 1);
  EXPECT_EQ(AnalyzeBucketCount(BucketAlgorithm::kGrace, 1, 4, 8), 1);
}

// The returned count never shrinks and always satisfies the analyzer's
// own acceptance test (property check over a parameter grid).
TEST(BucketAnalyzerTest, MonotoneAndAccepted) {
  for (int disks = 1; disks <= 8; ++disks) {
    for (int joiners = 1; joiners <= 16; ++joiners) {
      for (int buckets = 1; buckets <= 6; ++buckets) {
        for (auto algo : {BucketAlgorithm::kGrace, BucketAlgorithm::kHybrid}) {
          const int chosen = AnalyzeBucketCount(algo, buckets, disks, joiners);
          EXPECT_GE(chosen, buckets);
          // Re-running on the chosen count is a fixed point.
          EXPECT_EQ(AnalyzeBucketCount(algo, chosen, disks, joiners), chosen);
        }
      }
    }
  }
}

// Remote Gamma configuration (8 disks feeding 8 diskless joiners).
TEST(BucketAnalyzerTest, RemoteEightByEight) {
  for (int buckets = 1; buckets <= 10; ++buckets) {
    const int grace = AnalyzeBucketCount(BucketAlgorithm::kGrace, buckets, 8, 8);
    EXPECT_EQ(grace, buckets);
  }
}

}  // namespace
}  // namespace gammadb::db
