#include "gamma/scheduler.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "testing/status_matchers.h"

namespace gammadb::db {
namespace {

TEST(SchedulerTest, ChargesTwoControlMessagesPerProcess) {
  sim::Machine machine(sim::MachineConfig{2, 0, sim::CostModel{}, 1});
  machine.BeginPhase("p");
  ChargeOperatorPhase(machine, /*producers=*/3, /*consumers=*/5,
                      /*split_table_bytes=*/100);  // fits one packet
  GAMMA_ASSERT_OK(machine.EndPhase());
  const auto m = machine.Metrics();
  EXPECT_EQ(m.counters.control_messages, 2 * (3 + 5));
  EXPECT_DOUBLE_EQ(m.response_seconds,
                   16 * machine.cost().sched_control_message_seconds);
}

TEST(SchedulerTest, OversizedSplitTableCostsExtraPackets) {
  sim::Machine machine(sim::MachineConfig{2, 0, sim::CostModel{}, 1});
  machine.BeginPhase("small");
  ChargeOperatorPhase(machine, 8, 8, 2048);  // exactly one packet
  GAMMA_ASSERT_OK(machine.EndPhase());
  const int64_t small_messages = machine.Metrics().counters.control_messages;

  machine.ResetMetrics();
  machine.BeginPhase("big");
  ChargeOperatorPhase(machine, 8, 8, 2049);  // two pieces
  GAMMA_ASSERT_OK(machine.EndPhase());
  const int64_t big_messages = machine.Metrics().counters.control_messages;
  // One extra packet per producer.
  EXPECT_EQ(big_messages, small_messages + 8);
}

TEST(SchedulerTest, FilterDistributionGathersAndBroadcasts) {
  sim::Machine machine(sim::MachineConfig{2, 0, sim::CostModel{}, 1});
  machine.BeginPhase("p");
  ChargeFilterDistribution(machine, /*join_sites=*/8, /*producers=*/4);
  GAMMA_ASSERT_OK(machine.EndPhase());
  EXPECT_EQ(machine.Metrics().counters.control_messages, 12);
}

TEST(SchedulerTest, SplitTablePacketThresholds) {
  sim::CostModel cost;
  EXPECT_EQ(cost.SplitTablePackets(0), 0);
  EXPECT_EQ(cost.SplitTablePackets(1), 1);
  EXPECT_EQ(cost.SplitTablePackets(2048), 1);
  EXPECT_EQ(cost.SplitTablePackets(2049), 2);
  EXPECT_EQ(cost.SplitTablePackets(4096), 2);
  EXPECT_EQ(cost.SplitTablePackets(4097), 3);
}

}  // namespace
}  // namespace gammadb::db
