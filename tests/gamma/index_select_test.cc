// Index-accelerated selection: the WiSS B+ index as a scan access path.
#include <gtest/gtest.h>

#include "gamma/operators.h"
#include "gamma/update.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::db {
namespace {

namespace wf = wisconsin::fields;

class IndexSelectTest : public ::testing::Test {
 protected:
  IndexSelectTest() : machine_(gammadb::testing::SmallConfig(4)) {
    auto rel = catalog_.Create(machine_, "A", wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok());
    relation_ = *rel;
    wisconsin::GenOptions gen;
    gen.cardinality = 4000;
    gen.seed = 29;
    LoadOptions load;
    load.strategy = PartitionStrategy::kHashed;
    load.partition_field = wf::kUnique1;
    GAMMA_CHECK_OK(LoadRelation(relation_, wisconsin::Generate(gen), load));
  }

  Result<SelectOutput> Select(const PredicateList& predicate, bool use_index,
                              const std::string& out) {
    SelectSpec spec;
    spec.input_relation = "A";
    spec.output_relation = out;
    spec.predicate = predicate;
    spec.use_index = use_index;
    return ExecuteSelect(machine_, catalog_, spec);
  }

  sim::Machine machine_;
  Catalog catalog_;
  StoredRelation* relation_ = nullptr;
};

TEST_F(IndexSelectTest, BuildIndexValidates) {
  EXPECT_EQ(relation_->BuildIndex(machine_, 99).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(relation_->BuildIndex(machine_, wf::kStringU1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(relation_->has_index());
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  EXPECT_TRUE(relation_->has_index());
  EXPECT_EQ(relation_->indexed_field(), wf::kUnique1);
  for (size_t i = 0; i < relation_->num_fragments(); ++i) {
    EXPECT_EQ(relation_->fragment_index(i).size(),
              relation_->fragment(i).tuple_count());
  }
}

TEST_F(IndexSelectTest, IndexAndScanAgree) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  const PredicateList range = {
      Predicate{wf::kUnique1, Predicate::Op::kGe, 1000},
      Predicate{wf::kUnique1, Predicate::Op::kLt, 1100}};
  auto via_index = Select(range, true, "via_index");
  auto via_scan = Select(range, false, "via_scan");
  ASSERT_TRUE(via_index.ok() && via_scan.ok());
  EXPECT_TRUE(via_index->used_index);
  EXPECT_FALSE(via_scan->used_index);
  EXPECT_EQ(via_index->output_tuples, 100u);
  EXPECT_EQ(via_scan->output_tuples, 100u);
  auto a = catalog_.Get("via_index");
  auto b = catalog_.Get("via_scan");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(gammadb::testing::Canonical((*a)->PeekAllTuples()),
            gammadb::testing::Canonical((*b)->PeekAllTuples()));
  // The index path examined only the matching tuples.
  EXPECT_EQ(via_index->input_tuples, 100u);
  EXPECT_EQ(via_scan->input_tuples, 4000u);
}

TEST_F(IndexSelectTest, SelectiveLookupIsCheaperBroadScanIsNot) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  // Point lookup: index wins.
  const PredicateList point = {Predicate{wf::kUnique1, Predicate::Op::kEq, 7}};
  auto idx_point = Select(point, true, "p1");
  auto scan_point = Select(point, false, "p2");
  ASSERT_TRUE(idx_point.ok() && scan_point.ok());
  EXPECT_LT(idx_point->metrics.response_seconds,
            scan_point->metrics.response_seconds);

  // 80% selection: the unclustered fetches lose to the sequential scan.
  const PredicateList broad = {
      Predicate{wf::kUnique1, Predicate::Op::kLt, 3200}};
  auto idx_broad = Select(broad, true, "b1");
  auto scan_broad = Select(broad, false, "b2");
  ASSERT_TRUE(idx_broad.ok() && scan_broad.ok());
  EXPECT_TRUE(idx_broad->used_index);
  EXPECT_GT(idx_broad->metrics.response_seconds,
            scan_broad->metrics.response_seconds);
}

TEST_F(IndexSelectTest, UnboundedPredicateFallsBackToScan) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  // Predicate on a different field: no index range derivable.
  auto out = Select({Predicate{wf::kTen, Predicate::Op::kEq, 3}}, true, "o1");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->used_index);
  EXPECT_EQ(out->output_tuples, 400u);
  // kNe on the indexed field gives no bound either.
  auto ne = Select({Predicate{wf::kUnique1, Predicate::Op::kNe, 5}}, true,
                   "o2");
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(ne->used_index);
  EXPECT_EQ(ne->output_tuples, 3999u);
}

TEST_F(IndexSelectTest, ResidualPredicateStillApplied) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  // Range on the indexed field AND a residual condition.
  auto out = Select({Predicate{wf::kUnique1, Predicate::Op::kLt, 1000},
                     Predicate{wf::kTwo, Predicate::Op::kEq, 0}},
                    true, "res");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->used_index);
  EXPECT_EQ(out->output_tuples, 500u);
}

TEST_F(IndexSelectTest, ContradictoryRangeSelectsNothingViaScan) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  auto out = Select({Predicate{wf::kUnique1, Predicate::Op::kGt, 10},
                     Predicate{wf::kUnique1, Predicate::Op::kLt, 5}},
                    true, "none");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->output_tuples, 0u);
}

TEST_F(IndexSelectTest, DmlDropsIndexes) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  UpdateSpec spec;
  spec.relation = "A";
  spec.assignments = {Assignment{wf::kTwenty, 1}};
  ASSERT_TRUE(ExecuteUpdate(machine_, catalog_, spec).ok());
  EXPECT_FALSE(relation_->has_index());
}

TEST_F(IndexSelectTest, DropFreesIndexPages) {
  ASSERT_TRUE(relation_->BuildIndex(machine_, wf::kUnique1).ok());
  EXPECT_GT(machine_.node(0).disk().live_pages(), 0u);
  ASSERT_TRUE(catalog_.Drop("A").ok());
  for (int node = 0; node < 4; ++node) {
    EXPECT_EQ(machine_.node(node).disk().live_pages(), 0u) << node;
  }
}

}  // namespace
}  // namespace gammadb::db
