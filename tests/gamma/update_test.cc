#include "gamma/update.h"

#include <gtest/gtest.h>

#include "gamma/loader.h"
#include "join/driver.h"
#include "sim/machine.h"
#include "testing/test_util.h"
#include "wisconsin/wisconsin.h"
#include "testing/status_matchers.h"

namespace gammadb::db {
namespace {

namespace wf = wisconsin::fields;

class UpdateTest : public ::testing::Test {
 protected:
  UpdateTest() : machine_(gammadb::testing::SmallConfig(4)) {
    auto rel = catalog_.Create(machine_, "A", wisconsin::WisconsinSchema());
    GAMMA_CHECK(rel.ok());
    relation_ = *rel;
    wisconsin::GenOptions gen;
    gen.cardinality = 2000;
    gen.seed = 27;
    LoadOptions load;
    load.strategy = PartitionStrategy::kHashed;
    load.partition_field = wf::kUnique1;
    GAMMA_CHECK_OK(LoadRelation(relation_, wisconsin::Generate(gen), load));
  }

  sim::Machine machine_;
  Catalog catalog_;
  StoredRelation* relation_ = nullptr;
};

TEST_F(UpdateTest, UpdateMatchingRows) {
  UpdateSpec spec;
  spec.relation = "A";
  spec.predicate = {Predicate{wf::kUnique1, Predicate::Op::kLt, 300}};
  spec.assignments = {Assignment{wf::kTwenty, 99}};
  auto output = ExecuteUpdate(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->rows_touched, 300u);
  EXPECT_GT(output->metrics.response_seconds, 0);

  const auto& schema = relation_->schema();
  size_t updated = 0;
  for (const auto& t : relation_->PeekAllTuples()) {
    const bool matched = t.GetInt32(schema, wf::kUnique1) < 300;
    if (matched) {
      EXPECT_EQ(t.GetInt32(schema, wf::kTwenty), 99);
      ++updated;
    } else {
      EXPECT_NE(t.GetInt32(schema, wf::kTwenty), 99);
    }
  }
  EXPECT_EQ(updated, 300u);
  EXPECT_EQ(relation_->total_tuples(), 2000u);  // no rows lost
}

TEST_F(UpdateTest, EmptyPredicateTouchesEverything) {
  UpdateSpec spec;
  spec.relation = "A";
  spec.assignments = {Assignment{wf::kFour, -7}};
  auto output = ExecuteUpdate(machine_, catalog_, spec);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->rows_touched, 2000u);
  for (const auto& t : relation_->PeekAllTuples()) {
    EXPECT_EQ(t.GetInt32(relation_->schema(), wf::kFour), -7);
  }
}

TEST_F(UpdateTest, OnlyTouchedPagesRewritten) {
  UpdateSpec narrow;
  narrow.relation = "A";
  narrow.predicate = {Predicate{wf::kUnique1, Predicate::Op::kEq, 42}};
  narrow.assignments = {Assignment{wf::kTwenty, 1}};
  auto output = ExecuteUpdate(machine_, catalog_, narrow);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->rows_touched, 1u);
  // Every page is read, but only the single page holding the row is
  // written back.
  EXPECT_EQ(output->metrics.counters.pages_written, 1);
  EXPECT_GT(output->metrics.counters.pages_read, 10);
}

TEST_F(UpdateTest, PartitionAttributeUpdateRejected) {
  UpdateSpec spec;
  spec.relation = "A";
  spec.assignments = {Assignment{wf::kUnique1, 0}};
  EXPECT_EQ(ExecuteUpdate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, ValidationErrors) {
  UpdateSpec spec;
  spec.relation = "missing";
  spec.assignments = {Assignment{wf::kTwenty, 1}};
  EXPECT_EQ(ExecuteUpdate(machine_, catalog_, spec).status().code(),
            StatusCode::kNotFound);
  spec.relation = "A";
  spec.assignments = {};
  EXPECT_EQ(ExecuteUpdate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.assignments = {Assignment{wf::kStringU1, 1}};
  EXPECT_EQ(ExecuteUpdate(machine_, catalog_, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, DeleteMatchingRows) {
  auto output = ExecuteDelete(
      machine_, catalog_, "A",
      {Predicate{wf::kFiftyPercent, Predicate::Op::kEq, 0}});
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(output->rows_touched, 1000u);
  EXPECT_EQ(relation_->total_tuples(), 1000u);
  for (const auto& t : relation_->PeekAllTuples()) {
    EXPECT_EQ(t.GetInt32(relation_->schema(), wf::kFiftyPercent), 1);
  }
  // Deleted rows are gone from scans too (pages compacted in place).
  auto scanner = relation_->fragment(0).Scan();
  storage::Tuple t;
  size_t scanned = 0;
  machine_.BeginPhase("verify");
  while (scanner.Next(&t)) ++scanned;
  GAMMA_ASSERT_OK(machine_.EndPhase());
  EXPECT_EQ(scanned, relation_->fragment(0).tuple_count());
}

TEST_F(UpdateTest, DeleteEverything) {
  auto output = ExecuteDelete(machine_, catalog_, "A", {});
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->rows_touched, 2000u);
  EXPECT_EQ(relation_->total_tuples(), 0u);
}

TEST_F(UpdateTest, UpdateThenJoinStillCorrect) {
  // Rewriting fragments in place must not corrupt later query paths.
  UpdateSpec spec;
  spec.relation = "A";
  spec.predicate = {Predicate{wf::kUnique1, Predicate::Op::kGe, 1000}};
  spec.assignments = {Assignment{wf::kTwenty, 5}};
  ASSERT_TRUE(ExecuteUpdate(machine_, catalog_, spec).ok());

  auto rel = catalog_.Create(machine_, "Self", wisconsin::WisconsinSchema());
  ASSERT_TRUE(rel.ok());
  wisconsin::GenOptions gen;
  gen.cardinality = 2000;
  gen.seed = 27;
  LoadOptions load;
  load.strategy = PartitionStrategy::kHashed;
  load.partition_field = wf::kUnique1;
  ASSERT_TRUE(LoadRelation(*rel, wisconsin::Generate(gen), load).ok());

  join::JoinSpec join_spec;
  join_spec.inner_relation = "Self";
  join_spec.outer_relation = "A";
  join_spec.result_name = "joined";
  auto joined = join::ExecuteJoin(machine_, catalog_, join_spec);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(joined->stats.result_tuples, 2000u);
}

}  // namespace
}  // namespace gammadb::db
