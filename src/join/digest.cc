#include "join/digest.h"

#include "common/logging.h"
#include "common/strings.h"

namespace gammadb::join {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// SplitMix64 finalizer — local copy so the digest stays independent of
/// common/hash.h (the code under test).
uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

std::string ResultDigest::ToString() const {
  return StrFormat("n=%llu sum=%016llx xor=%016llx",
                   static_cast<unsigned long long>(tuples),
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(xor_mix));
}

uint64_t HashResultPayload(const uint8_t* data, uint32_t size) {
  uint64_t h = kFnvOffset;
  for (uint32_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixResultTriple(int32_t key, uint64_t inner_hash,
                         uint64_t outer_hash) {
  // Each component passes through the avalanche with a distinct additive
  // constant so (key, a, b) and (key, b, a) mix differently.
  uint64_t h = Avalanche(static_cast<uint64_t>(static_cast<uint32_t>(key)) +
                         0x0123456789abcdefULL);
  h = Avalanche(h ^ (inner_hash + 0x9e3779b97f4a7c15ULL));
  h = Avalanche(h ^ (outer_hash + 0x3c6ef372fe94f82aULL));
  return h;
}

void DigestAccumulator::AddPair(int32_t key, const uint8_t* inner,
                                uint32_t inner_size, const uint8_t* outer,
                                uint32_t outer_size) {
  const uint64_t mix = MixResultTriple(key, HashResultPayload(inner, inner_size),
                                       HashResultPayload(outer, outer_size));
  ++digest_.tuples;
  digest_.sum += mix;
  digest_.xor_mix ^= mix;
}

void DigestAccumulator::AddConcatRecord(const storage::Schema& inner_schema,
                                        int inner_field, const uint8_t* record,
                                        uint32_t record_size) {
  const uint32_t inner_bytes = inner_schema.tuple_bytes();
  GAMMA_DCHECK(record_size >= inner_bytes);
  AddPair(inner_schema.GetInt32(record, static_cast<size_t>(inner_field)),
          record, inner_bytes, record + inner_bytes,
          record_size - inner_bytes);
}

void DigestAccumulator::Merge(const ResultDigest& other) {
  digest_.tuples += other.tuples;
  digest_.sum += other.sum;
  digest_.xor_mix ^= other.xor_mix;
}

}  // namespace gammadb::join
