#include "join/sort_merge.h"

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "gamma/bit_filter.h"
#include "gamma/rebalance.h"
#include "gamma/scheduler.h"
#include "gamma/split_table.h"
#include "sim/exchange.h"
#include "storage/external_sort.h"
#include "storage/heap_file.h"

namespace gammadb::join {

namespace {

struct HashedTuple {
  storage::Tuple tuple;
  uint64_t hash;
};

/// One disk node's sort-merge working state.
struct SiteState {
  std::unique_ptr<storage::HeapFile> r_temp;
  std::unique_ptr<storage::HeapFile> s_temp;
  std::unique_ptr<storage::ExternalSort> r_sort;
  std::unique_ptr<storage::ExternalSort> s_sort;
  size_t store_rr_next = 0;
};

/// Streams two sorted inputs and joins them. Duplicate inner keys are
/// buffered as a group (no disk back-up needed); reading stops as soon
/// as the inner stream is exhausted, which is what lets skewed (NU)
/// inner relations skip the tail of the outer relation (paper
/// Section 4.4).
template <typename EmitFn>
void MergeJoinStreams(sim::Node& node, storage::TupleStream* r_stream,
                      storage::TupleStream* s_stream,
                      const storage::Schema& r_schema, int r_field,
                      const storage::Schema& s_schema, int s_field,
                      const EmitFn& emit) {
  const auto charge_compare = [&node] {
    node.ChargeCpu(node.cost().cpu_compare_seconds,
                   sim::CostCategory::kCompare);
  };
  storage::Tuple r, s;
  bool rv = r_stream->Next(&r);
  bool sv = s_stream->Next(&s);
  while (rv && sv) {
    const int32_t rk = r.GetInt32(r_schema, static_cast<size_t>(r_field));
    const int32_t sk = s.GetInt32(s_schema, static_cast<size_t>(s_field));
    charge_compare();
    if (rk < sk) {
      rv = r_stream->Next(&r);
    } else if (rk > sk) {
      sv = s_stream->Next(&s);
    } else {
      // Gather the inner duplicate group for this key.
      std::vector<storage::Tuple> group;
      group.push_back(r);
      while ((rv = r_stream->Next(&r))) {
        charge_compare();
        if (r.GetInt32(r_schema, static_cast<size_t>(r_field)) != rk) break;
        group.push_back(r);
      }
      // Join every outer tuple with this key against the group.
      while (sv) {
        if (s.GetInt32(s_schema, static_cast<size_t>(s_field)) != rk) break;
        for (const storage::Tuple& g : group) {
          charge_compare();
          emit(g, s);
        }
        sv = s_stream->Next(&s);
        if (sv) charge_compare();
      }
    }
  }
  // Inner exhausted: the remaining outer tuples are never read.
}

}  // namespace

Status RunSortMergeJoin(sim::Machine& machine, const SortMergeParams& params,
                        JoinStats* stats) {
  const std::vector<int> disks = machine.DiskNodeIds();
  const size_t d = disks.size();
  const db::SplitTable joining = db::SplitTable::Joining(disks);

  const storage::Schema& r_schema = params.inner->schema();
  const storage::Schema& s_schema = params.outer->schema();
  if (params.inner->num_fragments() != d || params.outer->num_fragments() != d) {
    return Status::InvalidArgument("relations not declustered over all disks");
  }

  const uint32_t page_bytes = machine.cost().page_bytes;
  const uint32_t sort_pages_per_node = static_cast<uint32_t>(std::max<uint64_t>(
      3, params.memory_bytes / d / page_bytes));

  std::vector<SiteState> sites(d);
  for (size_t di = 0; di < d; ++di) {
    sim::Node& node = machine.node(disks[di]);
    sites[di].r_temp = std::make_unique<storage::HeapFile>(
        &node, &r_schema, "smR." + std::to_string(di));
    sites[di].s_temp = std::make_unique<storage::HeapFile>(
        &node, &s_schema, "smS." + std::to_string(di));
    sites[di].store_rr_next = di;
  }

  sim::Exchange<HashedTuple> exchange(&machine);
  sim::Exchange<storage::Tuple> store_exchange(&machine);
  std::unique_ptr<db::BitFilterSet> filter;
  if (params.use_bit_filters) {
    filter = std::make_unique<db::BitFilterSet>(static_cast<int>(d));
  }

  // Adaptive repartitioning (docs/skew.md): each site histograms R' as
  // it arrives (free alongside the append, like the hash tables'
  // overflow histograms); the plan computed from those counts overrides
  // heavy bins' routing for S and redistributes R' before sorting.
  const bool adaptive = params.rebalance.enabled && d >= 2;
  std::vector<HashHistogram> site_hist(adaptive ? d : 0);
  db::RebalancePlan plan;
  // Per-producer, per-bin round-robin cursors for replicated bins,
  // seeded with the producer index (deterministic at any thread count).
  std::vector<std::vector<uint32_t>> plan_rr;

  const auto partition_phase = [&](const char* label,
                                   const db::StoredRelation* rel,
                                   const db::PredicateList* predicate,
                                   int field, bool is_inner,
                                   std::vector<SiteState>& state) -> Status {
    machine.BeginPhase(label);
    db::ChargeOperatorPhase(machine, static_cast<int>(d), static_cast<int>(d),
                            joining.SerializedBytes());
    // Both rounds always run in full — the exchange must be drained at
    // the phase barrier even when a node failed — and only the first
    // error is kept.
    Status phase_status;
    // Producers: scan local fragments block-wise and route by
    // join-attribute hash. Same three-pass structure as
    // HashJoinEngine::RouteBlock — pass 1 batch-computes keys,
    // predicate verdicts, hashes and route indices (uncharged); pass 2
    // replays the scalar per-tuple charge chain in scan order; pass 3
    // counting-sorts the survivors by destination and appends each
    // site's run with one SendBatch, copying each tuple once from the
    // page image into its lane slot.
    {
      const Status round = machine.TryRunOnNodes(
          disks, [&](sim::Node& n) -> Status {
            size_t di = 0;
            for (size_t i = 0; i < d; ++i) {
              if (disks[i] == n.id()) di = i;
            }
            exchange.ReserveRow(n.id(), rel->fragment(di).tuple_count());
            auto scanner = rel->fragment(di).Scan();
            const bool has_predicate =
                predicate != nullptr && !predicate->empty();
            const storage::Schema& schema = rel->schema();
            storage::TupleBlock block;
            std::array<int32_t, storage::TupleBlock::kCapacity> keys;
            std::array<uint64_t, storage::TupleBlock::kCapacity> hashes;
            std::array<uint32_t, storage::TupleBlock::kCapacity> route;
            std::array<bool, storage::TupleBlock::kCapacity> pred_ok;
            std::array<uint32_t, storage::TupleBlock::kCapacity> send_idx;
            std::array<uint32_t, storage::TupleBlock::kCapacity> send_site;
            std::array<uint32_t, storage::TupleBlock::kCapacity> send_order;
            std::vector<uint32_t> site_counts(d);
            std::vector<uint32_t> site_starts(d);
            while (scanner.NextBlock(&block)) {
              const size_t count = block.size();
              for (size_t i = 0; i < count; ++i) {
                const uint8_t* data = block.view(i).data;
                keys[i] = schema.GetInt32(data, static_cast<size_t>(field));
                pred_ok[i] =
                    !has_predicate || db::EvalAll(*predicate, schema, data);
              }
              for (size_t i = 0; i < count; ++i) {
                hashes[i] = HashJoinAttribute(keys[i], params.hash_seed);
              }
              joining.RouteIndices(hashes.data(), count, route.data());
              size_t m = 0;
              for (size_t i = 0; i < count; ++i) {
                n.ChargeCpu(n.cost().cpu_read_tuple_seconds,
                            sim::CostCategory::kReadTuple);
                if (has_predicate) {
                  n.ChargeCpu(n.cost().cpu_predicate_seconds,
                              sim::CostCategory::kPredicate);
                  if (!pred_ok[i]) continue;
                }
                const uint64_t hash = hashes[i];
                n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                            sim::CostCategory::kHashRoute);
                // For a joining table the entry index IS the site index.
                size_t site = route[i];
                // Rebalanced routing: an overridden bin's S tuples go
                // to its destination set — each tuple to exactly one
                // destination via this producer's round-robin cursor.
                if (!is_inner && plan.active) {
                  if (const std::vector<int>* dests =
                          plan.DestinationsFor(hash)) {
                    uint32_t& cur = plan_rr[di][plan.BinOf(hash)];
                    site =
                        static_cast<size_t>((*dests)[cur++ % dests->size()]);
                  }
                }
                // The assembled filter is applied by the producers of
                // the outer relation: eliminated tuples are never
                // transmitted, stored, sorted or merged.
                if (!is_inner && filter != nullptr) {
                  n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                              sim::CostCategory::kFilterOp);
                  if (!filter->MayContain(static_cast<int>(site), hash)) {
                    ++n.counters().filter_drops;
                    continue;
                  }
                }
                exchange.Account(n.id(), disks[site], block.view(i).size);
                send_idx[m] = static_cast<uint32_t>(i);
                send_site[m] = static_cast<uint32_t>(site);
                ++m;
              }
              if (m == 0) continue;
              std::fill(site_counts.begin(), site_counts.end(), 0);
              for (size_t k = 0; k < m; ++k) ++site_counts[send_site[k]];
              uint32_t at = 0;
              for (size_t s = 0; s < d; ++s) {
                site_starts[s] = at;
                at += site_counts[s];
              }
              for (size_t k = 0; k < m; ++k) {
                send_order[site_starts[send_site[k]]++] =
                    static_cast<uint32_t>(k);
              }
              for (size_t s = 0; s < d; ++s) {
                const uint32_t c = site_counts[s];
                if (c == 0) continue;
                const uint32_t start = site_starts[s] - c;
                exchange.SendBatch(
                    n.id(), disks[s], c, [&](size_t k, HashedTuple& out) {
                      const uint32_t sk = send_order[start + k];
                      const storage::TupleView v = block.view(send_idx[sk]);
                      out.tuple.Assign(v.data, v.size);
                      out.hash = hashes[send_idx[sk]];
                    });
              }
            }
            return scanner.status();
          });
      if (phase_status.ok()) phase_status = round;
    }
    // Receivers: store into the local temporary file; the inner side
    // also contributes its slice of the bit filter as tuples arrive.
    {
      const Status round = machine.TryRunOnNodes(
          disks, [&](sim::Node& n) -> Status {
            size_t di = 0;
            for (size_t i = 0; i < d; ++i) {
              if (disks[i] == n.id()) di = i;
            }
            storage::HeapFile* temp =
                is_inner ? state[di].r_temp.get() : state[di].s_temp.get();
            Status st;
            exchange.DrainInboxBlocks(
                n.id(), [&](std::vector<HashedTuple>& lane) {
                  for (HashedTuple& m : lane) {
                    if (is_inner && filter != nullptr) {
                      n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                                  sim::CostCategory::kFilterOp);
                      filter->Set(static_cast<int>(di), m.hash);
                    }
                    if (is_inner && adaptive) site_hist[di].Add(m.hash);
                    const Status append = temp->Append(m.tuple);
                    if (st.ok()) st = append;
                  }
                });
            const Status flush = temp->FlushAppends();
            if (st.ok()) st = flush;
            return st;
          });
      if (phase_status.ok()) phase_status = round;
    }
    const Status end = machine.EndPhase();
    if (phase_status.ok()) phase_status = end;
    return phase_status;
  };

  // All join work runs inside `run` so a faulted attempt can release
  // the per-site temporaries before returning (sorts free their runs
  // via the ExternalSort destructor).
  const auto run = [&]() -> Status {
    // Phase 1: redistribute R into per-site temporary files.
    GAMMA_RETURN_IF_ERROR(partition_phase("sm partition R", params.inner,
                                        params.inner_predicate,
                                        params.inner_field,
                                        /*is_inner=*/true, sites));

    // Phase 1b (adaptive, docs/skew.md): gather the sites' R'
    // histograms; if heavy bins make a rebalance worthwhile, rewrite R'
    // with the overridden bins migrated (replicas get a full copy) so
    // the heavy keys' merge work spreads over their destination sites.
    // S has not been read yet, so its producers route straight to the
    // new homes. Sort-merge has no hash-table byte budget, hence the
    // unbounded capacity.
    if (adaptive) {
      machine.BeginPhase("sm rebalance R");
      std::vector<std::vector<uint64_t>> counts(d);
      machine.RunOnNodes(disks, [&](sim::Node& n) {
        size_t di = 0;
        for (size_t i = 0; i < d; ++i) {
          if (disks[i] == n.id()) di = i;
        }
        const HashHistogram& h = site_hist[di];
        counts[di].resize(h.num_bins());
        for (uint32_t b = 0; b < h.num_bins(); ++b) {
          counts[di][b] = h.bin_count(b);
        }
        n.ChargeCpu(
            static_cast<double>(h.num_bins()) * n.cost().cpu_compare_seconds,
            sim::CostCategory::kCompare);
      });
      plan = db::ComputeRebalancePlan(counts, r_schema.tuple_bytes(),
                                      UINT64_MAX, params.rebalance);
      db::ChargeRebalance(machine, static_cast<int>(d), static_cast<int>(d),
                          plan.SerializedBytes());
      Status reb_status;
      if (plan.active) {
        ++machine.node(disks[0]).counters().rebalance_plans;
        plan_rr.resize(d);
        for (size_t di = 0; di < d; ++di) {
          plan_rr[di].assign(plan.num_bins, static_cast<uint32_t>(di));
        }
        // Round A: every site rewrites its R' — overridden bins ship a
        // copy to each destination, the rest land in the replacement
        // file. An honest full read + rewrite of R', charged as such.
        std::vector<std::unique_ptr<storage::HeapFile>> keep(d);
        for (size_t di = 0; di < d; ++di) {
          keep[di] = std::make_unique<storage::HeapFile>(
              &machine.node(disks[di]), &r_schema,
              "smR.reb." + std::to_string(di));
        }
        reb_status = machine.TryRunOnNodes(disks, [&](sim::Node& n) -> Status {
          size_t di = 0;
          for (size_t i = 0; i < d; ++i) {
            if (disks[i] == n.id()) di = i;
          }
          auto scanner = sites[di].r_temp->Scan();
          storage::Tuple t;
          Status st;
          while (scanner.Next(&t)) {
            const int32_t key = t.GetInt32(
                r_schema, static_cast<size_t>(params.inner_field));
            const uint64_t hash = HashJoinAttribute(key, params.hash_seed);
            n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                        sim::CostCategory::kHashRoute);
            if (const std::vector<int>* dests = plan.DestinationsFor(hash)) {
              ++n.counters().rebalance_moved_tuples;
              n.counters().rebalance_replica_tuples +=
                  static_cast<int64_t>(dests->size()) - 1;
              for (size_t k = 0; k < dests->size(); ++k) {
                storage::Tuple copy = (k + 1 == dests->size())
                                          ? std::move(t)
                                          : storage::Tuple(t);
                const uint32_t bytes = copy.size();
                exchange.Send(
                    n.id(), disks[static_cast<size_t>((*dests)[k])],
                    HashedTuple{std::move(copy), hash}, bytes);
              }
            } else {
              const Status append = keep[di]->Append(t);
              if (st.ok()) st = append;
            }
          }
          if (st.ok()) st = scanner.status();
          return st;
        });
        // Round B: destinations absorb the migrated tuples, setting
        // their filter slice — the slices are per-site, so the bits
        // must live where the probes will now arrive.
        {
          const Status round =
              machine.TryRunOnNodes(disks, [&](sim::Node& n) -> Status {
                size_t di = 0;
                for (size_t i = 0; i < d; ++i) {
                  if (disks[i] == n.id()) di = i;
                }
                Status st;
                for (HashedTuple& m : exchange.TakeInbox(n.id())) {
                  if (filter != nullptr) {
                    n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                                sim::CostCategory::kFilterOp);
                    filter->Set(static_cast<int>(di), m.hash);
                  }
                  const Status append = keep[di]->Append(m.tuple);
                  if (st.ok()) st = append;
                }
                const Status flush = keep[di]->FlushAppends();
                if (st.ok()) st = flush;
                return st;
              });
          if (reb_status.ok()) reb_status = round;
        }
        // The rebalanced R' replaces the static one (unconditionally,
        // so a faulted attempt's cleanup frees the right files).
        for (size_t di = 0; di < d; ++di) {
          sites[di].r_temp->Free();
          sites[di].r_temp = std::move(keep[di]);
        }
      }
      const Status end = machine.EndPhase();
      if (reb_status.ok()) reb_status = end;
      GAMMA_RETURN_IF_ERROR(reb_status);
    }

    // Phase 2: sort the local R' files in parallel.
    machine.BeginPhase("sm sort R");
    db::ChargeOperatorPhase(machine, static_cast<int>(d), 0, 0);
    Status sort_status = machine.TryRunOnNodes(
        disks, [&](sim::Node& n) -> Status {
          size_t di = 0;
          for (size_t i = 0; i < d; ++i) {
            if (disks[i] == n.id()) di = i;
          }
          sites[di].r_sort = std::make_unique<storage::ExternalSort>(
              &n, &r_schema, params.inner_field, sort_pages_per_node);
          GAMMA_RETURN_IF_ERROR(sites[di].r_sort->AddFile(*sites[di].r_temp));
          sites[di].r_temp->Free();
          return sites[di].r_sort->FinishInput();
        });
    {
      const Status end = machine.EndPhase();
      if (sort_status.ok()) sort_status = end;
      GAMMA_RETURN_IF_ERROR(sort_status);
    }
    if (filter != nullptr) {
      // Ship the assembled filter packet to the producing sites before S
      // is read.
      machine.BeginPhase("sm filter dist");
      db::ChargeFilterDistribution(machine, static_cast<int>(d),
                                   static_cast<int>(d));
      GAMMA_RETURN_IF_ERROR(machine.EndPhase());
    }

    // Phase 3: redistribute S (filtered at the producers).
    GAMMA_RETURN_IF_ERROR(partition_phase("sm partition S", params.outer,
                                        params.outer_predicate,
                                        params.outer_field,
                                        /*is_inner=*/false, sites));

    // Phase 4: sort the local S' files in parallel.
    machine.BeginPhase("sm sort S");
    db::ChargeOperatorPhase(machine, static_cast<int>(d), 0, 0);
    sort_status = machine.TryRunOnNodes(
        disks, [&](sim::Node& n) -> Status {
          size_t di = 0;
          for (size_t i = 0; i < d; ++i) {
            if (disks[i] == n.id()) di = i;
          }
          sites[di].s_sort = std::make_unique<storage::ExternalSort>(
              &n, &s_schema, params.outer_field, sort_pages_per_node);
          GAMMA_RETURN_IF_ERROR(sites[di].s_sort->AddFile(*sites[di].s_temp));
          sites[di].s_temp->Free();
          return sites[di].s_sort->FinishInput();
        });
    {
      const Status end = machine.EndPhase();
      if (sort_status.ok()) sort_status = end;
      GAMMA_RETURN_IF_ERROR(sort_status);
    }

    for (const SiteState& site : sites) {
      stats->inner_sort_passes = std::max(stats->inner_sort_passes,
                                          site.r_sort->intermediate_passes());
      stats->outer_sort_passes = std::max(stats->outer_sort_passes,
                                          site.s_sort->intermediate_passes());
    }

    // Phase 5: parallel local merge join; results round-robin to the
    // store operators.
    machine.BeginPhase("sm merge join");
    db::ChargeOperatorPhase(machine, static_cast<int>(d), static_cast<int>(d),
                            0);
    Status merge_status = machine.TryRunOnNodes(
        disks, [&](sim::Node& n) -> Status {
          size_t di = 0;
          for (size_t i = 0; i < d; ++i) {
            if (disks[i] == n.id()) di = i;
          }
          auto r_stream = sites[di].r_sort->OpenStream();
          auto s_stream = sites[di].s_sort->OpenStream();
          MergeJoinStreams(
              n, r_stream.get(), s_stream.get(), r_schema, params.inner_field,
              s_schema, params.outer_field,
              [&](const storage::Tuple& r, const storage::Tuple& s) {
                n.ChargeCpu(n.cost().cpu_build_result_seconds,
                            sim::CostCategory::kBuildResult);
                storage::Tuple result = storage::Tuple::Concat(r, s);
                ++n.counters().result_tuples;
                const size_t target = sites[di].store_rr_next++ % d;
                const uint32_t bytes = result.size();
                store_exchange.Send(n.id(), disks[target], std::move(result),
                                    bytes);
              });
          GAMMA_RETURN_IF_ERROR(r_stream->status());
          return s_stream->status();
        });
    {
      const Status round = machine.TryRunOnNodes(
          disks, [&](sim::Node& n) -> Status {
            size_t di = 0;
            for (size_t i = 0; i < d; ++i) {
              if (disks[i] == n.id()) di = i;
            }
            Status st;
            store_exchange.DrainInboxBlocks(
                n.id(), [&](std::vector<storage::Tuple>& lane) {
                  for (storage::Tuple& t : lane) {
                    if (params.capture != nullptr) {
                      (*params.capture)[di].AddConcatRecord(
                          r_schema, params.inner_field, t.data(), t.size());
                    }
                    const Status append =
                        params.result->fragment(di).Append(t);
                    if (st.ok()) st = append;
                  }
                });
            const Status flush = params.result->fragment(di).FlushAppends();
            if (st.ok()) st = flush;
            return st;
          });
      if (merge_status.ok()) merge_status = round;
    }
    const Status end = machine.EndPhase();
    if (merge_status.ok()) merge_status = end;
    return merge_status;
  };

  const Status st = run();
  if (!st.ok()) {
    // Release the temporaries a faulted attempt abandoned (Free is
    // idempotent; the temps are normally freed right after sorting).
    for (SiteState& site : sites) {
      site.r_temp->Free();
      site.s_temp->Free();
    }
  }
  return st;
}

}  // namespace gammadb::join
