// In-memory join hash table with the paper's overflow machinery.
//
// Tuples are chained by join-attribute hash; a hash-value histogram is
// maintained alongside (paper Section 4.1) so that, on overflow, a
// cutoff hash value can be chosen whose eviction frees a requested
// fraction of memory. Capacity is a byte budget: the aggregate joining
// memory divided over the join nodes.
#ifndef GAMMA_JOIN_HASH_TABLE_H_
#define GAMMA_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "sim/node.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace gammadb::join {

class JoinHashTable {
 public:
  /// `capacity_bytes` bounds the summed serialized size of resident
  /// tuples; slot count is sized for ~1 tuple per slot at capacity.
  JoinHashTable(sim::Node* node, const storage::Schema* schema,
                int key_field, uint64_t capacity_bytes);

  /// Inserts the tuple (charging insert CPU) unless the byte budget
  /// would be exceeded; returns false on overflow WITHOUT inserting or
  /// consuming the tuple (the caller runs the eviction protocol and
  /// retries or redirects the still-valid tuple).
  bool Insert(storage::Tuple&& tuple, uint64_t hash);
  /// Copying convenience overload (tests, reference workloads).
  bool Insert(const storage::Tuple& tuple, uint64_t hash) {
    return Insert(storage::Tuple(tuple), hash);
  }

  /// Evicts every resident tuple with hash >= cutoff, charging the
  /// table-search CPU the paper blames for the overflow curve of
  /// Figure 7. Returns the evicted (hash, tuple) pairs.
  std::vector<std::pair<uint64_t, storage::Tuple>> EvictAtOrAbove(
      uint64_t cutoff);

  /// Removes and returns every resident whose hash satisfies `pred`,
  /// charging the same full-table search as an eviction scan. Used by
  /// adaptive repartitioning to migrate heavy-bin residents
  /// (gamma/rebalance.h); EvictAtOrAbove is the cutoff special case.
  template <typename Pred>
  std::vector<std::pair<uint64_t, storage::Tuple>> ExtractIf(Pred&& pred) {
    node_->ChargeCpu(static_cast<double>(entries_.size()) *
                         node_->cost().cpu_compare_seconds,
                     sim::CostCategory::kCompare);
    std::vector<std::pair<uint64_t, storage::Tuple>> extracted;
    std::vector<Entry> kept;
    kept.reserve(entries_.size());
    for (Entry& e : entries_) {
      if (pred(e.hash)) {
        bytes_used_ -= e.tuple.size();
        histogram_.Remove(e.hash);
        extracted.emplace_back(e.hash, std::move(e.tuple));
      } else {
        kept.push_back(std::move(e));
      }
    }
    entries_ = std::move(kept);
    RebuildChains();
    return extracted;
  }

  /// Probes with an outer key (charging probe + chain-compare CPU) and
  /// invokes `fn(resident_tuple)` for every key-equal match.
  template <typename Fn>
  void Probe(int32_t key, uint64_t hash, Fn&& fn) const {
    node_->ChargeCpu(node_->cost().cpu_ht_probe_seconds,
                     sim::CostCategory::kHtProbe);
    ++node_->counters().ht_probes;
    size_t compares = 0;
    for (uint32_t idx = heads_[SlotOf(hash)]; idx != kNil;
         idx = entries_[idx].next) {
      ++compares;
      if (entries_[idx].key == key) fn(entries_[idx].tuple);
    }
    node_->ChargeCpu(
        static_cast<double>(compares) * node_->cost().cpu_compare_seconds,
        sim::CostCategory::kCompare);
  }

  /// Invokes `fn(hash)` for every resident tuple (bit-filter rebuild).
  template <typename Fn>
  void ForEachResidentHash(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.hash);
  }

  size_t size() const { return entries_.size(); }
  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  const HashHistogram& histogram() const { return histogram_; }

  struct ChainStats {
    size_t tuples = 0;          // resident tuples
    size_t occupied_slots = 0;  // slots with at least one tuple
    int max = 0;                // longest chain

    double Average() const {
      return occupied_slots == 0
                 ? 0.0
                 : static_cast<double>(tuples) /
                       static_cast<double>(occupied_slots);
    }
  };
  /// Chain statistics over occupied slots (paper Section 4.4).
  ChainStats ComputeChainStats() const;

  /// Empties the table (between buckets / sub-joins). Frees no
  /// simulated memory cost — the budget is per sub-join.
  void Clear();

 private:
  struct Entry {
    uint64_t hash;
    int32_t key;
    uint32_t next;
    storage::Tuple tuple;
  };

  static constexpr uint32_t kNil = UINT32_MAX;

  size_t SlotOf(uint64_t hash) const {
    // Re-mix so slot choice is independent of the routing mod; equal
    // keys still collide (equal hash -> equal slot), forming the
    // duplicate chains the paper measures.
    return (hash * 0x9E3779B97F4A7C15ULL) >> shift_;
  }

  void RebuildChains();

  sim::Node* node_;
  const storage::Schema* schema_;
  int key_field_;
  uint64_t capacity_bytes_;
  uint64_t bytes_used_ = 0;
  int shift_;
  std::vector<uint32_t> heads_;
  std::vector<Entry> entries_;
  HashHistogram histogram_;
};

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_HASH_TABLE_H_
