// In-memory join hash table with the paper's overflow machinery.
//
// Tuples live in a contiguous arena in insertion order; lookups go
// through a flat open-addressing index of {hash, arena offset, key}
// slots (linear probing), so a probe touches one or two cache lines of
// slots and only reaches into the arena for actual matches — instead
// of the pointer chase a chained layout pays per chain hop — and
// ProbeBatch() issues software prefetches for a whole batch of probes
// before the compare loop.
//
// The SIMULATED cost model is unchanged from the chained layout: the
// old chain geometry (slot count sized for ~1 tuple per slot at
// capacity, slot = remixed hash high bits) is kept as the LOGICAL
// accounting geometry. A physical home is the logical slot scaled into
// the (larger) physical index, so every entry of a logical slot lies in
// the linear-probe run of that one home; counting the run's entries
// with the same logical slot reproduces the old chain length exactly,
// and every probe charges it in compares without any side lookup.
// ComputeChainStats() still reports the old occupied/max figures. A
// hash-value histogram is maintained alongside (paper Section 4.1) so
// that, on overflow, a cutoff hash value can be chosen whose eviction
// frees a requested fraction of memory. Capacity is a byte budget: the
// aggregate joining memory divided over the join nodes.
#ifndef GAMMA_JOIN_HASH_TABLE_H_
#define GAMMA_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "sim/memory_broker.h"
#include "sim/node.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace gammadb::join {

class JoinHashTable {
 public:
  /// Largest batch ProbeBatch accepts (bounds its stack scratch).
  static constexpr size_t kProbeBatchMax = 64;

  /// `capacity_bytes` bounds the summed serialized size of resident
  /// tuples; the logical slot count is sized for ~1 tuple per slot at
  /// capacity (the charged chain geometry), the physical index for a
  /// load factor <= 1/2 at capacity. When `broker` is non-null,
  /// admission is arbitrated by the node's shared budget instead of the
  /// private `capacity_bytes` ledger (sim/memory_broker.h): every
  /// insert reserves its bytes from the broker and every eviction,
  /// extraction, clear or destruction releases them. `capacity_bytes`
  /// still sizes the slot geometry either way.
  JoinHashTable(sim::Node* node, const storage::Schema* schema,
                int key_field, uint64_t capacity_bytes,
                sim::MemoryBroker* broker = nullptr);
  /// Releases any remaining broker reservation.
  ~JoinHashTable();

  /// Inserts the tuple (charging insert CPU) unless the byte budget
  /// would be exceeded; returns false on overflow WITHOUT inserting or
  /// consuming the tuple (the caller runs the eviction protocol and
  /// retries or redirects the still-valid tuple).
  bool Insert(storage::Tuple&& tuple, uint64_t hash);
  /// Copying convenience overload (tests, reference workloads). The
  /// byte-budget check runs BEFORE the copy so a rejected insert never
  /// pays for a wasted full tuple copy.
  bool Insert(const storage::Tuple& tuple, uint64_t hash) {
    if (!HasRoomFor(tuple.size())) return false;
    return Insert(storage::Tuple(tuple), hash);
  }

  /// Evicts every resident tuple with hash >= cutoff, charging the
  /// table-search CPU the paper blames for the overflow curve of
  /// Figure 7. Returns the evicted (hash, tuple) pairs.
  std::vector<std::pair<uint64_t, storage::Tuple>> EvictAtOrAbove(
      uint64_t cutoff);

  /// Removes and returns every resident whose hash satisfies `pred`,
  /// charging the same full-table search as an eviction scan. Used by
  /// adaptive repartitioning to migrate heavy-bin residents
  /// (gamma/rebalance.h); EvictAtOrAbove is the cutoff special case.
  template <typename Pred>
  std::vector<std::pair<uint64_t, storage::Tuple>> ExtractIf(Pred&& pred) {
    node_->ChargeCpu(static_cast<double>(entries_.size()) *
                         node_->cost().cpu_compare_seconds,
                     sim::CostCategory::kCompare);
    std::vector<std::pair<uint64_t, storage::Tuple>> extracted;
    std::vector<Entry> kept;
    kept.reserve(entries_.size());
    for (Entry& e : entries_) {
      if (pred(e.hash)) {
        ReleaseBytes(e.tuple.size());
        histogram_.Remove(e.hash);
        extracted.emplace_back(e.hash, std::move(e.tuple));
      } else {
        kept.push_back(std::move(e));
      }
    }
    entries_ = std::move(kept);
    RebuildIndex();
    return extracted;
  }

  /// Probes with an outer key (charging probe + chain-compare CPU) and
  /// invokes `fn(resident_tuple)` for every key-equal match, newest
  /// insert first (the chained layout probed its chains head-first, and
  /// match order is part of the byte-identical baseline contract).
  template <typename Fn>
  void Probe(int32_t key, uint64_t hash, Fn&& fn) const {
    node_->ChargeCpu(node_->cost().cpu_ht_probe_seconds,
                     sim::CostCategory::kHtProbe);
    ++node_->counters().ht_probes;
    match_scratch_.clear();
    const size_t compares =
        CollectCandidatesInto(hash, HomeSlot(hash), &match_scratch_);
    for (size_t i = match_scratch_.size(); i > 0; --i) {
      const Entry& e = entries_[match_scratch_[i - 1]];
      if (e.hash == hash && e.key == key) fn(e.tuple);
    }
    node_->ChargeCpu(
        static_cast<double>(compares) * node_->cost().cpu_compare_seconds,
        sim::CostCategory::kCompare);
  }

  /// Batched probe over `count` <= kProbeBatchMax outer tuples: three
  /// passes — (1) compute every probe's home and prefetch its slot
  /// line, (2) walk the (now resident) slot runs collecting candidates
  /// and charged compare counts while prefetching the candidate arena
  /// entries, (3) replay the EXACT per-probe charge sequence of Probe()
  /// in probe order, confirming each (now resident) candidate's hash
  /// and key against the arena and invoking `fn(i, resident_tuple)` for
  /// every key-equal match of probe i (newest insert first within a
  /// probe). The walk pass performs no charging, so the split cannot
  /// perturb the simulated metrics.
  template <typename Fn>
  void ProbeBatch(const int32_t* keys, const uint64_t* hashes, size_t count,
                  Fn&& fn) const {
    GAMMA_DCHECK(count <= kProbeBatchMax);
    size_t homes[kProbeBatchMax];
    for (size_t i = 0; i < count; ++i) homes[i] = HomeSlot(hashes[i]);
    for (size_t i = 0; i < count; ++i) {
      __builtin_prefetch(&slots_[homes[i]], /*rw=*/0, /*locality=*/1);
    }
    uint32_t compares[kProbeBatchMax];
    uint32_t candidate_ends[kProbeBatchMax];
    batch_scratch_.clear();
    for (size_t i = 0; i < count; ++i) {
      compares[i] = static_cast<uint32_t>(
          CollectCandidatesInto(hashes[i], homes[i], &batch_scratch_));
      candidate_ends[i] = static_cast<uint32_t>(batch_scratch_.size());
      for (size_t m = i == 0 ? 0 : candidate_ends[i - 1];
           m < candidate_ends[i]; ++m) {
        __builtin_prefetch(&entries_[batch_scratch_[m]], 0, 1);
      }
    }
    for (size_t i = 0; i < count; ++i) {
      node_->ChargeCpu(node_->cost().cpu_ht_probe_seconds,
                       sim::CostCategory::kHtProbe);
      ++node_->counters().ht_probes;
      const size_t begin = i == 0 ? 0 : candidate_ends[i - 1];
      for (size_t m = candidate_ends[i]; m > begin; --m) {
        const Entry& e = entries_[batch_scratch_[m - 1]];
        if (e.hash == hashes[i] && e.key == keys[i]) fn(i, e.tuple);
      }
      node_->ChargeCpu(static_cast<double>(compares[i]) *
                           node_->cost().cpu_compare_seconds,
                       sim::CostCategory::kCompare);
    }
  }

  /// Invokes `fn(hash)` for every resident tuple (bit-filter rebuild),
  /// in insertion order.
  template <typename Fn>
  void ForEachResidentHash(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.hash);
  }

  size_t size() const { return entries_.size(); }
  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  const HashHistogram& histogram() const { return histogram_; }

  struct ChainStats {
    size_t tuples = 0;          // resident tuples
    size_t occupied_slots = 0;  // slots with at least one tuple
    int max = 0;                // longest chain

    double Average() const {
      return occupied_slots == 0
                 ? 0.0
                 : static_cast<double>(tuples) /
                       static_cast<double>(occupied_slots);
    }
  };
  /// Chain statistics over occupied LOGICAL slots (paper Section 4.4) —
  /// identical to the chained layout's figures by construction.
  ChainStats ComputeChainStats() const;

  /// Empties the table (between buckets / sub-joins). Frees no
  /// simulated memory cost — the budget is per sub-join.
  void Clear();

 private:
  struct Entry {
    uint64_t hash;
    int32_t key;
    storage::Tuple tuple;
  };
  /// One open-addressing slot: the top 32 bits of the remixed hash (the
  /// "tag" — the logical slot is its high bits, so charged compare
  /// counting never touches the arena) and the arena index of its entry
  /// (kEmptySlot when free). 8 bytes, 8 slots per cache line: half the
  /// index memory a {hash, index} slot would take, which is most of the
  /// build-side win over the chained layout.
  struct Slot {
    uint32_t tag;
    uint32_t index;
  };

  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  /// Would an insert of `n` bytes be admitted right now? Broker mode
  /// asks the node's shared budget; otherwise the private ledger.
  bool HasRoomFor(uint32_t n) const {
    if (broker_ != nullptr) return n <= broker_->available(node_->id());
    return bytes_used_ + n <= capacity_bytes_;
  }

  /// Returns resident bytes to whichever ledger admitted them.
  void ReleaseBytes(uint32_t n) {
    bytes_used_ -= n;
    if (broker_ != nullptr) broker_->Release(node_->id(), n);
  }

  /// The stored slot tag: the remixed hash's top 32 bits. Tag equality
  /// is a 1-in-4-billion filter; a tag hit still confirms exact hash
  /// and key against the arena before matching.
  static uint32_t TagOf(uint64_t hash) {
    return static_cast<uint32_t>((hash * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  /// The LOGICAL (charged) slot of a hash — the chained layout's slot
  /// function, kept verbatim so charged chain lengths and chain stats
  /// are byte-identical. Re-mixed so slot choice is independent of the
  /// routing mod; equal keys still collide (equal hash -> equal slot),
  /// forming the duplicate chains the paper measures. Always
  /// reconstructible from a tag: slot counts never exceed 2^32, so the
  /// shift keeps the logical slot inside the tag's 32 bits.
  size_t LogicalSlotOf(uint64_t hash) const {
    return (hash * 0x9E3779B97F4A7C15ULL) >> logical_shift_;
  }
  size_t LogicalSlotOfTag(uint32_t tag) const {
    return static_cast<size_t>(tag) >> (logical_shift_ - 32);
  }

  /// The PHYSICAL home: the logical slot scaled into the physical
  /// index. Every entry of a logical slot shares one home, so its whole
  /// charged chain lies within that home's linear-probe run.
  size_t HomeSlot(uint64_t hash) const {
    return LogicalSlotOf(hash) << home_shift_;
  }

  /// Walks the linear-probe run from `home` until the first empty slot,
  /// appending the arena indices of tag-equal CANDIDATES to `out` and
  /// returning the charged compare count: the number of run entries
  /// sharing the probe's logical slot, i.e. the old chain length.
  /// Candidates still need the arena hash/key confirmation (done by the
  /// caller, after prefetch). Indices come out ascending (insertion
  /// order): along a probe run every same-hash entry sits before the
  /// first empty slot, and a later insert always lands further along
  /// the run than an earlier one. Pure — charges nothing.
  size_t CollectCandidatesInto(uint64_t hash, size_t home,
                               std::vector<uint32_t>* out) const {
    const size_t mask = slots_.size() - 1;
    const uint32_t tag = TagOf(hash);
    const uint32_t logical_bits = tag >> (logical_shift_ - 32);
    size_t compares = 0;
    for (size_t s = home; slots_[s].index != kEmptySlot;
         s = (s + 1) & mask) {
      if ((slots_[s].tag >> (logical_shift_ - 32)) != logical_bits) continue;
      ++compares;
      if (slots_[s].tag == tag) out->push_back(slots_[s].index);
    }
    return compares;
  }

  /// Places arena entry `index` into the physical index.
  void InsertPhysical(uint64_t hash, uint32_t index);
  /// Rebuilds the physical index from the arena (after extraction or
  /// eviction), reinserting in ascending arena order so the match-order
  /// invariant above keeps holding.
  void RebuildIndex();
  /// Doubles the physical index when its load factor exceeds 1/2
  /// (unreachable with the default sizing; a safety valve for
  /// migration-heavy tables).
  void GrowPhysicalIfNeeded();

  sim::Node* node_;
  const storage::Schema* schema_;
  int key_field_;
  uint64_t capacity_bytes_;
  sim::MemoryBroker* broker_;  // null = private capacity ledger
  uint64_t bytes_used_ = 0;
  int logical_shift_;
  size_t num_logical_slots_;
  int home_shift_;              // log2(physical slots / logical slots)
  std::vector<Slot> slots_;     // physical open-addressing index
  std::vector<Entry> entries_;  // arena, insertion order
  HashHistogram histogram_;
  /// Candidate-index scratch reused across probes (indices only, so a
  /// duplicate-heavy key costs pushes of 4 bytes, not tuple copies).
  mutable std::vector<uint32_t> match_scratch_;
  mutable std::vector<uint32_t> batch_scratch_;
};

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_HASH_TABLE_H_
