#include "join/hash_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "gamma/rebalance.h"
#include "gamma/scheduler.h"

namespace gammadb::join {

namespace {
/// Fraction of hash-table memory the overflow protocol tries to clear
/// per eviction round ("We currently try to clear 10% of the hash table
/// memory space when overflow is detected", paper Section 4.1).
constexpr double kClearFraction = 0.10;
}  // namespace

// ---------------------------------------------------------------------------
// BucketFileSet
// ---------------------------------------------------------------------------

BucketFileSet::BucketFileSet(sim::Machine* machine,
                             const std::vector<int>& disk_nodes,
                             const storage::Schema* schema, int num_buckets,
                             const std::string& label)
    : num_buckets_(num_buckets) {
  GAMMA_CHECK_GE(num_buckets, 0);
  files_.resize(static_cast<size_t>(num_buckets));
  for (int b = 1; b <= num_buckets; ++b) {
    auto& row = files_[static_cast<size_t>(b - 1)];
    row.reserve(disk_nodes.size());
    for (int node_id : disk_nodes) {
      row.push_back(std::make_unique<storage::HeapFile>(
          &machine->node(node_id), schema,
          label + ".b" + std::to_string(b) + ".d" + std::to_string(node_id)));
    }
  }
}

BucketFileSet::~BucketFileSet() {
  for (auto& row : files_) {
    for (auto& file : row) file->Free();
  }
}

storage::HeapFile& BucketFileSet::file(int bucket, size_t disk_index) {
  GAMMA_DCHECK(bucket >= 1 && bucket <= num_buckets_);
  return *files_[static_cast<size_t>(bucket - 1)][disk_index];
}

Status BucketFileSet::FlushFilesOwnedBy(int node_id) {
  for (auto& row : files_) {
    for (auto& file : row) {
      if (file->node()->id() == node_id) {
        GAMMA_RETURN_IF_ERROR(file->FlushAppends());
      }
    }
  }
  return Status::OK();
}

uint64_t BucketFileSet::BucketTuples(int bucket) const {
  uint64_t total = 0;
  for (const auto& file : files_[static_cast<size_t>(bucket - 1)]) {
    total += file->tuple_count();
  }
  return total;
}

void BucketFileSet::FreeBucket(int bucket) {
  for (auto& file : files_[static_cast<size_t>(bucket - 1)]) file->Free();
}

// ---------------------------------------------------------------------------
// HashJoinEngine
// ---------------------------------------------------------------------------

HashJoinEngine::HashJoinEngine(sim::Machine* machine, Config config)
    : machine_(machine),
      config_(std::move(config)),
      exchange_(machine),
      overflow_exchange_(machine),
      store_exchange_(machine) {
  GAMMA_CHECK(!config_.join_nodes.empty());
  GAMMA_CHECK(!config_.disk_nodes.empty());
  GAMMA_CHECK(config_.result != nullptr);
  GAMMA_CHECK(config_.stats != nullptr);
  jstate_.resize(config_.join_nodes.size());
  // "different overflow files are assigned to different disks". A join
  // process running on a disk node spools to its own disk (for local
  // joins "the transmission of the overflow tuples are all
  // shortcircuited", Section 4.1). Diskless join processes are spread
  // over the disks no disk-resident joiner claimed (falling back to all
  // disks), with an offset that keeps the assignment unaligned with the
  // split-table mod structure — this is why Simple's HPJA and non-HPJA
  // remote curves coincide in Figure 14.
  std::vector<int> free_disks;
  for (int disk : config_.disk_nodes) {
    bool claimed = false;
    for (int join_id : config_.join_nodes) {
      if (join_id == disk) claimed = true;
    }
    if (!claimed) free_disks.push_back(disk);
  }
  if (free_disks.empty()) free_disks = config_.disk_nodes;
  size_t next_free = 1 % free_disks.size();  // offset breaks alignment
  for (size_t ji = 0; ji < jstate_.size(); ++ji) {
    const sim::Node& join_node = machine_->node(config_.join_nodes[ji]);
    if (join_node.has_disk()) {
      jstate_[ji].host_disk_node = join_node.id();
    } else {
      jstate_[ji].host_disk_node = free_disks[next_free];
      next_free = (next_free + 1) % free_disks.size();
    }
    jstate_[ji].store_rr_next = ji;
  }
}

HashJoinEngine::~HashJoinEngine() {
  for (JoinNodeState& st : jstate_) {
    if (st.r_overflow != nullptr) st.r_overflow->Free();
    if (st.s_overflow != nullptr) st.s_overflow->Free();
  }
}

size_t HashJoinEngine::DiskIndexOf(int node_id) const {
  for (size_t i = 0; i < config_.disk_nodes.size(); ++i) {
    if (config_.disk_nodes[i] == node_id) return i;
  }
  GAMMA_CHECK(false) << "node " << node_id << " is not a disk node";
  return 0;
}

std::vector<int> HashJoinEngine::Participants(bool with_disk_nodes) const {
  std::vector<int> ids = config_.join_nodes;
  if (with_disk_nodes) {
    ids.insert(ids.end(), config_.disk_nodes.begin(),
               config_.disk_nodes.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void HashJoinEngine::StartSubJoin() {
  filter_.reset();
  rebalance_plan_ = db::RebalancePlan{};
  rebalance_rr_.clear();
  build_finalize_deferred_ = false;
  for (size_t ji = 0; ji < jstate_.size(); ++ji) {
    JoinNodeState& st = jstate_[ji];
    GAMMA_CHECK(st.r_overflow == nullptr && st.s_overflow == nullptr)
        << "StartSubJoin with unconsumed overflow files";
    st.cutoff = UINT64_MAX;
    if (st.table == nullptr) {
      st.table = std::make_unique<JoinHashTable>(
          &machine_->node(config_.join_nodes[ji]), config_.inner_schema,
          config_.inner_field, config_.capacity_bytes_per_node,
          config_.broker);
    } else {
      st.table->Clear();
    }
  }
}

void HashJoinEngine::EnsureOverflowFile(size_t ji, bool is_inner) {
  JoinNodeState& st = jstate_[ji];
  auto& slot = is_inner ? st.r_overflow : st.s_overflow;
  if (slot == nullptr) {
    const storage::Schema* schema =
        is_inner ? config_.inner_schema : config_.outer_schema;
    slot = std::make_unique<storage::HeapFile>(
        &machine_->node(st.host_disk_node), schema,
        std::string(is_inner ? "ovfl-R." : "ovfl-S.") + std::to_string(ji) +
            "." + std::to_string(overflow_file_counter_));
  }
}

void HashJoinEngine::SpoolToOverflow(sim::Node& from, size_t ji,
                                     bool is_inner, storage::Tuple&& t) {
  if (is_inner) EnsureOverflowFile(ji, true);
  // (Outer overflow files are pre-created before the probe phase so that
  // concurrent producers never race on creation.)
  const uint32_t bytes = t.size();
  // Broker ledger: bytes leaving the join process's memory for its
  // overflow file, booked against the process's node. Accounting only —
  // the write itself is charged by the disk-side drain.
  if (config_.broker != nullptr) {
    config_.broker->NoteSpill(config_.join_nodes[ji], bytes);
  }
  overflow_exchange_.Send(from.id(), jstate_[ji].host_disk_node,
                          OverflowMsg{std::move(t),
                                      static_cast<int32_t>(ji), is_inner},
                          bytes);
}

void HashJoinEngine::HandleBuildArrival(sim::Node& n, size_t ji,
                                        uint64_t hash, storage::Tuple&& t) {
  JoinNodeState& st = jstate_[ji];
  if (hash >= st.cutoff) {
    SpoolToOverflow(n, ji, /*is_inner=*/true, std::move(t));
    return;
  }
  // Insert only consumes the tuple on success; on overflow it is left
  // intact for the eviction-and-retry protocol below.
  while (!st.table->Insert(std::move(t), hash)) {
    // Overflow event: choose a cutoff clearing ~10% of memory and evict.
    ++n.counters().ht_overflows;
    const uint64_t new_cutoff =
        st.table->histogram().CutoffForFraction(kClearFraction);
    if (new_cutoff >= st.cutoff) {
      // Nothing left to evict below the current cutoff. With private
      // budgets this never happened (a failed insert implied a full,
      // non-empty table), but under the shared per-node broker a
      // co-resident process can drain the node's budget while THIS
      // table is still empty. Lower the cutoff to the arriving hash so
      // the resident-iff-below-cutoff invariant holds — the probe phase
      // relies on it to route outer tuples to the overflow file.
      st.cutoff = hash;
      for (auto& [eh, et] : st.table->EvictAtOrAbove(hash)) {
        SpoolToOverflow(n, ji, /*is_inner=*/true, std::move(et));
      }
      SpoolToOverflow(n, ji, /*is_inner=*/true, std::move(t));
      return;
    }
    st.cutoff = new_cutoff;
    for (auto& [eh, et] : st.table->EvictAtOrAbove(new_cutoff)) {
      SpoolToOverflow(n, ji, /*is_inner=*/true, std::move(et));
    }
    if (hash >= st.cutoff) {
      SpoolToOverflow(n, ji, /*is_inner=*/true, std::move(t));
      return;
    }
  }
}

void HashJoinEngine::HandleProbeBatch(sim::Node& n, size_t ji,
                                      const RoutedTuple* msgs, size_t count) {
  GAMMA_DCHECK(count <= JoinHashTable::kProbeBatchMax);
  JoinNodeState& st = jstate_[ji];
  int32_t keys[JoinHashTable::kProbeBatchMax];
  uint64_t hashes[JoinHashTable::kProbeBatchMax];
  // Key extraction is uncharged (as in the scalar probe path); hoisting
  // it out of the probe loop lets ProbeBatch prefetch every probe's
  // index line before the first compare.
  const storage::Schema& schema = *config_.outer_schema;
  const size_t field = static_cast<size_t>(config_.outer_field);
  for (size_t k = 0; k < count; ++k) {
    keys[k] = schema.GetInt32(msgs[k].data, field);
    hashes[k] = msgs[k].hash;
  }
  st.table->ProbeBatch(
      keys, hashes, count, [&](size_t k, const storage::Tuple& r) {
        n.ChargeCpu(n.cost().cpu_build_result_seconds,
                    sim::CostCategory::kBuildResult);
        storage::Tuple result =
            storage::Tuple::Concat(r, msgs[k].data, msgs[k].size);
        ++n.counters().result_tuples;
        const size_t di = st.store_rr_next++ % config_.disk_nodes.size();
        const uint32_t bytes = result.size();
        store_exchange_.Send(n.id(), config_.disk_nodes[di],
                             std::move(result), bytes);
      });
}

void HashJoinEngine::RouteBlock(sim::Node& n, const db::SplitTable& table,
                                uint64_t seed, Side side,
                                const storage::TupleBlock& block,
                                const db::PredicateList* predicate,
                                RouteScratch* s) {
  const storage::Schema& schema =
      side == Side::kInner ? *config_.inner_schema : *config_.outer_schema;
  const int field =
      side == Side::kInner ? config_.inner_field : config_.outer_field;
  const size_t count = block.size();
  const bool has_pred = predicate != nullptr && !predicate->empty();

  // Pass 1 (uncharged, batch-friendly): keys, predicate verdicts,
  // hashes and split-table indices for the whole block. Hashing a tuple
  // the predicate later drops is harmless — nothing here charges or
  // mutates engine state.
  for (size_t i = 0; i < count; ++i) {
    const uint8_t* data = block.view(i).data;
    s->keys[i] = schema.GetInt32(data, static_cast<size_t>(field));
    s->pred_ok[i] = !has_pred || db::EvalAll(*predicate, schema, data);
  }
  for (size_t i = 0; i < count; ++i) {
    s->hashes[i] = HashJoinAttribute(s->keys[i], seed);
  }
  table.RouteIndices(s->hashes.data(), count, s->route.data());

  // Pass 2 (sequential): the scalar path's per-tuple charge chain
  // (read, predicate, route, filter), routing decisions, overflow
  // spools and rebalance cursor updates, in scan order — so the
  // floating-point accumulation order is identical tuple for tuple.
  size_t m = 0;
  for (size_t i = 0; i < count; ++i) {
    n.ChargeCpu(n.cost().cpu_read_tuple_seconds,
                sim::CostCategory::kReadTuple);
    if (has_pred) {
      n.ChargeCpu(n.cost().cpu_predicate_seconds,
                  sim::CostCategory::kPredicate);
      if (!s->pred_ok[i]) continue;
    }
    const uint64_t hash = s->hashes[i];
    n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                sim::CostCategory::kHashRoute);
    const db::SplitEntry& entry = table.entry(s->route[i]);
    const uint32_t bytes = block.view(i).size;

    if (entry.bucket > 0) {
      // Forming-filter extension: outer tuples failing the filter built
      // during the inner relation's bucket-forming pass are dropped
      // before they are ever transmitted or stored.
      if (side == Side::kOuter && forming_filter_ != nullptr) {
        n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                    sim::CostCategory::kFilterOp);
        if (!forming_filter_->MayContain(
                static_cast<int>(DiskIndexOf(entry.node)), hash)) {
          ++n.counters().filter_drops;
          continue;
        }
      }
      exchange_.Account(n.id(), entry.node, bytes);
      s->staged[m] = RoutedTuple{
          block.view(i).data, bytes, hash,
          side == Side::kInner ? kBucketInner : kBucketOuter, entry.bucket};
      s->send_dest[m] = entry.node;
      ++m;
      continue;
    }

    // Bucket-0 (joining) entries occupy the first J table slots in both
    // the joining and Hybrid-partitioning layouts, so the entry index
    // IS the join PROCESS index — the paper's split tables are
    // per-process, which permits several join processes on one node
    // (Appendix A's "fifth join process" remedy).
    size_t ji = s->route[i];
    GAMMA_DCHECK(ji < jstate_.size());
    GAMMA_DCHECK(config_.join_nodes[ji] == entry.node);
    if (side == Side::kInner) {
      exchange_.Account(n.id(), entry.node, bytes);
      s->staged[m] = RoutedTuple{block.view(i).data, bytes, hash, kBuild,
                                 static_cast<int32_t>(ji)};
      s->send_dest[m] = entry.node;
      ++m;
      continue;
    }

    // Rebalanced routing: an overridden bin's probe tuples go to its
    // destination set instead of the static (mod J) process — each
    // tuple to exactly ONE destination, chosen by this producer's
    // per-bin round-robin cursor, so a replicated bin's probes spread
    // evenly and every result pair is still produced exactly once.
    if (rebalance_plan_.active) {
      if (const std::vector<int>* dests =
              rebalance_plan_.DestinationsFor(hash)) {
        uint32_t& rr =
            rebalance_rr_[DiskIndexOf(n.id())][rebalance_plan_.BinOf(hash)];
        ji = static_cast<size_t>((*dests)[rr++ % dests->size()]);
      }
    }
    const int dest_node = config_.join_nodes[ji];

    // Outer side: the augmented split table routes overflow-range
    // tuples "directly to the S' overflow files" (Section 3.2, step 3).
    if (hash >= jstate_[ji].cutoff) {
      SpoolToOverflow(n, ji, /*is_inner=*/false,
                      storage::Tuple(block.view(i).data, bytes));
      continue;
    }
    if (filter_ != nullptr) {
      n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                  sim::CostCategory::kFilterOp);
      if (!filter_->MayContain(static_cast<int>(ji), hash)) {
        ++n.counters().filter_drops;
        continue;
      }
    }
    exchange_.Account(n.id(), dest_node, bytes);
    s->staged[m] = RoutedTuple{block.view(i).data, bytes, hash, kProbe,
                               static_cast<int32_t>(ji)};
    s->send_dest[m] = dest_node;
    ++m;
  }
  if (m == 0) return;

  // Pass 3: stable counting sort of the staged views by destination,
  // then one SendBatch per destination. Within a lane the views land in
  // scan order — exactly the per-tuple Send() order — and only the
  // 24-byte view moves; the payload bytes stay on the disk page until a
  // consumer stores them.
  std::fill(s->dest_counts.begin(), s->dest_counts.end(), 0);
  for (size_t k = 0; k < m; ++k) {
    ++s->dest_counts[static_cast<size_t>(s->send_dest[k])];
  }
  uint32_t run = 0;
  for (size_t d = 0; d < s->dest_counts.size(); ++d) {
    s->dest_starts[d] = run;
    run += s->dest_counts[d];
  }
  for (size_t k = 0; k < m; ++k) {
    s->send_order[s->dest_starts[static_cast<size_t>(s->send_dest[k])]++] =
        static_cast<uint32_t>(k);
  }
  for (size_t d = 0; d < s->dest_counts.size(); ++d) {
    const uint32_t c = s->dest_counts[d];
    if (c == 0) continue;
    const uint32_t start = s->dest_starts[d] - c;  // starts moved to ends
    exchange_.SendBatch(
        n.id(), static_cast<int>(d), c, [&](size_t k, RoutedTuple& out) {
          out = s->staged[s->send_order[start + k]];
        });
  }
}

Status HashJoinEngine::DrainDiskSide(sim::Node& n, BucketFileSet* buckets) {
  // Both inboxes are always drained in full (the exchange must be empty
  // at the phase barrier even when a write fails); only the FIRST error
  // is kept, and tuples after it are dropped — the restarted attempt
  // regenerates them.
  Status st_out;
  overflow_exchange_.DrainInboxBlocks(
      n.id(), [&](std::vector<OverflowMsg>& lane) {
        for (OverflowMsg& m : lane) {
          JoinNodeState& st = jstate_[static_cast<size_t>(m.join_index)];
          storage::HeapFile* file =
              m.is_inner ? st.r_overflow.get() : st.s_overflow.get();
          GAMMA_CHECK(file != nullptr);
          const Status append = file->Append(m.tuple);
          if (st_out.ok()) st_out = append;
        }
      });
  store_exchange_.DrainInboxBlocks(n.id(), [&](std::vector<storage::Tuple>&
                                                   lane) {
    const size_t di = DiskIndexOf(n.id());
    for (storage::Tuple& t : lane) {
      if (config_.capture != nullptr) {
        (*config_.capture)[di].AddConcatRecord(*config_.inner_schema,
                                               config_.inner_field, t.data(),
                                               t.size());
      }
      const Status append = config_.result->fragment(di).Append(t);
      if (st_out.ok()) st_out = append;
    }
  });
  if (buckets != nullptr) {
    const Status flush = buckets->FlushFilesOwnedBy(n.id());
    if (st_out.ok()) st_out = flush;
  }
  return st_out;
}

void HashJoinEngine::BuildFilterFromResidents() {
  filter_ = std::make_unique<db::BitFilterSet>(
      static_cast<int>(config_.join_nodes.size()));
  // Iterate PROCESSES grouped by node (a node may host several).
  machine_->RunOnNodes(Participants(false), [this](sim::Node& n) {
    for (size_t ji = 0; ji < jstate_.size(); ++ji) {
      if (config_.join_nodes[ji] != n.id()) continue;
      jstate_[ji].table->ForEachResidentHash([&](uint64_t hash) {
        n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                    sim::CostCategory::kFilterOp);
        filter_->Set(static_cast<int>(ji), hash);
      });
    }
  });
  db::ChargeFilterDistribution(*machine_,
                               static_cast<int>(config_.join_nodes.size()),
                               static_cast<int>(config_.disk_nodes.size()));
}

void HashJoinEngine::CollectChainStats() {
  for (const JoinNodeState& st : jstate_) {
    const JoinHashTable::ChainStats cs = st.table->ComputeChainStats();
    chain_tuples_total_ += cs.tuples;
    chain_slots_total_ += cs.occupied_slots;
    config_.stats->max_chain_length =
        std::max(config_.stats->max_chain_length, cs.max);
  }
  if (chain_slots_total_ > 0) {
    config_.stats->avg_chain_length =
        static_cast<double>(chain_tuples_total_) /
        static_cast<double>(chain_slots_total_);
  }
}

Status HashJoinEngine::MaybeRebalance(const std::string& label) {
  if (!config_.rebalance.enabled) return Status::OK();
  const size_t num_processes = jstate_.size();
  machine_->BeginPhase(label);

  // Each join site scans its resident histogram (charged like any other
  // table scan of that length) and ships the counts to the scheduler.
  std::vector<std::vector<uint64_t>> counts(num_processes);
  machine_->RunOnNodes(Participants(false), [&](sim::Node& n) {
    for (size_t ji = 0; ji < num_processes; ++ji) {
      if (config_.join_nodes[ji] != n.id()) continue;
      const HashHistogram& h = jstate_[ji].table->histogram();
      counts[ji].resize(h.num_bins());
      for (uint32_t b = 0; b < h.num_bins(); ++b) {
        counts[ji][b] = h.bin_count(b);
      }
      n.ChargeCpu(
          static_cast<double>(h.num_bins()) * n.cost().cpu_compare_seconds,
          sim::CostCategory::kCompare);
    }
  });

  // An overflow-engaged sub-join keeps the static route: overflow files
  // were already written under the static mapping, and replicated
  // residents would reach overflow resolution twice.
  bool overflow_engaged = false;
  for (const JoinNodeState& st : jstate_) {
    if (st.cutoff != UINT64_MAX) overflow_engaged = true;
  }
  rebalance_plan_ = db::RebalancePlan{};
  if (!overflow_engaged) {
    rebalance_plan_ = db::ComputeRebalancePlan(
        counts, config_.inner_schema->tuple_bytes(),
        config_.capacity_bytes_per_node, config_.rebalance);
  }
  db::ChargeRebalance(*machine_, static_cast<int>(num_processes),
                      static_cast<int>(config_.disk_nodes.size()),
                      rebalance_plan_.SerializedBytes());

  if (rebalance_plan_.active) {
    ++machine_->node(config_.join_nodes[0]).counters().rebalance_plans;
    rebalance_rr_.resize(config_.disk_nodes.size());
    for (size_t di = 0; di < rebalance_rr_.size(); ++di) {
      rebalance_rr_[di].assign(rebalance_plan_.num_bins,
                               static_cast<uint32_t>(di));
    }

    // Round A: every process extracts its overridden-bin residents and
    // ships a view to each destination (possibly itself — a
    // short-circuited local delivery). The extracted tuples are parked
    // in `migrated` so the views stay valid until round B drains them;
    // replicas share one backing tuple.
    std::vector<std::vector<std::pair<uint64_t, storage::Tuple>>> migrated(
        num_processes);
    machine_->RunOnNodes(Participants(false), [&](sim::Node& n) {
      for (size_t ji = 0; ji < num_processes; ++ji) {
        if (config_.join_nodes[ji] != n.id()) continue;
        migrated[ji] = jstate_[ji].table->ExtractIf([&](uint64_t hash) {
          return rebalance_plan_.DestinationsFor(hash) != nullptr;
        });
        for (const auto& [hash, tuple] : migrated[ji]) {
          const std::vector<int>& dests =
              *rebalance_plan_.DestinationsFor(hash);
          ++n.counters().rebalance_moved_tuples;
          n.counters().rebalance_replica_tuples +=
              static_cast<int64_t>(dests.size()) - 1;
          for (size_t k = 0; k < dests.size(); ++k) {
            exchange_.Send(
                n.id(), config_.join_nodes[static_cast<size_t>(dests[k])],
                RoutedTuple{tuple.data(), tuple.size(), hash, kMigrate,
                            dests[k]},
                tuple.size());
          }
        }
      }
    });

    // Round B: destinations absorb the migrated residents. The plan's
    // feasibility math is exact (fixed-width tuples), so an insert here
    // can never overflow.
    machine_->RunOnNodes(Participants(false), [&](sim::Node& n) {
      exchange_.DrainInboxBlocks(n.id(), [&](std::vector<RoutedTuple>& lane) {
        for (RoutedTuple& m : lane) {
          GAMMA_DCHECK(m.kind == kMigrate);
          JoinNodeState& st = jstate_[static_cast<size_t>(m.aux)];
          GAMMA_CHECK(st.table->Insert(storage::Tuple(m.data, m.size),
                                       m.hash))
              << "rebalance migration overflowed a hash table";
        }
      });
    });
  }

  // Deferred build-side finalization: the bit filter is built from the
  // post-migration residency (stale pre-migration bits would be false
  // NEGATIVES at the new destinations and drop results).
  if (build_finalize_deferred_) {
    build_finalize_deferred_ = false;
    if (config_.use_bit_filters) BuildFilterFromResidents();
    CollectChainStats();
  }
  return machine_->EndPhase();
}

Status HashJoinEngine::PartitionPhase(const std::string& label,
                                      const db::SplitTable& table,
                                      const std::vector<Producer>& producers,
                                      uint64_t seed, Side side,
                                      BucketFileSet* buckets) {
  GAMMA_CHECK_EQ(producers.size(), config_.disk_nodes.size());
  const bool has_stored_buckets = table.MaxBucket() > 0;
  if (has_stored_buckets && buckets == nullptr) {
    return Status::InvalidArgument(
        "split table has stored buckets but no bucket files given");
  }

  if (side == Side::kOuter) {
    // Pre-create S-overflow files for every join node whose hash table
    // overflowed (the producers ship straight to them).
    for (size_t ji = 0; ji < jstate_.size(); ++ji) {
      if (jstate_[ji].cutoff != UINT64_MAX) EnsureOverflowFile(ji, false);
    }
  } else if (has_stored_buckets && config_.use_bit_filters &&
             config_.use_forming_bit_filters) {
    forming_filter_ = std::make_unique<db::BitFilterSet>(
        static_cast<int>(config_.disk_nodes.size()));
  }

  machine_->BeginPhase(label);
  const int consumers =
      static_cast<int>(config_.join_nodes.size()) +
      (has_stored_buckets ? static_cast<int>(config_.disk_nodes.size()) : 0);
  db::ChargeOperatorPhase(*machine_,
                          static_cast<int>(config_.disk_nodes.size()),
                          consumers, table.SerializedBytes());

  // Every round runs to completion even after an error: the exchanges
  // must be fully drained at each barrier so a failed attempt leaves no
  // stale messages behind for the restarted one. Only the first error
  // is reported.
  Status phase_status;

  // Round A: producers scan blocks and route them.
  {
    const Status round = machine_->TryRunOnNodes(
        config_.disk_nodes, [&](sim::Node& n) -> Status {
          const size_t di = DiskIndexOf(n.id());
          RouteScratch scratch(static_cast<size_t>(machine_->num_nodes()));
          return producers[di].scan(n, [&](const storage::TupleBlock& block) {
            RouteBlock(n, table, seed, side, block, producers[di].predicate,
                       &scratch);
          });
        });
    if (phase_status.ok()) phase_status = round;
  }

  // Round B: consumers build/probe/append, one inbox lane (= one sender
  // block) at a time. Runs of probe arrivals for the same join process
  // go through the prefetching batched probe; concatenated lane order
  // equals the old consolidated TakeInbox order, so the charge sequence
  // is unchanged.
  {
    const Status round = machine_->TryRunOnNodes(
        Participants(has_stored_buckets), [&](sim::Node& n) -> Status {
          Status st;
          exchange_.DrainInboxBlocks(n.id(), [&](std::vector<RoutedTuple>&
                                                     lane) {
            const size_t items = lane.size();
            for (size_t p = 0; p < items;) {
              RoutedTuple& m = lane[p];
              if (m.kind == kProbe) {
                size_t len = 1;
                while (p + len < items &&
                       len < JoinHashTable::kProbeBatchMax &&
                       lane[p + len].kind == kProbe &&
                       lane[p + len].aux == m.aux) {
                  ++len;
                }
                HandleProbeBatch(n, static_cast<size_t>(m.aux), &lane[p],
                                 len);
                p += len;
                continue;
              }
              switch (m.kind) {
                case kBuild:
                  HandleBuildArrival(n, static_cast<size_t>(m.aux), m.hash,
                                     storage::Tuple(m.data, m.size));
                  break;
                case kBucketInner:
                  if (forming_filter_ != nullptr) {
                    // Each receiving disk site contributes its slice as
                    // inner tuples arrive to be stored.
                    n.ChargeCpu(n.cost().cpu_filter_op_seconds,
                                sim::CostCategory::kFilterOp);
                    forming_filter_->Set(
                        static_cast<int>(DiskIndexOf(n.id())), m.hash);
                  }
                  [[fallthrough]];
                case kBucketOuter: {
                  const Status append =
                      buckets->file(m.aux, DiskIndexOf(n.id()))
                          .AppendRecord(m.data);
                  if (st.ok()) st = append;
                  break;
                }
              }
              ++p;
            }
          });
          return st;
        });
    if (phase_status.ok()) phase_status = round;
  }

  // End of the build side: materialize the bit filter and record chain
  // statistics before any probing happens. Pure bucket-forming tables
  // (Grace) have no immediate bucket, hence nothing resident to filter
  // ("filtering is only applied during bucket-joining", Section 4.2).
  // With adaptive repartitioning the finalization is deferred into
  // MaybeRebalance (which always runs next): the filter slices are
  // keyed by join-process index, so they must be built from the
  // residency AFTER any heavy-bin migration.
  if (side == Side::kInner && table.HasImmediateBucket()) {
    if (config_.rebalance.enabled) {
      build_finalize_deferred_ = true;
    } else {
      if (config_.use_bit_filters) BuildFilterFromResidents();
      CollectChainStats();
    }
  }
  if (side == Side::kInner && forming_filter_ != nullptr &&
      has_stored_buckets) {
    // Gather the forming-filter slices and broadcast the packet to the
    // outer relation's producers before its forming pass starts.
    db::ChargeFilterDistribution(*machine_,
                                 static_cast<int>(config_.disk_nodes.size()),
                                 static_cast<int>(config_.disk_nodes.size()));
  }

  // Round C: disk side absorbs overflow spool, result store and bucket
  // flushes.
  {
    const Status round = machine_->TryRunOnNodes(
        config_.disk_nodes,
        [&](sim::Node& n) -> Status { return DrainDiskSide(n, buckets); });
    if (phase_status.ok()) phase_status = round;
  }

  const Status end = machine_->EndPhase();
  if (phase_status.ok()) phase_status = end;
  return phase_status;
}

bool HashJoinEngine::AnyOverflow() const {
  for (const JoinNodeState& st : jstate_) {
    if (st.r_overflow != nullptr || st.s_overflow != nullptr) return true;
  }
  return false;
}

uint64_t HashJoinEngine::OverflowLevelSeed(uint64_t base_seed, int level) {
  // "the hash function is changed after each overflow" (Section 4.1).
  // The derivation must mix the LEVEL through the full hash, not just
  // offset the seed: HashJoinAttribute is Mix64(key + seed), so a
  // `base + level` seed makes the level-L hash of key k equal the
  // level-0 hash of key k+L — over a contiguous key domain every level
  // reproduces (a one-key shift of) the level-0 hash multiset, and the
  // heavy cutoff RANGE that overflowed level 0 survives every
  // repartition. Mixing the level gives each level an unrelated hash
  // family; level 0 keeps the caller's seed so HPJA placement still
  // lines up with the loader.
  if (level == 0) return base_seed;
  return Mix64(base_seed ^
               (kDefaultHashSeed * static_cast<uint64_t>(level)));
}

Status HashJoinEngine::ResolveOverflows(const std::string& label,
                                        uint64_t base_seed) {
  int level = 0;
  uint64_t prev_inner_tuples = UINT64_MAX;
  while (AnyOverflow()) {
    ++level;
    uint64_t pending_inner_tuples = 0;
    for (const JoinNodeState& js : jstate_) {
      if (js.r_overflow != nullptr) {
        pending_inner_tuples += js.r_overflow->tuple_count();
      }
    }
    // Degrade instead of failing when recursion cannot help: either the
    // depth cap is hit, or the last repartition failed to shrink the
    // inner overflow partition (all tuples share one key, or the budget
    // is smaller than one key-group) — another rehash would loop
    // forever on the same bytes.
    if (level > config_.max_overflow_levels ||
        pending_inner_tuples >= prev_inner_tuples) {
      return NestedLoopFallback(label,
                                OverflowLevelSeed(base_seed, level));
    }
    prev_inner_tuples = pending_inner_tuples;
    config_.stats->overflow_levels =
        std::max(config_.stats->overflow_levels, level);

    struct Taken {
      std::unique_ptr<storage::HeapFile> r, s;
    };
    std::vector<Taken> taken(jstate_.size());
    for (size_t ji = 0; ji < jstate_.size(); ++ji) {
      taken[ji].r = std::move(jstate_[ji].r_overflow);
      taken[ji].s = std::move(jstate_[ji].s_overflow);
    }

    ++overflow_file_counter_;
    StartSubJoin();
    const uint64_t seed = OverflowLevelSeed(base_seed, level);
    const db::SplitTable joining = db::SplitTable::Joining(config_.join_nodes);

    const auto make_producers = [&](bool inner_side) {
      std::vector<Producer> producers;
      producers.reserve(config_.disk_nodes.size());
      for (size_t di = 0; di < config_.disk_nodes.size(); ++di) {
        const int host = config_.disk_nodes[di];
        producers.push_back(Producer{
            [this, host, &taken, inner_side](
                sim::Node& n, const BlockYield& yield) -> Status {
              GAMMA_CHECK_EQ(n.id(), host);
              for (size_t ji = 0; ji < jstate_.size(); ++ji) {
                if (jstate_[ji].host_disk_node != host) continue;
                storage::HeapFile* file =
                    inner_side ? taken[ji].r.get() : taken[ji].s.get();
                if (file == nullptr) continue;
                GAMMA_RETURN_IF_ERROR(file->FlushAppends());
                if (config_.broker != nullptr) {
                  config_.broker->NoteRefill(n.id(), file->data_bytes());
                }
                exchange_.ReserveRow(n.id(), file->tuple_count());
                auto scanner = file->Scan();
                storage::TupleBlock block;
                while (scanner.NextBlock(&block)) yield(block);
                GAMMA_RETURN_IF_ERROR(scanner.status());
              }
              return Status::OK();
            },
            nullptr});
      }
      return producers;
    };

    const std::string level_tag = " L" + std::to_string(level);
    Status st = PartitionPhase(label + " build" + level_tag, joining,
                               make_producers(true), seed, Side::kInner,
                               nullptr);
    if (st.ok()) st = MaybeRebalance(label + " rebalance" + level_tag);
    if (st.ok()) {
      st = PartitionPhase(label + " probe" + level_tag, joining,
                          make_producers(false), seed, Side::kOuter, nullptr);
    }
    // Free the consumed level's files on failure too: the restarted
    // attempt rebuilds its overflow partitions from scratch.
    for (Taken& t : taken) {
      if (t.r != nullptr) t.r->Free();
      if (t.s != nullptr) t.s->Free();
    }
    GAMMA_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Status HashJoinEngine::NestedLoopFallback(const std::string& label,
                                          uint64_t seed) {
  ++config_.stats->nested_loop_fallbacks;
  const size_t num_processes = jstate_.size();
  int pass = 0;
  while (AnyOverflow()) {
    ++pass;
    ++config_.stats->nested_loop_passes;

    struct Taken {
      std::unique_ptr<storage::HeapFile> r, s;
    };
    std::vector<Taken> taken(num_processes);
    for (size_t ji = 0; ji < num_processes; ++ji) {
      taken[ji].r = std::move(jstate_[ji].r_overflow);
      taken[ji].s = std::move(jstate_[ji].s_overflow);
    }
    ++overflow_file_counter_;
    StartSubJoin();
    const std::string pass_tag = " P" + std::to_string(pass);
    Status fallback_status;

    // Scans every file of `taken` on one side, shipping each tuple to
    // its join process with the per-tuple read + hash charges of the
    // routing path. No split table: a fallback tuple's destination is
    // the process whose overflow file held it.
    const auto run_scan_round = [&](bool inner_side, RoutedKind kind) {
      return machine_->TryRunOnNodes(
          config_.disk_nodes, [&](sim::Node& n) -> Status {
            for (size_t ji = 0; ji < num_processes; ++ji) {
              if (jstate_[ji].host_disk_node != n.id()) continue;
              storage::HeapFile* file =
                  inner_side ? taken[ji].r.get() : taken[ji].s.get();
              if (file == nullptr) continue;
              GAMMA_RETURN_IF_ERROR(file->FlushAppends());
              if (config_.broker != nullptr) {
                config_.broker->NoteRefill(n.id(), file->data_bytes());
              }
              exchange_.ReserveRow(n.id(), file->tuple_count());
              const storage::Schema& schema = inner_side
                                                  ? *config_.inner_schema
                                                  : *config_.outer_schema;
              const size_t field = static_cast<size_t>(
                  inner_side ? config_.inner_field : config_.outer_field);
              const int dest = config_.join_nodes[ji];
              auto scanner = file->Scan();
              storage::TupleBlock block;
              while (scanner.NextBlock(&block)) {
                for (size_t i = 0; i < block.size(); ++i) {
                  n.ChargeCpu(n.cost().cpu_read_tuple_seconds,
                              sim::CostCategory::kReadTuple);
                  n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                              sim::CostCategory::kHashRoute);
                  const uint64_t hash = HashJoinAttribute(
                      schema.GetInt32(block.view(i).data, field), seed);
                  exchange_.Send(n.id(), dest,
                                 RoutedTuple{block.view(i).data,
                                             block.view(i).size, hash, kind,
                                             static_cast<int32_t>(ji)},
                                 block.view(i).size);
                }
              }
              GAMMA_RETURN_IF_ERROR(scanner.status());
            }
            return Status::OK();
          });
    };

    // Build phase: FIFO-fill the resident tables from the remaining R
    // overflow — NO cutoff and NO eviction (the table is just the
    // resident-slice container; a slice is whatever prefix fits).
    // Rejected tuples re-spool for the next pass.
    machine_->BeginPhase(label + " nl build" + pass_tag);
    db::ChargeOperatorPhase(*machine_,
                            static_cast<int>(config_.disk_nodes.size()),
                            static_cast<int>(num_processes), 0);
    {
      const Status round = run_scan_round(true, kBuild);
      if (fallback_status.ok()) fallback_status = round;
    }
    // One overflow event per (pass, process) that could not take its
    // whole remaining file; per-process flags so concurrent consumer
    // tasks never share a byte.
    std::vector<uint8_t> rejected(num_processes, 0);
    {
      const Status round = machine_->TryRunOnNodes(
          Participants(false), [&](sim::Node& n) -> Status {
            exchange_.DrainInboxBlocks(
                n.id(), [&](std::vector<RoutedTuple>& lane) {
                  for (RoutedTuple& m : lane) {
                    const size_t ji = static_cast<size_t>(m.aux);
                    storage::Tuple t(m.data, m.size);
                    if (!jstate_[ji].table->Insert(std::move(t), m.hash)) {
                      if (rejected[ji] == 0) {
                        rejected[ji] = 1;
                        ++n.counters().ht_overflows;
                      }
                      SpoolToOverflow(n, ji, /*is_inner=*/true,
                                      std::move(t));
                    }
                  }
                });
            return Status::OK();
          });
      if (fallback_status.ok()) fallback_status = round;
    }
    {
      const Status round = machine_->TryRunOnNodes(
          config_.disk_nodes,
          [&](sim::Node& n) -> Status { return DrainDiskSide(n, nullptr); });
      if (fallback_status.ok()) fallback_status = round;
    }
    CollectChainStats();
    {
      const Status end = machine_->EndPhase();
      if (fallback_status.ok()) fallback_status = end;
    }

    // Which processes still hold un-resident R? Their S must survive
    // this pass: every probe of theirs is re-spooled after probing.
    std::vector<uint8_t> residual(num_processes, 0);
    for (size_t ji = 0; ji < num_processes; ++ji) {
      if (jstate_[ji].r_overflow != nullptr) {
        residual[ji] = 1;
        EnsureOverflowFile(ji, /*is_inner=*/false);
      }
    }

    // Probe phase: the FULL remaining S probes the resident slice. A
    // result pair (r, s) is produced in exactly one pass — the one
    // where r is resident — because slices partition the R overflow.
    if (fallback_status.ok()) {
      machine_->BeginPhase(label + " nl probe" + pass_tag);
      db::ChargeOperatorPhase(*machine_,
                              static_cast<int>(config_.disk_nodes.size()),
                              static_cast<int>(num_processes), 0);
      {
        const Status round = run_scan_round(false, kProbe);
        if (fallback_status.ok()) fallback_status = round;
      }
      {
        const Status round = machine_->TryRunOnNodes(
            Participants(false), [&](sim::Node& n) -> Status {
              exchange_.DrainInboxBlocks(
                  n.id(), [&](std::vector<RoutedTuple>& lane) {
                    const size_t items = lane.size();
                    for (size_t p = 0; p < items;) {
                      const RoutedTuple& m = lane[p];
                      size_t len = 1;
                      while (p + len < items &&
                             len < JoinHashTable::kProbeBatchMax &&
                             lane[p + len].aux == m.aux) {
                        ++len;
                      }
                      const size_t ji = static_cast<size_t>(m.aux);
                      HandleProbeBatch(n, ji, &lane[p], len);
                      if (residual[ji] != 0) {
                        for (size_t k = 0; k < len; ++k) {
                          SpoolToOverflow(
                              n, ji, /*is_inner=*/false,
                              storage::Tuple(lane[p + k].data,
                                             lane[p + k].size));
                        }
                      }
                      p += len;
                    }
                  });
              return Status::OK();
            });
        if (fallback_status.ok()) fallback_status = round;
      }
      {
        const Status round = machine_->TryRunOnNodes(
            config_.disk_nodes, [&](sim::Node& n) -> Status {
              return DrainDiskSide(n, nullptr);
            });
        if (fallback_status.ok()) fallback_status = round;
      }
      {
        const Status end = machine_->EndPhase();
        if (fallback_status.ok()) fallback_status = end;
      }
    }

    // Free the consumed pass's files on failure too: a restarted
    // attempt rebuilds its overflow partitions from scratch.
    for (Taken& t : taken) {
      if (t.r != nullptr) t.r->Free();
      if (t.s != nullptr) t.s->Free();
    }
    GAMMA_RETURN_IF_ERROR(fallback_status);
  }
  return Status::OK();
}

Status HashJoinEngine::RunSubJoin(const std::string& label,
                                  const std::vector<Producer>& build_producers,
                                  const std::vector<Producer>& probe_producers,
                                  uint64_t seed) {
  StartSubJoin();
  const db::SplitTable joining = db::SplitTable::Joining(config_.join_nodes);
  GAMMA_RETURN_IF_ERROR(PartitionPhase(label + " build", joining,
                                     build_producers, seed, Side::kInner,
                                     nullptr));
  GAMMA_RETURN_IF_ERROR(MaybeRebalance(label + " rebalance"));
  GAMMA_RETURN_IF_ERROR(PartitionPhase(label + " probe", joining,
                                     probe_producers, seed, Side::kOuter,
                                     nullptr));
  return ResolveOverflows(label + " ovfl", seed);
}

std::vector<Producer> HashJoinEngine::BucketProducers(BucketFileSet* files,
                                                      int bucket) {
  std::vector<Producer> producers;
  producers.reserve(config_.disk_nodes.size());
  for (size_t di = 0; di < config_.disk_nodes.size(); ++di) {
    producers.push_back(Producer{
        [this, files, bucket, di](sim::Node& n,
                                  const BlockYield& yield) -> Status {
          storage::HeapFile& file = files->file(bucket, di);
          exchange_.ReserveRow(n.id(), file.tuple_count());
          auto scanner = file.Scan();
          storage::TupleBlock block;
          while (scanner.NextBlock(&block)) yield(block);
          return scanner.status();
        },
        nullptr});
  }
  return producers;
}

std::vector<Producer> HashJoinEngine::RelationProducers(
    const db::StoredRelation* relation, const db::PredicateList* predicate) {
  GAMMA_CHECK_EQ(relation->num_fragments(), config_.disk_nodes.size());
  std::vector<Producer> producers;
  producers.reserve(config_.disk_nodes.size());
  for (size_t di = 0; di < config_.disk_nodes.size(); ++di) {
    // The predicate rides on the Producer; RouteBlock evaluates and
    // charges it per tuple between the read and route charges, exactly
    // where the scalar producer loop charged it.
    producers.push_back(Producer{
        [this, relation, di](sim::Node& n,
                             const BlockYield& yield) -> Status {
          exchange_.ReserveRow(n.id(), relation->fragment(di).tuple_count());
          auto scanner = relation->fragment(di).Scan();
          storage::TupleBlock block;
          while (scanner.NextBlock(&block)) yield(block);
          return scanner.status();
        },
        predicate});
  }
  return producers;
}

Status HashJoinEngine::FinalizeResult() {
  machine_->BeginPhase("store flush");
  Status flush_status = machine_->TryRunOnNodes(
      config_.disk_nodes, [this](sim::Node& n) -> Status {
        return config_.result->fragment(DiskIndexOf(n.id())).FlushAppends();
      });
  const Status end = machine_->EndPhase();
  if (flush_status.ok()) flush_status = end;
  return flush_status;
}

}  // namespace gammadb::join
