// Parallel sort-merge join (paper Section 3.1): hash-partition both
// relations across the disk nodes into temporary files, sort each local
// file with the WiSS sort utility, then merge-join in parallel at the
// disk sites. The join processors "always correspond exactly to the
// processors with disks".
#ifndef GAMMA_JOIN_SORT_MERGE_H_
#define GAMMA_JOIN_SORT_MERGE_H_

#include "common/status.h"
#include "gamma/catalog.h"
#include "gamma/rebalance.h"
#include "join/spec.h"
#include "sim/machine.h"

namespace gammadb::join {

struct SortMergeParams {
  const db::StoredRelation* inner;
  const db::StoredRelation* outer;
  int inner_field;
  int outer_field;
  const db::PredicateList* inner_predicate;
  const db::PredicateList* outer_predicate;
  /// Aggregate sort/merge memory in bytes (split evenly per node; also
  /// used for the outer relation's sort — the paper varies one budget).
  uint64_t memory_bytes;
  bool use_bit_filters;
  uint64_t hash_seed;
  db::StoredRelation* result;
  /// Skew-aware adaptive repartitioning (docs/skew.md): when enabled,
  /// the sites histogram R' as it arrives, and a heavy-bin override
  /// plan may redistribute R' (replicating heavy bins) before it is
  /// sorted; S then routes overridden bins to the new homes.
  db::RebalanceOptions rebalance{};
  /// Result capture (docs/testing.md): when non-null (parallel to the
  /// disk nodes), every result record appended to fragment i is also
  /// streamed into (*capture)[i]. Charges no simulated cost.
  std::vector<DigestAccumulator>* capture = nullptr;
};

Status RunSortMergeJoin(sim::Machine& machine, const SortMergeParams& params,
                        JoinStats* stats);

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_SORT_MERGE_H_
