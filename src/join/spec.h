// Public join API: what to join, with which parallel algorithm, under
// which resource constraints — plus the execution report that comes
// back.
#ifndef GAMMA_JOIN_SPEC_H_
#define GAMMA_JOIN_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "gamma/predicate.h"
#include "gamma/rebalance.h"
#include "join/digest.h"
#include "sim/metrics.h"

namespace gammadb::join {

enum class Algorithm {
  kSortMerge,
  kSimpleHash,
  kGraceHash,
  kHybridHash,
};

const char* AlgorithmName(Algorithm a);

struct JoinSpec {
  /// Inner (building, usually smaller) relation — the paper's R.
  std::string inner_relation;
  /// Outer (probing, larger) relation — the paper's S.
  std::string outer_relation;
  /// Join attributes (int32 fields; equality join).
  int inner_field = 0;
  int outer_field = 0;

  Algorithm algorithm = Algorithm::kHybridHash;

  /// Nodes executing the join computation. Empty = the disk nodes (the
  /// paper's "local" configuration). Sort-merge always joins at the disk
  /// nodes and rejects any other setting (paper Section 3.1).
  std::vector<int> join_nodes;

  /// Aggregate joining memory as a fraction of the inner relation's
  /// size (the x-axis of every figure in the paper).
  double memory_ratio = 1.0;
  /// Optimizer selectivity estimate: the number of inner tuples that
  /// survive inner_predicate. Bases memory_ratio and the Grace/Hybrid
  /// bucket count on the post-selection size (joinAselB-style queries).
  /// Unset = the full inner relation.
  std::optional<uint64_t> estimated_inner_tuples;
  /// Overrides memory_ratio with an absolute aggregate byte budget.
  std::optional<uint64_t> memory_bytes;
  /// Headroom multiplier on per-node hash-table capacity. Models the
  /// gap between raw tuple bytes and allocated hash-table space, and
  /// absorbs binomial placement variance: the paper states that at the
  /// plotted integral-bucket memory ratios "neither Grace or Hybrid
  /// joins ever experienced hash table overflow", which requires
  /// roughly max-cell/mean-cell headroom (~1.3 at 10 buckets x 8
  /// nodes). Set to 0 to study overflow onset (Figure 7).
  double memory_slack = 0.35;

  bool use_bit_filters = false;

  /// Extension (paper Section 4.2 / 4.4 future work): also build a bit
  /// filter over the inner relation during the BUCKET-FORMING phase of
  /// Grace/Hybrid and apply it to the outer relation's forming pass, so
  /// eliminated tuples are never written to bucket files at all. The
  /// paper predicts this "would significantly increase the performance
  /// of these algorithms"; bench/ext_forming_filters quantifies it.
  /// Requires use_bit_filters; ignored by Simple and sort-merge.
  bool use_forming_bit_filters = false;

  /// Extension (docs/skew.md): skew-aware adaptive repartitioning.
  /// After each sub-join's build the engines gather resident histogram
  /// counts and may override heavy bins' routing for the probing phase
  /// (dedicated or replicated destinations). All statistics exchange,
  /// migration and broadcast work is charged through the cost model.
  /// Works for all four algorithms; no-op on skew-free inputs.
  bool adaptive_repartition = false;
  /// Thresholds for the rebalance decision (enabled is derived from
  /// adaptive_repartition; the flag here is ignored).
  db::RebalanceOptions rebalance;

  /// Grace/Hybrid: overrides the optimizer's ceil(|R| / memory) choice.
  std::optional<int> num_buckets;
  /// Run the Appendix A bucket analyzer over the chosen bucket count.
  bool use_bucket_analyzer = true;

  /// Seed of the join hash function h; overflow resolution derives a
  /// level-distinct h', h'', ... from it (the paper's changed-hash-
  /// function rule; docs/overflow.md). Must match the loading seed for
  /// HPJA behaviour.
  uint64_t hash_seed = kDefaultHashSeed;

  /// Cap on overflow-resolution recursion depth (docs/overflow.md).
  /// A sub-join still overflowing after this many repartition levels —
  /// or one whose overflow partition stops shrinking (duplicate-heavy
  /// keys no rehash can split) — degrades to the deterministic
  /// block-nested-loop fallback instead of failing. 0 means the first
  /// overflow goes straight to the fallback; must be >= 0.
  int max_overflow_levels = 16;

  /// Selections applied by the scan operators (joinAselB etc.).
  db::PredicateList inner_predicate;
  db::PredicateList outer_predicate;

  /// Name for the stored result relation ("" = derived automatically).
  std::string result_name;

  /// Testing (docs/testing.md): stream every stored result pair into an
  /// order-insensitive multiset digest (join/digest.h), returned as
  /// JoinOutput::result_digest and compared against the independent
  /// nested-loop oracle by the correctness tests and tools/join_fuzz.
  /// Capture is pure observation: it charges no simulated cost, so with
  /// the knob OFF every metric is byte-identical to a build without the
  /// capture code, and with it ON the metrics do not change either —
  /// only the digest appears.
  bool capture_results = false;
};

/// Algorithm-level observations accompanying the time metrics.
struct JoinStats {
  int num_buckets = 1;
  /// Overflow recursion depth (0 = no hash-table overflow anywhere).
  int overflow_levels = 0;
  int64_t overflow_events = 0;
  /// Hash-chain statistics over all build phases (paper Section 4.4
  /// reports 3.3 average / 16 maximum for the NU distribution).
  double avg_chain_length = 0;
  int max_chain_length = 0;
  /// External-sort intermediate merge passes (max over nodes).
  int inner_sort_passes = 0;
  int outer_sort_passes = 0;
  size_t result_tuples = 0;
  /// Tuples of the outer relation eliminated by bit filters.
  int64_t filter_drops = 0;
  /// Adaptive repartitioning (docs/skew.md): all zero unless a plan
  /// activated, and only then serialized by the bench harness.
  int64_t rebalance_plans = 0;
  int64_t rebalance_moved_tuples = 0;
  int64_t rebalance_replica_tuples = 0;
  /// Block-nested-loop overflow fallback (docs/overflow.md): number of
  /// sub-joins that degraded, and the total resident-slice passes they
  /// ran. Zero (and unserialized) unless a fallback fired.
  int64_t nested_loop_fallbacks = 0;
  int64_t nested_loop_passes = 0;
  /// Memory-broker ledger (sim/memory_broker.h): bytes spooled out of
  /// build memory to overflow files and re-read from them by overflow
  /// resolution. Zero (and unserialized) on no-overflow runs.
  int64_t spill_bytes = 0;
  int64_t refill_bytes = 0;
};

struct JoinOutput {
  sim::RunMetrics metrics;
  JoinStats stats;
  /// Name of the stored result relation (round-robin declustered).
  std::string result_relation;
  /// Multiset digest of the result pairs; set iff
  /// JoinSpec::capture_results was on (docs/testing.md).
  std::optional<ResultDigest> result_digest;

  double response_seconds() const { return metrics.response_seconds; }
};

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_SPEC_H_
