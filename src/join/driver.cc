#include "join/driver.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "gamma/bucket_analyzer.h"
#include "gamma/split_table.h"
#include "join/hash_engine.h"
#include "join/sort_merge.h"
#include "sim/memory_broker.h"
#include "sim/trace.h"

namespace gammadb::join {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSortMerge:
      return "sort-merge";
    case Algorithm::kSimpleHash:
      return "simple-hash";
    case Algorithm::kGraceHash:
      return "grace-hash";
    case Algorithm::kHybridHash:
      return "hybrid-hash";
  }
  return "?";
}

int OptimizerBucketCount(uint64_t inner_bytes, uint64_t memory_bytes) {
  GAMMA_CHECK_GT(memory_bytes, 0u);
  if (inner_bytes == 0) return 1;
  // ceil(|R| / memory), with a 0.01% tolerance so that a memory budget
  // computed as ratio * |R| in floating point (e.g. ratio = 1/3) does
  // not round down a byte and spuriously add a bucket.
  const double exact = static_cast<double>(inner_bytes) /
                       static_cast<double>(memory_bytes);
  return std::max(1, static_cast<int>(std::ceil(exact * (1.0 - 1e-4))));
}

namespace {

/// Upper bound on operator restarts after recoverable faults (node
/// crashes, hard I/O errors). A fault plan scheduling more consecutive
/// aborts than this surfaces the last error to the caller.
constexpr int kMaxOperatorRestarts = 8;

Status ValidateField(const db::StoredRelation* rel, int field,
                     const char* which) {
  if (field < 0 || static_cast<size_t>(field) >= rel->schema().num_fields()) {
    return Status::InvalidArgument(std::string(which) +
                                   " join field out of range");
  }
  if (rel->schema().field(static_cast<size_t>(field)).type !=
      storage::FieldType::kInt32) {
    return Status::InvalidArgument(std::string(which) +
                                   " join field must be int32");
  }
  return Status::OK();
}

Status RunSimple(sim::Machine& machine, HashJoinEngine& engine,
                 const db::StoredRelation* inner,
                 const db::StoredRelation* outer, const JoinSpec& spec) {
  (void)machine;
  return engine.RunSubJoin(
      "simple", engine.RelationProducers(inner, &spec.inner_predicate),
      engine.RelationProducers(outer, &spec.outer_predicate), spec.hash_seed);
}

Status RunGrace(sim::Machine& machine, HashJoinEngine& engine,
                const db::StoredRelation* inner,
                const db::StoredRelation* outer, const JoinSpec& spec,
                int num_buckets) {
  const std::vector<int> disks = machine.DiskNodeIds();
  BucketFileSet r_buckets(&machine, disks, &inner->schema(), num_buckets,
                          "grace.R");
  BucketFileSet s_buckets(&machine, disks, &outer->schema(), num_buckets,
                          "grace.S");
  const db::SplitTable table =
      db::SplitTable::GracePartitioning(disks, num_buckets);

  // Bucket-forming: both relations are written back to disk before any
  // joining starts (the defining property of the Grace algorithm).
  GAMMA_RETURN_IF_ERROR(engine.PartitionPhase(
      "grace form R", table,
      engine.RelationProducers(inner, &spec.inner_predicate), spec.hash_seed,
      HashJoinEngine::Side::kInner, &r_buckets));
  GAMMA_RETURN_IF_ERROR(engine.PartitionPhase(
      "grace form S", table,
      engine.RelationProducers(outer, &spec.outer_predicate), spec.hash_seed,
      HashJoinEngine::Side::kOuter, &s_buckets));

  // Bucket-joining: each bucket is an independent sub-join.
  for (int b = 1; b <= num_buckets; ++b) {
    GAMMA_RETURN_IF_ERROR(engine.RunSubJoin(
        "grace bucket " + std::to_string(b),
        engine.BucketProducers(&r_buckets, b),
        engine.BucketProducers(&s_buckets, b), spec.hash_seed));
    r_buckets.FreeBucket(b);
    s_buckets.FreeBucket(b);
  }
  return Status::OK();
}

Status RunHybrid(sim::Machine& machine, HashJoinEngine& engine,
                 const db::StoredRelation* inner,
                 const db::StoredRelation* outer, const JoinSpec& spec,
                 int num_buckets, const std::vector<int>& join_nodes) {
  const std::vector<int> disks = machine.DiskNodeIds();
  BucketFileSet r_buckets(&machine, disks, &inner->schema(), num_buckets - 1,
                          "hybrid.R");
  BucketFileSet s_buckets(&machine, disks, &outer->schema(), num_buckets - 1,
                          "hybrid.S");
  const db::SplitTable table =
      db::SplitTable::HybridPartitioning(join_nodes, disks, num_buckets);
  BucketFileSet* r_files = num_buckets > 1 ? &r_buckets : nullptr;
  BucketFileSet* s_files = num_buckets > 1 ? &s_buckets : nullptr;

  // Partitioning of R overlaps with building bucket 0's hash tables;
  // partitioning of S overlaps with probing bucket 0.
  engine.StartSubJoin();
  GAMMA_RETURN_IF_ERROR(engine.PartitionPhase(
      "hybrid partition R", table,
      engine.RelationProducers(inner, &spec.inner_predicate), spec.hash_seed,
      HashJoinEngine::Side::kInner, r_files));
  // Adaptive repartitioning of bucket 0 happens before S is scanned, so
  // an overridden bin's probe tuples route straight to their new homes.
  GAMMA_RETURN_IF_ERROR(engine.MaybeRebalance("hybrid rebalance"));
  GAMMA_RETURN_IF_ERROR(engine.PartitionPhase(
      "hybrid partition S", table,
      engine.RelationProducers(outer, &spec.outer_predicate), spec.hash_seed,
      HashJoinEngine::Side::kOuter, s_files));
  GAMMA_RETURN_IF_ERROR(engine.ResolveOverflows("hybrid b0 ovfl", spec.hash_seed));

  // The stored N-1 buckets join exactly like Grace buckets.
  for (int b = 1; b <= num_buckets - 1; ++b) {
    GAMMA_RETURN_IF_ERROR(engine.RunSubJoin(
        "hybrid bucket " + std::to_string(b),
        engine.BucketProducers(&r_buckets, b),
        engine.BucketProducers(&s_buckets, b), spec.hash_seed));
    r_buckets.FreeBucket(b);
    s_buckets.FreeBucket(b);
  }
  return Status::OK();
}

}  // namespace

Result<JoinOutput> ExecuteJoin(sim::Machine& machine, db::Catalog& catalog,
                               const JoinSpec& spec) {
  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * inner,
                         catalog.Get(spec.inner_relation));
  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * outer,
                         catalog.Get(spec.outer_relation));
  GAMMA_RETURN_IF_ERROR(ValidateField(inner, spec.inner_field, "inner"));
  GAMMA_RETURN_IF_ERROR(ValidateField(outer, spec.outer_field, "outer"));

  // One entry per join PROCESS; a node id may repeat to run several
  // join processes on one processor (Appendix A's remedy for skewed
  // split-table distributions; also the paper's intra-query-parallelism
  // future work).
  std::vector<int> join_nodes =
      spec.join_nodes.empty() ? machine.DiskNodeIds() : spec.join_nodes;
  std::sort(join_nodes.begin(), join_nodes.end());
  for (int id : join_nodes) {
    if (id < 0 || id >= machine.num_nodes()) {
      return Status::InvalidArgument("join node id out of range");
    }
  }
  if (spec.algorithm == Algorithm::kSortMerge &&
      join_nodes != machine.DiskNodeIds()) {
    return Status::InvalidArgument(
        "sort-merge joins execute only on the processors with disks "
        "(paper Section 3.1)");
  }

  const uint64_t inner_bytes =
      spec.estimated_inner_tuples.has_value()
          ? *spec.estimated_inner_tuples * inner->schema().tuple_bytes()
          : inner->total_bytes();
  uint64_t memory_bytes = spec.memory_bytes.value_or(static_cast<uint64_t>(
      spec.memory_ratio * static_cast<double>(inner_bytes)));
  if (memory_bytes == 0) {
    return Status::InvalidArgument("zero join memory");
  }

  const uint64_t capacity_per_node = static_cast<uint64_t>(
      static_cast<double>(memory_bytes) / static_cast<double>(join_nodes.size()) *
      (1.0 + spec.memory_slack));
  if (spec.algorithm != Algorithm::kSortMerge &&
      capacity_per_node < inner->schema().tuple_bytes()) {
    return Status::InvalidArgument(
        "per-node hash table capacity below one tuple");
  }
  if (spec.max_overflow_levels < 0) {
    return Status::InvalidArgument("max_overflow_levels must be >= 0");
  }

  std::string result_name = spec.result_name.empty()
                                ? spec.inner_relation + "_" +
                                      spec.outer_relation + "_join"
                                : spec.result_name;
  GAMMA_ASSIGN_OR_RETURN(
      db::StoredRelation * result,
      catalog.Create(machine, result_name,
                     storage::Schema::Concat(inner->schema(),
                                             outer->schema())));

  machine.ResetMetrics();
  JoinStats stats;

  // Result capture (docs/testing.md): one accumulator per disk node —
  // each result fragment is appended by exactly one executor task, so
  // no accumulator is shared. Pure observation; no simulated charge.
  std::vector<DigestAccumulator> capture;
  std::vector<DigestAccumulator>* capture_ptr = nullptr;
  if (spec.capture_results) {
    capture.resize(machine.DiskNodeIds().size());
    capture_ptr = &capture;
  }

  // Per-node build-memory broker: every join process contributes its
  // capacity share to its node's budget, so co-resident processes draw
  // on one shared pool (sim/memory_broker.h). Rebuilt per attempt (it
  // must outlive the attempt's engine, whose hash tables release their
  // reservations on destruction).
  std::optional<sim::MemoryBroker> broker;

  // One attempt of the chosen algorithm, writing through `result` and
  // `stats`. Restartable: every attempt builds fresh engine state.
  const auto run_attempt = [&]() -> Status {
    if (spec.algorithm == Algorithm::kSortMerge) {
      SortMergeParams params{inner,
                             outer,
                             spec.inner_field,
                             spec.outer_field,
                             &spec.inner_predicate,
                             &spec.outer_predicate,
                             memory_bytes,
                             spec.use_bit_filters,
                             spec.hash_seed,
                             result};
      params.rebalance = spec.rebalance;
      params.rebalance.enabled = spec.adaptive_repartition;
      params.capture = capture_ptr;
      return RunSortMergeJoin(machine, params, &stats);
    }
    broker.emplace(machine.num_nodes());
    for (int id : join_nodes) broker->AddBudget(id, capacity_per_node);

    HashJoinEngine::Config config;
    config.join_nodes = join_nodes;
    config.disk_nodes = machine.DiskNodeIds();
    config.inner_schema = &inner->schema();
    config.outer_schema = &outer->schema();
    config.inner_field = spec.inner_field;
    config.outer_field = spec.outer_field;
    config.capacity_bytes_per_node = capacity_per_node;
    config.use_bit_filters = spec.use_bit_filters;
    config.use_forming_bit_filters = spec.use_forming_bit_filters;
    config.rebalance = spec.rebalance;
    config.rebalance.enabled = spec.adaptive_repartition;
    config.max_overflow_levels = spec.max_overflow_levels;
    config.broker = &*broker;
    config.result = result;
    config.stats = &stats;
    config.capture = capture_ptr;
    HashJoinEngine engine(&machine, config);

    Status run_status;
    switch (spec.algorithm) {
      case Algorithm::kSimpleHash:
        stats.num_buckets = 1;
        run_status = RunSimple(machine, engine, inner, outer, spec);
        break;
      case Algorithm::kGraceHash:
      case Algorithm::kHybridHash: {
        int buckets = spec.num_buckets.value_or(
            OptimizerBucketCount(inner_bytes, memory_bytes));
        buckets = std::max(1, buckets);
        if (spec.use_bucket_analyzer) {
          buckets = db::AnalyzeBucketCount(
              spec.algorithm == Algorithm::kGraceHash
                  ? db::BucketAlgorithm::kGrace
                  : db::BucketAlgorithm::kHybrid,
              buckets, static_cast<int>(machine.DiskNodeIds().size()),
              static_cast<int>(join_nodes.size()));
        }
        stats.num_buckets = buckets;
        if (spec.algorithm == Algorithm::kGraceHash) {
          run_status = RunGrace(machine, engine, inner, outer, spec, buckets);
        } else {
          run_status = RunHybrid(machine, engine, inner, outer, spec, buckets,
                                 join_nodes);
        }
        break;
      }
      default:
        run_status = Status::Internal("unhandled algorithm");
    }
    GAMMA_RETURN_IF_ERROR(run_status);
    return engine.FinalizeResult();
  };

  // Gamma's recovery model at operator granularity: a recoverable fault
  // (node crash / hard I/O error) aborts the attempt, the partial result
  // is discarded, and the operator reruns. The wasted attempt's time is
  // already in the response clock; RecordOperatorRestart books it as
  // recovery time. Fault events fire at most once (sim/fault.h), so a
  // retried attempt runs past its consumed faults.
  Status run_status = Status::OK();
  for (int attempt = 0;; ++attempt) {
    const double attempt_start = machine.response_seconds();
    stats = JoinStats{};
    // An aborted attempt's partial result is discarded below, so its
    // partial digest must go with it.
    for (DigestAccumulator& acc : capture) acc.Reset();
    run_status = run_attempt();
    if (run_status.ok()) break;
    const bool recoverable =
        run_status.code() == StatusCode::kAborted ||
        run_status.code() == StatusCode::kUnavailable;
    if (!recoverable || attempt >= kMaxOperatorRestarts) break;
    machine.RecordOperatorRestart(machine.response_seconds() - attempt_start);
    result->FreeStorage();
  }

  if (!run_status.ok()) {
    GAMMA_CHECK_OK(catalog.Drop(result_name));
    return run_status;
  }

  JoinOutput out;
  out.metrics = machine.Metrics();
  out.stats = stats;
  out.stats.result_tuples = result->total_tuples();
  out.stats.overflow_events = out.metrics.counters.ht_overflows;
  out.stats.filter_drops = out.metrics.counters.filter_drops;
  out.stats.rebalance_plans = out.metrics.counters.rebalance_plans;
  out.stats.rebalance_moved_tuples =
      out.metrics.counters.rebalance_moved_tuples;
  out.stats.rebalance_replica_tuples =
      out.metrics.counters.rebalance_replica_tuples;
  if (broker.has_value()) {
    out.stats.spill_bytes =
        static_cast<int64_t>(broker->TotalSpillBytes());
    out.stats.refill_bytes =
        static_cast<int64_t>(broker->TotalRefillBytes());
  }
  out.result_relation = result_name;
  if (spec.capture_results) {
    DigestAccumulator all;
    for (const DigestAccumulator& acc : capture) all.Merge(acc.digest());
    out.result_digest = all.digest();
  }

  if (machine.tracer() != nullptr) {
    // One query-level span over everything the join charged, on the
    // query track above the per-phase node spans.
    JsonValue args = JsonValue::MakeObject();
    args.Set("algorithm", AlgorithmName(spec.algorithm));
    args.Set("inner_relation", spec.inner_relation);
    args.Set("outer_relation", spec.outer_relation);
    args.Set("num_buckets", stats.num_buckets);
    args.Set("result_tuples", out.stats.result_tuples);
    args.Set("response_seconds", out.metrics.response_seconds);
    if (out.metrics.recovery_seconds > 0) {
      args.Set("recovery_seconds", out.metrics.recovery_seconds);
    }
    machine.tracer()->RecordQuery(
        machine.trace_pid(), machine.trace_epoch_seconds(),
        machine.trace_epoch_seconds() + out.metrics.response_seconds,
        std::string("join ") + AlgorithmName(spec.algorithm),
        std::move(args));
  }
  return out;
}

}  // namespace gammadb::join
