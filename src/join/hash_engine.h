// Shared execution engine for the three hash-based parallel joins
// (Simple, Grace, Hybrid).
//
// All three algorithms are compositions of the same machinery (paper
// Section 3: Simple hash "is currently used as the overflow resolution
// method for our parallel implementations of the Grace and Hybrid
// algorithms"):
//
//  * a *partition phase* routes tuples through a split table; entries
//    tagged bucket 0 flow to the join processes (hash-table build or
//    probe), entries tagged bucket >= 1 are appended to bucket fragment
//    files on the disk nodes;
//  * hash-table overflow at a join node runs the histogram/cutoff
//    eviction protocol, spooling evicted tuples to a per-node overflow
//    file on an assigned disk; producers of the outer relation are told
//    the cutoffs ("the split table is augmented with the h' functions")
//    and ship qualifying tuples straight to the S overflow files;
//  * overflow files are then joined recursively with a NEW hash
//    function per level (a level-mixed seed, docs/overflow.md) until no
//    overflow remains, the recursion depth cap is hit, or a level stops
//    shrinking — the latter two degrade to a deterministic
//    block-nested-loop sub-join over resident slices;
//  * optionally, a per-sub-join 2 KB bit filter is built from the
//    hash-table residents and applied by the outer producers.
//
// Simple = one sub-join over the whole input. Grace = bucket-forming
// partition phases, then one sub-join per stored bucket. Hybrid =
// partition phases whose bucket 0 is a live sub-join, then Grace-style
// sub-joins for the stored buckets.
#ifndef GAMMA_JOIN_HASH_ENGINE_H_
#define GAMMA_JOIN_HASH_ENGINE_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gamma/bit_filter.h"
#include "gamma/catalog.h"
#include "gamma/predicate.h"
#include "gamma/rebalance.h"
#include "gamma/split_table.h"
#include "join/hash_table.h"
#include "join/spec.h"
#include "sim/exchange.h"
#include "sim/machine.h"
#include "storage/heap_file.h"
#include "storage/tuple_block.h"

namespace gammadb::join {

/// Yield callback for block-granular producers: invoked once per scan
/// block; the views are only valid for the duration of the call.
using BlockYield = std::function<void(const storage::TupleBlock&)>;

/// A per-disk-node tuple source. `scan` runs on that node's executor
/// task and must call `yield` once per block of source tuples; it
/// charges page I/O only — the per-tuple read CPU (and the predicate,
/// if any) is charged by the CONSUMER per tuple, which keeps the
/// per-tuple charge chain (read, predicate, route, filter) contiguous
/// and in scalar order even though the scan is batched. `scan` returns
/// non-OK when it hits a hard I/O error (fault injection); the phase
/// then fails and the join driver restarts the operator.
struct Producer {
  std::function<Status(sim::Node&, const BlockYield&)> scan;
  /// Optional conjunctive selection, evaluated (and charged) per tuple
  /// by the routing consumer. Null or empty means no selection.
  const db::PredicateList* predicate = nullptr;
};

/// Bucket fragment files: one heap file per (bucket, disk node), as in
/// Figure 3 of the paper ("each bucket is partitioned across all
/// available disk drives").
class BucketFileSet {
 public:
  /// Buckets are numbered 1..num_buckets (matching split-table tags).
  BucketFileSet(sim::Machine* machine, const std::vector<int>& disk_nodes,
                const storage::Schema* schema, int num_buckets,
                const std::string& label);
  /// Frees any remaining bucket pages (abandoned mid-join by a fault).
  ~BucketFileSet();

  BucketFileSet(const BucketFileSet&) = delete;
  BucketFileSet& operator=(const BucketFileSet&) = delete;

  int num_buckets() const { return num_buckets_; }
  size_t num_disks() const { return files_.empty() ? 0 : files_[0].size(); }

  storage::HeapFile& file(int bucket, size_t disk_index);

  /// Flushes the partial pages of every fragment of `bucket`; must run
  /// on the owning nodes' tasks (the engine does this at the end of the
  /// forming phase). Fails when a flush write exhausts its retries.
  Status FlushFilesOwnedBy(int node_id);

  uint64_t BucketTuples(int bucket) const;

  void FreeBucket(int bucket);

 private:
  int num_buckets_;
  // files_[bucket-1][disk_index]
  std::vector<std::vector<std::unique_ptr<storage::HeapFile>>> files_;
};

class HashJoinEngine {
 public:
  struct Config {
    std::vector<int> join_nodes;  // node ids executing the join
    std::vector<int> disk_nodes;  // node ids with disks (producers/hosts)
    const storage::Schema* inner_schema;
    const storage::Schema* outer_schema;
    int inner_field;
    int outer_field;
    uint64_t capacity_bytes_per_node;
    bool use_bit_filters;
    /// Extension: filter the outer relation's bucket-forming pass with
    /// a filter built while the inner relation's buckets formed.
    bool use_forming_bit_filters = false;
    /// Extension: skew-aware adaptive repartitioning (docs/skew.md).
    /// When rebalance.enabled, each sub-join gathers resident histogram
    /// counts after its build and may install a heavy-bin override
    /// table before the probing phase (MaybeRebalance).
    db::RebalanceOptions rebalance;
    /// Bound on overflow-resolution recursion depth before the
    /// block-nested-loop fallback engages (JoinSpec::max_overflow_levels;
    /// docs/overflow.md). Must be >= 0; 0 sends the first overflow
    /// straight to the fallback.
    int max_overflow_levels = 16;
    /// Optional per-node build-memory broker (sim/memory_broker.h).
    /// When set, hash-table admission draws on the owning node's shared
    /// budget (instead of a private per-process ledger) and overflow
    /// spill/refill bytes are recorded on it.
    sim::MemoryBroker* broker = nullptr;
    db::StoredRelation* result;  // fragments parallel to disk_nodes
    JoinStats* stats;
    /// Result capture (docs/testing.md): when non-null (parallel to
    /// disk_nodes), every result record appended to fragment i is also
    /// streamed into (*capture)[i] — one accumulator per disk node, so
    /// the concurrent store tasks never share one. Adds no simulated
    /// charge anywhere.
    std::vector<DigestAccumulator>* capture = nullptr;
  };

  HashJoinEngine(sim::Machine* machine, Config config);
  /// Frees overflow files abandoned by a failed (faulted) sub-join.
  ~HashJoinEngine();

  enum class Side { kInner, kOuter };

  /// Resets per-sub-join state (hash tables, cutoffs, filter). Overflow
  /// files accumulated by the previous sub-join must already have been
  /// consumed or taken.
  void StartSubJoin();

  /// Runs one partition phase: producers (one per disk node) route
  /// tuples hashed with `seed` through `table`. Bucket-0 entries build
  /// (kInner) or probe (kOuter) the hash tables; stored-bucket entries
  /// are appended to `buckets` (required iff the table has buckets).
  /// For kInner with filters enabled, the phase ends by rebuilding the
  /// bit filter from the hash-table residents and charging its
  /// distribution.
  Status PartitionPhase(const std::string& label, const db::SplitTable& table,
                        const std::vector<Producer>& producers, uint64_t seed,
                        Side side, BucketFileSet* buckets);

  /// Adaptive repartitioning: runs between a sub-join's build and probe
  /// phases. Gathers the per-process resident histograms, computes a
  /// heavy-bin override plan (gamma/rebalance.h), migrates or
  /// replicates the overridden residents, and installs the plan for the
  /// probing phase — all inside its own charged phase whose label
  /// contains "rebalance" (fault injection can target it). A no-op
  /// returning OK when config.rebalance.enabled is false.
  Status MaybeRebalance(const std::string& label);

  /// Joins overflow files recursively with a fresh (level-mixed) hash
  /// function per level until none remain (the paper's Simple-hash
  /// overflow resolution). Bounded: a sub-join still overflowing after
  /// Config::max_overflow_levels repartitions, or whose overflow
  /// partition stops shrinking (duplicate-heavy keys no rehash can
  /// split), degrades to the deterministic block-nested-loop fallback
  /// instead of failing (docs/overflow.md).
  Status ResolveOverflows(const std::string& label, uint64_t base_seed);

  /// The level-distinct split seed used by ResolveOverflows (level 0 =
  /// the caller's seed; exposed for tests).
  static uint64_t OverflowLevelSeed(uint64_t base_seed, int level);

  /// Convenience: a full sub-join of the given producers through a
  /// plain joining split table, overflow resolution included.
  Status RunSubJoin(const std::string& label,
                    const std::vector<Producer>& build_producers,
                    const std::vector<Producer>& probe_producers,
                    uint64_t seed);

  /// Producers that scan bucket `bucket` of `files` (flushing trailing
  /// pages first).
  std::vector<Producer> BucketProducers(BucketFileSet* files, int bucket);

  /// Producers that scan the fragments of a stored relation, applying a
  /// selection predicate.
  std::vector<Producer> RelationProducers(const db::StoredRelation* relation,
                                          const db::PredicateList* predicate);

  /// Flushes the result relation's partial pages (one final phase).
  Status FinalizeResult();

  /// True if the benchmark-visible hash chains statistics have data.
  const JoinStats& stats() const { return *config_.stats; }

 private:
  struct JoinNodeState {
    std::unique_ptr<JoinHashTable> table;
    uint64_t cutoff = UINT64_MAX;
    int host_disk_node = -1;  // disk node hosting this node's overflow files
    std::unique_ptr<storage::HeapFile> r_overflow;
    std::unique_ptr<storage::HeapFile> s_overflow;
    size_t store_rr_next = 0;  // round-robin cursor for result routing
  };

  /// A routed tuple is a VIEW, not a copy: `data` points at stable
  /// serialized bytes — a simulated disk page (scans; pages are
  /// individually heap-allocated and only freed after the phase that
  /// routed them fully drains) or a rebalance holding area that outlives
  /// both migration rounds. Shipping 24-byte views instead of owned
  /// tuples is what makes the block exchange fast: lane traffic shrinks
  /// ~9x for Wisconsin tuples and the payload bytes are copied exactly
  /// once, at the consumer that stores them. Network accounting still
  /// charges the full serialized `size` per tuple, so the simulated
  /// metrics are unchanged.
  struct RoutedTuple {
    const uint8_t* data;
    uint32_t size;
    uint64_t hash;
    uint8_t kind;  // RoutedKind
    int32_t aux;   // join index (build/probe) or bucket number
  };

  struct OverflowMsg {
    storage::Tuple tuple;
    int32_t join_index;
    bool is_inner;
  };

  enum RoutedKind : uint8_t {
    kBuild,
    kProbe,
    kBucketInner,
    kBucketOuter,
    kMigrate,  // rebalance: resident moving to its override destination
  };

  size_t DiskIndexOf(int node_id) const;
  std::vector<int> Participants(bool with_disk_nodes) const;

  /// Per-producer scratch for RouteBlock (fixed block-sized arrays plus
  /// per-destination counters). One instance per producer invocation so
  /// concurrent producer tasks never share it, and the per-block path
  /// does no allocation.
  struct RouteScratch {
    explicit RouteScratch(size_t num_nodes)
        : dest_counts(num_nodes, 0), dest_starts(num_nodes, 0) {}
    std::array<int32_t, storage::TupleBlock::kCapacity> keys;
    std::array<uint64_t, storage::TupleBlock::kCapacity> hashes;
    std::array<uint32_t, storage::TupleBlock::kCapacity> route;
    std::array<bool, storage::TupleBlock::kCapacity> pred_ok;
    // Survivors that leave through exchange_, fully staged in scan
    // order; pass 3 scatters them per destination by index.
    std::array<RoutedTuple, storage::TupleBlock::kCapacity> staged;
    std::array<int32_t, storage::TupleBlock::kCapacity> send_dest;
    std::array<uint32_t, storage::TupleBlock::kCapacity> send_order;
    std::vector<uint32_t> dest_counts;
    std::vector<uint32_t> dest_starts;
  };

  /// Routes one scan block: pass 1 batch-computes keys, predicate
  /// verdicts, hashes and split-table indices (uncharged); pass 2
  /// replays the scalar per-tuple charge chain and routing decisions in
  /// scan order, staging a RoutedTuple view per survivor; pass 3
  /// counting-sorts the staged views by destination and appends each
  /// destination's run with one SendBatch — no payload bytes move until
  /// a consumer stores them.
  void RouteBlock(sim::Node& n, const db::SplitTable& table, uint64_t seed,
                  Side side, const storage::TupleBlock& block,
                  const db::PredicateList* predicate, RouteScratch* scratch);
  void HandleBuildArrival(sim::Node& n, size_t ji, uint64_t hash,
                          storage::Tuple&& t);
  /// Probes a run of same-process kProbe arrivals through
  /// JoinHashTable::ProbeBatch (prefetched), `count` <= kProbeBatchMax.
  void HandleProbeBatch(sim::Node& n, size_t ji, const RoutedTuple* msgs,
                        size_t count);
  void SpoolToOverflow(sim::Node& from, size_t ji, bool is_inner,
                       storage::Tuple&& t);
  void EnsureOverflowFile(size_t ji, bool is_inner);
  Status DrainDiskSide(sim::Node& n, BucketFileSet* buckets);
  /// Terminal overflow resolution when recursion cannot help
  /// (docs/overflow.md): repeatedly FIFO-fills the resident tables from
  /// the remaining R overflow files (no cutoff, no eviction), probes the
  /// full remaining S against the resident slice, and re-spools both
  /// residuals for the next pass. `seed` only drives table placement and
  /// match confirmation — no repartitioning happens, so the pass count
  /// is bounded by ceil(overflow R tuples / resident capacity).
  Status NestedLoopFallback(const std::string& label, uint64_t seed);
  void BuildFilterFromResidents();
  void CollectChainStats();
  bool AnyOverflow() const;

  sim::Machine* machine_;
  Config config_;
  sim::Exchange<RoutedTuple> exchange_;
  sim::Exchange<OverflowMsg> overflow_exchange_;
  sim::Exchange<storage::Tuple> store_exchange_;
  std::vector<JoinNodeState> jstate_;
  std::unique_ptr<db::BitFilterSet> filter_;
  /// Forming-phase filter (sliced per receiving disk site).
  std::unique_ptr<db::BitFilterSet> forming_filter_;
  int overflow_file_counter_ = 0;

  // Adaptive repartitioning state, reset per sub-join.
  db::RebalancePlan rebalance_plan_;
  /// Per-producer, per-bin round-robin cursors spreading a replicated
  /// bin's probe tuples over its destinations. Each producer owns its
  /// row (no races) and the cursors are seeded with the producer index,
  /// so routing is identical at any thread count.
  std::vector<std::vector<uint32_t>> rebalance_rr_;
  /// Build-side finalization (bit filter, chain stats) postponed from
  /// PartitionPhase to MaybeRebalance so the filter reflects residency
  /// after any migration.
  bool build_finalize_deferred_ = false;

  // Chain-statistics accumulation across sub-joins.
  size_t chain_tuples_total_ = 0;
  size_t chain_slots_total_ = 0;
};

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_HASH_ENGINE_H_
