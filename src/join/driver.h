// Entry point of the join subsystem: validates a JoinSpec, sets up the
// engine (memory budgets, split tables, bucket counts via the optimizer
// and Appendix A bucket analyzer), runs the requested parallel join
// algorithm and reports metrics. The join result is stored as a new
// round-robin-declustered relation in the catalog.
#ifndef GAMMA_JOIN_DRIVER_H_
#define GAMMA_JOIN_DRIVER_H_

#include "common/status.h"
#include "gamma/catalog.h"
#include "join/spec.h"
#include "sim/machine.h"

namespace gammadb::join {

/// Executes `spec` on `machine`. Resets the machine's metrics at query
/// start; the returned metrics cover exactly this join. The result
/// relation is left in the catalog under JoinOutput::result_relation
/// (drop it to reclaim simulated disk space).
Result<JoinOutput> ExecuteJoin(sim::Machine& machine, db::Catalog& catalog,
                               const JoinSpec& spec);

/// Bucket count the optimizer picks for Grace/Hybrid before the bucket
/// analyzer runs: ceil(|R| / aggregate memory), at least 1 (paper
/// Sections 3.3-3.4). Exposed for tests and benches.
int OptimizerBucketCount(uint64_t inner_bytes, uint64_t memory_bytes);

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_DRIVER_H_
