// Order-insensitive multiset digest of a join result — the correctness
// contract shared by the four parallel join engines and the independent
// nested-loop oracle (src/testing/oracle.h, docs/testing.md).
//
// Each result pair contributes one canonical triple
//   (join key, hash of the serialized inner tuple, hash of the
//    serialized outer tuple)
// mixed into a single 64-bit value; the digest combines the per-pair
// mixes with commutative operators (count, sum, xor), so it is a pure
// function of the result MULTISET — independent of arrival order,
// bucket schedule, thread count, overflow recursion or rebalancing.
// Two runs produced the same set of (inner, outer) pairs, each the same
// number of times, iff their digests are equal (up to 64-bit collision
// odds, which is what a correctness oracle can afford).
//
// The payload hash is a plain FNV-1a over the serialized tuple bytes
// with a fixed seed: deliberately NOT HashJoinAttribute, so the digest
// shares nothing with the hash functions whose implementations it is
// checking.
#ifndef GAMMA_JOIN_DIGEST_H_
#define GAMMA_JOIN_DIGEST_H_

#include <cstdint>
#include <string>

#include "storage/schema.h"

namespace gammadb::join {

struct ResultDigest {
  uint64_t tuples = 0;   // result-pair count
  uint64_t sum = 0;      // wrapping sum of the per-pair mixes
  uint64_t xor_mix = 0;  // xor of the per-pair mixes

  bool operator==(const ResultDigest&) const = default;

  /// "n=<tuples> sum=<hex> xor=<hex>" — the form tests print on
  /// mismatch and docs/testing.md documents.
  std::string ToString() const;
};

/// FNV-1a over the serialized tuple bytes (fixed offset basis; no
/// dependence on any join seed).
uint64_t HashResultPayload(const uint8_t* data, uint32_t size);

/// Full-avalanche mix of one canonical result triple.
uint64_t MixResultTriple(int32_t key, uint64_t inner_hash,
                         uint64_t outer_hash);

/// Streaming accumulator. Not thread-safe: the engines keep one per
/// disk node (each result fragment is appended by exactly one executor
/// task) and merge at the end; adding is pure arithmetic — it charges
/// no simulated cost and touches no metric.
class DigestAccumulator {
 public:
  void AddPair(int32_t key, const uint8_t* inner, uint32_t inner_size,
               const uint8_t* outer, uint32_t outer_size);

  /// Adds one stored result record (the engines' Concat(inner, outer)
  /// layout): the first inner_schema.tuple_bytes() bytes are the inner
  /// tuple, the rest the outer tuple, and the key is read from the
  /// inner half.
  void AddConcatRecord(const storage::Schema& inner_schema, int inner_field,
                       const uint8_t* record, uint32_t record_size);

  void Merge(const ResultDigest& other);

  void Reset() { digest_ = ResultDigest{}; }
  const ResultDigest& digest() const { return digest_; }

 private:
  ResultDigest digest_;
};

}  // namespace gammadb::join

#endif  // GAMMA_JOIN_DIGEST_H_
