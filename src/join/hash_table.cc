#include "join/hash_table.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace gammadb::join {

JoinHashTable::JoinHashTable(sim::Node* node, const storage::Schema* schema,
                             int key_field, uint64_t capacity_bytes,
                             sim::MemoryBroker* broker)
    : node_(node),
      schema_(schema),
      key_field_(key_field),
      capacity_bytes_(capacity_bytes),
      broker_(broker) {
  GAMMA_CHECK_GE(capacity_bytes, static_cast<uint64_t>(schema->tuple_bytes()))
      << "hash table capacity below one tuple";
  // Logical (charged) geometry: ~1 tuple per slot at capacity, exactly
  // as the chained layout sized its chains.
  const uint64_t want_slots =
      std::max<uint64_t>(16, capacity_bytes / schema->tuple_bytes());
  const uint64_t logical_slots = std::bit_ceil(want_slots);
  logical_shift_ = 64 - std::countr_zero(logical_slots);
  num_logical_slots_ = logical_slots;
  // Physical index: 2x the maximum resident count, so the linear-probe
  // load factor stays <= ~1/2 even at a full byte budget.
  GAMMA_CHECK_GE(logical_shift_, 32);  // logical slot fits in a tag
  const uint64_t physical_slots = std::bit_ceil(2 * want_slots);
  home_shift_ = std::countr_zero(physical_slots) -
                std::countr_zero(logical_slots);
  slots_.assign(physical_slots, Slot{0, kEmptySlot});
  entries_.reserve(want_slots);
}

void JoinHashTable::InsertPhysical(uint64_t hash, uint32_t index) {
  const size_t mask = slots_.size() - 1;
  size_t s = HomeSlot(hash);
  while (slots_[s].index != kEmptySlot) s = (s + 1) & mask;
  slots_[s] = Slot{TagOf(hash), index};
}

void JoinHashTable::GrowPhysicalIfNeeded() {
  // Called BEFORE the arena push: grow when the next insert would put
  // the load factor above 1/2, and reinsert the existing entries only.
  if ((entries_.size() + 1) * 2 < slots_.size()) return;
  home_shift_ += 1;
  slots_.assign(slots_.size() * 2, Slot{0, kEmptySlot});
  for (size_t i = 0; i < entries_.size(); ++i) {
    InsertPhysical(entries_[i].hash, static_cast<uint32_t>(i));
  }
}

JoinHashTable::~JoinHashTable() {
  if (broker_ != nullptr && bytes_used_ > 0) {
    broker_->Release(node_->id(), bytes_used_);
  }
}

bool JoinHashTable::Insert(storage::Tuple&& tuple, uint64_t hash) {
  if (broker_ != nullptr) {
    if (!broker_->TryReserve(node_->id(), tuple.size())) return false;
  } else if (bytes_used_ + tuple.size() > capacity_bytes_) {
    return false;
  }
  node_->ChargeCpu(node_->cost().cpu_ht_insert_seconds,
                   sim::CostCategory::kHtInsert);
  ++node_->counters().ht_inserts;
  bytes_used_ += tuple.size();
  histogram_.Add(hash);
  const int32_t key =
      tuple.GetInt32(*schema_, static_cast<size_t>(key_field_));
  GrowPhysicalIfNeeded();
  entries_.push_back(Entry{hash, key, std::move(tuple)});
  InsertPhysical(hash, static_cast<uint32_t>(entries_.size() - 1));
  return true;
}

std::vector<std::pair<uint64_t, storage::Tuple>> JoinHashTable::EvictAtOrAbove(
    uint64_t cutoff) {
  // "the tuples in the hash table are examined and all qualifying tuples
  // are written to the overflow file" — a full table search, charged.
  return ExtractIf([cutoff](uint64_t hash) { return hash >= cutoff; });
}

void JoinHashTable::RebuildIndex() {
  std::fill(slots_.begin(), slots_.end(), Slot{0, kEmptySlot});
  for (size_t i = 0; i < entries_.size(); ++i) {
    InsertPhysical(entries_[i].hash, static_cast<uint32_t>(i));
  }
}

JoinHashTable::ChainStats JoinHashTable::ComputeChainStats() const {
  // Recover the logical (charged) chain lengths with one arena pass —
  // stats are per-phase reporting, not hot-path work.
  ChainStats stats;
  stats.tuples = entries_.size();
  std::vector<uint32_t> counts(num_logical_slots_, 0);
  for (const Entry& e : entries_) ++counts[LogicalSlotOf(e.hash)];
  for (uint32_t count : counts) {
    if (count == 0) continue;
    ++stats.occupied_slots;
    stats.max = std::max(stats.max, static_cast<int>(count));
  }
  return stats;
}

void JoinHashTable::Clear() {
  if (broker_ != nullptr && bytes_used_ > 0) {
    broker_->Release(node_->id(), bytes_used_);
  }
  entries_.clear();
  std::fill(slots_.begin(), slots_.end(), Slot{0, kEmptySlot});
  bytes_used_ = 0;
  histogram_.Clear();
}

}  // namespace gammadb::join
