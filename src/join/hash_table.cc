#include "join/hash_table.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace gammadb::join {

JoinHashTable::JoinHashTable(sim::Node* node, const storage::Schema* schema,
                             int key_field, uint64_t capacity_bytes)
    : node_(node),
      schema_(schema),
      key_field_(key_field),
      capacity_bytes_(capacity_bytes) {
  GAMMA_CHECK_GE(capacity_bytes, static_cast<uint64_t>(schema->tuple_bytes()))
      << "hash table capacity below one tuple";
  const uint64_t want_slots =
      std::max<uint64_t>(16, capacity_bytes / schema->tuple_bytes());
  const uint64_t slots = std::bit_ceil(want_slots);
  shift_ = 64 - std::countr_zero(slots);
  heads_.assign(slots, kNil);
  entries_.reserve(want_slots);
}

bool JoinHashTable::Insert(storage::Tuple&& tuple, uint64_t hash) {
  if (bytes_used_ + tuple.size() > capacity_bytes_) return false;
  node_->ChargeCpu(node_->cost().cpu_ht_insert_seconds,
                   sim::CostCategory::kHtInsert);
  ++node_->counters().ht_inserts;
  bytes_used_ += tuple.size();
  histogram_.Add(hash);
  const int32_t key =
      tuple.GetInt32(*schema_, static_cast<size_t>(key_field_));
  const size_t slot = SlotOf(hash);
  entries_.push_back(Entry{hash, key, heads_[slot], std::move(tuple)});
  heads_[slot] = static_cast<uint32_t>(entries_.size() - 1);
  return true;
}

std::vector<std::pair<uint64_t, storage::Tuple>> JoinHashTable::EvictAtOrAbove(
    uint64_t cutoff) {
  // "the tuples in the hash table are examined and all qualifying tuples
  // are written to the overflow file" — a full table search, charged.
  return ExtractIf([cutoff](uint64_t hash) { return hash >= cutoff; });
}

void JoinHashTable::RebuildChains() {
  std::fill(heads_.begin(), heads_.end(), kNil);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const size_t slot = SlotOf(entries_[i].hash);
    entries_[i].next = heads_[slot];
    heads_[slot] = static_cast<uint32_t>(i);
  }
}

JoinHashTable::ChainStats JoinHashTable::ComputeChainStats() const {
  ChainStats stats;
  stats.tuples = entries_.size();
  for (uint32_t head : heads_) {
    if (head == kNil) continue;
    ++stats.occupied_slots;
    int length = 0;
    for (uint32_t idx = head; idx != kNil; idx = entries_[idx].next) ++length;
    stats.max = std::max(stats.max, length);
  }
  return stats;
}

void JoinHashTable::Clear() {
  entries_.clear();
  std::fill(heads_.begin(), heads_.end(), kNil);
  bytes_used_ = 0;
  histogram_.Clear();
}

}  // namespace gammadb::join
