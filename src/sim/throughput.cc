#include "sim/throughput.h"

#include <algorithm>
#include <cmath>

namespace gammadb::sim {

double ThroughputEstimate::ThroughputAtMpl(int k) const {
  if (k <= 0 || single_query_seconds <= 0) return 0;
  const double pipeline_bound =
      static_cast<double>(k) / single_query_seconds;
  return std::min(pipeline_bound, MaxThroughput());
}

double ThroughputEstimate::ResponseAtMpl(int k) const {
  const double x = ThroughputAtMpl(k);
  return x > 0 ? static_cast<double>(k) / x : 0.0;
}

int ThroughputEstimate::SaturationMpl() const {
  const double d = BottleneckSeconds();
  if (d <= 0 || single_query_seconds <= 0) return 1;
  return static_cast<int>(std::ceil(single_query_seconds / d));
}

ThroughputEstimate EstimateThroughput(const RunMetrics& metrics) {
  ThroughputEstimate estimate;
  estimate.single_query_seconds = metrics.response_seconds;
  std::vector<double> cpu, disk;
  for (const auto& phase : metrics.phases) {
    if (cpu.size() < phase.usage.size()) {
      cpu.resize(phase.usage.size());
      disk.resize(phase.usage.size());
    }
    for (size_t i = 0; i < phase.usage.size(); ++i) {
      cpu[i] += phase.usage[i].cpu_seconds;
      disk[i] += phase.usage[i].disk_seconds;
    }
  }
  for (double c : cpu) {
    estimate.bottleneck_cpu_seconds =
        std::max(estimate.bottleneck_cpu_seconds, c);
  }
  for (double d : disk) {
    estimate.bottleneck_disk_seconds =
        std::max(estimate.bottleneck_disk_seconds, d);
  }
  return estimate;
}

}  // namespace gammadb::sim
