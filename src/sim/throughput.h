// Multiuser throughput estimation — the study the paper defers ("we
// intend on studying the multiuser tradeoffs in the near future",
// Section 5) — via asymptotic bound analysis over a measured
// single-query profile.
//
// With K identical queries cycling through the machine (closed system,
// no think time), throughput is bounded by both the single-query
// pipeline (K/R0, all resources overlapped) and the busiest resource's
// service demand per query (1/D_max): X(K) = min(K/R0, 1/D_max), and
// R(K) = K/X(K). The bottleneck demand D_max is the per-query busy time
// of the most loaded CPU or disk — which is exactly why offloading
// joins to diskless processors ("remote" execution) buys multiuser
// throughput even when it loses on single-query response time.
#ifndef GAMMA_SIM_THROUGHPUT_H_
#define GAMMA_SIM_THROUGHPUT_H_

#include "sim/metrics.h"

namespace gammadb::sim {

struct ThroughputEstimate {
  /// Single-query response time (the profile's R0).
  double single_query_seconds = 0;
  /// Busiest processor's CPU seconds per query.
  double bottleneck_cpu_seconds = 0;
  /// Busiest disk's device seconds per query.
  double bottleneck_disk_seconds = 0;

  /// Largest per-query service demand on any resource.
  double BottleneckSeconds() const {
    return bottleneck_cpu_seconds > bottleneck_disk_seconds
               ? bottleneck_cpu_seconds
               : bottleneck_disk_seconds;
  }

  /// Saturation throughput, queries/second.
  double MaxThroughput() const {
    const double d = BottleneckSeconds();
    return d > 0 ? 1.0 / d : 0.0;
  }

  /// Throughput at multiprogramming level k (asymptotic bounds).
  double ThroughputAtMpl(int k) const;

  /// Mean response time at multiprogramming level k.
  double ResponseAtMpl(int k) const;

  /// Smallest multiprogramming level that saturates the bottleneck.
  int SaturationMpl() const;
};

/// Derives the estimate from one executed query's metrics.
ThroughputEstimate EstimateThroughput(const RunMetrics& metrics);

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_THROUGHPUT_H_
