// Per-node, per-phase time accounting and whole-query counters.
//
// Execution is organized as a sequence of *phases* (e.g. "partition R /
// build", "partition S / probe", "join bucket 3"). Within a phase a
// node's disk activity overlaps its CPU activity (Gamma's read-ahead and
// dataflow design), so the node's phase time is max(cpu, disk); phases
// are serial, so the query response time is the sum over phases of the
// slowest participant (plus serialized scheduler work and any residual
// ring occupancy).
#ifndef GAMMA_SIM_METRICS_H_
#define GAMMA_SIM_METRICS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gammadb::sim {

/// Cost-model primitive a simulated-time charge is attributed to. Every
/// ChargeCpu/ChargeDisk names the primitive being paid for, so a
/// node-phase's seconds can be decomposed exactly the way the paper
/// explains its figures (protocol CPU vs. disk vs. hash-table work,
/// Sections 4-5). The breakdown is pure observability: it never feeds
/// back into any cost.
enum class CostCategory : uint8_t {
  kDiskSeq = 0,   // sequential page device time
  kDiskRand,      // random page device time
  kIoIssue,       // CPU issuing a page I/O (buffer manager, WiSS call)
  kReadTuple,     // extracting a tuple from a page
  kWriteTuple,    // copying a tuple into an output/temp page
  kHashRoute,     // hashing the join attribute + split-table lookup
  kHtInsert,      // join hash-table insert
  kHtProbe,       // join hash-table probe (excluding chain compares)
  kCompare,       // key compares (hash chains, merge join, evict scan)
  kSortCompare,   // compares inside sort run formation / merge
  kBuildResult,   // composing a result tuple
  kPredicate,     // selection predicate evaluation
  kAggregate,     // aggregate accumulator update
  kFilterOp,      // bit-vector-filter set/test
  kNetSend,       // remote-packet send protocol CPU
  kNetRecv,       // remote-packet receive protocol CPU
  kNetLocal,      // short-circuited (same-node) packet protocol CPU
  kReceiveTuple,  // copying a tuple out of a received packet
  kNetFault,      // injected-fault protocol work (loss detect/resend,
                  // duplicate receive path)
  kOther,         // uncategorized (should stay zero in production code)
};

inline constexpr size_t kNumCostCategories =
    static_cast<size_t>(CostCategory::kOther) + 1;

/// Stable snake_case name used in trace args and attribution JSON.
inline const char* CostCategoryName(CostCategory category) {
  switch (category) {
    case CostCategory::kDiskSeq: return "disk_seq";
    case CostCategory::kDiskRand: return "disk_rand";
    case CostCategory::kIoIssue: return "io_issue";
    case CostCategory::kReadTuple: return "read_tuple";
    case CostCategory::kWriteTuple: return "write_tuple";
    case CostCategory::kHashRoute: return "hash_route";
    case CostCategory::kHtInsert: return "ht_insert";
    case CostCategory::kHtProbe: return "ht_probe";
    case CostCategory::kCompare: return "compare";
    case CostCategory::kSortCompare: return "sort_compare";
    case CostCategory::kBuildResult: return "build_result";
    case CostCategory::kPredicate: return "predicate";
    case CostCategory::kAggregate: return "aggregate";
    case CostCategory::kFilterOp: return "filter_op";
    case CostCategory::kNetSend: return "net_send";
    case CostCategory::kNetRecv: return "net_recv";
    case CostCategory::kNetLocal: return "net_local";
    case CostCategory::kReceiveTuple: return "receive_tuple";
    case CostCategory::kNetFault: return "net_fault";
    case CostCategory::kOther: return "other";
  }
  return "?";
}

/// Time consumed by one node during one phase, with the same seconds
/// decomposed by cost-model primitive. The category array sums to
/// cpu_seconds + disk_seconds (within float re-association error; the
/// machine asserts the match at every phase end).
struct NodeUsage {
  double cpu_seconds = 0;
  double disk_seconds = 0;
  std::array<double, kNumCostCategories> by_category{};

  double Elapsed() const { return std::max(cpu_seconds, disk_seconds); }

  double AttributedSeconds() const {
    double total = 0;
    for (double v : by_category) total += v;
    return total;
  }
};

/// Ring-occupancy decomposition of one phase. payload_seconds is the
/// occupancy of the phase's own traffic; the fault components are the
/// extra copies injected packet faults put on the wire. The three
/// components sum to PhaseRecord::ring_seconds (within float
/// re-association error; asserted at phase end).
struct RingAttribution {
  double payload_seconds = 0;
  double retransmit_seconds = 0;  // resent copies of lost packets
  double duplicate_seconds = 0;   // second copies of duplicated packets

  double Total() const {
    return payload_seconds + retransmit_seconds + duplicate_seconds;
  }
};

/// One completed phase.
struct PhaseRecord {
  std::string label;
  std::vector<NodeUsage> usage;   // indexed by node id
  double ring_seconds = 0;        // shared-ring occupancy
  RingAttribution ring;           // ring_seconds decomposed
  double sched_seconds = 0;       // serialized scheduler work
  double elapsed_seconds = 0;     // contribution to response time
};

/// Whole-query operation counters (inputs to no cost; pure observability).
struct Counters {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t tuples_sent_local = 0;    // short-circuited deliveries
  int64_t tuples_sent_remote = 0;
  int64_t bytes_local = 0;
  int64_t bytes_remote = 0;
  int64_t packets_local = 0;
  int64_t packets_remote = 0;
  int64_t control_messages = 0;
  int64_t ht_inserts = 0;
  int64_t ht_probes = 0;
  int64_t ht_overflows = 0;         // hash-table overflow events
  int64_t filter_drops = 0;         // outer tuples eliminated by bit filters
  int64_t result_tuples = 0;

  // --- Fault injection & recovery (sim/fault.h). All remain zero when
  // --- no FaultPlan is armed; serialization omits them in that case so
  // --- fault-free metrics JSON is byte-identical to pre-fault baselines.
  int64_t disk_read_faults = 0;     // failed page-read attempts
  int64_t disk_write_faults = 0;    // failed page-write attempts
  int64_t io_retries = 0;           // extra attempts after transient faults
  int64_t packets_lost = 0;         // remote packets dropped by the ring
  int64_t packets_duplicated = 0;   // remote packets delivered twice
  int64_t packets_retransmitted = 0;  // sender resends after a loss
  int64_t node_crashes = 0;         // mid-phase node failures
  int64_t operator_restarts = 0;    // Gamma-style abort-and-rerun recoveries

  // --- Adaptive repartitioning (gamma/rebalance.h, docs/skew.md). All
  // --- remain zero unless a rebalance plan activates; serialization
  // --- omits them in that case so skew-free metrics JSON is
  // --- byte-identical to pre-rebalance baselines.
  int64_t rebalance_plans = 0;           // override tables installed
  int64_t rebalance_moved_tuples = 0;    // residents extracted & migrated
  int64_t rebalance_replica_tuples = 0;  // extra copies from replication

  /// True when any fault machinery engaged during the run.
  bool AnyFaults() const {
    return (disk_read_faults | disk_write_faults | io_retries | packets_lost |
            packets_duplicated | packets_retransmitted | node_crashes |
            operator_restarts) != 0;
  }

  /// True when adaptive repartitioning installed at least one plan.
  bool AnyRebalance() const {
    return (rebalance_plans | rebalance_moved_tuples |
            rebalance_replica_tuples) != 0;
  }

  /// Fraction of routed tuples that never crossed the ring.
  double ShortCircuitFraction() const {
    const int64_t total = tuples_sent_local + tuples_sent_remote;
    return total == 0 ? 0.0
                      : static_cast<double>(tuples_sent_local) /
                            static_cast<double>(total);
  }
};

/// Full account of one simulated query execution.
struct RunMetrics {
  double response_seconds = 0;
  /// Part of response_seconds spent re-doing work after recoveries
  /// (wasted time of aborted operator attempts). 0 without faults.
  double recovery_seconds = 0;
  Counters counters;
  std::vector<PhaseRecord> phases;

  double TotalCpuSeconds() const {
    double total = 0;
    for (const auto& phase : phases) {
      for (const auto& u : phase.usage) total += u.cpu_seconds;
    }
    return total;
  }

  /// Per-node CPU busy time over the whole run, indexed by node id.
  std::vector<double> NodeCpuSeconds() const {
    std::vector<double> busy;
    for (const auto& phase : phases) {
      if (busy.size() < phase.usage.size()) busy.resize(phase.usage.size());
      for (size_t i = 0; i < phase.usage.size(); ++i) {
        busy[i] += phase.usage[i].cpu_seconds;
      }
    }
    return busy;
  }

  /// Per-node CPU utilization: busy time / response time. This is the
  /// quantity behind the paper's Section 5 observation that local joins
  /// run the processors at 100% CPU while the remote configuration
  /// leaves the disk-node CPUs at ~60%.
  std::vector<double> NodeCpuUtilization() const {
    std::vector<double> util = NodeCpuSeconds();
    if (response_seconds > 0) {
      for (double& u : util) u /= response_seconds;
    }
    return util;
  }
  double TotalDiskSeconds() const {
    double total = 0;
    for (const auto& phase : phases) {
      for (const auto& u : phase.usage) total += u.disk_seconds;
    }
    return total;
  }
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_METRICS_H_
