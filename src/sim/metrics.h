// Per-node, per-phase time accounting and whole-query counters.
//
// Execution is organized as a sequence of *phases* (e.g. "partition R /
// build", "partition S / probe", "join bucket 3"). Within a phase a
// node's disk activity overlaps its CPU activity (Gamma's read-ahead and
// dataflow design), so the node's phase time is max(cpu, disk); phases
// are serial, so the query response time is the sum over phases of the
// slowest participant (plus serialized scheduler work and any residual
// ring occupancy).
#ifndef GAMMA_SIM_METRICS_H_
#define GAMMA_SIM_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace gammadb::sim {

/// Time consumed by one node during one phase.
struct NodeUsage {
  double cpu_seconds = 0;
  double disk_seconds = 0;

  double Elapsed() const { return std::max(cpu_seconds, disk_seconds); }
};

/// One completed phase.
struct PhaseRecord {
  std::string label;
  std::vector<NodeUsage> usage;   // indexed by node id
  double ring_seconds = 0;        // shared-ring occupancy
  double sched_seconds = 0;       // serialized scheduler work
  double elapsed_seconds = 0;     // contribution to response time
};

/// Whole-query operation counters (inputs to no cost; pure observability).
struct Counters {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t tuples_sent_local = 0;    // short-circuited deliveries
  int64_t tuples_sent_remote = 0;
  int64_t bytes_local = 0;
  int64_t bytes_remote = 0;
  int64_t packets_local = 0;
  int64_t packets_remote = 0;
  int64_t control_messages = 0;
  int64_t ht_inserts = 0;
  int64_t ht_probes = 0;
  int64_t ht_overflows = 0;         // hash-table overflow events
  int64_t filter_drops = 0;         // outer tuples eliminated by bit filters
  int64_t result_tuples = 0;

  // --- Fault injection & recovery (sim/fault.h). All remain zero when
  // --- no FaultPlan is armed; serialization omits them in that case so
  // --- fault-free metrics JSON is byte-identical to pre-fault baselines.
  int64_t disk_read_faults = 0;     // failed page-read attempts
  int64_t disk_write_faults = 0;    // failed page-write attempts
  int64_t io_retries = 0;           // extra attempts after transient faults
  int64_t packets_lost = 0;         // remote packets dropped by the ring
  int64_t packets_duplicated = 0;   // remote packets delivered twice
  int64_t packets_retransmitted = 0;  // sender resends after a loss
  int64_t node_crashes = 0;         // mid-phase node failures
  int64_t operator_restarts = 0;    // Gamma-style abort-and-rerun recoveries

  /// True when any fault machinery engaged during the run.
  bool AnyFaults() const {
    return (disk_read_faults | disk_write_faults | io_retries | packets_lost |
            packets_duplicated | packets_retransmitted | node_crashes |
            operator_restarts) != 0;
  }

  /// Fraction of routed tuples that never crossed the ring.
  double ShortCircuitFraction() const {
    const int64_t total = tuples_sent_local + tuples_sent_remote;
    return total == 0 ? 0.0
                      : static_cast<double>(tuples_sent_local) /
                            static_cast<double>(total);
  }
};

/// Full account of one simulated query execution.
struct RunMetrics {
  double response_seconds = 0;
  /// Part of response_seconds spent re-doing work after recoveries
  /// (wasted time of aborted operator attempts). 0 without faults.
  double recovery_seconds = 0;
  Counters counters;
  std::vector<PhaseRecord> phases;

  double TotalCpuSeconds() const {
    double total = 0;
    for (const auto& phase : phases) {
      for (const auto& u : phase.usage) total += u.cpu_seconds;
    }
    return total;
  }

  /// Per-node CPU busy time over the whole run, indexed by node id.
  std::vector<double> NodeCpuSeconds() const {
    std::vector<double> busy;
    for (const auto& phase : phases) {
      if (busy.size() < phase.usage.size()) busy.resize(phase.usage.size());
      for (size_t i = 0; i < phase.usage.size(); ++i) {
        busy[i] += phase.usage[i].cpu_seconds;
      }
    }
    return busy;
  }

  /// Per-node CPU utilization: busy time / response time. This is the
  /// quantity behind the paper's Section 5 observation that local joins
  /// run the processors at 100% CPU while the remote configuration
  /// leaves the disk-node CPUs at ~60%.
  std::vector<double> NodeCpuUtilization() const {
    std::vector<double> util = NodeCpuSeconds();
    if (response_seconds > 0) {
      for (double& u : util) u /= response_seconds;
    }
    return util;
  }
  double TotalDiskSeconds() const {
    double total = 0;
    for (const auto& phase : phases) {
      for (const auto& u : phase.usage) total += u.disk_seconds;
    }
    return total;
  }
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_METRICS_H_
