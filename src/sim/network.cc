#include "sim/network.h"

#include "common/logging.h"
#include "sim/fault.h"
#include "sim/node.h"

namespace gammadb::sim {

Network::Network(size_t num_nodes, const CostModel* cost)
    : num_nodes_(num_nodes), cost_(cost), matrix_(num_nodes * num_nodes) {}

double Network::FlushPhase(std::vector<Node*>& nodes, Counters& counters,
                           RingAttribution* attribution) {
  GAMMA_CHECK_EQ(nodes.size(), num_nodes_);
  double ring_seconds = 0;
  for (size_t src = 0; src < num_nodes_; ++src) {
    for (size_t dst = 0; dst < num_nodes_; ++dst) {
      Cell& c = matrix_[src * num_nodes_ + dst];
      if (c.bytes == 0 && c.tuples == 0) continue;
      const uint64_t packets =
          (c.bytes + cost_->packet_payload_bytes - 1) /
          cost_->packet_payload_bytes;
      if (src == dst) {
        // Short-circuited: no ring occupancy, reduced protocol cost paid
        // once (sender and receiver are the same CPU).
        nodes[src]->ChargeCpu(static_cast<double>(packets) *
                                  cost_->net_local_packet_cpu_seconds,
                              CostCategory::kNetLocal);
        counters.packets_local += static_cast<int64_t>(packets);
        counters.bytes_local += static_cast<int64_t>(c.bytes);
        counters.tuples_sent_local += static_cast<int64_t>(c.tuples);
      } else {
        nodes[src]->ChargeCpu(static_cast<double>(packets) *
                                  cost_->net_remote_packet_send_cpu_seconds,
                              CostCategory::kNetSend);
        nodes[dst]->ChargeCpuSplit(
            static_cast<double>(packets) *
                cost_->net_remote_packet_recv_cpu_seconds,
            CostCategory::kNetRecv,
            static_cast<double>(c.tuples) * cost_->cpu_receive_tuple_seconds,
            CostCategory::kReceiveTuple);
        const double payload_seconds =
            static_cast<double>(c.bytes) * cost_->net_wire_seconds_per_byte;
        ring_seconds += payload_seconds;
        if (attribution != nullptr) {
          attribution->payload_seconds += payload_seconds;
        }
        if (faults_ != nullptr) {
          // Injected ring faults, counted against the dst's delivered-
          // packet ordinal. The sliding-window protocol (paper
          // Section 2.2) guarantees delivery, so data never changes:
          // a lost packet costs the sender a loss detection plus one
          // retransmission (send CPU + ring occupancy for the resent
          // payload); a duplicated packet costs the receiver one extra
          // receive path before the sequence number discards it, and
          // occupies the ring for the duplicate copy. The cell's final
          // packet carries only the residual payload, so a fault on that
          // ordinal puts just those bytes back on the wire, not a full
          // packet_payload_bytes.
          const FaultInjector::PacketFaults pf = faults_->OnPacketsDelivered(
              static_cast<int>(dst), packets);
          const double full_payload_wire =
              static_cast<double>(cost_->packet_payload_bytes) *
              cost_->net_wire_seconds_per_byte;
          const double tail_payload_wire =
              static_cast<double>(c.bytes -
                                  (packets - 1) * cost_->packet_payload_bytes) *
              cost_->net_wire_seconds_per_byte;
          if (pf.lost > 0) {
            nodes[src]->ChargeCpu(
                static_cast<double>(pf.lost) *
                    (cost_->net_retransmit_detect_cpu_seconds +
                     cost_->net_remote_packet_send_cpu_seconds),
                CostCategory::kNetFault);
            const double lost_wire =
                static_cast<double>(pf.lost - (pf.lost_tail ? 1 : 0)) *
                    full_payload_wire +
                (pf.lost_tail ? tail_payload_wire : 0.0);
            ring_seconds += lost_wire;
            if (attribution != nullptr) {
              attribution->retransmit_seconds += lost_wire;
            }
            counters.packets_lost += pf.lost;
            counters.packets_retransmitted += pf.lost;
          }
          if (pf.duplicated > 0) {
            nodes[dst]->ChargeCpu(
                static_cast<double>(pf.duplicated) *
                    cost_->net_remote_packet_recv_cpu_seconds,
                CostCategory::kNetFault);
            const double dup_wire =
                static_cast<double>(pf.duplicated -
                                    (pf.duplicated_tail ? 1 : 0)) *
                    full_payload_wire +
                (pf.duplicated_tail ? tail_payload_wire : 0.0);
            ring_seconds += dup_wire;
            if (attribution != nullptr) {
              attribution->duplicate_seconds += dup_wire;
            }
            counters.packets_duplicated += pf.duplicated;
          }
        }
        counters.packets_remote += static_cast<int64_t>(packets);
        counters.bytes_remote += static_cast<int64_t>(c.bytes);
        counters.tuples_sent_remote += static_cast<int64_t>(c.tuples);
      }
      c = Cell{};
    }
  }
  return ring_seconds;
}

}  // namespace gammadb::sim
