#include "sim/executor.h"

#include <utility>

#include "common/logging.h"

namespace gammadb::sim {

Executor::Executor(int num_threads) : num_threads_(num_threads) {
  GAMMA_CHECK_GE(num_threads, 1);
  if (num_threads_ > 1) {
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

Executor::~Executor() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

void Executor::Run(std::vector<std::function<void()>> tasks) {
  if (num_threads_ == 1) {
    std::exception_ptr first_error;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks) {
      queue_.push_back(std::move(task));
      ++outstanding_;
    }
  }
  work_cv_.notify_all();
  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    first_error = std::exchange(first_error_, nullptr);
  }
  if (first_error) std::rethrow_exception(first_error);
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must still count as finished: swallowing the
    // exception into first_error_ and decrementing outstanding_ on every
    // exit path keeps Run()'s done_cv_ wait from deadlocking.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      --outstanding_;
      if (outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gammadb::sim
