#include "sim/executor.h"

#include <utility>

#include "common/logging.h"

namespace gammadb::sim {

Executor::Executor(int num_threads) : num_threads_(num_threads) {
  GAMMA_CHECK_GE(num_threads, 1);
  if (num_threads_ > 1) {
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

Executor::~Executor() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

void Executor::RunStripe(const std::vector<std::function<void()>>& tasks,
                         size_t start, size_t stride) {
  for (size_t i = start; i < tasks.size(); i += stride) {
    // A throwing task must still count the rest of its stripe as
    // runnable: the phase barrier drains the whole batch, and the
    // lowest-indexed exception wins so the error surfaced is identical
    // to serial execution.
    try {
      tasks[i]();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (i < first_error_index_) {
        first_error_index_ = i;
        first_error_ = std::current_exception();
      }
    }
  }
}

void Executor::Run(std::vector<std::function<void()>> tasks) {
  if (num_threads_ == 1) {
    RunStripe(tasks, 0, 1);
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      error = std::exchange(first_error_, nullptr);
      first_error_index_ = SIZE_MAX;
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &tasks;
    workers_remaining_ = num_threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_remaining_ == 0; });
    batch_ = nullptr;
    error = std::exchange(first_error_, nullptr);
    first_error_index_ = SIZE_MAX;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::WorkerLoop(int worker_index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::vector<std::function<void()>>* batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (generation_ == seen_generation) return;  // shutdown, no new work
      seen_generation = generation_;
      batch = batch_;
    }
    RunStripe(*batch, static_cast<size_t>(worker_index),
              static_cast<size_t>(num_threads_));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gammadb::sim
