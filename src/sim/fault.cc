#include "sim/fault.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace gammadb::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskReadTransient:
      return "disk-read-transient";
    case FaultKind::kDiskWriteTransient:
      return "disk-write-transient";
    case FaultKind::kPacketLoss:
      return "packet-loss";
    case FaultKind::kPacketDuplicate:
      return "packet-duplicate";
    case FaultKind::kNodeCrash:
      return "node-crash";
  }
  return "?";
}

FaultPlan& FaultPlan::AddPeriodic(FaultKind kind, int node, uint64_t period,
                                  int count) {
  GAMMA_CHECK_GE(period, 1u);
  for (int i = 1; i <= count; ++i) {
    Add(FaultEvent{kind, node, period * static_cast<uint64_t>(i), 1, ""});
  }
  return *this;
}

FaultPlan FaultPlan::Random(uint64_t seed, const RandomOptions& options) {
  GAMMA_CHECK_GE(options.num_nodes, 1);
  Rng rng(seed);
  FaultPlan plan;
  const auto draw = [&](FaultKind kind, uint64_t horizon) {
    for (int i = 0; i < options.events_per_class; ++i) {
      FaultEvent event;
      event.kind = kind;
      event.node =
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(options.num_nodes)));
      event.ordinal = 1 + rng.Uniform(horizon);
      plan.Add(std::move(event));
    }
  };
  if (options.disk_faults) {
    draw(FaultKind::kDiskReadTransient, options.io_horizon);
    draw(FaultKind::kDiskWriteTransient, options.io_horizon);
  }
  if (options.packet_faults) {
    draw(FaultKind::kPacketLoss, options.packet_horizon);
    draw(FaultKind::kPacketDuplicate, options.packet_horizon);
  }
  if (options.crashes) {
    draw(FaultKind::kNodeCrash, options.phase_horizon);
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_nodes) {
  GAMMA_CHECK_GE(num_nodes, 1);
  for (auto& tracks : tracks_) {
    tracks.resize(static_cast<size_t>(num_nodes));
  }
  for (const FaultEvent& event : plan.events()) {
    GAMMA_CHECK(event.node >= 0 && event.node < num_nodes)
        << "fault event node " << event.node << " out of range";
    GAMMA_CHECK_GE(event.ordinal, 1u);
    GAMMA_CHECK_GE(event.repeat, 1);
    if (event.kind == FaultKind::kNodeCrash) {
      CrashEvent crash;
      crash.node = event.node;
      crash.label = event.phase_label;
      crash.first = event.ordinal;
      crash.last = event.ordinal + static_cast<uint64_t>(event.repeat) - 1;
      crashes_.push_back(std::move(crash));
      continue;
    }
    int track_index = kReadTrack;
    switch (event.kind) {
      case FaultKind::kDiskReadTransient:
        track_index = kReadTrack;
        break;
      case FaultKind::kDiskWriteTransient:
        track_index = kWriteTrack;
        break;
      case FaultKind::kPacketLoss:
        track_index = kLossTrack;
        break;
      case FaultKind::kPacketDuplicate:
        track_index = kDupTrack;
        break;
      case FaultKind::kNodeCrash:
        break;  // handled above
    }
    Track& track = tracks_[track_index][static_cast<size_t>(event.node)];
    for (int i = 0; i < event.repeat; ++i) {
      track.ordinals.push_back(event.ordinal + static_cast<uint64_t>(i));
    }
  }
  for (auto& tracks : tracks_) {
    for (Track& track : tracks) {
      std::sort(track.ordinals.begin(), track.ordinals.end());
      track.ordinals.erase(
          std::unique(track.ordinals.begin(), track.ordinals.end()),
          track.ordinals.end());
    }
  }
}

uint64_t FaultInjector::Advance(Track& track, uint64_t events,
                                bool* tail_fired) {
  track.count += events;
  if (tail_fired != nullptr) *tail_fired = false;
  uint64_t fired = 0;
  while (track.next < track.ordinals.size() &&
         track.ordinals[track.next] <= track.count) {
    if (tail_fired != nullptr && track.ordinals[track.next] == track.count) {
      *tail_fired = true;
    }
    ++track.next;
    ++fired;
  }
  return fired;
}

FaultInjector::PacketFaults FaultInjector::OnPacketsDelivered(
    int dst, uint64_t packets) {
  PacketFaults faults;
  faults.lost = static_cast<int64_t>(
      Advance(tracks_[kLossTrack][static_cast<size_t>(dst)], packets,
              &faults.lost_tail));
  faults.duplicated = static_cast<int64_t>(
      Advance(tracks_[kDupTrack][static_cast<size_t>(dst)], packets,
              &faults.duplicated_tail));
  return faults;
}

int FaultInjector::OnPhaseEntry(const std::string& label) {
  int crashed = -1;
  for (CrashEvent& crash : crashes_) {
    if (crash.matched >= crash.last) continue;  // consumed
    if (!crash.label.empty() && label.find(crash.label) == std::string::npos) {
      continue;
    }
    ++crash.matched;
    if (crash.matched >= crash.first && crash.matched <= crash.last &&
        crashed < 0) {
      crashed = crash.node;
    }
  }
  return crashed;
}

}  // namespace gammadb::sim
