// The simulated shared-nothing multiprocessor.
//
// Mirrors the paper's Gamma configuration: a set of processors, some
// with attached disks ("disk nodes") and some diskless ("join nodes" of
// the remote configuration), connected by a token ring. The machine
// owns the phase clock: algorithms bracket their work in
// BeginPhase/EndPhase, run per-node work through RunOnNodes, and the
// machine turns accumulated per-node CPU/disk time plus network traffic
// into response time.
#ifndef GAMMA_SIM_MACHINE_H_
#define GAMMA_SIM_MACHINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/executor.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/node.h"

namespace gammadb::sim {

class Tracer;

struct MachineConfig {
  /// Processors with attached disk drives (Gamma default: 8).
  int num_disk_nodes = 8;
  /// Diskless processors available for join/aggregate work.
  int num_diskless_nodes = 0;
  CostModel cost;
  /// 1 = deterministic serial execution (default); >1 = thread pool.
  int num_threads = 1;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_disk_nodes() const { return config_.num_disk_nodes; }
  Node& node(int id) { return *nodes_[static_cast<size_t>(id)]; }
  const Node& node(int id) const { return *nodes_[static_cast<size_t>(id)]; }

  /// Ids of the nodes with attached disks, ascending ([0, num_disk_nodes)).
  std::vector<int> DiskNodeIds() const;
  /// Ids of the diskless nodes, ascending.
  std::vector<int> DisklessNodeIds() const;

  Network& network() { return network_; }
  const CostModel& cost() const { return config_.cost; }
  const MachineConfig& config() const { return config_; }

  // --- Fault injection (sim/fault.h) --------------------------------------

  /// Installs a fault plan. Event counters start at zero on arming (so a
  /// plan written against query events should be armed after loading) and
  /// are monotonic thereafter — ResetMetrics does NOT reset them, which is
  /// what lets a restarted operator run past its consumed faults. Replaces
  /// any previously armed plan; an empty plan is equivalent to disarming.
  void ArmFaults(const FaultPlan& plan);

  /// Removes the armed fault plan. The machine is fault-free again.
  void DisarmFaults();

  bool faults_armed() const { return faults_ != nullptr; }

  // --- Tracing (sim/trace.h) ----------------------------------------------

  /// Attaches a tracer (nullptr detaches). The machine registers itself
  /// with `label` and thereafter records every completed phase, restart
  /// and reset. Tracing is pure observation — attaching one cannot
  /// change any metric.
  void set_tracer(Tracer* tracer, const std::string& label = "machine");

  Tracer* tracer() const { return tracer_; }
  /// This machine's trace process id (0 when no tracer is attached).
  int trace_pid() const { return trace_pid_; }
  /// Simulated time of the current query's start on the shared trace
  /// timeline. ResetMetrics advances it by the elapsed response time, so
  /// successive queries on one machine lay out end to end.
  double trace_epoch_seconds() const { return trace_epoch_seconds_; }

  // --- Phase control -----------------------------------------------------

  /// Opens a phase. Phases must not nest. If the armed fault plan
  /// schedules a node crash for this phase entry, the crash is latched
  /// here and surfaces as Status::Aborted from the matching EndPhase
  /// (the phase's work still runs — and is wasted, exactly as it would
  /// be on the real machine).
  void BeginPhase(std::string label);

  /// Adds serialized scheduler work (control messages, split-table
  /// distribution) to the current phase; counts `messages` control
  /// messages in the counters.
  void ChargeScheduler(double seconds, int64_t messages);

  /// Closes the phase: flushes network traffic, computes the phase's
  /// elapsed time (max over nodes of max(cpu, disk), then max with ring
  /// occupancy, plus scheduler seconds) and adds it to the response time.
  /// Returns Status::Aborted when a scheduled node crash fired at this
  /// phase's entry (the phase record is kept either way — its time was
  /// really spent). Callers that cannot recover may ignore the result.
  Status EndPhase();

  /// Runs `fn(node)` once for each id in `ids` (a phase sub-step); blocks
  /// until all complete.
  void RunOnNodes(const std::vector<int>& ids,
                  const std::function<void(Node&)>& fn);

  /// As RunOnNodes, for fallible work: every task runs to completion
  /// (the phase barrier is preserved) and the non-OK status of the
  /// lowest-id node, if any, is returned — the deterministic choice at
  /// any thread count.
  Status TryRunOnNodes(const std::vector<int>& ids,
                       const std::function<Status(Node&)>& fn);

  /// Records one Gamma-style operator recovery: the aborted attempt's
  /// `wasted_seconds` are accounted as recovery time (they are already
  /// part of response_seconds) and operator_restarts is incremented.
  void RecordOperatorRestart(double wasted_seconds);

  // --- Results ------------------------------------------------------------

  /// Response time accumulated since the last ResetMetrics().
  double response_seconds() const { return response_seconds_; }

  /// Snapshot of all metrics: merges per-node counters with the
  /// machine-level ones.
  RunMetrics Metrics() const;

  /// Clears response time, phases and all counters (start of a query).
  void ResetMetrics();

 private:
  MachineConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Network network_;
  Executor executor_;
  std::unique_ptr<FaultInjector> faults_;
  Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
  double trace_epoch_seconds_ = 0;

  bool in_phase_ = false;
  std::string phase_label_;
  double phase_sched_seconds_ = 0;
  int crashed_node_ = -1;  // latched by BeginPhase, surfaced by EndPhase

  double response_seconds_ = 0;
  double recovery_seconds_ = 0;
  Counters machine_counters_;  // network + scheduler counters
  std::vector<PhaseRecord> phases_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_MACHINE_H_
