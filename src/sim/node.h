// One processor of the simulated shared-nothing machine.
//
// A node owns (optionally) a disk, a per-phase time account and its own
// operation counters. During a phase, at most one executor task runs on
// behalf of a node, so charging needs no synchronization.
#ifndef GAMMA_SIM_NODE_H_
#define GAMMA_SIM_NODE_H_

#include <memory>

#include "sim/cost_model.h"
#include "sim/disk.h"
#include "sim/metrics.h"

namespace gammadb::sim {

class FaultInjector;

class Node {
 public:
  Node(int id, bool has_disk, const CostModel* cost);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const { return id_; }
  bool has_disk() const { return disk_ != nullptr; }

  /// Requires has_disk().
  Disk& disk();
  const Disk& disk() const;

  const CostModel& cost() const { return *cost_; }

  /// Adds CPU time to the current phase, attributed to `category`.
  /// Attribution is a parallel account: the cpu_seconds accumulation
  /// order is independent of how charges are categorized, so
  /// categorizing a call site can never change the simulated clock.
  /// The category parameter is deliberately not defaulted: every charge
  /// site must name the cost-model primitive it pays for (enforced
  /// again by gamma_lint's cost/uncategorized-charge rule).
  void ChargeCpu(double seconds, CostCategory category) {
    phase_usage_.cpu_seconds += seconds;
    phase_usage_.by_category[static_cast<size_t>(category)] += seconds;
  }
  /// Adds disk-device time to the current phase.
  void ChargeDisk(double seconds, CostCategory category) {
    phase_usage_.disk_seconds += seconds;
    phase_usage_.by_category[static_cast<size_t>(category)] += seconds;
  }
  /// Adds `a + b` of CPU time in a single accumulation while attributing
  /// the two parts separately. Exists for call sites that historically
  /// charged one combined sum: splitting the clock addition in two would
  /// change float association and break byte-identical baselines.
  void ChargeCpuSplit(double a, CostCategory category_a, double b,
                      CostCategory category_b) {
    phase_usage_.cpu_seconds += a + b;
    phase_usage_.by_category[static_cast<size_t>(category_a)] += a;
    phase_usage_.by_category[static_cast<size_t>(category_b)] += b;
  }

  /// Current-phase account (read by Machine::EndPhase).
  const NodeUsage& phase_usage() const { return phase_usage_; }
  void ResetPhaseUsage() { phase_usage_ = NodeUsage{}; }

  /// This node's private operation counters (merged by Machine).
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

  /// Armed fault injector, or nullptr (the default). Set by
  /// Machine::ArmFaults; consulted by the disk on every I/O attempt.
  FaultInjector* fault_injector() const { return faults_; }
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  int id_;
  const CostModel* cost_;
  std::unique_ptr<Disk> disk_;
  NodeUsage phase_usage_;
  Counters counters_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_NODE_H_
