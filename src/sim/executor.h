// Executor: runs one task per participating node, optionally on a thread
// pool, and waits for all of them (a phase barrier).
//
// Scheduling is DETERMINISTIC in both modes. With num_threads == 1 tasks
// run inline in submission order. With num_threads > 1 the batch is
// statically striped: worker w runs tasks w, w + T, w + 2T, ... — the
// task-to-thread assignment is a pure function of (batch, num_threads),
// never of runtime timing. Together with the per-(src, dst) exchange
// lanes (sim/exchange.h) this makes pooled execution produce bit-identical
// metrics to serial execution; benchmarks and tests run threaded by
// default and diff clean against serial baselines.
#ifndef GAMMA_SIM_EXECUTOR_H_
#define GAMMA_SIM_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gammadb::sim {

class Executor {
 public:
  /// num_threads == 1: inline serial execution.
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs all tasks and blocks until every one has finished. If any
  /// task throws, every remaining task still runs (a phase barrier must
  /// drain) and the exception of the LOWEST-indexed throwing task — the
  /// same one serial execution would surface — is rethrown once the
  /// batch completes; the executor stays usable afterwards.
  void Run(std::vector<std::function<void()>> tasks);

  int num_threads() const { return num_threads_; }

 private:
  void WorkerLoop(int worker_index);
  /// Runs `tasks[index]` for index = start, start + stride, ...,
  /// recording the lowest-indexed exception into first_error_.
  void RunStripe(const std::vector<std::function<void()>>& tasks,
                 size_t start, size_t stride);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::function<void()>>* batch_ = nullptr;
  uint64_t generation_ = 0;  // bumped per batch; workers wait on it
  int workers_remaining_ = 0;
  bool shutdown_ = false;
  size_t first_error_index_ = SIZE_MAX;  // task index of first_error_
  std::exception_ptr first_error_;       // lowest-index exception of the batch
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_EXECUTOR_H_
