// Executor: runs one task per participating node, optionally on a thread
// pool, and waits for all of them (a phase barrier).
//
// With num_threads == 1 tasks run inline in submission order, which makes
// tuple-arrival order — and therefore overflow behaviour — fully
// deterministic. This is the default used by benchmarks and tests;
// multi-threaded mode exercises the same code for correctness-style
// invariants (results are order-independent).
#ifndef GAMMA_SIM_EXECUTOR_H_
#define GAMMA_SIM_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gammadb::sim {

class Executor {
 public:
  /// num_threads == 1: inline serial execution (deterministic).
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs all tasks and blocks until every one has finished. If any
  /// task throws, every remaining task still runs (a phase barrier must
  /// drain) and the first exception is rethrown to the caller once the
  /// batch completes; the executor stays usable afterwards.
  void Run(std::vector<std::function<void()>> tasks);

  int num_threads() const { return num_threads_; }

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  int outstanding_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;  // first exception of the current batch
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_EXECUTOR_H_
