// Per-node build-side memory broker.
//
// Each node of the shared-nothing machine owns a fixed byte budget of
// joining memory. Before the broker, every join PROCESS carried its own
// private `capacity_bytes` — correct while processes occupy distinct
// nodes, but two processes co-resident on one node (Appendix A's "fifth
// join process" remedy, or concurrent overflow sub-joins) would each
// claim the full node budget and together hold twice the memory the
// node has. The broker centralizes the ledger: every hash-table
// admission reserves bytes from the OWNING NODE's budget and every
// eviction, extraction or clear releases them, so co-resident consumers
// share one budget exactly.
//
// The broker is pure accounting. It charges no simulated time itself:
// the CPU/disk/network cost of a spill (evicting residents to an
// overflow file) or refill (re-scanning that file into the next
// sub-join) is charged by the caller through the existing cost
// categories (docs/overflow.md), so attaching a broker to a plan whose
// processes already occupy distinct nodes changes zero baseline bytes.
// Spill/refill byte totals are recorded here for JoinStats observability.
//
// Thread safety: none needed. The executor runs at most one task per
// node per phase (sim/machine.h), and each entry is only touched by its
// node's task, so entries are never shared between concurrent tasks.
#ifndef GAMMA_SIM_MEMORY_BROKER_H_
#define GAMMA_SIM_MEMORY_BROKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gammadb::sim {

class MemoryBroker {
 public:
  /// A broker for nodes [0, num_nodes); every budget starts at zero.
  explicit MemoryBroker(int num_nodes);

  /// Grants `bytes` of joining memory to `node`. Called once per join
  /// process placed on the node, so a node hosting two processes owns
  /// twice the per-process capacity — same aggregate as before, shared
  /// instead of duplicated.
  void AddBudget(int node, uint64_t bytes);

  /// Reserves `bytes` on `node` if the budget allows; returns false
  /// (reserving nothing) when the reservation would exceed it.
  bool TryReserve(int node, uint64_t bytes);

  /// Returns previously reserved bytes.
  void Release(int node, uint64_t bytes);

  uint64_t budget(int node) const { return entries_[Index(node)].budget; }
  uint64_t used(int node) const { return entries_[Index(node)].used; }
  uint64_t available(int node) const {
    const Entry& e = entries_[Index(node)];
    return e.budget - e.used;
  }

  /// Observability: lifetime bytes spooled out of build memory to
  /// overflow files (spill) and re-read from them into a later
  /// sub-join (refill). Recorded by the engine at its existing charge
  /// sites; never affects admission.
  void NoteSpill(int node, uint64_t bytes) {
    entries_[Index(node)].spill_bytes += bytes;
  }
  void NoteRefill(int node, uint64_t bytes) {
    entries_[Index(node)].refill_bytes += bytes;
  }
  uint64_t TotalSpillBytes() const;
  uint64_t TotalRefillBytes() const;

 private:
  struct Entry {
    uint64_t budget = 0;
    uint64_t used = 0;
    uint64_t spill_bytes = 0;
    uint64_t refill_bytes = 0;
  };

  size_t Index(int node) const;

  std::vector<Entry> entries_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_MEMORY_BROKER_H_
