// Deterministic, seeded fault injection for the simulated machine.
//
// A FaultPlan schedules faults keyed on *counted events*: the N-th page
// read (or write) issued on node k, the M-th remote packet delivered to
// destination j, the P-th entry into a phase whose label contains a
// given substring. Whether a fault fires therefore depends only on the
// query plan and the FaultPlan itself — never on wall-clock time or
// thread interleaving — so fault runs compose with the determinism
// contract (DESIGN.md): metrics are bit-identical at any executor
// thread count, with or without faults.
//
// Three fault classes are modeled:
//  * transient disk errors — a scheduled read/write attempt fails; the
//    disk retries (charging device + CPU time per attempt) and returns
//    Status::Unavailable once the retry budget is exhausted;
//  * packet loss / duplication — scheduled remote packets are lost (the
//    sender's sliding-window protocol detects the gap and retransmits,
//    paying extra send CPU and ring occupancy) or duplicated (the
//    receiver pays the receive path again and discards by sequence
//    number). Data is never corrupted: the protocol guarantees
//    delivery, so only costs and counters change;
//  * node crash — a node fails at the start of a scheduled phase; the
//    phase's work is wasted and Machine::EndPhase returns
//    Status::Aborted, which join::ExecuteJoin answers with Gamma's
//    recovery scheme: abort the operator, discard its partial output
//    and re-run it, billing the wasted time as recovery_seconds.
//
// Event counters are monotonic from Machine::ArmFaults (they do not
// reset with ResetMetrics), and every scheduled fault fires at most
// once — which is what lets an operator restart run to completion.
#ifndef GAMMA_SIM_FAULT_H_
#define GAMMA_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gammadb::sim {

enum class FaultKind : uint8_t {
  kDiskReadTransient,
  kDiskWriteTransient,
  kPacketLoss,
  kPacketDuplicate,
  kNodeCrash,
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDiskReadTransient;
  /// Node the event counter is keyed on: the node issuing the disk I/O,
  /// the destination of the remote packet, or the crashing node.
  int node = 0;
  /// 1-based count of the triggering event since ArmFaults (the N-th
  /// read, the M-th delivered remote packet, the P-th matching phase
  /// entry).
  uint64_t ordinal = 1;
  /// Number of consecutive events that fault: ordinals
  /// [ordinal, ordinal + repeat). A disk fault with repeat >= the disk's
  /// retry budget becomes a hard I/O error that propagates out of the
  /// storage layer as Status::Unavailable.
  int repeat = 1;
  /// kNodeCrash only: count entries into phases whose label contains
  /// this substring ("" = every phase).
  std::string phase_label;
};

/// An ordered set of scheduled faults. Build one explicitly with Add()
/// or derive one from a seed with Random(); install it with
/// Machine::ArmFaults.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& Add(FaultEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  /// Schedules a fault on every `period`-th event of `kind` on `node`,
  /// for `count` occurrences (ordinals period, 2*period, ...).
  FaultPlan& AddPeriodic(FaultKind kind, int node, uint64_t period,
                         int count);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  struct RandomOptions {
    int num_nodes = 8;
    /// Events drawn per enabled fault class.
    int events_per_class = 2;
    /// Disk/packet ordinals are drawn from [1, horizon].
    uint64_t io_horizon = 200;
    uint64_t packet_horizon = 100;
    /// Crash ordinals are drawn from [1, phase_horizon].
    uint64_t phase_horizon = 3;
    bool disk_faults = true;
    bool packet_faults = true;
    bool crashes = true;
  };

  /// A seeded random plan (same seed -> same plan, common/random.h).
  static FaultPlan Random(uint64_t seed, const RandomOptions& options);

 private:
  std::vector<FaultEvent> events_;
};

/// Runtime state of an armed FaultPlan: per-(kind, node) monotonic event
/// counters plus the scheduled ordinals still pending. Owned by the
/// Machine; nodes and the network hold raw pointers.
///
/// Thread-safety matches the simulator's single-writer contract: within
/// a phase, the counters of (kind, node) are only advanced by the
/// executor task running on behalf of that node (disk I/O) or by the
/// serial EndPhase/BeginPhase path (packets, crashes), so no locking is
/// needed and firing order is deterministic.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int num_nodes);

  /// Counts one page-read (-write) attempt on `node`; returns true when
  /// that attempt is scheduled to fail.
  bool OnPageRead(int node) {
    return Advance(tracks_[kReadTrack][static_cast<size_t>(node)], 1) != 0;
  }
  bool OnPageWrite(int node) {
    return Advance(tracks_[kWriteTrack][static_cast<size_t>(node)], 1) != 0;
  }

  struct PacketFaults {
    int64_t lost = 0;
    int64_t duplicated = 0;
    /// Whether the batch's final packet — the (possibly partial) tail
    /// packet of a traffic cell — is among the lost / duplicated ones.
    /// The network uses this to charge the tail's actual payload for
    /// the extra wire copy instead of a full packet_payload_bytes.
    bool lost_tail = false;
    bool duplicated_tail = false;
  };

  /// Counts `packets` remote packets delivered to `dst` and returns how
  /// many in that range are scheduled to be lost / duplicated.
  PacketFaults OnPacketsDelivered(int dst, uint64_t packets);

  /// Counts one phase entry against every pending crash event whose
  /// label matches `label`. Returns the id of the crashing node, or -1.
  int OnPhaseEntry(const std::string& label);

 private:
  /// Scheduled ordinals (ascending) against a monotonic event counter.
  struct Track {
    std::vector<uint64_t> ordinals;
    size_t next = 0;     // first unconsumed ordinal
    uint64_t count = 0;  // events seen so far
  };

  struct CrashEvent {
    int node = 0;
    std::string label;
    uint64_t first = 1;  // ordinal
    uint64_t last = 1;   // ordinal + repeat - 1
    uint64_t matched = 0;
  };

  /// Advances `track` by `events` and returns how many scheduled
  /// ordinals fall inside the advanced range (consuming them). A
  /// non-null `tail_fired` reports whether the range's final ordinal is
  /// among them.
  static uint64_t Advance(Track& track, uint64_t events,
                          bool* tail_fired = nullptr);

  enum { kReadTrack = 0, kWriteTrack, kLossTrack, kDupTrack, kNumTracks };

  std::vector<Track> tracks_[kNumTracks];  // indexed by node id
  std::vector<CrashEvent> crashes_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_FAULT_H_
