#include "sim/disk.h"

#include <cstring>
#include <string>

#include "common/logging.h"
#include "sim/fault.h"
#include "sim/node.h"

namespace gammadb::sim {

Disk::Disk(Node* owner, const CostModel* cost) : owner_(owner), cost_(cost) {}

PageId Disk::AllocatePage() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, cost_->page_bytes);
    return id;
  }
  pages_.push_back(std::make_unique<uint8_t[]>(cost_->page_bytes));
  std::memset(pages_.back().get(), 0, cost_->page_bytes);
  return static_cast<PageId>(pages_.size() - 1);
}

void Disk::FreePage(PageId id) {
  GAMMA_DCHECK(id < pages_.size());
  free_list_.push_back(id);
}

Status Disk::RunIoAttempts(AccessPattern pattern, bool is_write) const {
  const double device = pattern == AccessPattern::kSequential
                            ? cost_->disk_seq_page_seconds
                            : cost_->disk_rand_page_seconds;
  Counters& counters = owner_->counters();
  for (int attempt = 1;; ++attempt) {
    // Every attempt pays full device + issue-CPU time: a retried I/O is
    // a real arm movement plus a fresh WiSS call.
    owner_->ChargeDisk(device, pattern == AccessPattern::kSequential
                                   ? CostCategory::kDiskSeq
                                   : CostCategory::kDiskRand);
    owner_->ChargeCpu(cost_->cpu_page_io_seconds, CostCategory::kIoIssue);
    FaultInjector* faults = owner_->fault_injector();
    const bool failed =
        faults != nullptr && (is_write ? faults->OnPageWrite(owner_->id())
                                       : faults->OnPageRead(owner_->id()));
    if (!failed) {
      if (is_write) {
        ++counters.pages_written;
      } else {
        ++counters.pages_read;
      }
      return Status::OK();
    }
    if (is_write) {
      ++counters.disk_write_faults;
    } else {
      ++counters.disk_read_faults;
    }
    if (attempt >= kMaxIoAttempts) {
      return Status::Unavailable(
          std::string("page ") + (is_write ? "write" : "read") +
          " failed after " + std::to_string(kMaxIoAttempts) +
          " attempts on node " + std::to_string(owner_->id()));
    }
    ++counters.io_retries;
  }
}

Status Disk::WritePage(PageId id, const uint8_t* data, AccessPattern pattern) {
  GAMMA_DCHECK(id < pages_.size());
  GAMMA_RETURN_IF_ERROR(RunIoAttempts(pattern, /*is_write=*/true));
  std::memcpy(pages_[id].get(), data, cost_->page_bytes);
  return Status::OK();
}

Status Disk::ReadPage(PageId id, uint8_t* out, AccessPattern pattern) const {
  GAMMA_DCHECK(id < pages_.size());
  GAMMA_RETURN_IF_ERROR(RunIoAttempts(pattern, /*is_write=*/false));
  std::memcpy(out, pages_[id].get(), cost_->page_bytes);
  return Status::OK();
}

Status Disk::ReadPageRef(PageId id, const uint8_t** out,
                         AccessPattern pattern) const {
  GAMMA_DCHECK(id < pages_.size());
  GAMMA_RETURN_IF_ERROR(RunIoAttempts(pattern, /*is_write=*/false));
  *out = pages_[id].get();
  return Status::OK();
}

const uint8_t* Disk::PeekPage(PageId id) const {
  GAMMA_DCHECK(id < pages_.size());
  return pages_[id].get();
}

}  // namespace gammadb::sim
