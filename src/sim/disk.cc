#include "sim/disk.h"

#include <cstring>

#include "common/logging.h"
#include "sim/node.h"

namespace gammadb::sim {

Disk::Disk(Node* owner, const CostModel* cost) : owner_(owner), cost_(cost) {}

PageId Disk::AllocatePage() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, cost_->page_bytes);
    return id;
  }
  pages_.push_back(std::make_unique<uint8_t[]>(cost_->page_bytes));
  std::memset(pages_.back().get(), 0, cost_->page_bytes);
  return static_cast<PageId>(pages_.size() - 1);
}

void Disk::FreePage(PageId id) {
  GAMMA_DCHECK(id < pages_.size());
  free_list_.push_back(id);
}

void Disk::ChargeIo(AccessPattern pattern, bool is_write) const {
  const double device = pattern == AccessPattern::kSequential
                            ? cost_->disk_seq_page_seconds
                            : cost_->disk_rand_page_seconds;
  owner_->ChargeDisk(device);
  owner_->ChargeCpu(cost_->cpu_page_io_seconds);
  if (is_write) {
    ++owner_->counters().pages_written;
  } else {
    ++owner_->counters().pages_read;
  }
}

void Disk::WritePage(PageId id, const uint8_t* data, AccessPattern pattern) {
  GAMMA_DCHECK(id < pages_.size());
  std::memcpy(pages_[id].get(), data, cost_->page_bytes);
  ChargeIo(pattern, /*is_write=*/true);
}

void Disk::ReadPage(PageId id, uint8_t* out, AccessPattern pattern) const {
  GAMMA_DCHECK(id < pages_.size());
  std::memcpy(out, pages_[id].get(), cost_->page_bytes);
  ChargeIo(pattern, /*is_write=*/false);
}

const uint8_t* Disk::PeekPage(PageId id) const {
  GAMMA_DCHECK(id < pages_.size());
  return pages_[id].get();
}

}  // namespace gammadb::sim
