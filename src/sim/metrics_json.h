// JSON serialization of the simulator's metrics types.
//
// The benchmark harness emits one schema-versioned JSON document per
// benchmark run (docs/benchmarking.md); these converters produce the
// "metrics" subtree: response time, all Counters fields, and per-phase
// per-node cpu/disk seconds so a phase-level regression is attributable
// to the node and phase that caused it.
#ifndef GAMMA_SIM_METRICS_JSON_H_
#define GAMMA_SIM_METRICS_JSON_H_

#include "common/json.h"
#include "sim/metrics.h"

namespace gammadb::sim {

/// Version of the benchmark JSON document layout. Bump when a field is
/// renamed or removed (additions are backward compatible — bench_diff
/// ignores metrics missing from the baseline).
inline constexpr int kMetricsSchemaVersion = 1;

/// Every Counters field, keyed by field name, plus the derived
/// short_circuit_fraction.
JsonValue CountersToJson(const Counters& counters);

/// Phase label, scheduler/ring/elapsed seconds, and per-node
/// {cpu_seconds, disk_seconds} indexed by node id. With
/// `include_attribution` each node additionally carries an
/// "attribution" object (nonzero cost categories only,
/// sim/metrics.h CostCategoryName keys) and the phase a "ring"
/// decomposition; off by default so existing baselines stay
/// byte-identical.
JsonValue PhaseRecordToJson(const PhaseRecord& phase,
                            bool include_attribution = false);

/// Full RunMetrics: response_seconds, aggregate cpu/disk seconds,
/// counters, and the phase list. With `include_attribution`, phases
/// carry per-node attribution and the document gains an
/// "attribution_totals" object summing every category over the run.
JsonValue RunMetricsToJson(const RunMetrics& metrics,
                           bool include_attribution = false);

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_METRICS_JSON_H_
