// Calibrated cost model for the simulated Gamma configuration.
//
// The hardware being modeled (paper Section 2.1): VAX 11/750 processors
// (~0.6 MIPS), 2 MB memory each, an 80 megabit/second token ring with a
// 2 KB network packet size, and 333 MB 8" Fujitsu disk drives accessed
// through WiSS with one-page read-ahead, using 8 KB disk pages.
//
// Every constant is the simulated-seconds price of one primitive
// operation. The defaults were calibrated so that the joinABprime
// response times land in the paper's range (tens to hundreds of
// seconds); the *shapes* of all reproduced figures derive from operation
// counts, not from these constants.
#ifndef GAMMA_SIM_COST_MODEL_H_
#define GAMMA_SIM_COST_MODEL_H_

#include <cstdint>

namespace gammadb::sim {

struct CostModel {
  // --- Disk (per 8 KB page). Sequential assumes WiSS read-ahead. ---
  double disk_seq_page_seconds = 0.012;
  double disk_rand_page_seconds = 0.028;
  /// CPU consumed issuing one page I/O (buffer management, WiSS call).
  double cpu_page_io_seconds = 0.0012;

  // --- CPU, per tuple (208-byte Wisconsin tuples on a ~0.6 MIPS CPU). ---
  /// Extract a tuple from a page during a scan.
  double cpu_read_tuple_seconds = 0.00050;
  /// Copy a tuple into an output page / temporary file buffer.
  double cpu_write_tuple_seconds = 0.00035;
  /// Hash the join attribute and index a split table.
  double cpu_hash_route_seconds = 0.00100;
  /// Insert into an in-memory join hash table.
  double cpu_ht_insert_seconds = 0.00140;
  /// Probe an in-memory join hash table (excluding chain compares).
  double cpu_ht_probe_seconds = 0.00140;
  /// Compare a probe key against one hash-chain entry.
  double cpu_compare_seconds = 0.00025;
  /// Comparison inside sort run formation / merge.
  double cpu_sort_compare_seconds = 0.00050;
  /// Compose a result tuple (concatenate R and S tuples).
  double cpu_build_result_seconds = 0.00200;
  /// Evaluate a selection predicate.
  double cpu_predicate_seconds = 0.00030;
  /// Update one aggregate accumulator (group lookup + fold).
  double cpu_aggregate_seconds = 0.00040;
  /// Set or test one bit-vector-filter bit.
  double cpu_filter_op_seconds = 0.00018;

  // --- Network (80 Mbit token ring, 2 KB packets). ---
  //
  // The sliding-window datagram protocol (paper Section 2.2) runs in
  // software on the 0.6 MIPS CPUs, and its receive path — interrupt
  // service, reassembly, buffer copies into the destination process —
  // is far more expensive than the send path. This asymmetry is what
  // makes HPJA joins faster locally than remotely (Figure 15) while
  // non-HPJA joins, whose tuples must cross the ring anyway, benefit
  // from offloading the join CPU to diskless processors (Figure 16),
  // and why remote execution leaves the disk-node CPUs at ~60%
  // utilization (paper Section 5).
  /// Protocol CPU at the SENDER per remote packet.
  double net_remote_packet_send_cpu_seconds = 0.0050;
  /// Protocol CPU at the RECEIVER per remote packet.
  double net_remote_packet_recv_cpu_seconds = 0.0250;
  /// Per-tuple copy out of a received remote packet into the operator.
  double cpu_receive_tuple_seconds = 0.00080;
  /// Protocol CPU for a short-circuited (same-node) packet. The paper is
  /// explicit that short-circuited traffic still pays protocol cost
  /// ("the protocol cost cannot be ignored", Section 4.1).
  double net_local_packet_cpu_seconds = 0.0020;
  /// Sender CPU to detect a lost packet (window timeout / NAK handling)
  /// and queue its retransmission, on top of the normal send cost of the
  /// resent packet. Only charged under injected packet loss (sim/fault.h).
  double net_retransmit_detect_cpu_seconds = 0.0050;
  /// Ring occupancy per byte: 80 Mbit/s = 10 MB/s.
  double net_wire_seconds_per_byte = 1.0e-7;
  /// Usable payload of one network packet.
  uint32_t packet_payload_bytes = 2048;

  // --- Scheduling (scheduler process control messages). ---
  /// One control message between the scheduler and an operator process
  /// (start/commit messages; each operator phase costs two per process).
  double sched_control_message_seconds = 0.030;

  // --- Page geometry. ---
  uint32_t page_bytes = 8192;

  /// Number of scheduler packets needed to ship a split table of
  /// `table_bytes` bytes: tables larger than one packet "must be sent in
  /// pieces" (paper Section 4.1) — this is the extra rise at the scarce-
  /// memory end of the Hybrid/Grace curves.
  int SplitTablePackets(uint64_t table_bytes) const {
    if (table_bytes == 0) return 0;
    return static_cast<int>((table_bytes + packet_payload_bytes - 1) /
                            packet_payload_bytes);
  }
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_COST_MODEL_H_
