#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"

namespace gammadb::sim {
namespace {

constexpr int kQueryTid = 0;
constexpr int kSchedulerTid = 1;
constexpr int kRingTid = 2;
constexpr int kFirstNodeTid = 3;

double ToMicros(double seconds) { return seconds * 1e6; }

JsonValue MetadataEvent(int pid, int tid, const char* name,
                        const char* arg_key, std::string arg_value) {
  JsonValue e = JsonValue::MakeObject();
  e.Set("ph", "M");
  e.Set("pid", pid);
  e.Set("tid", tid);
  e.Set("name", name);
  JsonValue args = JsonValue::MakeObject();
  args.Set(arg_key, std::move(arg_value));
  e.Set("args", std::move(args));
  return e;
}

JsonValue CompleteEvent(int pid, int tid, const std::string& name,
                        double start_seconds, double dur_seconds) {
  JsonValue e = JsonValue::MakeObject();
  e.Set("ph", "X");
  e.Set("pid", pid);
  e.Set("tid", tid);
  e.Set("name", name);
  e.Set("ts", ToMicros(start_seconds));
  e.Set("dur", ToMicros(dur_seconds));
  return e;
}

}  // namespace

JsonValue NodeUsageTraceArgs(const NodeUsage& usage) {
  JsonValue args = JsonValue::MakeObject();
  args.Set("cpu_seconds", usage.cpu_seconds);
  args.Set("disk_seconds", usage.disk_seconds);
  JsonValue attribution = JsonValue::MakeObject();
  for (size_t c = 0; c < kNumCostCategories; ++c) {
    if (usage.by_category[c] != 0) {
      attribution.Set(CostCategoryName(static_cast<CostCategory>(c)),
                      usage.by_category[c]);
    }
  }
  args.Set("attribution", std::move(attribution));
  return args;
}

int Tracer::RegisterMachine(int num_nodes, int num_disk_nodes,
                            const std::string& label) {
  const int pid = next_pid_++;
  metadata_.push_back(MetadataEvent(pid, kQueryTid, "process_name",
                                    "name", label));
  metadata_.push_back(
      MetadataEvent(pid, kQueryTid, "thread_name", "name", "query"));
  metadata_.push_back(
      MetadataEvent(pid, kSchedulerTid, "thread_name", "name", "scheduler"));
  metadata_.push_back(
      MetadataEvent(pid, kRingTid, "thread_name", "name", "ring"));
  for (int i = 0; i < num_nodes; ++i) {
    std::string name = "node " + std::to_string(i);
    if (i >= num_disk_nodes) name += " (diskless)";
    metadata_.push_back(MetadataEvent(pid, kFirstNodeTid + i, "thread_name",
                                      "name", std::move(name)));
  }
  return pid;
}

void Tracer::RecordPhase(int pid, double start_seconds,
                         const PhaseRecord& record) {
  for (size_t i = 0; i < record.usage.size(); ++i) {
    const NodeUsage& usage = record.usage[i];
    const double elapsed = usage.Elapsed();
    if (elapsed == 0) continue;
    JsonValue e = CompleteEvent(pid, kFirstNodeTid + static_cast<int>(i),
                                record.label, start_seconds, elapsed);
    e.Set("args", NodeUsageTraceArgs(usage));
    Emit(start_seconds, std::move(e));
  }
  if (record.ring_seconds != 0) {
    JsonValue e = CompleteEvent(pid, kRingTid, record.label, start_seconds,
                                record.ring_seconds);
    JsonValue args = JsonValue::MakeObject();
    args.Set("payload_seconds", record.ring.payload_seconds);
    if (record.ring.retransmit_seconds != 0) {
      args.Set("retransmit_seconds", record.ring.retransmit_seconds);
    }
    if (record.ring.duplicate_seconds != 0) {
      args.Set("duplicate_seconds", record.ring.duplicate_seconds);
    }
    e.Set("args", std::move(args));
    Emit(start_seconds, std::move(e));
  }
  if (record.sched_seconds != 0) {
    // Scheduler work serializes after the overlapped node/ring interval.
    const double sched_start =
        start_seconds + (record.elapsed_seconds - record.sched_seconds);
    Emit(sched_start, CompleteEvent(pid, kSchedulerTid, record.label,
                                    sched_start, record.sched_seconds));
  }
}

void Tracer::RecordRestart(int pid, double start_seconds,
                           double end_seconds) {
  JsonValue e = CompleteEvent(pid, kQueryTid, "operator restart",
                              start_seconds, end_seconds - start_seconds);
  JsonValue args = JsonValue::MakeObject();
  args.Set("wasted_seconds", end_seconds - start_seconds);
  e.Set("args", std::move(args));
  Emit(start_seconds, std::move(e));
}

void Tracer::RecordQuery(int pid, double start_seconds, double end_seconds,
                         const std::string& name, JsonValue args) {
  JsonValue e = CompleteEvent(pid, kQueryTid, name, start_seconds,
                              end_seconds - start_seconds);
  if (!args.is_null()) e.Set("args", std::move(args));
  Emit(start_seconds, std::move(e));
}

void Tracer::Emit(double ts_seconds, JsonValue json) {
  events_.push_back(Event{ts_seconds, next_seq_++, std::move(json)});
}

std::string Tracer::Dump() const {
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const Event* a, const Event* b) {
              if (a->ts_seconds != b->ts_seconds) {
                return a->ts_seconds < b->ts_seconds;
              }
              return a->seq < b->seq;
            });

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("displayTimeUnit", "ms");
  JsonValue trace_events = JsonValue::MakeArray();
  for (const JsonValue& m : metadata_) trace_events.Append(m);
  for (const Event* e : ordered) trace_events.Append(e->json);
  doc.Set("traceEvents", std::move(trace_events));
  return doc.Dump(1);
}

Status Tracer::WriteFile(const std::string& path) const {
  const std::string text = Dump();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace gammadb::sim
