// Simulated 80 Mbit token ring with 2 KB packets and short-circuiting.
//
// Gamma's communication software short-circuits messages between two
// processes on the same processor (paper Section 2.2): such traffic
// never occupies the ring and pays a reduced protocol cost, but the
// cost "cannot be ignored" (Section 4.1). The network therefore tracks,
// per (source, destination) pair within a phase, how many bytes and
// tuples flowed; at phase end the traffic is packetized and protocol
// CPU is charged to both endpoints, with ring occupancy accumulated for
// remote traffic only.
#ifndef GAMMA_SIM_NETWORK_H_
#define GAMMA_SIM_NETWORK_H_

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"
#include "sim/metrics.h"

namespace gammadb::sim {

class FaultInjector;
class Node;

class Network {
 public:
  Network(size_t num_nodes, const CostModel* cost);

  /// Armed fault injector, or nullptr (the default). Set by
  /// Machine::ArmFaults; consulted per remote (src, dst) cell in
  /// FlushPhase. Short-circuited traffic never rides the ring and is
  /// exempt from packet faults.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Records `bytes` of tuple traffic from node `src` to node `dst`.
  /// Thread-safety contract: within a phase, row `src` is only touched by
  /// the executor task running on behalf of node `src`.
  void AccountTuple(int src, int dst, uint32_t bytes) {
    Cell& c = matrix_[static_cast<size_t>(src) * num_nodes_ + dst];
    c.bytes += bytes;
    c.tuples += 1;
  }

  /// Records a stream of raw bytes (e.g. shipping a bit filter).
  void AccountBytes(int src, int dst, uint64_t bytes) {
    matrix_[static_cast<size_t>(src) * num_nodes_ + dst].bytes += bytes;
  }

  /// Packetizes the phase's traffic: charges protocol CPU to the nodes,
  /// updates `counters`, and returns the ring occupancy in seconds.
  /// Clears the traffic matrix for the next phase. A non-null
  /// `attribution` receives the occupancy decomposed into payload /
  /// retransmit / duplicate components (their sum equals the return
  /// value up to float re-association).
  double FlushPhase(std::vector<Node*>& nodes, Counters& counters,
                    RingAttribution* attribution = nullptr);

 private:
  struct Cell {
    uint64_t bytes = 0;
    uint64_t tuples = 0;
  };

  size_t num_nodes_;
  const CostModel* cost_;
  std::vector<Cell> matrix_;  // row-major [src][dst]
  FaultInjector* faults_ = nullptr;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_NETWORK_H_
