#include "sim/metrics_json.h"

namespace gammadb::sim {

JsonValue CountersToJson(const Counters& counters) {
  // Serialization must stay in sync with the Counters struct: adding a
  // field without emitting it would silently drop it from every
  // baseline. The size check below fails the build until this function
  // (and the schema test) are updated.
  static_assert(sizeof(Counters) == 25 * sizeof(int64_t),
                "Counters changed: update CountersToJson, "
                "metrics_json_test.cc and docs/benchmarking.md");
  JsonValue out = JsonValue::MakeObject();
  out.Set("pages_read", counters.pages_read);
  out.Set("pages_written", counters.pages_written);
  out.Set("tuples_sent_local", counters.tuples_sent_local);
  out.Set("tuples_sent_remote", counters.tuples_sent_remote);
  out.Set("bytes_local", counters.bytes_local);
  out.Set("bytes_remote", counters.bytes_remote);
  out.Set("packets_local", counters.packets_local);
  out.Set("packets_remote", counters.packets_remote);
  out.Set("control_messages", counters.control_messages);
  out.Set("ht_inserts", counters.ht_inserts);
  out.Set("ht_probes", counters.ht_probes);
  out.Set("ht_overflows", counters.ht_overflows);
  out.Set("filter_drops", counters.filter_drops);
  out.Set("result_tuples", counters.result_tuples);
  // Fault counters are emitted only when fault machinery engaged:
  // fault-free runs must stay byte-identical to pre-fault baselines.
  // (bench_diff flags candidate-only keys, so a baseline recorded with
  // the condition engaged keeps gating it.)
  if (counters.AnyFaults()) {
    out.Set("disk_read_faults", counters.disk_read_faults);
    out.Set("disk_write_faults", counters.disk_write_faults);
    out.Set("io_retries", counters.io_retries);
    out.Set("packets_lost", counters.packets_lost);
    out.Set("packets_duplicated", counters.packets_duplicated);
    out.Set("packets_retransmitted", counters.packets_retransmitted);
    out.Set("node_crashes", counters.node_crashes);
    out.Set("operator_restarts", counters.operator_restarts);
  }
  // Same contract for adaptive repartitioning: skew-free runs stay
  // byte-identical to pre-rebalance baselines.
  if (counters.AnyRebalance()) {
    out.Set("rebalance_plans", counters.rebalance_plans);
    out.Set("rebalance_moved_tuples", counters.rebalance_moved_tuples);
    out.Set("rebalance_replica_tuples", counters.rebalance_replica_tuples);
  }
  out.Set("short_circuit_fraction", counters.ShortCircuitFraction());
  return out;
}

namespace {

/// Nonzero cost categories of `usage`, keyed by CostCategoryName.
JsonValue AttributionToJson(const NodeUsage& usage) {
  JsonValue out = JsonValue::MakeObject();
  for (size_t c = 0; c < kNumCostCategories; ++c) {
    if (usage.by_category[c] != 0) {
      out.Set(CostCategoryName(static_cast<CostCategory>(c)),
              usage.by_category[c]);
    }
  }
  return out;
}

}  // namespace

JsonValue PhaseRecordToJson(const PhaseRecord& phase,
                            bool include_attribution) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("label", phase.label);
  out.Set("sched_seconds", phase.sched_seconds);
  out.Set("ring_seconds", phase.ring_seconds);
  out.Set("elapsed_seconds", phase.elapsed_seconds);
  if (include_attribution) {
    JsonValue ring = JsonValue::MakeObject();
    ring.Set("payload_seconds", phase.ring.payload_seconds);
    ring.Set("retransmit_seconds", phase.ring.retransmit_seconds);
    ring.Set("duplicate_seconds", phase.ring.duplicate_seconds);
    out.Set("ring", std::move(ring));
  }
  JsonValue nodes = JsonValue::MakeArray();
  for (const NodeUsage& usage : phase.usage) {
    JsonValue node = JsonValue::MakeObject();
    node.Set("cpu_seconds", usage.cpu_seconds);
    node.Set("disk_seconds", usage.disk_seconds);
    if (include_attribution) {
      node.Set("attribution", AttributionToJson(usage));
    }
    nodes.Append(std::move(node));
  }
  out.Set("nodes", std::move(nodes));
  return out;
}

JsonValue RunMetricsToJson(const RunMetrics& metrics,
                           bool include_attribution) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("response_seconds", metrics.response_seconds);
  if (metrics.counters.AnyFaults()) {
    out.Set("recovery_seconds", metrics.recovery_seconds);
  }
  out.Set("total_cpu_seconds", metrics.TotalCpuSeconds());
  out.Set("total_disk_seconds", metrics.TotalDiskSeconds());
  if (include_attribution) {
    NodeUsage totals;
    for (const PhaseRecord& phase : metrics.phases) {
      for (const NodeUsage& usage : phase.usage) {
        for (size_t c = 0; c < kNumCostCategories; ++c) {
          totals.by_category[c] += usage.by_category[c];
        }
      }
    }
    out.Set("attribution_totals", AttributionToJson(totals));
  }
  out.Set("counters", CountersToJson(metrics.counters));
  JsonValue phases = JsonValue::MakeArray();
  for (const PhaseRecord& phase : metrics.phases) {
    phases.Append(PhaseRecordToJson(phase, include_attribution));
  }
  out.Set("phases", std::move(phases));
  return out;
}

}  // namespace gammadb::sim
