#include "sim/machine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/trace.h"

namespace gammadb::sim {

Machine::Machine(MachineConfig config)
    : config_(config),
      network_(static_cast<size_t>(config.num_disk_nodes +
                                   config.num_diskless_nodes),
               &config_.cost),
      executor_(config.num_threads) {
  GAMMA_CHECK_GE(config.num_disk_nodes, 1);
  GAMMA_CHECK_GE(config.num_diskless_nodes, 0);
  const int total = config.num_disk_nodes + config.num_diskless_nodes;
  nodes_.reserve(static_cast<size_t>(total));
  for (int id = 0; id < total; ++id) {
    nodes_.push_back(std::make_unique<Node>(
        id, /*has_disk=*/id < config.num_disk_nodes, &config_.cost));
  }
}

void Machine::ArmFaults(const FaultPlan& plan) {
  GAMMA_CHECK(!in_phase_) << "cannot arm faults inside a phase";
  if (plan.empty()) {
    DisarmFaults();
    return;
  }
  faults_ = std::make_unique<FaultInjector>(plan, num_nodes());
  for (auto& node : nodes_) node->set_fault_injector(faults_.get());
  network_.set_fault_injector(faults_.get());
}

void Machine::DisarmFaults() {
  GAMMA_CHECK(!in_phase_) << "cannot disarm faults inside a phase";
  for (auto& node : nodes_) node->set_fault_injector(nullptr);
  network_.set_fault_injector(nullptr);
  faults_.reset();
  crashed_node_ = -1;
}

std::vector<int> Machine::DiskNodeIds() const {
  std::vector<int> ids(static_cast<size_t>(config_.num_disk_nodes));
  for (int i = 0; i < config_.num_disk_nodes; ++i) ids[static_cast<size_t>(i)] = i;
  return ids;
}

std::vector<int> Machine::DisklessNodeIds() const {
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(config_.num_diskless_nodes));
  for (int i = config_.num_disk_nodes; i < num_nodes(); ++i) ids.push_back(i);
  return ids;
}

void Machine::set_tracer(Tracer* tracer, const std::string& label) {
  GAMMA_CHECK(!in_phase_) << "cannot attach a tracer inside a phase";
  tracer_ = tracer;
  trace_pid_ = 0;
  trace_epoch_seconds_ = 0;
  if (tracer_ != nullptr) {
    trace_pid_ =
        tracer_->RegisterMachine(num_nodes(), num_disk_nodes(), label);
  }
}

void Machine::BeginPhase(std::string label) {
  GAMMA_CHECK(!in_phase_) << "phase '" << phase_label_
                          << "' still open when starting '" << label << "'";
  in_phase_ = true;
  phase_label_ = std::move(label);
  phase_sched_seconds_ = 0;
  for (auto& node : nodes_) node->ResetPhaseUsage();
  if (faults_ != nullptr) {
    const int crashed = faults_->OnPhaseEntry(phase_label_);
    if (crashed >= 0) {
      crashed_node_ = crashed;
      ++machine_counters_.node_crashes;
    }
  }
}

void Machine::ChargeScheduler(double seconds, int64_t messages) {
  GAMMA_CHECK(in_phase_);
  phase_sched_seconds_ += seconds;
  machine_counters_.control_messages += messages;
}

Status Machine::EndPhase() {
  GAMMA_CHECK(in_phase_);
  PhaseRecord record;
  record.label = std::move(phase_label_);
  record.sched_seconds = phase_sched_seconds_;

  std::vector<Node*> raw;
  raw.reserve(nodes_.size());
  for (auto& node : nodes_) raw.push_back(node.get());
  record.ring_seconds =
      network_.FlushPhase(raw, machine_counters_, &record.ring);
  GAMMA_DCHECK(std::abs(record.ring.Total() - record.ring_seconds) <=
               1e-9 * std::max(1.0, record.ring_seconds))
      << "ring attribution (" << record.ring.Total()
      << ") does not account for ring occupancy (" << record.ring_seconds
      << ") in phase '" << record.label << "'";

  record.usage.reserve(nodes_.size());
  double slowest_node = 0;
  for (auto& node : nodes_) {
    const NodeUsage& usage = node->phase_usage();
    const double charged = usage.cpu_seconds + usage.disk_seconds;
    GAMMA_DCHECK(std::abs(usage.AttributedSeconds() - charged) <=
                 1e-9 * std::max(1.0, charged))
        << "cost attribution (" << usage.AttributedSeconds()
        << ") does not account for node " << node->id() << "'s " << charged
        << " charged seconds in phase '" << record.label << "'";
    record.usage.push_back(usage);
    slowest_node = std::max(slowest_node, usage.Elapsed());
  }
  // Node work overlaps ring transfers; scheduler messages serialize.
  record.elapsed_seconds =
      std::max(slowest_node, record.ring_seconds) + record.sched_seconds;
  if (tracer_ != nullptr) {
    tracer_->RecordPhase(trace_pid_, trace_epoch_seconds_ + response_seconds_,
                         record);
  }
  response_seconds_ += record.elapsed_seconds;
  const std::string label = record.label;
  phases_.push_back(std::move(record));
  in_phase_ = false;
  if (crashed_node_ >= 0) {
    const int node = crashed_node_;
    crashed_node_ = -1;
    return Status::Aborted("node " + std::to_string(node) +
                           " crashed during phase '" + label + "'");
  }
  return Status::OK();
}

void Machine::RunOnNodes(const std::vector<int>& ids,
                         const std::function<void(Node&)>& fn) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ids.size());
  for (int id : ids) {
    GAMMA_CHECK(id >= 0 && id < num_nodes()) << "bad node id " << id;
    Node* node = nodes_[static_cast<size_t>(id)].get();
    tasks.push_back([node, &fn] { fn(*node); });
  }
  executor_.Run(std::move(tasks));
}

Status Machine::TryRunOnNodes(const std::vector<int>& ids,
                              const std::function<Status(Node&)>& fn) {
  std::vector<Status> statuses(ids.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    GAMMA_CHECK(ids[i] >= 0 && ids[i] < num_nodes())
        << "bad node id " << ids[i];
    Node* node = nodes_[static_cast<size_t>(ids[i])].get();
    Status* slot = &statuses[i];
    tasks.push_back([node, &fn, slot] { *slot = fn(*node); });
  }
  executor_.Run(std::move(tasks));
  for (const Status& status : statuses) {
    GAMMA_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

void Machine::RecordOperatorRestart(double wasted_seconds) {
  GAMMA_CHECK(!in_phase_);
  ++machine_counters_.operator_restarts;
  recovery_seconds_ += wasted_seconds;
  if (tracer_ != nullptr) {
    const double end = trace_epoch_seconds_ + response_seconds_;
    tracer_->RecordRestart(trace_pid_, end - wasted_seconds, end);
  }
}

RunMetrics Machine::Metrics() const {
  RunMetrics m;
  m.response_seconds = response_seconds_;
  m.recovery_seconds = recovery_seconds_;
  m.phases = phases_;
  m.counters = machine_counters_;
  for (const auto& node : nodes_) {
    const Counters& c = node->counters();
    m.counters.pages_read += c.pages_read;
    m.counters.pages_written += c.pages_written;
    m.counters.ht_inserts += c.ht_inserts;
    m.counters.ht_probes += c.ht_probes;
    m.counters.ht_overflows += c.ht_overflows;
    m.counters.filter_drops += c.filter_drops;
    m.counters.result_tuples += c.result_tuples;
    m.counters.disk_read_faults += c.disk_read_faults;
    m.counters.disk_write_faults += c.disk_write_faults;
    m.counters.io_retries += c.io_retries;
    m.counters.rebalance_plans += c.rebalance_plans;
    m.counters.rebalance_moved_tuples += c.rebalance_moved_tuples;
    m.counters.rebalance_replica_tuples += c.rebalance_replica_tuples;
  }
  return m;
}

void Machine::ResetMetrics() {
  GAMMA_CHECK(!in_phase_);
  // Keep the trace timeline contiguous across queries on one machine.
  trace_epoch_seconds_ += response_seconds_;
  response_seconds_ = 0;
  recovery_seconds_ = 0;
  machine_counters_ = Counters{};
  phases_.clear();
  for (auto& node : nodes_) {
    node->ResetCounters();
    node->ResetPhaseUsage();
  }
}

}  // namespace gammadb::sim
