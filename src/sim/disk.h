// Simulated disk drive: a page store with I/O cost accounting.
//
// Stands in for the 333 MB Fujitsu 8" drives of the paper's hardware.
// Pages are real 8 KB byte arrays (the storage layer serializes real
// tuples into them); only the *time* is simulated. Sequential accesses
// (WiSS read-ahead / per-file output buffering) are cheaper than random
// ones; the access pattern is declared by the storage layer, which knows
// whether it is scanning or probing.
#ifndef GAMMA_SIM_DISK_H_
#define GAMMA_SIM_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sim/cost_model.h"

namespace gammadb::sim {

class Node;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

enum class AccessPattern {
  kSequential,  // file scan / run write with read-ahead or buffering
  kRandom,      // index lookups, non-contiguous access
};

class Disk {
 public:
  /// Attempts per page I/O before a transient fault becomes a hard
  /// Status::Unavailable error (sim/fault.h). Every attempt, failed or
  /// not, charges full device + issue-CPU time.
  static constexpr int kMaxIoAttempts = 4;

  /// The disk charges all I/O to `owner` (in a shared-nothing machine a
  /// disk is only ever accessed by its own processor).
  Disk(Node* owner, const CostModel* cost);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Allocates one page (zero-filled). Allocation itself is free; the
  /// cost is paid when the page is read or written.
  PageId AllocatePage();

  /// Returns a page to the free pool. Freeing is free (Gamma temp files
  /// are dropped by catalog operations, not per-page I/O).
  void FreePage(PageId id);

  /// Copies `cost().page_bytes` bytes into the page and charges one page
  /// write to the owning node. Fails with Status::Unavailable when an
  /// armed fault plan exhausts the retry budget.
  Status WritePage(PageId id, const uint8_t* data, AccessPattern pattern);

  /// Copies the page out and charges one page read to the owning node.
  /// Fails with Status::Unavailable when an armed fault plan exhausts
  /// the retry budget.
  Status ReadPage(PageId id, uint8_t* out, AccessPattern pattern) const;

  /// Charges one page read exactly like ReadPage but returns a direct
  /// pointer to the page bytes instead of copying them out. Pages are
  /// individually heap-allocated, so the pointer stays valid until the
  /// page is freed AND re-allocated; callers must not hold it past a
  /// FreePage of the file it belongs to. This is the zero-copy scan
  /// path: the simulated cost is identical to ReadPage, only the host
  /// memcpy is skipped.
  Status ReadPageRef(PageId id, const uint8_t** out,
                     AccessPattern pattern) const;

  /// Direct, read-only view of page bytes WITHOUT charging I/O. Used by
  /// tests and by code paths that re-examine a page already charged.
  const uint8_t* PeekPage(PageId id) const;

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return pages_.size() - free_list_.size(); }

  const CostModel& cost() const { return *cost_; }

 private:
  /// Runs the attempt/retry loop for one page I/O: charges each attempt,
  /// consults the armed fault injector, and counts faults and retries.
  Status RunIoAttempts(AccessPattern pattern, bool is_write) const;

  Node* owner_;
  const CostModel* cost_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_DISK_H_
