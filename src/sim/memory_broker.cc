#include "sim/memory_broker.h"

#include "common/logging.h"

namespace gammadb::sim {

MemoryBroker::MemoryBroker(int num_nodes) {
  GAMMA_CHECK_GE(num_nodes, 1);
  entries_.resize(static_cast<size_t>(num_nodes));
}

size_t MemoryBroker::Index(int node) const {
  GAMMA_DCHECK(node >= 0 && static_cast<size_t>(node) < entries_.size());
  return static_cast<size_t>(node);
}

void MemoryBroker::AddBudget(int node, uint64_t bytes) {
  entries_[Index(node)].budget += bytes;
}

bool MemoryBroker::TryReserve(int node, uint64_t bytes) {
  Entry& e = entries_[Index(node)];
  if (e.used + bytes > e.budget) return false;
  e.used += bytes;
  return true;
}

void MemoryBroker::Release(int node, uint64_t bytes) {
  Entry& e = entries_[Index(node)];
  GAMMA_CHECK_GE(e.used, bytes) << "memory broker release below zero";
  e.used -= bytes;
}

uint64_t MemoryBroker::TotalSpillBytes() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) total += e.spill_bytes;
  return total;
}

uint64_t MemoryBroker::TotalRefillBytes() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) total += e.refill_bytes;
  return total;
}

}  // namespace gammadb::sim
