// Deterministic simulated-time tracing (Chrome trace_event JSON).
//
// A Tracer collects per-node, per-phase spans stamped in *simulated*
// seconds. Because every record is derived from the machine's phase
// clock — which the determinism contract (DESIGN.md) makes a pure
// function of the query plan — the serialized trace is byte-identical
// at any executor thread count. The output is the Chrome trace_event
// JSON object format ({"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing; docs/tracing.md documents the schema.
//
// Track layout per registered machine (one trace "process"):
//   tid 0            query      — whole-query spans and operator restarts
//   tid 1            scheduler  — serialized control-message work
//   tid 2            ring       — token-ring wire occupancy
//   tid 3 + node_id  node N     — max(cpu, disk) span per phase, with the
//                                 cost-attribution breakdown in args
#ifndef GAMMA_SIM_TRACE_H_
#define GAMMA_SIM_TRACE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "sim/metrics.h"

namespace gammadb::sim {

class Tracer {
 public:
  /// Allocates a trace process for one machine and emits its metadata
  /// (process / thread names). Returns the pid to pass to the Record*
  /// calls. `label` names the process in the viewer (e.g. the benchmark
  /// workload); node tracks are named "node N" (disk) / "node N (diskless)".
  int RegisterMachine(int num_nodes, int num_disk_nodes,
                      const std::string& label);

  /// Records one completed phase starting at simulated `start_seconds`:
  /// one span per participating node (with the by-category breakdown as
  /// args), plus ring and scheduler spans when those components are
  /// nonzero.
  void RecordPhase(int pid, double start_seconds, const PhaseRecord& record);

  /// Records an aborted operator attempt: a span on the query track
  /// covering the wasted [start, end) interval.
  void RecordRestart(int pid, double start_seconds, double end_seconds);

  /// Records a whole-query span on the query track. `args` (may be
  /// null-typed) is attached verbatim — drivers use it for algorithm,
  /// relation sizes and result counts.
  void RecordQuery(int pid, double start_seconds, double end_seconds,
                   const std::string& name, JsonValue args);

  size_t event_count() const { return events_.size(); }

  /// Serializes the trace: metadata events first, then spans stably
  /// sorted by simulated timestamp (so consumers see a globally
  /// monotonic timeline). Pretty-printed with 1-space indent.
  std::string Dump() const;

  /// Writes Dump() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Event {
    double ts_seconds = 0;
    uint64_t seq = 0;  // insertion order, the stable sort tie-break
    JsonValue json;
  };

  void Emit(double ts_seconds, JsonValue json);

  int next_pid_ = 1;
  uint64_t next_seq_ = 0;
  std::vector<JsonValue> metadata_;
  std::vector<Event> events_;
};

/// Builds the args object for one node's phase span: cpu/disk seconds
/// plus an "attribution" object holding every nonzero category.
/// Exposed for tools and tests.
JsonValue NodeUsageTraceArgs(const NodeUsage& usage);

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_TRACE_H_
