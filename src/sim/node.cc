#include "sim/node.h"

#include "common/logging.h"

namespace gammadb::sim {

Node::Node(int id, bool has_disk, const CostModel* cost)
    : id_(id), cost_(cost) {
  if (has_disk) {
    disk_ = std::make_unique<Disk>(this, cost);
  }
}

Disk& Node::disk() {
  GAMMA_CHECK(disk_ != nullptr) << "node " << id_ << " is diskless";
  return *disk_;
}

const Disk& Node::disk() const {
  GAMMA_CHECK(disk_ != nullptr) << "node " << id_ << " is diskless";
  return *disk_;
}

}  // namespace gammadb::sim
