// Exchange<T>: typed tuple transport between node processes within a
// phase, with network cost accounting.
//
// Determinism contract (the reason pooled execution is bit-identical to
// serial execution):
//
//  * One lane per (src, dst) pair. Send(src, dst, ...) appends to lane
//    [src][dst] WITHOUT locking: within a phase round, row `src` is only
//    ever touched by the executor task running on behalf of node `src`
//    (the same ownership contract Network::AccountTuple relies on), so
//    no two threads write one lane concurrently.
//  * TakeInbox(dst) drains the lanes for `dst` in ascending-src order,
//    after the sender round's barrier. Arrival order is therefore a pure
//    function of the query plan — every sender round iterates its node
//    ids in ascending order, so the serial executor produces exactly
//    this concatenation too — and never of thread interleaving.
//  * A round must either send or drain a given exchange, never both
//    (senders and drainers are separated by the RunOnNodes barrier).
#ifndef GAMMA_SIM_EXCHANGE_H_
#define GAMMA_SIM_EXCHANGE_H_

#include <iterator>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/machine.h"

namespace gammadb::sim {

template <typename T>
class Exchange {
 public:
  explicit Exchange(Machine* machine)
      : machine_(machine),
        num_nodes_(static_cast<size_t>(machine->num_nodes())),
        lanes_(num_nodes_ * num_nodes_) {}

  /// Ships one item of `bytes` serialized size from node `src` to node
  /// `dst`. Lock-free: must only be called by the task running on
  /// behalf of node `src` (or outside any concurrent round).
  void Send(int src, int dst, T item, uint32_t bytes) {
    machine_->network().AccountTuple(src, dst, bytes);
    Lane(src, dst).push_back(std::move(item));
  }

  /// Network accounting for one item WITHOUT appending it. The
  /// block-granular send path accounts per tuple at routing time (the
  /// network matrix is integer counts, summed per (src, dst) pair at
  /// the phase flush, so accounting order never affects metrics) and
  /// appends the items per block via SendBatch afterwards.
  void Account(int src, int dst, uint32_t bytes) {
    machine_->network().AccountTuple(src, dst, bytes);
  }

  /// Block-granular append: grows lane (src, dst) by `count` items and
  /// invokes `fill(k, item)` to construct each in place — one copy from
  /// the source block into the lane, no per-item Send call. Network
  /// bytes must already have been accounted per item via Account().
  /// Items land in fill order, so a routing pass that scatters one scan
  /// block into per-destination index runs (in scan order) reproduces
  /// the per-lane item order of per-tuple Send() exactly.
  template <typename Fill>
  void SendBatch(int src, int dst, size_t count, Fill&& fill) {
    std::vector<T>& lane = Lane(src, dst);
    const size_t base = lane.size();
    lane.resize(base + count);
    for (size_t k = 0; k < count; ++k) fill(k, lane[base + k]);
  }

  /// Capacity hint: the sender expects to Send ~`expected` more items
  /// from `src` to `dst`. Same ownership rule as Send.
  void Reserve(int src, int dst, size_t expected) {
    std::vector<T>& lane = Lane(src, dst);
    lane.reserve(lane.size() + expected);
  }

  /// Row-wise hint: `expected_total` items from `src`, spread evenly
  /// over all destinations (the common case for a hash split).
  /// Ceil-divide: `total / n + 1` would over-reserve by up to n items
  /// per row (one per lane) for an exact multiple.
  void ReserveRow(int src, size_t expected_total) {
    const size_t per_lane = (expected_total + num_nodes_ - 1) / num_nodes_;
    for (size_t dst = 0; dst < num_nodes_; ++dst) {
      Reserve(src, static_cast<int>(dst), per_lane);
    }
  }

  /// Reserved capacity of one lane (capacity-accounting tests).
  size_t LaneCapacity(int src, int dst) const {
    return const_cast<Exchange*>(this)->Lane(src, dst).capacity();
  }

  /// Removes and returns everything delivered to `node`, in ascending
  /// sender order. The first non-empty lane is moved wholesale (its
  /// buffer becomes the result); later lanes are move-appended. Lane
  /// capacity is retained for the next phase round.
  std::vector<T> TakeInbox(int node) {
    size_t total = 0;
    size_t first = num_nodes_;
    for (size_t src = 0; src < num_nodes_; ++src) {
      const size_t n = Lane(static_cast<int>(src), node).size();
      total += n;
      if (n != 0 && first == num_nodes_) first = src;
    }
    if (first == num_nodes_) return {};
    std::vector<T>& first_lane = Lane(static_cast<int>(first), node);
    std::vector<T> out = std::move(first_lane);
    first_lane.clear();  // moved-from state is unspecified; make it empty
    out.reserve(total);
    for (size_t src = first + 1; src < num_nodes_; ++src) {
      std::vector<T>& lane = Lane(static_cast<int>(src), node);
      out.insert(out.end(), std::make_move_iterator(lane.begin()),
                 std::make_move_iterator(lane.end()));
      lane.clear();
    }
    return out;
  }

  /// Drains the lanes for `node` in ascending-src order WITHOUT
  /// consolidating them into one vector: invokes `fn(lane)` for each
  /// non-empty lane (one block), then clears it retaining capacity.
  /// Concatenating the blocks reproduces TakeInbox()'s item order
  /// exactly; skipping the consolidation saves one move per item for
  /// every lane after the first. `fn` may move items out of the lane.
  template <typename Fn>
  void DrainInboxBlocks(int node, Fn&& fn) {
    for (size_t src = 0; src < num_nodes_; ++src) {
      std::vector<T>& lane = Lane(static_cast<int>(src), node);
      if (lane.empty()) continue;
      fn(lane);
      lane.clear();
    }
  }

  /// True if every lane is empty (invariant checks). Must not be called
  /// concurrently with senders.
  bool AllEmpty() const {
    for (const std::vector<T>& lane : lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

 private:
  std::vector<T>& Lane(int src, int dst) {
    GAMMA_DCHECK(src >= 0 && static_cast<size_t>(src) < num_nodes_);
    GAMMA_DCHECK(dst >= 0 && static_cast<size_t>(dst) < num_nodes_);
    return lanes_[static_cast<size_t>(src) * num_nodes_ +
                  static_cast<size_t>(dst)];
  }

  Machine* machine_;
  size_t num_nodes_;
  std::vector<std::vector<T>> lanes_;  // row-major [src][dst]
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_EXCHANGE_H_
