// Exchange<T>: typed tuple transport between node processes within a
// phase, with network cost accounting.
//
// Senders call Send() (routing cost is charged by the caller; wire and
// protocol costs are accounted by the Network at phase end); receivers
// drain their inbox with TakeInbox() after the sender barrier. Inboxes
// are mutex-protected so the multi-threaded executor can run many
// senders concurrently.
#ifndef GAMMA_SIM_EXCHANGE_H_
#define GAMMA_SIM_EXCHANGE_H_

#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/machine.h"

namespace gammadb::sim {

template <typename T>
class Exchange {
 public:
  explicit Exchange(Machine* machine)
      : machine_(machine),
        inboxes_(static_cast<size_t>(machine->num_nodes())) {}

  /// Ships one item of `bytes` serialized size from node `src` to node
  /// `dst`.
  void Send(int src, int dst, T item, uint32_t bytes) {
    machine_->network().AccountTuple(src, dst, bytes);
    Inbox& inbox = inboxes_[static_cast<size_t>(dst)];
    std::lock_guard<std::mutex> lock(inbox.mu);
    inbox.items.push_back(std::move(item));
  }

  /// Removes and returns everything delivered to `node` so far.
  std::vector<T> TakeInbox(int node) {
    Inbox& inbox = inboxes_[static_cast<size_t>(node)];
    std::lock_guard<std::mutex> lock(inbox.mu);
    return std::exchange(inbox.items, {});
  }

  /// True if every inbox is empty (useful for invariant checks).
  bool AllEmpty() {
    for (auto& inbox : inboxes_) {
      std::lock_guard<std::mutex> lock(inbox.mu);
      if (!inbox.items.empty()) return false;
    }
    return true;
  }

 private:
  struct Inbox {
    std::mutex mu;
    std::vector<T> items;
  };

  Machine* machine_;
  std::vector<Inbox> inboxes_;
};

}  // namespace gammadb::sim

#endif  // GAMMA_SIM_EXCHANGE_H_
