#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gammadb {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousandsSeparators(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

}  // namespace gammadb
