#include "common/strings.h"

#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gammadb {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithThousandsSeparators(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string_view digits = text;
  // std::from_chars accepts '-' but not '+'; normalize the latter.
  if (digits.front() == '+') {
    digits.remove_prefix(1);
    if (digits.empty() || digits.front() == '-') return false;
  }
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // strtod via a NUL-terminated copy: from_chars for floating point is
  // incomplete in some supported standard libraries. Reject strtod's
  // permissive extras (leading whitespace, hex, inf/nan) and partial
  // consumption so a typo cannot parse as a number.
  const std::string copy(text);
  for (char ch : copy) {
    const bool ok = (ch >= '0' && ch <= '9') || ch == '+' || ch == '-' ||
                    ch == '.' || ch == 'e' || ch == 'E';
    if (!ok) return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace gammadb
