// Equi-width histogram over the 64-bit hash space.
//
// This is the histogram Section 4.1 of the paper describes: every join
// site records "the number of tuples between ranges of possible hash
// values" so that, when the hash table overflows, it can pick a cutoff
// hash value whose eviction frees a requested fraction of memory (the
// 10% clearing heuristic of the Simple hash-join overflow mechanism).
#ifndef GAMMA_COMMON_HISTOGRAM_H_
#define GAMMA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace gammadb {

class HashHistogram {
 public:
  /// `num_bins` must be a power of two (checked).
  explicit HashHistogram(uint32_t num_bins = 256);

  void Add(uint64_t hash);
  void Remove(uint64_t hash);
  void Clear();

  uint64_t total() const { return total_; }
  uint32_t num_bins() const { return static_cast<uint32_t>(bins_.size()); }
  uint64_t bin_count(uint32_t bin) const { return bins_[bin]; }

  /// Bin index for a hash value (top log2(num_bins) bits).
  uint32_t BinOf(uint64_t hash) const {
    return static_cast<uint32_t>(hash >> shift_);
  }

  /// Inclusive lower bound of the hash range covered by `bin`.
  uint64_t BinLowerBound(uint32_t bin) const {
    return static_cast<uint64_t>(bin) << shift_;
  }

  /// Smallest bin boundary C such that evicting every recorded hash >= C
  /// removes at least `fraction` of the recorded population. Returns the
  /// cutoff hash value (tuples with hash >= cutoff are evicted). If the
  /// histogram is empty, returns UINT64_MAX (evict nothing).
  ///
  /// Because whole bins are evicted, the freed fraction can exceed the
  /// request — exactly the behaviour the paper leans on when it notes the
  /// heuristic "forces more than 50% of the tuples to be written to the
  /// overflow file".
  uint64_t CutoffForFraction(double fraction) const;

  /// Number of recorded hashes with value >= cutoff.
  uint64_t CountAtOrAbove(uint64_t cutoff) const;

 private:
  int shift_;
  uint64_t total_ = 0;
  std::vector<uint64_t> bins_;
};

}  // namespace gammadb

#endif  // GAMMA_COMMON_HISTOGRAM_H_
