// The "randomizing function" of the paper: a seeded 64-bit integer hash.
//
// Every partitioning decision in the system (declustering at load time,
// split-table routing, hash-table slot choice, bit-filter bits, overflow
// histograms) is derived from HashJoinAttribute() so that the modular
// structure the paper's Appendix A relies on (tuples stored at disk d have
// hash values congruent to d modulo the number of disks) holds exactly.
//
// The Simple hash-join changes its hash function after every overflow
// (Section 4.1 of the paper); that is expressed by bumping `seed`.
#ifndef GAMMA_COMMON_HASH_H_
#define GAMMA_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace gammadb {

/// Default seed used by loaders and join operators before any rehash.
inline constexpr uint64_t kDefaultHashSeed = 0x9E3779B97F4A7C15ULL;

/// Finalizer from SplitMix64 / MurmurHash3: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded hash of a join-attribute value.
inline uint64_t HashJoinAttribute(int64_t value, uint64_t seed = kDefaultHashSeed) {
  return Mix64(static_cast<uint64_t>(value) + seed);
}

/// Seeded hash of a string attribute (FNV-1a folded through Mix64).
inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = kDefaultHashSeed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace gammadb

#endif  // GAMMA_COMMON_HASH_H_
