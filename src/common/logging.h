// Minimal leveled logging plus CHECK/DCHECK invariant macros.
//
// CHECK-failure aborts the process: it is reserved for programming errors
// (broken invariants), never for data-dependent conditions, which are
// reported through Status (see common/status.h).
#ifndef GAMMA_COMMON_LOGGING_H_
#define GAMMA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gammadb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Collects one log line via operator<< and emits it on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything; used to compile out disabled DCHECKs cheaply.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Messages below this level are suppressed. Default: kWarning (quiet for
/// tests and benches); set to kDebug/kInfo when tracing a run.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace gammadb

#define GAMMA_LOG(level)                                              \
  ::gammadb::internal::LogMessage(::gammadb::LogLevel::k##level, __FILE__, __LINE__)

#define GAMMA_CHECK(cond)                                             \
  if (cond) {                                                         \
  } else                                                              \
    GAMMA_LOG(Fatal) << "Check failed: " #cond " "

#define GAMMA_CHECK_OK(expr)                                          \
  do {                                                                \
    ::gammadb::Status _st = (expr);                                     \
    GAMMA_CHECK(_st.ok()) << _st.ToString();                          \
  } while (0)

#define GAMMA_CHECK_EQ(a, b) GAMMA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define GAMMA_CHECK_NE(a, b) GAMMA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define GAMMA_CHECK_LT(a, b) GAMMA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define GAMMA_CHECK_LE(a, b) GAMMA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define GAMMA_CHECK_GT(a, b) GAMMA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define GAMMA_CHECK_GE(a, b) GAMMA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define GAMMA_DCHECK(cond) \
  while (false) ::gammadb::internal::NullStream()
#else
#define GAMMA_DCHECK(cond) GAMMA_CHECK(cond)
#endif

#endif  // GAMMA_COMMON_LOGGING_H_
