// Deterministic pseudo-random number generation for workload synthesis.
//
// All experiment inputs (Wisconsin relations, skewed attributes, sampling)
// are derived from Rng seeded explicitly, so every benchmark and test run
// is reproducible bit-for-bit.
#ifndef GAMMA_COMMON_RANDOM_H_
#define GAMMA_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/logging.h"

namespace gammadb {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    GAMMA_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GAMMA_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (no cached second value: simpler and
  /// deterministic across call patterns).
  double NextGaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n), in random order
  /// (partial Fisher-Yates).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k) {
    GAMMA_CHECK_LE(k, n);
    std::vector<uint32_t> pool(n);
    for (uint32_t i = 0; i < n; ++i) pool[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      const uint32_t j = i + static_cast<uint32_t>(Uniform(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace gammadb

#endif  // GAMMA_COMMON_RANDOM_H_
