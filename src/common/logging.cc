#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace gammadb {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarning};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level); }
LogLevel GetLogThreshold() { return g_threshold.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories from __FILE__ for terser lines.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold.load() || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace gammadb
