// Status and Result<T>: exception-free error propagation for the gamma
// library. Modeled on the Arrow/Abseil idiom: functions that can fail
// return a Status (or Result<T> when they also produce a value); callers
// must check ok() before using the value.
#ifndef GAMMA_COMMON_STATUS_H_
#define GAMMA_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace gammadb {

/// Machine-readable classification of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // e.g. simulated memory or disk exhausted
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  kUnavailable,  // transient failure that exhausted its retry budget
  kAborted,      // operation aborted mid-flight (e.g. a node crash)
};

/// Returns the canonical spelling of a status code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); failures carry a code and a human-readable message.
///
/// [[nodiscard]]: silently dropping a Status hides exactly the failures
/// the fault-injection path (docs/fault_injection.md) exists to surface.
/// A deliberate discard must say so via IgnoreError() — `(void)` casts
/// are rejected by gamma_lint (docs/static_analysis.md).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Documents a deliberate discard of the status (e.g. a phase abort
  /// surfaced on a path that is outside the recovery scope).
  void IgnoreError() const {}

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value of type T or a failure Status. The value is only accessible
/// when status().ok().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work (matching Arrow's Result<T>).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                        // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Requires ok(). Undefined behaviour otherwise (checked in debug builds).
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace gammadb

/// Propagates a non-OK Status to the caller. The canonical spelling for
/// status-check boilerplate: `Status s = ...; if (!s.ok()) return s;`
/// hand-rolled at call sites is flagged in review, and silent drops are
/// rejected by [[nodiscard]] plus gamma_lint (docs/static_analysis.md).
#define GAMMA_RETURN_IF_ERROR(expr)               \
  do {                                            \
    ::gammadb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression, propagating failure, else binds `lhs`.
#define GAMMA_ASSIGN_OR_RETURN(lhs, rexpr)        \
  GAMMA_ASSIGN_OR_RETURN_IMPL_(                   \
      GAMMA_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define GAMMA_CONCAT_INNER_(a, b) a##b
#define GAMMA_CONCAT_(a, b) GAMMA_CONCAT_INNER_(a, b)
#define GAMMA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#endif  // GAMMA_COMMON_STATUS_H_
