// Small string helpers (libstdc++ 12 lacks <format>, so printf-style
// formatting is wrapped here once).
#ifndef GAMMA_COMMON_STRINGS_H_
#define GAMMA_COMMON_STRINGS_H_

#include <string>

namespace gammadb {

/// snprintf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567" -> "1,234,567" (for human-readable benchmark tables).
std::string WithThousandsSeparators(int64_t value);

}  // namespace gammadb

#endif  // GAMMA_COMMON_STRINGS_H_
