// Small string helpers (libstdc++ 12 lacks <format>, so printf-style
// formatting is wrapped here once).
#ifndef GAMMA_COMMON_STRINGS_H_
#define GAMMA_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gammadb {

/// snprintf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567" -> "1,234,567" (for human-readable benchmark tables).
std::string WithThousandsSeparators(int64_t value);

/// Strict full-string numeric parsing for command-line values. Unlike
/// atoi/atof — which silently turn a typo into 0 — these accept only a
/// complete, in-range numeric token (optional sign, no leading/trailing
/// whitespace or garbage) and report failure instead of guessing.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace gammadb

#endif  // GAMMA_COMMON_STRINGS_H_
