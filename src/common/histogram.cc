#include "common/histogram.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace gammadb {

HashHistogram::HashHistogram(uint32_t num_bins) : bins_(num_bins, 0) {
  GAMMA_CHECK(num_bins >= 2 && std::has_single_bit(num_bins))
      << "num_bins must be a power of two >= 2, got " << num_bins;
  shift_ = 64 - std::countr_zero(static_cast<uint64_t>(num_bins));
}

void HashHistogram::Add(uint64_t hash) {
  ++bins_[BinOf(hash)];
  ++total_;
}

void HashHistogram::Remove(uint64_t hash) {
  const uint32_t bin = BinOf(hash);
  GAMMA_DCHECK(bins_[bin] > 0);
  --bins_[bin];
  --total_;
}

void HashHistogram::Clear() {
  for (auto& b : bins_) b = 0;
  total_ = 0;
}

uint64_t HashHistogram::CutoffForFraction(double fraction) const {
  if (total_ == 0) return std::numeric_limits<uint64_t>::max();
  // Ceiling, not truncation: evicting "at least fraction of the
  // population" must never round a fractional tuple requirement down,
  // or the chosen cutoff can keep more resident than the caller asked
  // to clear (e.g. 10% of 15 tuples must evict 2, not 1).
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(total_)));
  uint64_t above = 0;
  // Walk bins from the top of the hash space downwards until enough
  // population lies above the candidate boundary.
  for (uint32_t bin = num_bins(); bin-- > 0;) {
    above += bins_[bin];
    if (above >= target && above > 0) {
      return BinLowerBound(bin);
    }
  }
  // Everything must go.
  return 0;
}

uint64_t HashHistogram::CountAtOrAbove(uint64_t cutoff) const {
  // The count is only exact for bin boundaries (a mid-bin cutoff would
  // include the below-cutoff part of its own bin); callers must pass
  // boundaries produced by CutoffForFraction.
  GAMMA_DCHECK(cutoff == BinLowerBound(BinOf(cutoff)))
      << "cutoff " << cutoff << " is not a bin boundary";
  uint64_t count = 0;
  for (uint32_t bin = BinOf(cutoff); bin < num_bins(); ++bin) {
    count += bins_[bin];
  }
  return count;
}

}  // namespace gammadb
