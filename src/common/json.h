// Minimal JSON value / writer / parser — no third-party dependencies.
//
// The benchmark pipeline serializes every run into a schema-versioned
// JSON document (see docs/benchmarking.md) and tools/bench_diff reads
// those documents back to gate regressions in CI. The implementation is
// deliberately small: a tagged value type with ordered objects (so
// emitted documents diff cleanly), round-trip-exact number formatting,
// full string escaping (including \uXXXX with surrogate pairs), and a
// recursive-descent parser returning Result<JsonValue>.
#ifndef GAMMA_COMMON_JSON_H_
#define GAMMA_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace gammadb {

class JsonValue;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \ and control characters; non-ASCII bytes pass through
/// (documents are UTF-8).
std::string JsonEscape(std::string_view s);

/// A JSON document node. Objects preserve insertion order so that a
/// serialized document is stable across runs (required for clean
/// baseline diffs).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : rep_(nullptr) {}
  JsonValue(std::nullptr_t) : rep_(nullptr) {}      // NOLINT
  JsonValue(bool b) : rep_(b) {}                    // NOLINT
  JsonValue(int v) : rep_(static_cast<int64_t>(v))  // NOLINT
  {}
  JsonValue(int64_t v) : rep_(v) {}                  // NOLINT
  JsonValue(uint32_t v) : rep_(static_cast<int64_t>(v))  // NOLINT
  {}
  JsonValue(size_t v) : rep_(static_cast<int64_t>(v))    // NOLINT
  {}
  JsonValue(double v) : rep_(v) {}                   // NOLINT
  JsonValue(const char* s) : rep_(std::string(s)) {} // NOLINT
  JsonValue(std::string s) : rep_(std::move(s)) {}   // NOLINT
  JsonValue(Array a) : rep_(std::move(a)) {}         // NOLINT
  JsonValue(Object o) : rep_(std::move(o)) {}        // NOLINT

  static JsonValue MakeObject() { return JsonValue(Object{}); }
  static JsonValue MakeArray() { return JsonValue(Array{}); }

  Type type() const { return static_cast<Type>(rep_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  /// Any JSON number (integer- or double-typed).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Accessors require the matching type (checked via std::get).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// Numeric value as double, whichever of the two number types holds.
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(rep_))
                    : std::get<double>(rep_);
  }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Array& AsArray() const { return std::get<Array>(rep_); }
  Array& AsArray() { return std::get<Array>(rep_); }
  const Object& AsObject() const { return std::get<Object>(rep_); }
  Object& AsObject() { return std::get<Object>(rep_); }

  /// Object lookup; nullptr when absent (or when not an object).
  const JsonValue* Find(std::string_view key) const;
  JsonValue* Find(std::string_view key);

  /// Object: appends, or replaces an existing key in place.
  void Set(std::string key, JsonValue value);
  /// Array: appends.
  void Append(JsonValue value);

  /// Serializes. indent < 0: compact single line; indent >= 0: pretty,
  /// that many spaces per level, trailing newline at top level only.
  std::string Dump(int indent = -1) const;

  bool operator==(const JsonValue& other) const { return rep_ == other.rep_; }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      rep_;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error). Numbers without '.', 'e' or 'E' that fit in
/// int64 parse as integers, everything else as doubles.
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

/// Writes `value.Dump(2)` to `path`.
Status WriteJsonFile(const std::string& path, const JsonValue& value);

}  // namespace gammadb

#endif  // GAMMA_COMMON_JSON_H_
