#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace gammadb {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::Find(std::string_view key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->Find(key));
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (!is_object()) rep_ = Object{};
  if (JsonValue* existing = Find(key)) {
    *existing = std::move(value);
    return;
  }
  AsObject().emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (!is_array()) rep_ = Array{};
  AsArray().push_back(std::move(value));
}

namespace {

// Shortest round-trip double formatting via std::to_chars; JSON has no
// Inf/NaN, so those serialize as null.
void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
  // Ensure a double never reads back as an integer.
  std::string_view written(buf, static_cast<size_t>(ptr - buf));
  if (written.find_first_of(".eE") == std::string_view::npos) {
    out += ".0";
  }
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_at = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += AsBool() ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), AsInt());
      out.append(buf, ptr);
      break;
    }
    case Type::kDouble:
      AppendDouble(out, std::get<double>(rep_));
      break;
    case Type::kString:
      out += '"';
      out += JsonEscape(AsString());
      out += '"';
      break;
    case Type::kArray: {
      const Array& items = AsArray();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        newline_at(depth + 1);
        items[i].DumpTo(out, indent, depth + 1);
      }
      newline_at(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& members = AsObject();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        newline_at(depth + 1);
        out += '"';
        out += JsonEscape(members[i].first);
        out += "\":";
        if (pretty) out += ' ';
        members[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_at(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    GAMMA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(StrFormat("expected '%c'", c));
    return Status::OK();
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      GAMMA_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Result<JsonValue> ParseObject(int depth) {
    GAMMA_RETURN_IF_ERROR(Expect('{'));
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    for (;;) {
      SkipWhitespace();
      GAMMA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      GAMMA_RETURN_IF_ERROR(Expect(':'));
      GAMMA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      GAMMA_RETURN_IF_ERROR(Expect('}'));
      return JsonValue(std::move(members));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    GAMMA_RETURN_IF_ERROR(Expect('['));
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(items));
    for (;;) {
      GAMMA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      GAMMA_RETURN_IF_ERROR(Expect(']'));
      return JsonValue(std::move(items));
    }
  }

  // Appends `cp` to `out` as UTF-8.
  static void AppendCodepoint(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Result<std::string> ParseString() {
    GAMMA_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          GAMMA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            GAMMA_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendCodepoint(out, cp);
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", e));
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Integer overflow: fall through to double.
    }
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str());
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open JSON file for writing: " + path);
  }
  out << value.Dump(2);
  out.flush();
  if (!out) {
    return Status::Internal("failed writing JSON file: " + path);
  }
  return Status::OK();
}

}  // namespace gammadb
