// Canned specifications of the paper's benchmark join queries
// (Section 4): joinABprime, joinAselB and joinCselAselB, over a loaded
// joinABprime dataset.
#ifndef GAMMA_WISCONSIN_QUERIES_H_
#define GAMMA_WISCONSIN_QUERIES_H_

#include "join/spec.h"
#include "wisconsin/wisconsin.h"

namespace gammadb::wisconsin {

struct QueryOptions {
  /// Join on the declustering attribute (unique1) or not (unique2).
  bool hpja = true;
  double memory_ratio = 1.0;
  bool bit_filters = false;
  /// Empty = local joins.
  std::vector<int> join_nodes;
  join::Algorithm algorithm = join::Algorithm::kHybridHash;
  std::string inner_relation = "Bprime";
  std::string outer_relation = "A";
};

/// joinABprime: the 10k inner relation joined with the 100k outer.
join::JoinSpec JoinABprimeSpec(const QueryOptions& options);

/// joinAselB: the outer relation joined with a 10% selection of the
/// inner (selection runs inline in the scan; the optimizer hint bases
/// memory and bucket counts on the post-selection size).
/// `estimated_selected` is the expected number of selected inner tuples
/// (inner cardinality / 10 for the default selection).
join::JoinSpec JoinAselBSpec(const QueryOptions& options,
                             uint64_t estimated_selected);

/// joinCselAselB: selections on both join inputs (50% each).
join::JoinSpec JoinCselAselBSpec(const QueryOptions& options,
                                 uint64_t estimated_selected);

}  // namespace gammadb::wisconsin

#endif  // GAMMA_WISCONSIN_QUERIES_H_
