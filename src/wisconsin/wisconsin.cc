#include "wisconsin/wisconsin.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace gammadb::wisconsin {

namespace {

/// Classic Wisconsin string: the value encoded in letters at the front,
/// padded with 'x' to 52 characters.
std::string WisconsinString(int32_t value) {
  std::string s(52, 'x');
  uint32_t v = static_cast<uint32_t>(value);
  for (int pos = 6; pos >= 0; --pos) {
    s[static_cast<size_t>(pos)] = static_cast<char>('A' + (v % 26));
    v /= 26;
  }
  return s;
}

/// Cumulative Zipf(theta) distribution over `n` ranks: weight of rank r
/// is 1/(r+1)^theta. theta == 0 is uniform.
std::vector<double> ZipfCdf(uint32_t n, double theta) {
  std::vector<double> cdf(n);
  double total = 0;
  for (uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, theta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

}  // namespace

storage::Schema WisconsinSchema() {
  using storage::Field;
  return storage::Schema({
      Field::Int32("unique1"),
      Field::Int32("unique2"),
      Field::Int32("two"),
      Field::Int32("four"),
      Field::Int32("ten"),
      Field::Int32("twenty"),
      Field::Int32("onePercent"),
      Field::Int32("tenPercent"),
      Field::Int32("twentyPercent"),
      Field::Int32("fiftyPercent"),
      Field::Int32("normal"),
      Field::Int32("evenOnePercent"),
      Field::Int32("oddOnePercent"),
      Field::Char("stringu1", 52),
      Field::Char("stringu2", 52),
      Field::Char("string4", 52),
  });
}

std::vector<storage::Tuple> Generate(const GenOptions& options) {
  const storage::Schema schema = WisconsinSchema();
  GAMMA_CHECK_EQ(schema.tuple_bytes(), 208u);
  const uint32_t n = options.cardinality;
  GAMMA_CHECK(!(options.with_normal_attr && options.with_zipf_attr));
  Rng rng(options.seed);
  std::vector<double> zipf_cdf;
  if (options.with_zipf_attr && n > 0) {
    zipf_cdf = ZipfCdf(n, options.zipf_theta);
  }

  std::vector<int32_t> unique1(n), unique2(n), third(n);
  for (uint32_t i = 0; i < n; ++i) {
    unique1[i] = static_cast<int32_t>(i);
    unique2[i] = static_cast<int32_t>(i);
    third[i] = static_cast<int32_t>(i);
  }
  rng.Shuffle(unique1);
  rng.Shuffle(unique2);
  rng.Shuffle(third);

  static const char* const kFourStrings[4] = {"AAAA", "HHHH", "OOOO", "VVVV"};

  std::vector<storage::Tuple> tuples;
  tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    storage::Tuple t(schema.tuple_bytes());
    const int32_t u1 = unique1[i];
    const int32_t u2 = unique2[i];
    t.SetInt32(schema, fields::kUnique1, u1);
    t.SetInt32(schema, fields::kUnique2, u2);
    t.SetInt32(schema, fields::kTwo, u1 % 2);
    t.SetInt32(schema, fields::kFour, u1 % 4);
    t.SetInt32(schema, fields::kTen, u1 % 10);
    t.SetInt32(schema, fields::kTwenty, u1 % 20);
    t.SetInt32(schema, fields::kOnePercent, u1 % 100);
    t.SetInt32(schema, fields::kTenPercent, u1 % 10);
    t.SetInt32(schema, fields::kTwentyPercent, u1 % 5);
    t.SetInt32(schema, fields::kFiftyPercent, u1 % 2);
    int32_t normal_value = third[i];
    if (options.with_zipf_attr) {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
      normal_value = static_cast<int32_t>(
          std::min<size_t>(static_cast<size_t>(it - zipf_cdf.begin()),
                           zipf_cdf.size() - 1));
    } else if (options.with_normal_attr) {
      const double draw =
          std::round(rng.NextGaussian(options.normal_mean, options.normal_stddev));
      normal_value = static_cast<int32_t>(
          std::clamp(draw, static_cast<double>(options.normal_min),
                     static_cast<double>(options.normal_max)));
    }
    t.SetInt32(schema, fields::kNormal, normal_value);
    t.SetInt32(schema, fields::kEvenOnePercent, (u1 % 100) * 2);
    t.SetInt32(schema, fields::kOddOnePercent, (u1 % 100) * 2 + 1);
    t.SetChars(schema, fields::kStringU1, WisconsinString(u1));
    t.SetChars(schema, fields::kStringU2, WisconsinString(u2));
    t.SetChars(schema, fields::kString4, kFourStrings[i % 4]);
    tuples.push_back(std::move(t));
  }
  return tuples;
}

std::vector<storage::Tuple> SampleWithoutReplacement(
    const std::vector<storage::Tuple>& tuples, uint32_t k, uint64_t seed) {
  GAMMA_CHECK_LE(static_cast<size_t>(k), tuples.size());
  Rng rng(seed);
  const std::vector<uint32_t> picks =
      rng.SampleWithoutReplacement(static_cast<uint32_t>(tuples.size()), k);
  std::vector<storage::Tuple> out;
  out.reserve(k);
  for (uint32_t idx : picks) out.push_back(tuples[idx]);
  return out;
}

Result<Dataset> LoadJoinABprime(sim::Machine& machine, db::Catalog& catalog,
                                const DatasetOptions& options) {
  GenOptions gen;
  gen.cardinality = options.outer_cardinality;
  gen.seed = options.seed;
  gen.with_normal_attr = options.with_normal_attr;
  gen.with_zipf_attr = options.with_zipf_attr;
  gen.zipf_theta = options.zipf_theta;
  // Scale the skew distribution with the domain: at the paper's 100k
  // cardinality this is exactly N(50000, 750) over 0..99999.
  gen.normal_mean = options.outer_cardinality / 2.0;
  gen.normal_stddev = options.outer_cardinality * (750.0 / 100000.0);
  gen.normal_min = 0;
  gen.normal_max = static_cast<int32_t>(options.outer_cardinality) - 1;
  std::vector<storage::Tuple> outer_tuples = Generate(gen);
  std::vector<storage::Tuple> inner_tuples = SampleWithoutReplacement(
      outer_tuples, options.inner_cardinality, options.seed + 1);

  Dataset dataset;
  GAMMA_ASSIGN_OR_RETURN(
      dataset.outer,
      catalog.Create(machine, options.outer_name, WisconsinSchema()));
  GAMMA_ASSIGN_OR_RETURN(
      dataset.inner,
      catalog.Create(machine, options.inner_name, WisconsinSchema()));

  db::LoadOptions load;
  load.strategy = options.strategy;
  load.partition_field = options.partition_field;
  GAMMA_RETURN_IF_ERROR(db::LoadRelation(dataset.outer, outer_tuples, load));
  GAMMA_RETURN_IF_ERROR(db::LoadRelation(dataset.inner, inner_tuples, load));
  return dataset;
}

}  // namespace gammadb::wisconsin
