#include "wisconsin/queries.h"

namespace gammadb::wisconsin {

namespace {

join::JoinSpec BaseSpec(const QueryOptions& options) {
  join::JoinSpec spec;
  spec.inner_relation = options.inner_relation;
  spec.outer_relation = options.outer_relation;
  const int field = options.hpja ? fields::kUnique1 : fields::kUnique2;
  spec.inner_field = field;
  spec.outer_field = field;
  spec.algorithm = options.algorithm;
  spec.memory_ratio = options.memory_ratio;
  spec.use_bit_filters = options.bit_filters;
  spec.join_nodes = options.join_nodes;
  return spec;
}

}  // namespace

join::JoinSpec JoinABprimeSpec(const QueryOptions& options) {
  return BaseSpec(options);
}

join::JoinSpec JoinAselBSpec(const QueryOptions& options,
                             uint64_t estimated_selected) {
  join::JoinSpec spec = BaseSpec(options);
  // 10% selection on the inner relation: ten == 3 picks one of the ten
  // residue classes of unique1.
  spec.inner_predicate = {
      db::Predicate{fields::kTen, db::Predicate::Op::kEq, 3}};
  spec.estimated_inner_tuples = estimated_selected;
  return spec;
}

join::JoinSpec JoinCselAselBSpec(const QueryOptions& options,
                                 uint64_t estimated_selected) {
  join::JoinSpec spec = BaseSpec(options);
  spec.inner_predicate = {
      db::Predicate{fields::kFiftyPercent, db::Predicate::Op::kEq, 0}};
  spec.outer_predicate = {
      db::Predicate{fields::kFiftyPercent, db::Predicate::Op::kEq, 0}};
  spec.estimated_inner_tuples = estimated_selected;
  return spec;
}

}  // namespace gammadb::wisconsin
