// The Wisconsin Benchmark relations (paper Section 4; [BITT83]).
//
// Each tuple is thirteen 4-byte integers followed by three 52-byte
// strings — 208 bytes. joinABprime joins a 100,000-tuple relation
// (~20 MB) with a 10,000-tuple relation (~2 MB) into a 10,000-tuple
// result (~4 MB).
//
// For the non-uniform-distribution experiments (paper Section 4.4) the
// generator can fill the `normal` column with values drawn from
// N(50,000, 750) clamped to the 0..99,999 domain, and the inner
// relation is created by randomly sampling tuples from the outer one,
// exactly as the paper describes.
#ifndef GAMMA_WISCONSIN_WISCONSIN_H_
#define GAMMA_WISCONSIN_WISCONSIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "sim/machine.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace gammadb::wisconsin {

/// Field indices in the Wisconsin schema.
namespace fields {
inline constexpr int kUnique1 = 0;        // 0..n-1, random permutation
inline constexpr int kUnique2 = 1;        // 0..n-1, independent permutation
inline constexpr int kTwo = 2;            // unique1 mod 2
inline constexpr int kFour = 3;           // unique1 mod 4
inline constexpr int kTen = 4;            // unique1 mod 10
inline constexpr int kTwenty = 5;         // unique1 mod 20
inline constexpr int kOnePercent = 6;     // unique1 mod 100
inline constexpr int kTenPercent = 7;     // unique1 mod 10
inline constexpr int kTwentyPercent = 8;  // unique1 mod 5
inline constexpr int kFiftyPercent = 9;   // unique1 mod 2
inline constexpr int kNormal = 10;        // N(50000, 750) when enabled,
                                          // else a third permutation
                                          // (the benchmark's unique3)
inline constexpr int kEvenOnePercent = 11;  // onePercent * 2
inline constexpr int kOddOnePercent = 12;   // onePercent * 2 + 1
inline constexpr int kStringU1 = 13;        // 52 chars, derived from unique1
inline constexpr int kStringU2 = 14;        // 52 chars, derived from unique2
inline constexpr int kString4 = 15;         // 52 chars, cyclic
}  // namespace fields

/// The 208-byte Wisconsin schema.
storage::Schema WisconsinSchema();

struct GenOptions {
  uint32_t cardinality = 10000;
  uint64_t seed = 42;
  /// Fill the `normal` column from N(normal_mean, normal_stddev),
  /// rounded and clamped to [normal_min, normal_max].
  bool with_normal_attr = false;
  double normal_mean = 50000;
  double normal_stddev = 750;
  int32_t normal_min = 0;
  int32_t normal_max = 99999;
  /// Fill the `normal` column from a Zipf(zipf_theta) distribution over
  /// ranks 0..cardinality-1 instead (rank 0 is the hottest value;
  /// theta 0 degenerates to uniform). Used by the adaptive-repartition
  /// experiments (docs/skew.md). Mutually exclusive with
  /// `with_normal_attr`.
  bool with_zipf_attr = false;
  double zipf_theta = 1.0;
};

/// Generates `cardinality` Wisconsin tuples deterministically.
std::vector<storage::Tuple> Generate(const GenOptions& options);

/// `k` tuples drawn without replacement (the paper's Bprime / skewed
/// inner relations are random samples of the outer relation).
std::vector<storage::Tuple> SampleWithoutReplacement(
    const std::vector<storage::Tuple>& tuples, uint32_t k, uint64_t seed);

/// Creates and loads the joinABprime pair of relations.
struct DatasetOptions {
  std::string outer_name = "A";
  std::string inner_name = "Bprime";
  uint32_t outer_cardinality = 100000;
  uint32_t inner_cardinality = 10000;
  uint64_t seed = 42;
  bool with_normal_attr = false;
  /// See GenOptions: Zipf-distributed `normal` column for the
  /// skew-adaptive experiments.
  bool with_zipf_attr = false;
  double zipf_theta = 1.0;
  /// Declustering applied to both relations at load time.
  db::PartitionStrategy strategy = db::PartitionStrategy::kHashed;
  int partition_field = fields::kUnique1;
};

struct Dataset {
  db::StoredRelation* outer = nullptr;  // the 100k relation (S)
  db::StoredRelation* inner = nullptr;  // the 10k relation (R)
};

Result<Dataset> LoadJoinABprime(sim::Machine& machine, db::Catalog& catalog,
                                const DatasetOptions& options);

}  // namespace gammadb::wisconsin

#endif  // GAMMA_WISCONSIN_WISCONSIN_H_
