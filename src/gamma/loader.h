// Bulk loader: declusters a batch of tuples across a relation's disk
// sites using one of Gamma's four tuple-distribution policies (paper
// Section 2.2).
//
// HPJA experiments depend on the exact arithmetic here: hashed
// declustering applies the same randomizing function used by join split
// tables, with the site chosen as hash mod numDiskNodes, so that at
// join time the split-table mod structure short-circuits local tuples.
#ifndef GAMMA_GAMMA_LOADER_H_
#define GAMMA_GAMMA_LOADER_H_

#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "gamma/catalog.h"
#include "sim/machine.h"
#include "storage/tuple.h"

namespace gammadb::db {

struct LoadOptions {
  PartitionStrategy strategy = PartitionStrategy::kHashed;
  /// Partitioning ("key") attribute; must be an int32 field for hashed /
  /// range strategies. Ignored for round-robin.
  int partition_field = 0;
  /// Ascending upper bounds for kRangeUser: site i receives values
  /// <= boundaries[i]; the last site receives the rest. Must have
  /// num_sites - 1 entries.
  std::vector<int32_t> range_boundaries;
  /// Seed of the randomizing function for kHashed declustering.
  uint64_t hash_seed = kDefaultHashSeed;
};

/// Loads `tuples` into `relation`. The relation must be empty. Range-
/// uniform declustering derives boundaries from the data itself so each
/// site receives an equal share (the policy the paper uses for the skew
/// experiments so "each processor did the same amount of work during
/// the initial scan").
Status LoadRelation(StoredRelation* relation,
                    const std::vector<storage::Tuple>& tuples,
                    const LoadOptions& options);

/// The boundaries range-uniform declustering would use for `values`
/// split over `num_sites` sites (exposed for tests).
std::vector<int32_t> UniformRangeBoundaries(std::vector<int32_t> values,
                                            size_t num_sites);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_LOADER_H_
