#include "gamma/catalog.h"

#include "common/logging.h"

namespace gammadb::db {

const char* PartitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
    case PartitionStrategy::kHashed:
      return "hashed";
    case PartitionStrategy::kRangeUser:
      return "range-user";
    case PartitionStrategy::kRangeUniform:
      return "range-uniform";
  }
  return "?";
}

StoredRelation::StoredRelation(std::string name, storage::Schema schema,
                               std::vector<int> home_nodes,
                               sim::Machine* machine)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      home_nodes_(std::move(home_nodes)) {
  GAMMA_CHECK(!home_nodes_.empty());
  fragments_.reserve(home_nodes_.size());
  for (int id : home_nodes_) {
    sim::Node& node = machine->node(id);
    GAMMA_CHECK(node.has_disk()) << "relation fragment on diskless node " << id;
    fragments_.push_back(std::make_unique<storage::HeapFile>(
        &node, &schema_, name_ + "." + std::to_string(id)));
  }
}

size_t StoredRelation::total_tuples() const {
  size_t total = 0;
  for (const auto& f : fragments_) total += f->tuple_count();
  return total;
}

uint64_t StoredRelation::total_bytes() const {
  return static_cast<uint64_t>(total_tuples()) * schema_.tuple_bytes();
}

std::vector<storage::Tuple> StoredRelation::PeekAllTuples() const {
  std::vector<storage::Tuple> out;
  out.reserve(total_tuples());
  for (const auto& f : fragments_) {
    auto tuples = f->PeekAll();
    out.insert(out.end(), std::make_move_iterator(tuples.begin()),
               std::make_move_iterator(tuples.end()));
  }
  return out;
}

void StoredRelation::FreeStorage() {
  for (auto& f : fragments_) f->Free();
  DropIndexes();
}

Status StoredRelation::BuildIndex(sim::Machine& machine, int field) {
  if (field < 0 || static_cast<size_t>(field) >= schema_.num_fields()) {
    return Status::InvalidArgument("index field out of range");
  }
  if (schema_.field(static_cast<size_t>(field)).type !=
      storage::FieldType::kInt32) {
    return Status::InvalidArgument("index field must be int32");
  }
  DropIndexes();
  indexes_.resize(fragments_.size());
  machine.BeginPhase("build index " + name_);
  machine.RunOnNodes(home_nodes_, [&](sim::Node& n) {
    size_t fi = 0;
    for (size_t i = 0; i < home_nodes_.size(); ++i) {
      if (home_nodes_[i] == n.id()) fi = i;
    }
    auto index = std::make_unique<storage::BPlusTree>(&n);
    fragments_[fi]->ForEachRid([&](uint64_t rid, const uint8_t* record) {
      index->Insert(schema_.GetInt32(record, static_cast<size_t>(field)),
                    rid);
    });
    indexes_[fi] = std::move(index);
  });
  machine.EndPhase().IgnoreError();
  indexed_field_ = field;
  return Status::OK();
}

const storage::BPlusTree& StoredRelation::fragment_index(size_t i) const {
  GAMMA_CHECK(has_index());
  return *indexes_[i];
}

void StoredRelation::DropIndexes() {
  indexes_.clear();
  indexed_field_ = -1;
}

Result<StoredRelation*> Catalog::Create(sim::Machine& machine,
                                        std::string name,
                                        storage::Schema schema) {
  if (relations_.count(name) != 0) {
    return Status::AlreadyExists("relation '" + name + "' exists");
  }
  auto rel = std::make_unique<StoredRelation>(name, std::move(schema),
                                              machine.DiskNodeIds(), &machine);
  StoredRelation* ptr = rel.get();
  relations_.emplace(std::move(name), std::move(rel));
  return ptr;
}

Result<StoredRelation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  return it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "' not found");
  }
  it->second->FreeStorage();
  relations_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace gammadb::db
