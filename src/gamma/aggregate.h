// Parallel aggregation: the third operator class Gamma's diskless
// processors execute ("The remaining diskless processors execute join,
// projection, and aggregate operations", paper Section 2.1).
//
// Two-phase split-based execution: every disk node folds its fragment
// into local partial aggregates, then routes the partials by a hash of
// the grouping attribute to the aggregation processes (which may be
// diskless), which merge them and store the result relation.
#ifndef GAMMA_GAMMA_AGGREGATE_H_
#define GAMMA_GAMMA_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "gamma/catalog.h"
#include "gamma/predicate.h"
#include "sim/machine.h"

namespace gammadb::db {

enum class AggFunction { kCount, kSum, kMin, kMax };

const char* AggFunctionName(AggFunction f);

struct AggregateSpec {
  std::string input_relation;
  std::string output_relation;
  /// Grouping attribute (int32), or -1 for a scalar aggregate.
  int group_by_field = -1;
  /// Aggregated attribute (int32; ignored for kCount).
  int value_field = 0;
  AggFunction function = AggFunction::kCount;
  /// Optional pre-aggregation selection.
  PredicateList predicate;
  /// Processes executing the merge phase. Empty = the disk nodes.
  std::vector<int> agg_nodes;
  uint64_t hash_seed = kDefaultHashSeed;
};

struct AggregateOutput {
  std::string output_relation;  // schema: [group?, value] int32 fields
  size_t groups = 0;
  sim::RunMetrics metrics;
};

/// Runs the aggregate; the result is stored as a new relation with
/// fields ("group_key", "value") — or just ("value",) for a scalar
/// aggregate. Accumulation is 64-bit internally; a result outside the
/// int32 range fails with OutOfRange.
Result<AggregateOutput> ExecuteAggregate(sim::Machine& machine,
                                         Catalog& catalog,
                                         const AggregateSpec& spec);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_AGGREGATE_H_
