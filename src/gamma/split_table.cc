#include "gamma/split_table.h"

#include <algorithm>

namespace gammadb::db {

SplitTable SplitTable::Loading(const std::vector<int>& disk_ids) {
  GAMMA_CHECK(!disk_ids.empty());
  std::vector<SplitEntry> entries;
  entries.reserve(disk_ids.size());
  for (int id : disk_ids) entries.push_back(SplitEntry{id, 0});
  return SplitTable(std::move(entries));
}

SplitTable SplitTable::Joining(const std::vector<int>& join_ids) {
  GAMMA_CHECK(!join_ids.empty());
  std::vector<SplitEntry> entries;
  entries.reserve(join_ids.size());
  for (int id : join_ids) entries.push_back(SplitEntry{id, 0});
  return SplitTable(std::move(entries));
}

SplitTable SplitTable::GracePartitioning(const std::vector<int>& disk_ids,
                                         int num_buckets) {
  GAMMA_CHECK(!disk_ids.empty());
  GAMMA_CHECK_GE(num_buckets, 1);
  const size_t d = disk_ids.size();
  std::vector<SplitEntry> entries;
  entries.reserve(d * static_cast<size_t>(num_buckets));
  // Bucket-major: numDiskNodes entries for bucket 1, then bucket 2, ...
  for (int b = 1; b <= num_buckets; ++b) {
    for (size_t i = 0; i < d; ++i) {
      entries.push_back(SplitEntry{disk_ids[i], b});
    }
  }
  return SplitTable(std::move(entries));
}

SplitTable SplitTable::HybridPartitioning(const std::vector<int>& join_ids,
                                          const std::vector<int>& disk_ids,
                                          int num_buckets) {
  GAMMA_CHECK(!join_ids.empty());
  GAMMA_CHECK(!disk_ids.empty());
  GAMMA_CHECK_GE(num_buckets, 1);
  std::vector<SplitEntry> entries;
  entries.reserve(join_ids.size() +
                  disk_ids.size() * static_cast<size_t>(num_buckets - 1));
  // joinnodes entries map the first bucket to the joining processes...
  for (int id : join_ids) entries.push_back(SplitEntry{id, 0});
  // ...then numDiskNodes * (N-1) entries exactly as for Grace joins.
  for (int b = 1; b < num_buckets; ++b) {
    for (size_t i = 0; i < disk_ids.size(); ++i) {
      entries.push_back(SplitEntry{disk_ids[i], b});
    }
  }
  return SplitTable(std::move(entries));
}

int SplitTable::MaxBucket() const {
  int max_bucket = 0;
  for (const SplitEntry& e : entries_) max_bucket = std::max(max_bucket, e.bucket);
  return max_bucket;
}

bool SplitTable::HasImmediateBucket() const {
  for (const SplitEntry& e : entries_) {
    if (e.bucket == 0) return true;
  }
  return false;
}

}  // namespace gammadb::db
