// Optimizer Bucket Analyzer — a faithful port of the algorithm printed
// in Appendix A of the paper.
//
// The mod-based interaction between the partitioning and joining split
// tables can starve some join processes of tuples entirely (Appendix A,
// Table 4: with 2 disk nodes, 4 join processes and 3 Hybrid buckets,
// every stored-bucket tuple re-maps to join nodes 1 and 2 only). The
// analyzer increases the bucket count until the cyclic structure lets
// every join node theoretically receive tuples.
#ifndef GAMMA_GAMMA_BUCKET_ANALYZER_H_
#define GAMMA_GAMMA_BUCKET_ANALYZER_H_

#include <vector>

namespace gammadb::db {

enum class BucketAlgorithm { kGrace, kHybrid };

/// Returns the smallest bucket count >= `num_buckets` for which the
/// partitioning-split-table cycle reaches all `join_nodes` join
/// processes. Ports the paper's pseudocode verbatim (including the
/// single-bucket early-out).
int AnalyzeBucketCount(BucketAlgorithm algorithm, int num_buckets,
                       int num_disks, int join_nodes);

/// Max-over-mean imbalance of a per-process load vector: 1.0 means
/// perfectly balanced, 2.0 means the slowest process carries twice the
/// mean. Returns 0 for an empty or all-zero vector. Shared by the
/// adaptive-repartitioning planner (gamma/rebalance) and its tests.
double LoadImbalance(const std::vector<double>& loads);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_BUCKET_ANALYZER_H_
