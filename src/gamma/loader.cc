#include "gamma/loader.h"

#include <algorithm>

#include "common/logging.h"

namespace gammadb::db {

namespace {

/// Site index for a value under range declustering with the given
/// ascending upper bounds.
size_t RangeSite(const std::vector<int32_t>& boundaries, int32_t value) {
  size_t site = 0;
  while (site < boundaries.size() && value > boundaries[site]) ++site;
  return site;
}

}  // namespace

std::vector<int32_t> UniformRangeBoundaries(std::vector<int32_t> values,
                                            size_t num_sites) {
  GAMMA_CHECK_GE(num_sites, 1u);
  std::vector<int32_t> boundaries;
  if (num_sites == 1 || values.empty()) return boundaries;
  std::sort(values.begin(), values.end());
  boundaries.reserve(num_sites - 1);
  for (size_t i = 1; i < num_sites; ++i) {
    // Upper bound of site i-1: the value at its quantile position.
    const size_t idx = i * values.size() / num_sites;
    boundaries.push_back(values[idx == 0 ? 0 : idx - 1]);
  }
  return boundaries;
}

Status LoadRelation(StoredRelation* relation,
                    const std::vector<storage::Tuple>& tuples,
                    const LoadOptions& options) {
  if (relation->total_tuples() != 0) {
    return Status::FailedPrecondition("relation '" + relation->name() +
                                      "' is not empty");
  }
  const storage::Schema& schema = relation->schema();
  const size_t num_sites = relation->num_fragments();
  const int field = options.partition_field;

  if (options.strategy != PartitionStrategy::kRoundRobin) {
    if (field < 0 || static_cast<size_t>(field) >= schema.num_fields()) {
      return Status::InvalidArgument("bad partition field");
    }
    if (schema.field(static_cast<size_t>(field)).type !=
        storage::FieldType::kInt32) {
      return Status::InvalidArgument(
          "partitioning attribute must be an int32 field");
    }
  }

  std::vector<int32_t> boundaries = options.range_boundaries;
  switch (options.strategy) {
    case PartitionStrategy::kRangeUser:
      if (boundaries.size() != num_sites - 1) {
        return Status::InvalidArgument(
            "range-user declustering needs num_sites - 1 boundaries");
      }
      if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
        return Status::InvalidArgument("range boundaries must ascend");
      }
      break;
    case PartitionStrategy::kRangeUniform: {
      std::vector<int32_t> values;
      values.reserve(tuples.size());
      for (const auto& t : tuples) {
        values.push_back(t.GetInt32(schema, static_cast<size_t>(field)));
      }
      boundaries = UniformRangeBoundaries(std::move(values), num_sites);
      break;
    }
    default:
      break;
  }

  size_t round_robin_next = 0;
  for (const storage::Tuple& t : tuples) {
    size_t site = 0;
    switch (options.strategy) {
      case PartitionStrategy::kRoundRobin:
        site = round_robin_next;
        round_robin_next = (round_robin_next + 1) % num_sites;
        break;
      case PartitionStrategy::kHashed: {
        const int32_t key = t.GetInt32(schema, static_cast<size_t>(field));
        site = static_cast<size_t>(
            HashJoinAttribute(key, options.hash_seed) % num_sites);
        break;
      }
      case PartitionStrategy::kRangeUser:
      case PartitionStrategy::kRangeUniform:
        site = RangeSite(boundaries,
                         t.GetInt32(schema, static_cast<size_t>(field)));
        break;
    }
    // Loads run before faults are armed (docs/fault_injection.md), so a
    // hard injected write error here aborts rather than propagating.
    GAMMA_CHECK_OK(relation->fragment(site).Append(t));
  }
  for (size_t i = 0; i < num_sites; ++i) {
    GAMMA_CHECK_OK(relation->fragment(i).FlushAppends());
  }
  relation->strategy = options.strategy;
  relation->partition_field = field;
  relation->partition_hash_seed = options.hash_seed;
  return Status::OK();
}

}  // namespace gammadb::db
