#include "gamma/rebalance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "gamma/bucket_analyzer.h"
#include "gamma/split_table.h"

namespace gammadb::db {

namespace {

/// Modeled join cost of a bin holding `count` residents against a
/// uniform share of `uniform`: linear work for everyone, plus a
/// quadratic duplicate-key penalty once the bin is past the heavy
/// threshold (build duplicates multiply probe duplicates, so probe
/// compares grow with the square of the excess).
double BinLoad(double count, double uniform, double heavy_factor) {
  if (count <= heavy_factor * std::max(1.0, uniform)) return count;
  const double excess = count - uniform;
  return count + excess * excess / std::max(1.0, uniform);
}

}  // namespace

uint64_t RebalancePlan::SerializedBytes() const {
  uint64_t entries = 0;
  for (const std::vector<int>& d : destinations) entries += d.size();
  return SplitTable::SerializedBytesFor(entries);
}

RebalancePlan ComputeRebalancePlan(
    const std::vector<std::vector<uint64_t>>& process_bin_counts,
    uint64_t bytes_per_tuple, uint64_t capacity_bytes_per_process,
    const RebalanceOptions& options) {
  RebalancePlan plan;
  const size_t num_processes = process_bin_counts.size();
  if (num_processes < 2) return plan;

  const uint32_t bins = static_cast<uint32_t>(process_bin_counts[0].size());
  GAMMA_CHECK(bins > 0 && (bins & (bins - 1)) == 0)
      << "bin count must be a power of two: " << bins;
  plan.num_bins = bins;
  plan.shift = 64;
  for (uint32_t b = bins; b > 1; b >>= 1) --plan.shift;
  plan.destinations.assign(bins, {});

  std::vector<uint64_t> global(bins, 0);
  uint64_t total = 0;
  for (const std::vector<uint64_t>& row : process_bin_counts) {
    GAMMA_CHECK_EQ(row.size(), static_cast<size_t>(bins));
    for (uint32_t b = 0; b < bins; ++b) {
      global[b] += row[b];
      total += row[b];
    }
  }
  if (total == 0) return plan;

  const double uniform_global =
      static_cast<double>(total) / static_cast<double>(bins);
  const double uniform_pb =
      uniform_global / static_cast<double>(num_processes);

  std::vector<uint32_t> heavy;
  for (uint32_t b = 0; b < bins; ++b) {
    if (static_cast<double>(global[b]) >
        options.heavy_bin_factor * std::max(1.0, uniform_global)) {
      heavy.push_back(b);
    }
  }
  if (heavy.empty()) return plan;

  // Static per-process load; bail out unless the imbalance is worth a
  // migration phase.
  std::vector<double> static_load(num_processes, 0);
  for (size_t p = 0; p < num_processes; ++p) {
    for (uint32_t b = 0; b < bins; ++b) {
      static_load[p] +=
          BinLoad(static_cast<double>(process_bin_counts[p][b]), uniform_pb,
                  options.heavy_bin_factor);
    }
  }
  const double static_max =
      *std::max_element(static_load.begin(), static_load.end());
  if (LoadImbalance(static_load) < options.imbalance_threshold) return plan;

  // Heavy-bin residents are assumed to migrate away for the LOAD model
  // (restored below if a bin finds no home). Capacity bookkeeping in
  // resident_bytes is stricter: a bin's source bytes leave only when the
  // bin is actually placed, because an unplaced heavy bin stays resident
  // at its static home — freeing its bytes up front once let migrated
  // bins fill the space and the returning static bin overflow the table.
  std::vector<double> planned = static_load;
  std::vector<uint64_t> resident_bytes(num_processes, 0);
  for (size_t p = 0; p < num_processes; ++p) {
    uint64_t tuples = 0;
    for (uint32_t b = 0; b < bins; ++b) tuples += process_bin_counts[p][b];
    resident_bytes[p] = tuples * bytes_per_tuple;
  }
  for (uint32_t b : heavy) {
    for (size_t p = 0; p < num_processes; ++p) {
      planned[p] -=
          BinLoad(static_cast<double>(process_bin_counts[p][b]), uniform_pb,
                  options.heavy_bin_factor);
    }
  }

  // A destination holds the WHOLE bin, so its modeled cost is the bin
  // fully concentrated at one process — same per-process units as
  // static_load, so consolidation never looks cheaper than it is.
  const auto full_bin_cost = [&](uint32_t b) {
    return BinLoad(static_cast<double>(global[b]), uniform_pb,
                   options.heavy_bin_factor);
  };

  // Costliest bins choose destinations first (ties: lower bin first).
  std::sort(heavy.begin(), heavy.end(), [&](uint32_t a, uint32_t b) {
    const double ca = full_bin_cost(a);
    const double cb = full_bin_cost(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });

  double ideal = 0;
  for (double l : static_load) ideal += l;
  ideal /= static_cast<double>(num_processes);

  const size_t max_replicas =
      options.max_replicas > 0
          ? std::min(static_cast<size_t>(options.max_replicas), num_processes)
          : num_processes;

  for (uint32_t b : heavy) {
    const double cost = full_bin_cost(b);
    // Replicas split the probe stream, so the duplicate-key quadratic
    // term divides by the replica count; the linear build term does not
    // (every replica holds every resident of the bin).
    const double quadratic = cost - static_cast<double>(global[b]);
    size_t want = static_cast<size_t>(
        std::ceil(quadratic / std::max(ideal, 1.0)));
    want = std::min(std::max<size_t>(want, 1), max_replicas);

    // Every replica holds the whole bin, so feasibility is exact byte
    // math: fixed-width tuples make count * bytes_per_tuple the true
    // resident growth. A candidate's own copy of THIS bin is extracted
    // at migration time, so it is credited back in the check; copies of
    // other still-unplaced heavy bins stay counted (conservative: they
    // only leave if those bins are placed later).
    const uint64_t bin_bytes = global[b] * bytes_per_tuple;
    std::vector<int> dests;
    std::vector<bool> taken(num_processes, false);
    for (size_t k = 0; k < want; ++k) {
      int best = -1;
      for (size_t p = 0; p < num_processes; ++p) {
        if (taken[p]) continue;
        const uint64_t own_bin_bytes = process_bin_counts[p][b] * bytes_per_tuple;
        if (resident_bytes[p] - own_bin_bytes + bin_bytes >
            capacity_bytes_per_process) {
          continue;
        }
        if (best < 0 || planned[p] < planned[static_cast<size_t>(best)]) {
          best = static_cast<int>(p);
        }
      }
      if (best < 0) break;
      taken[static_cast<size_t>(best)] = true;
      dests.push_back(best);
    }
    if (dests.empty()) {
      // Nobody can absorb the bin: put its modeled load back and leave
      // it on the static route (its bytes never left resident_bytes).
      for (size_t p = 0; p < num_processes; ++p) {
        planned[p] +=
            BinLoad(static_cast<double>(process_bin_counts[p][b]), uniform_pb,
                    options.heavy_bin_factor);
      }
      continue;
    }
    const double share =
        static_cast<double>(global[b]) +
        quadratic / static_cast<double>(dests.size());
    // The bin's residents leave every static home now that it is placed.
    for (size_t p = 0; p < num_processes; ++p) {
      resident_bytes[p] -= process_bin_counts[p][b] * bytes_per_tuple;
    }
    for (int p : dests) {
      planned[static_cast<size_t>(p)] += share;
      resident_bytes[static_cast<size_t>(p)] += bin_bytes;
    }
    std::sort(dests.begin(), dests.end());
    plan.destinations[b] = std::move(dests);
    ++plan.overridden_bins;
    if (plan.destinations[b].size() > 1) ++plan.replicated_bins;
  }

  if (plan.overridden_bins == 0) return plan;
  const double planned_max =
      *std::max_element(planned.begin(), planned.end());
  if (planned_max >= static_max) {
    plan.destinations.assign(bins, {});
    plan.overridden_bins = 0;
    plan.replicated_bins = 0;
    return plan;
  }
  plan.active = true;
  return plan;
}

void ChargeRebalance(sim::Machine& machine, int num_join_sites,
                     int num_producers, uint64_t plan_bytes) {
  const sim::CostModel& cost = machine.cost();
  // One statistics packet gathered from each join site, then the
  // decision (override table, or the empty keep-static verdict) goes
  // back to every join site and producing site — in pieces when the
  // table exceeds one packet, like any split-table broadcast.
  const int packets = std::max(1, cost.SplitTablePackets(plan_bytes));
  const int64_t messages =
      num_join_sites +
      static_cast<int64_t>(num_join_sites + num_producers) * packets;
  machine.ChargeScheduler(
      static_cast<double>(messages) * cost.sched_control_message_seconds,
      messages);
}

}  // namespace gammadb::db
