#include "gamma/operators.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "gamma/scheduler.h"
#include "gamma/split_table.h"
#include "sim/exchange.h"

namespace gammadb::db {

Result<storage::Schema> ProjectedSchema(const storage::Schema& input,
                                        const std::vector<int>& projection) {
  if (projection.empty()) return input;
  std::vector<storage::Field> fields;
  fields.reserve(projection.size());
  for (int idx : projection) {
    if (idx < 0 || static_cast<size_t>(idx) >= input.num_fields()) {
      return Status::InvalidArgument("projection field out of range");
    }
    fields.push_back(input.field(static_cast<size_t>(idx)));
  }
  return storage::Schema(std::move(fields));
}

namespace {

/// The key range a conjunctive predicate implies for `field`
/// ([INT32_MIN, INT32_MAX] and !constrained when it implies nothing).
struct KeyRange {
  int32_t lo = INT32_MIN;
  int32_t hi = INT32_MAX;
  bool constrained = false;
};

KeyRange DeriveKeyRange(const PredicateList& predicate, int field) {
  KeyRange range;
  for (const Predicate& p : predicate) {
    if (p.field != field) continue;
    switch (p.op) {
      case Predicate::Op::kEq:
        range.lo = std::max(range.lo, p.value);
        range.hi = std::min(range.hi, p.value);
        range.constrained = true;
        break;
      case Predicate::Op::kLt:
        if (p.value > INT32_MIN) range.hi = std::min(range.hi, p.value - 1);
        range.constrained = true;
        break;
      case Predicate::Op::kLe:
        range.hi = std::min(range.hi, p.value);
        range.constrained = true;
        break;
      case Predicate::Op::kGt:
        if (p.value < INT32_MAX) range.lo = std::max(range.lo, p.value + 1);
        range.constrained = true;
        break;
      case Predicate::Op::kGe:
        range.lo = std::max(range.lo, p.value);
        range.constrained = true;
        break;
      case Predicate::Op::kNe:
        break;  // no useful bound
    }
  }
  return range;
}

/// Copies the projected fields of the record at `in` (`size` bytes)
/// into a tuple of `out_schema`. Raw-bytes input so the block-granular
/// scan path projects straight off the page image; an empty projection
/// materializes the record as-is (one copy).
storage::Tuple ProjectTuple(const storage::Schema& in_schema,
                            const uint8_t* in, uint32_t size,
                            const storage::Schema& out_schema,
                            const std::vector<int>& projection) {
  if (projection.empty()) return storage::Tuple(in, size);
  storage::Tuple out(out_schema.tuple_bytes());
  for (size_t i = 0; i < projection.size(); ++i) {
    const size_t src = static_cast<size_t>(projection[i]);
    if (in_schema.field(src).type == storage::FieldType::kInt32) {
      out.SetInt32(out_schema, i, in_schema.GetInt32(in, src));
    } else {
      out.SetChars(out_schema, i, in_schema.GetChars(in, src));
    }
  }
  return out;
}

}  // namespace

Result<SelectOutput> ExecuteSelect(sim::Machine& machine, Catalog& catalog,
                                   const SelectSpec& spec) {
  GAMMA_ASSIGN_OR_RETURN(StoredRelation * input,
                         catalog.Get(spec.input_relation));
  GAMMA_ASSIGN_OR_RETURN(storage::Schema out_schema,
                         ProjectedSchema(input->schema(), spec.projection));
  for (const Predicate& p : spec.predicate) {
    if (p.field < 0 ||
        static_cast<size_t>(p.field) >= input->schema().num_fields()) {
      return Status::InvalidArgument("predicate field out of range");
    }
  }
  if (spec.output_strategy == PartitionStrategy::kRangeUser ||
      spec.output_strategy == PartitionStrategy::kRangeUniform) {
    return Status::NotImplemented(
        "select output supports round-robin and hashed declustering");
  }
  if (spec.output_strategy == PartitionStrategy::kHashed &&
      (spec.output_partition_field < 0 ||
       static_cast<size_t>(spec.output_partition_field) >=
           out_schema.num_fields() ||
       out_schema.field(static_cast<size_t>(spec.output_partition_field))
               .type != storage::FieldType::kInt32)) {
    return Status::InvalidArgument("output partition field invalid");
  }
  GAMMA_ASSIGN_OR_RETURN(
      StoredRelation * output,
      catalog.Create(machine, spec.output_relation, out_schema));

  machine.ResetMetrics();
  const std::vector<int> disks = machine.DiskNodeIds();
  const SplitTable store_table = SplitTable::Loading(disks);
  sim::Exchange<storage::Tuple> store_exchange(&machine);

  machine.BeginPhase("select " + spec.input_relation);
  ChargeOperatorPhase(machine, static_cast<int>(disks.size()),
                      static_cast<int>(disks.size()),
                      store_table.SerializedBytes());

  std::vector<size_t> rr_cursor(disks.size());
  for (size_t i = 0; i < disks.size(); ++i) rr_cursor[i] = i;
  std::vector<size_t> input_counts(disks.size());

  // Access-path selection: use the B+ index when it bounds a predicate
  // field (key-range lookup + per-rid random fetches); otherwise a
  // sequential fragment scan.
  const KeyRange key_range =
      input->has_index() && spec.use_index
          ? DeriveKeyRange(spec.predicate, input->indexed_field())
          : KeyRange{};
  const bool via_index = key_range.constrained && key_range.lo <= key_range.hi;

  machine.RunOnNodes(disks, [&](sim::Node& n) {
    size_t di = 0;
    for (size_t i = 0; i < disks.size(); ++i) {
      if (disks[i] == n.id()) di = i;
    }
    store_exchange.ReserveRow(n.id(), input->fragment(di).tuple_count());
    const auto process = [&](const uint8_t* data, uint32_t size) {
      ++input_counts[di];
      if (!spec.predicate.empty()) {
        n.ChargeCpu(n.cost().cpu_predicate_seconds,
                    sim::CostCategory::kPredicate);
        if (!EvalAll(spec.predicate, input->schema(), data)) return;
      }
      storage::Tuple projected =
          ProjectTuple(input->schema(), data, size, out_schema,
                       spec.projection);
      // compose output
      n.ChargeCpu(n.cost().cpu_write_tuple_seconds,
                  sim::CostCategory::kWriteTuple);
      size_t dest;
      switch (spec.output_strategy) {
        case PartitionStrategy::kHashed: {
          const int32_t key = projected.GetInt32(
              out_schema, static_cast<size_t>(spec.output_partition_field));
          n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                      sim::CostCategory::kHashRoute);
          dest = static_cast<size_t>(HashJoinAttribute(key, spec.hash_seed) %
                                     disks.size());
          break;
        }
        default:
          dest = rr_cursor[di]++ % disks.size();
          break;
      }
      const uint32_t bytes = projected.size();
      store_exchange.Send(n.id(), disks[dest], std::move(projected), bytes);
    };
    if (via_index) {
      const storage::HeapFile& fragment = input->fragment(di);
      for (const auto& [key, rid] :
           input->fragment_index(di).RangeScan(key_range.lo, key_range.hi)) {
        const storage::Tuple t = fragment.FetchByRid(rid);
        process(t.data(), t.size());
      }
    } else {
      // Block-granular scan: the per-tuple read CPU the scalar Next()
      // charged is charged here per view, keeping the charge chain
      // (read, predicate, write, route) in scan order.
      auto scanner = input->fragment(di).Scan();
      storage::TupleBlock block;
      while (scanner.NextBlock(&block)) {
        for (size_t i = 0; i < block.size(); ++i) {
          n.ChargeCpu(n.cost().cpu_read_tuple_seconds,
                      sim::CostCategory::kReadTuple);
          const storage::TupleView v = block.view(i);
          process(v.data, v.size);
        }
      }
    }
  });
  machine.RunOnNodes(disks, [&](sim::Node& n) {
    size_t di = 0;
    for (size_t i = 0; i < disks.size(); ++i) {
      if (disks[i] == n.id()) di = i;
    }
    store_exchange.DrainInboxBlocks(
        n.id(), [&](std::vector<storage::Tuple>& lane) {
          for (storage::Tuple& t : lane) {
            // Non-join operators are outside the fault-injection
            // recovery scope (docs/fault_injection.md): hard write
            // errors abort.
            GAMMA_CHECK_OK(output->fragment(di).Append(t));
          }
        });
    GAMMA_CHECK_OK(output->fragment(di).FlushAppends());
  });
  machine.EndPhase().IgnoreError();

  output->strategy = spec.output_strategy;
  output->partition_field = spec.output_strategy == PartitionStrategy::kHashed
                                ? spec.output_partition_field
                                : -1;
  output->partition_hash_seed = spec.hash_seed;

  SelectOutput result;
  result.output_relation = spec.output_relation;
  for (size_t count : input_counts) result.input_tuples += count;
  result.output_tuples = output->total_tuples();
  result.used_index = via_index;
  result.metrics = machine.Metrics();
  return result;
}

}  // namespace gammadb::db
