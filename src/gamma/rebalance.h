// Skew-aware adaptive repartitioning (extension; see docs/skew.md).
//
// The paper's Table 3 shows every algorithm degrading under data skew
// because tuples are routed by a static split table: the join process
// that receives the heavy hash values becomes the straggler that sets
// elapsed time. Run-time statistics fix this: during the building-
// relation scan every join process already maintains a HashHistogram of
// its residents (the Section 4.1 overflow histogram), so after the
// build the scheduler can gather those per-bucket counts, find the
// heavy bins, and override their routing — a heavy bin gets a dedicated
// destination or, when one process cannot absorb it, a replicated
// destination set in the spirit of the join-product-skew framework
// (build copies go to every replica, each probe tuple to exactly one,
// so every result pair is produced exactly once).
//
// Only heavy bins are overridden: the balanced bulk keeps the static
// (hash mod J) route, which keeps both the migration volume and the
// serialized override table small.
#ifndef GAMMA_GAMMA_REBALANCE_H_
#define GAMMA_GAMMA_REBALANCE_H_

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace gammadb::db {

struct RebalanceOptions {
  /// Gather statistics and consider a rebalance plan at all. Off by
  /// default: the static-routing code path stays byte-identical.
  bool enabled = false;
  /// Minimum (max process load / mean process load) under static
  /// routing for a plan to be worth installing.
  double imbalance_threshold = 1.2;
  /// A bin is heavy when its global count exceeds this multiple of the
  /// uniform per-bin share.
  double heavy_bin_factor = 2.0;
  /// Cap on destinations per heavy bin; 0 means up to the number of
  /// join processes.
  int max_replicas = 0;
};

/// Routing overrides for the probing phase, plus the resident migration
/// they imply. Bins are the HashHistogram bins (top log2(num_bins) hash
/// bits), orthogonal to the split table's mod indexing.
struct RebalancePlan {
  bool active = false;
  uint32_t num_bins = 0;
  int shift = 64;  // bin = hash >> shift

  /// Per-bin destination join-process indices. Empty = bin keeps its
  /// static route. Size 1 = dedicated destination; > 1 = replicated.
  std::vector<std::vector<int>> destinations;

  int overridden_bins = 0;
  int replicated_bins = 0;

  uint32_t BinOf(uint64_t hash) const {
    return static_cast<uint32_t>(hash >> shift);
  }

  /// Destination set for `hash`, or nullptr when the static route
  /// applies (inactive plan or non-overridden bin).
  const std::vector<int>* DestinationsFor(uint64_t hash) const {
    if (!active) return nullptr;
    const std::vector<int>& d = destinations[BinOf(hash)];
    return d.empty() ? nullptr : &d;
  }

  /// Bytes needed to ship the override table (one split-table entry per
  /// destination of each overridden bin), charged through the scheduler
  /// like any other split-table broadcast.
  uint64_t SerializedBytes() const;
};

/// Computes a rebalance plan from per-process histogram bin counts of
/// the building relation's residents. `process_bin_counts[p][b]` is the
/// number of residents of join process p in bin b; all processes must
/// report the same power-of-two bin count. `capacity_bytes_per_process`
/// bounds migration: a plan that would overflow any destination's hash
/// table is trimmed, and deactivated if it cannot fit (tuples are
/// fixed-width, so the byte math is exact). Deterministic: depends only
/// on the counts and options.
///
/// The load model mirrors the quadratic probe cost of duplicate keys:
/// a bin holding c residents against a uniform share u costs
/// c + (c - u)^2 / u once c is past the heavy threshold, so splitting a
/// heavy bin over k replicas divides the quadratic term by k. The plan
/// activates only when heavy bins exist, static max/mean load exceeds
/// options.imbalance_threshold, and the planned max load beats the
/// static max load.
RebalancePlan ComputeRebalancePlan(
    const std::vector<std::vector<uint64_t>>& process_bin_counts,
    uint64_t bytes_per_tuple, uint64_t capacity_bytes_per_process,
    const RebalanceOptions& options);

/// Charges the scheduler work of one rebalance exchange: one statistics
/// packet gathered from each join site, plus the override-table
/// broadcast to every join site and producing site (packetized like a
/// split table). Must be called inside an open machine phase.
void ChargeRebalance(sim::Machine& machine, int num_join_sites,
                     int num_producers, uint64_t plan_bytes);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_REBALANCE_H_
