// Bit-vector filters (Babb filters), paper Section 4.2.
//
// One join (or one bucket-join, or one overflow sub-join) uses a single
// 2 KB filter packet shared across all join sites: after protocol
// overhead, each of J sites owns a slice of (16384 - 600) / J bits
// (1,973 bits per site for 8 sites — the figure the paper quotes).
// Join sites set bits for the inner tuples resident in their hash
// tables; the assembled packet is broadcast to the producing sites,
// which test outer tuples against the slice of the site the tuple would
// be routed to and drop non-matches before they are transmitted, stored
// or probed.
//
// The bit position is a deterministic function of the join-attribute
// hash, so duplicate attribute values collide in the filter — the
// effect behind the stronger filtering on skewed (NU) data in Table 4.
#ifndef GAMMA_GAMMA_BIT_FILTER_H_
#define GAMMA_GAMMA_BIT_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace gammadb::db {

class BitFilterSet {
 public:
  /// `num_sites` join sites share one packet of `packet_bytes`;
  /// `overhead_bits` models packet/protocol framing.
  explicit BitFilterSet(int num_sites, uint32_t packet_bytes = 2048,
                        uint32_t overhead_bits = 600);

  uint32_t bits_per_site() const { return bits_per_site_; }
  int num_sites() const { return static_cast<int>(slices_.size()); }
  uint32_t packet_bytes() const { return packet_bytes_; }

  /// Sets the bit for `hash` in `site`'s slice.
  void Set(int site, uint64_t hash);

  /// Tests the bit for `hash` in `site`'s slice.
  bool MayContain(int site, uint64_t hash) const;

  /// Fraction of bits set in `site`'s slice (filter effectiveness
  /// decays as this approaches 1 — the Grace Figure 12 effect).
  double FillFraction(int site) const;

  void ClearAll();

 private:
  static uint32_t BitIndex(uint64_t hash, uint32_t bits) {
    // Re-mix so the filter position is independent of the routing mod.
    return static_cast<uint32_t>(Mix64(hash ^ 0xB17F117E2B17F117ULL) % bits);
  }

  uint32_t packet_bytes_;
  uint32_t bits_per_site_;
  std::vector<std::vector<uint8_t>> slices_;
};

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_BIT_FILTER_H_
