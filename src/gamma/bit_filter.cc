#include "gamma/bit_filter.h"

namespace gammadb::db {

BitFilterSet::BitFilterSet(int num_sites, uint32_t packet_bytes,
                           uint32_t overhead_bits)
    : packet_bytes_(packet_bytes) {
  GAMMA_CHECK_GE(num_sites, 1);
  const uint32_t total_bits = packet_bytes * 8;
  GAMMA_CHECK_GT(total_bits, overhead_bits);
  bits_per_site_ =
      (total_bits - overhead_bits) / static_cast<uint32_t>(num_sites);
  GAMMA_CHECK_GE(bits_per_site_, 8u) << "filter packet too small for "
                                     << num_sites << " sites";
  slices_.assign(static_cast<size_t>(num_sites),
                 std::vector<uint8_t>((bits_per_site_ + 7) / 8, 0));
}

void BitFilterSet::Set(int site, uint64_t hash) {
  const uint32_t bit = BitIndex(hash, bits_per_site_);
  slices_[static_cast<size_t>(site)][bit >> 3] |=
      static_cast<uint8_t>(1u << (bit & 7));
}

bool BitFilterSet::MayContain(int site, uint64_t hash) const {
  const uint32_t bit = BitIndex(hash, bits_per_site_);
  return (slices_[static_cast<size_t>(site)][bit >> 3] &
          (1u << (bit & 7))) != 0;
}

double BitFilterSet::FillFraction(int site) const {
  const auto& slice = slices_[static_cast<size_t>(site)];
  uint32_t set_bits = 0;
  for (uint32_t bit = 0; bit < bits_per_site_; ++bit) {
    if ((slice[bit >> 3] & (1u << (bit & 7))) != 0) ++set_bits;
  }
  return static_cast<double>(set_bits) / static_cast<double>(bits_per_site_);
}

void BitFilterSet::ClearAll() {
  for (auto& slice : slices_) {
    std::fill(slice.begin(), slice.end(), static_cast<uint8_t>(0));
  }
}

}  // namespace gammadb::db
