#include "gamma/bucket_analyzer.h"

#include <algorithm>

#include "common/logging.h"

namespace gammadb::db {

int AnalyzeBucketCount(BucketAlgorithm algorithm, int num_buckets,
                       int num_disks, int join_nodes) {
  GAMMA_CHECK_GE(num_buckets, 1);
  GAMMA_CHECK_GE(num_disks, 1);
  GAMMA_CHECK_GE(join_nodes, 1);
  for (;;) {
    // Compute the total number of partitioning split table entries.
    long total_split_entries;
    if (algorithm == BucketAlgorithm::kGrace) {
      total_split_entries = static_cast<long>(num_buckets) * num_disks;
    } else {  // Hybrid join
      total_split_entries =
          join_nodes + static_cast<long>(num_buckets - 1) * num_disks;
    }

    // No problem will occur with one bucket and no more disks than
    // joining nodes.
    if (num_buckets == 1 && num_disks <= join_nodes) return num_buckets;

    // Loop through the entries applying the mod function with the number
    // of joining nodes until a cycle is detected.
    long i = 1;
    for (; i <= total_split_entries; ++i) {
      if ((total_split_entries * i) % join_nodes == 0) break;
    }

    if (i * num_disks >= join_nodes) return num_buckets;
    ++num_buckets;
  }
}

double LoadImbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 0;
  double max = 0;
  double sum = 0;
  for (double l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  if (sum <= 0) return 0;
  return max * static_cast<double>(loads.size()) / sum;
}

}  // namespace gammadb::db
