// Relational query plans: the "tree of operators" Gamma compiles
// queries into (paper Section 2.2), built from the operators this
// library implements — parallel scan/select/project, the four parallel
// join algorithms, and parallel aggregation — with the Section 5
// optimizer rule choosing the join algorithm when the caller does not.
//
//   Plan plan = Plan::Aggregate(
//       Plan::Join(Plan::Scan("Bprime"),
//                  Plan::Scan("A", {{ten, Op::kEq, 3}}),
//                  u1, u1, {}),
//       /*group_by=*/four, AggFunction::kCount, /*value=*/0);
//   auto result = ExecutePlan(machine, catalog, plan, "answer");
//
// Intermediate results materialize as temporary relations (Gamma
// pipelines within operators via split tables; between operators of the
// paper's queries results are stored relations), and are dropped as
// soon as their consumer has run.
#ifndef GAMMA_GAMMA_PLAN_H_
#define GAMMA_GAMMA_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "gamma/aggregate.h"
#include "gamma/catalog.h"
#include "gamma/predicate.h"
#include "join/spec.h"
#include "sim/machine.h"

namespace gammadb::db {

class Plan {
 public:
  struct JoinOptions {
    /// Unset = the optimizer chooses (ChooseJoinAlgorithm).
    std::optional<join::Algorithm> algorithm;
    double memory_ratio = 1.0;
    bool bit_filters = false;
    /// Empty = join at the disk nodes.
    std::vector<int> join_nodes;
  };

  /// Leaf: scan a stored relation, optionally selecting and projecting.
  static Plan Scan(std::string relation, PredicateList predicate = {},
                   std::vector<int> projection = {});

  /// Equi-join of two sub-plans; `inner` is the building relation.
  static Plan Join(Plan inner, Plan outer, int inner_field, int outer_field,
                   JoinOptions options);
  static Plan Join(Plan inner, Plan outer, int inner_field, int outer_field) {
    return Join(std::move(inner), std::move(outer), inner_field, outer_field,
                JoinOptions());
  }

  /// Aggregate a sub-plan. group_by_field == -1 for a scalar aggregate.
  static Plan Aggregate(Plan input, int group_by_field, AggFunction function,
                        int value_field);

 private:
  friend struct PlanExecutor;
  struct Node;
  explicit Plan(std::shared_ptr<const Node> root) : root_(std::move(root)) {}

 public:
  /// Implementation detail (plan executor access).
  const Node& Root() const { return *root_; }

 private:
  std::shared_ptr<const Node> root_;
};

/// One executed operator of the plan.
struct PlanStep {
  std::string description;  // e.g. "join Bprime x A (hybrid-hash)"
  double seconds = 0;
  sim::Counters counters;
};

struct PlanResult {
  /// The stored result relation (caller drops it when done).
  std::string result_relation;
  size_t result_tuples = 0;
  /// Sum of the operator response times (operators run serially).
  double total_seconds = 0;
  std::vector<PlanStep> steps;
};

/// Executes the plan bottom-up, storing the final result under
/// `result_name`. Temporary intermediates are dropped automatically;
/// on failure, everything this execution created is cleaned up.
Result<PlanResult> ExecutePlan(sim::Machine& machine, Catalog& catalog,
                               const Plan& plan, std::string result_name);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_PLAN_H_
