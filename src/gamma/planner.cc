#include "gamma/planner.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace gammadb::db {

Result<ColumnStats> AnalyzeColumn(const StoredRelation& relation, int field) {
  const storage::Schema& schema = relation.schema();
  if (field < 0 || static_cast<size_t>(field) >= schema.num_fields()) {
    return Status::InvalidArgument("column out of range");
  }
  if (schema.field(static_cast<size_t>(field)).type !=
      storage::FieldType::kInt32) {
    return Status::InvalidArgument("column must be int32");
  }
  ColumnStats stats;
  stats.min_value = INT32_MAX;
  stats.max_value = INT32_MIN;
  std::map<int32_t, size_t> frequencies;
  for (const storage::Tuple& t : relation.PeekAllTuples()) {
    const int32_t v = t.GetInt32(schema, static_cast<size_t>(field));
    ++stats.cardinality;
    stats.min_value = std::min(stats.min_value, v);
    stats.max_value = std::max(stats.max_value, v);
    ++frequencies[v];
  }
  stats.distinct = frequencies.size();
  for (const auto& [value, count] : frequencies) {
    stats.max_duplicates = std::max(stats.max_duplicates, count);
  }
  if (stats.cardinality == 0) {
    stats.min_value = 0;
    stats.max_value = 0;
  }
  return stats;
}

join::Algorithm ChooseJoinAlgorithm(const ColumnStats& inner_join_column,
                                    double memory_ratio,
                                    bool adaptive_repartition_available,
                                    bool robust_overflow_available) {
  const bool memory_limited = memory_ratio < 1.0 / 3.0;
  if (inner_join_column.HighlySkewed() && memory_limited &&
      !adaptive_repartition_available && !robust_overflow_available) {
    // Hash joins would overflow repeatedly on the duplicate chains; be
    // conservative (paper Section 5). With run-time rebalancing the
    // Hybrid bucket sub-joins spread the duplicate chains themselves,
    // and with total overflow resolution (bounded recursion plus the
    // nested-loop degrade, docs/overflow.md) even an unsplittable
    // duplicate chain finishes deterministically — either capability
    // retires the sort-merge fallback.
    return join::Algorithm::kSortMerge;
  }
  return join::Algorithm::kHybridHash;
}

}  // namespace gammadb::db
