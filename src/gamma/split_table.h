// Split tables: Gamma's tuple-routing mechanism (paper Section 2.2 and
// Appendix A).
//
// A split table is an array of entries, indexed by (hash mod table
// size). Four layouts are used:
//
//  * Loading: one entry per disk node — declustering at load time.
//  * Joining: one entry per join process — routes tuples to joiners.
//  * Grace partitioning: numDiskNodes * N entries, laid out
//    bucket-major (N disk-node groups), so entry e maps to disk node
//    diskIds[e mod D] and bucket e / D (Appendix A, Table 1).
//  * Hybrid partitioning: J + D*(N-1) entries; the first J entries map
//    bucket 0 straight to the join processes; the remainder is laid out
//    like a Grace table for buckets 1..N-1 (Appendix A, Table 2).
//
// These layouts plus mod indexing are what make HPJA joins short-circuit
// the network and what create the skewed bucket distributions the
// bucket analyzer exists to fix; the unit tests reproduce the worked
// examples from the paper's appendix against this code.
#ifndef GAMMA_GAMMA_SPLIT_TABLE_H_
#define GAMMA_GAMMA_SPLIT_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace gammadb::db {

/// Serialized size of one split-table entry (machine id, port number,
/// bucket tag, flow-control state). Sized so that the paper's observed
/// threshold holds: a 6-bucket table for 8 disk nodes (48 entries) fits
/// in one 2 KB packet while a 7-bucket table (56 entries) does not.
inline constexpr uint32_t kSplitEntryBytes = 40;

struct SplitEntry {
  int node;    // destination node id
  int bucket;  // 0 = immediate join; >= 1 = stored bucket
};

class SplitTable {
 public:
  /// Declustering at load time: entry i -> disk node diskIds[i], bucket 0.
  static SplitTable Loading(const std::vector<int>& disk_ids);

  /// One entry per join process: entry i -> joinIds[i], bucket 0.
  static SplitTable Joining(const std::vector<int>& join_ids);

  /// Grace partitioning table for `num_buckets` buckets over the given
  /// disk nodes. Buckets are numbered 1..N (all stored).
  static SplitTable GracePartitioning(const std::vector<int>& disk_ids,
                                      int num_buckets);

  /// Hybrid partitioning table: bucket 0 (immediate) on the join nodes,
  /// buckets 1..N-1 stored on the disk nodes. `num_buckets` >= 1; with
  /// num_buckets == 1 this degenerates to a joining table.
  static SplitTable HybridPartitioning(const std::vector<int>& join_ids,
                                       const std::vector<int>& disk_ids,
                                       int num_buckets);

  size_t size() const { return entries_.size(); }

  const SplitEntry& entry(size_t i) const { return entries_[i]; }

  /// Routes a hash value: entries_[hash mod size].
  const SplitEntry& Route(uint64_t hash) const {
    return entries_[hash % entries_.size()];
  }

  /// Index a hash value would route through (for tests/analysis).
  size_t IndexOf(uint64_t hash) const { return hash % entries_.size(); }

  /// Block-granular routing: out[i] = hashes[i] mod size for a whole
  /// batch. The divisions are data-independent, so they pipeline far
  /// better than one Route() per tuple interleaved with the scan loop;
  /// callers fetch the entries with entry(out[i]).
  void RouteIndices(const uint64_t* hashes, size_t count,
                    uint32_t* out) const {
    const uint64_t size = entries_.size();
    for (size_t i = 0; i < count; ++i) {
      out[i] = static_cast<uint32_t>(hashes[i] % size);
    }
  }

  /// Bytes needed to ship this table to an operator process.
  uint64_t SerializedBytes() const {
    return SerializedBytesFor(entries_.size());
  }

  /// Wire size of `num_entries` split-table entries. Rebalance override
  /// tables (gamma/rebalance.h) reuse the entry format, so their
  /// broadcast cost is computed with the same arithmetic.
  static uint64_t SerializedBytesFor(uint64_t num_entries) {
    return num_entries * kSplitEntryBytes;
  }

  /// Largest bucket number in the table (0 for loading/joining tables).
  int MaxBucket() const;

  /// True if any entry routes to the immediate join (bucket 0).
  bool HasImmediateBucket() const;

 private:
  explicit SplitTable(std::vector<SplitEntry> entries)
      : entries_(std::move(entries)) {
    GAMMA_CHECK(!entries_.empty());
  }

  std::vector<SplitEntry> entries_;
};

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_SPLIT_TABLE_H_
