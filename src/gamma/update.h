// Parallel update and delete operators. Like selection, "update
// operations execute only on the processors with attached disk drives"
// (paper Section 2.1): every disk node rewrites its own fragment in
// place — tuples never move between sites (an update that changed the
// partitioning attribute would need a delete + re-insert through the
// loading split table, which callers can compose).
#ifndef GAMMA_GAMMA_UPDATE_H_
#define GAMMA_GAMMA_UPDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gamma/catalog.h"
#include "gamma/predicate.h"
#include "sim/machine.h"

namespace gammadb::db {

/// One field assignment of an UPDATE ... SET clause (int32 fields).
struct Assignment {
  int field;
  int32_t value;
};

struct UpdateSpec {
  std::string relation;
  PredicateList predicate;  // rows to touch (empty = all)
  std::vector<Assignment> assignments;
};

struct DmlOutput {
  size_t rows_touched = 0;
  sim::RunMetrics metrics;
};

/// Applies the assignments to every matching tuple, in parallel at the
/// disk nodes. Rejects assignments to the partitioning attribute of a
/// hash- or range-declustered relation (the tuple would belong on a
/// different site afterwards).
Result<DmlOutput> ExecuteUpdate(sim::Machine& machine, Catalog& catalog,
                                const UpdateSpec& spec);

/// Deletes every matching tuple, in parallel at the disk nodes.
Result<DmlOutput> ExecuteDelete(sim::Machine& machine, Catalog& catalog,
                                const std::string& relation,
                                const PredicateList& predicate);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_UPDATE_H_
