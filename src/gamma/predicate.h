// Selection predicates for scan operators (the paper's joinAselB /
// joinCselAselB queries apply selections before joining). A predicate
// list is a conjunction; evaluation cost is charged by the scan
// operator, not here.
#ifndef GAMMA_GAMMA_PREDICATE_H_
#define GAMMA_GAMMA_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace gammadb::db {

struct Predicate {
  enum class Op { kLt, kLe, kEq, kNe, kGe, kGt };

  int field;  // int32 field index
  Op op;
  int32_t value;

  bool Eval(const storage::Schema& schema, const storage::Tuple& t) const {
    return Eval(schema, t.data());
  }

  /// Raw-bytes overload: the block-granular scan path evaluates
  /// predicates on page-image views without materializing a Tuple.
  bool Eval(const storage::Schema& schema, const uint8_t* tuple) const {
    const int32_t v = schema.GetInt32(tuple, static_cast<size_t>(field));
    switch (op) {
      case Op::kLt:
        return v < value;
      case Op::kLe:
        return v <= value;
      case Op::kEq:
        return v == value;
      case Op::kNe:
        return v != value;
      case Op::kGe:
        return v >= value;
      case Op::kGt:
        return v > value;
    }
    return false;
  }
};

using PredicateList = std::vector<Predicate>;

inline bool EvalAll(const PredicateList& preds, const storage::Schema& schema,
                    const storage::Tuple& t) {
  for (const Predicate& p : preds) {
    if (!p.Eval(schema, t)) return false;
  }
  return true;
}

inline bool EvalAll(const PredicateList& preds, const storage::Schema& schema,
                    const uint8_t* tuple) {
  for (const Predicate& p : preds) {
    if (!p.Eval(schema, tuple)) return false;
  }
  return true;
}

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_PREDICATE_H_
