#include "gamma/aggregate.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <map>

#include "common/hash.h"
#include "common/logging.h"
#include "gamma/scheduler.h"
#include "gamma/split_table.h"
#include "sim/exchange.h"

namespace gammadb::db {

const char* AggFunctionName(AggFunction f) {
  switch (f) {
    case AggFunction::kCount:
      return "count";
    case AggFunction::kSum:
      return "sum";
    case AggFunction::kMin:
      return "min";
    case AggFunction::kMax:
      return "max";
  }
  return "?";
}

namespace {

struct Partial {
  int64_t accumulator;
  int64_t count;
};

int64_t InitialAccumulator(AggFunction f) {
  switch (f) {
    case AggFunction::kMin:
      return std::numeric_limits<int64_t>::max();
    case AggFunction::kMax:
      return std::numeric_limits<int64_t>::min();
    default:
      return 0;
  }
}

void Fold(AggFunction f, Partial& p, int64_t value) {
  ++p.count;
  switch (f) {
    case AggFunction::kCount:
      ++p.accumulator;
      break;
    case AggFunction::kSum:
      p.accumulator += value;
      break;
    case AggFunction::kMin:
      p.accumulator = std::min(p.accumulator, value);
      break;
    case AggFunction::kMax:
      p.accumulator = std::max(p.accumulator, value);
      break;
  }
}

void Merge(AggFunction f, Partial& into, const Partial& from) {
  into.count += from.count;
  switch (f) {
    case AggFunction::kCount:
    case AggFunction::kSum:
      into.accumulator += from.accumulator;
      break;
    case AggFunction::kMin:
      into.accumulator = std::min(into.accumulator, from.accumulator);
      break;
    case AggFunction::kMax:
      into.accumulator = std::max(into.accumulator, from.accumulator);
      break;
  }
}

struct PartialMsg {
  int32_t group;
  int64_t accumulator;
  int64_t count;
};

constexpr uint32_t kPartialMsgBytes = 16;

}  // namespace

Result<AggregateOutput> ExecuteAggregate(sim::Machine& machine,
                                         Catalog& catalog,
                                         const AggregateSpec& spec) {
  GAMMA_ASSIGN_OR_RETURN(StoredRelation * input,
                         catalog.Get(spec.input_relation));
  const storage::Schema& in_schema = input->schema();
  const auto check_int32_field = [&](int field, const char* what) -> Status {
    if (field < 0 || static_cast<size_t>(field) >= in_schema.num_fields()) {
      return Status::InvalidArgument(std::string(what) + " out of range");
    }
    if (in_schema.field(static_cast<size_t>(field)).type !=
        storage::FieldType::kInt32) {
      return Status::InvalidArgument(std::string(what) + " must be int32");
    }
    return Status::OK();
  };
  const bool grouped = spec.group_by_field >= 0;
  if (grouped) {
    GAMMA_RETURN_IF_ERROR(check_int32_field(spec.group_by_field, "group field"));
  }
  if (spec.function != AggFunction::kCount) {
    GAMMA_RETURN_IF_ERROR(check_int32_field(spec.value_field, "value field"));
  }
  for (const Predicate& p : spec.predicate) {
    GAMMA_RETURN_IF_ERROR(check_int32_field(p.field, "predicate field"));
  }
  std::vector<int> agg_nodes =
      spec.agg_nodes.empty() ? machine.DiskNodeIds() : spec.agg_nodes;
  for (int id : agg_nodes) {
    if (id < 0 || id >= machine.num_nodes()) {
      return Status::InvalidArgument("aggregate node id out of range");
    }
  }

  std::vector<storage::Field> out_fields;
  if (grouped) out_fields.push_back(storage::Field::Int32("group_key"));
  out_fields.push_back(storage::Field::Int32("value"));
  GAMMA_ASSIGN_OR_RETURN(
      StoredRelation * output,
      catalog.Create(machine, spec.output_relation,
                     storage::Schema(out_fields)));
  const storage::Schema& out_schema = output->schema();

  machine.ResetMetrics();
  const std::vector<int> disks = machine.DiskNodeIds();
  const SplitTable agg_table = SplitTable::Joining(agg_nodes);
  sim::Exchange<PartialMsg> partial_exchange(&machine);
  sim::Exchange<storage::Tuple> store_exchange(&machine);

  // Phase 1: local partial aggregation at the disk nodes, partials
  // routed by group hash to the aggregation processes.
  machine.BeginPhase("aggregate scan " + spec.input_relation);
  ChargeOperatorPhase(machine, static_cast<int>(disks.size()),
                      static_cast<int>(agg_nodes.size()),
                      agg_table.SerializedBytes());
  machine.RunOnNodes(disks, [&](sim::Node& n) {
    size_t di = 0;
    for (size_t i = 0; i < disks.size(); ++i) {
      if (disks[i] == n.id()) di = i;
    }
    std::map<int32_t, Partial> partials;
    auto scanner = input->fragment(di).Scan();
    storage::Tuple t;
    while (scanner.Next(&t)) {
      if (!spec.predicate.empty()) {
        n.ChargeCpu(n.cost().cpu_predicate_seconds,
                    sim::CostCategory::kPredicate);
        if (!EvalAll(spec.predicate, in_schema, t)) continue;
      }
      const int32_t group =
          grouped
              ? t.GetInt32(in_schema, static_cast<size_t>(spec.group_by_field))
              : 0;
      const int64_t value =
          spec.function == AggFunction::kCount
              ? 0
              : t.GetInt32(in_schema, static_cast<size_t>(spec.value_field));
      n.ChargeCpu(n.cost().cpu_aggregate_seconds,
                  sim::CostCategory::kAggregate);
      auto [it, inserted] = partials.try_emplace(
          group, Partial{InitialAccumulator(spec.function), 0});
      Fold(spec.function, it->second, value);
    }
    for (const auto& [group, partial] : partials) {
      n.ChargeCpu(n.cost().cpu_hash_route_seconds,
                  sim::CostCategory::kHashRoute);
      const int dest =
          agg_table.Route(HashJoinAttribute(group, spec.hash_seed)).node;
      partial_exchange.Send(
          n.id(), dest,
          PartialMsg{group, partial.accumulator, partial.count},
          kPartialMsgBytes);
    }
  });

  // Phase 1b (same operator phase): merge at the aggregation processes
  // and stream results to the store operators.
  std::vector<size_t> rr(agg_nodes.size());
  for (size_t i = 0; i < agg_nodes.size(); ++i) rr[i] = i;
  Status merge_status = Status::OK();
  std::mutex merge_mu;  // several pooled node tasks may report at once
  machine.RunOnNodes(agg_nodes, [&](sim::Node& n) {
    size_t ai = 0;
    for (size_t i = 0; i < agg_nodes.size(); ++i) {
      if (agg_nodes[i] == n.id()) ai = i;
    }
    std::map<int32_t, Partial> merged;
    for (const PartialMsg& m : partial_exchange.TakeInbox(n.id())) {
      n.ChargeCpu(n.cost().cpu_aggregate_seconds,
                  sim::CostCategory::kAggregate);
      auto [it, inserted] = merged.try_emplace(
          m.group, Partial{InitialAccumulator(spec.function), 0});
      Merge(spec.function, it->second, Partial{m.accumulator, m.count});
    }
    for (const auto& [group, partial] : merged) {
      if (partial.accumulator < std::numeric_limits<int32_t>::min() ||
          partial.accumulator > std::numeric_limits<int32_t>::max()) {
        std::lock_guard<std::mutex> lock(merge_mu);
        merge_status = Status::OutOfRange("aggregate exceeds int32 range");
        return;
      }
      storage::Tuple result(out_schema.tuple_bytes());
      size_t field = 0;
      if (grouped) result.SetInt32(out_schema, field++, group);
      result.SetInt32(out_schema, field,
                      static_cast<int32_t>(partial.accumulator));
      n.ChargeCpu(n.cost().cpu_write_tuple_seconds,
                  sim::CostCategory::kWriteTuple);
      const size_t dest = rr[ai]++ % disks.size();
      const uint32_t bytes = result.size();
      store_exchange.Send(n.id(), disks[dest], std::move(result), bytes);
    }
  });
  machine.RunOnNodes(disks, [&](sim::Node& n) {
    size_t di = 0;
    for (size_t i = 0; i < disks.size(); ++i) {
      if (disks[i] == n.id()) di = i;
    }
    for (storage::Tuple& t : store_exchange.TakeInbox(n.id())) {
      // Non-join operators are outside the fault-injection recovery
      // scope (docs/fault_injection.md): hard write errors abort.
      GAMMA_CHECK_OK(output->fragment(di).Append(t));
    }
    GAMMA_CHECK_OK(output->fragment(di).FlushAppends());
  });
  machine.EndPhase().IgnoreError();

  if (!merge_status.ok()) {
    GAMMA_CHECK_OK(catalog.Drop(spec.output_relation));
    return merge_status;
  }

  AggregateOutput result;
  result.output_relation = spec.output_relation;
  result.groups = output->total_tuples();
  result.metrics = machine.Metrics();
  return result;
}

}  // namespace gammadb::db
