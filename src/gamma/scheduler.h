// Scheduler-side costs of launching operator phases.
//
// Gamma's scheduler process starts the operator processes of each phase
// with control messages and ships them their split tables; operators
// answer with a completion message (paper Section 2.2: "With the
// exception of these three control messages, execution of an operator
// is completely self-scheduling"). These exchanges serialize at the
// scheduler, which is what makes extra Grace/Hybrid buckets cost "a
// small scheduling overhead" and what produces the extra rise at the
// scarce-memory end of the curves when a partitioning split table
// exceeds one 2 KB packet and "must be sent in pieces" (Section 4.1).
#ifndef GAMMA_GAMMA_SCHEDULER_H_
#define GAMMA_GAMMA_SCHEDULER_H_

#include <cstdint>

#include "sim/machine.h"

namespace gammadb::db {

/// Charges the serialized scheduler work for one operator phase:
/// start + done control messages for every producer and consumer
/// process, plus extra packets when the producers' split table does not
/// fit in one packet. Must be called inside an open machine phase.
void ChargeOperatorPhase(sim::Machine& machine, int num_producers,
                         int num_consumers, uint64_t split_table_bytes);

/// Charges the collection of per-site bit-filter slices and the
/// broadcast of the assembled filter packet to the producing sites.
void ChargeFilterDistribution(sim::Machine& machine, int num_join_sites,
                              int num_producers);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_SCHEDULER_H_
